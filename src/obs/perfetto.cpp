#include "obs/perfetto.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "common/types.h"

namespace omni::obs {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

// pid 0 is the global/engine process; node n is process n + 1.
std::uint32_t pid_for(std::uint32_t owner) {
  return owner == sim::kGlobalOwner ? 0 : owner + 1;
}

std::uint32_t tid_for(const TraceRecord& r) {
  if (r.cat < kCatCount) {
    return static_cast<std::uint32_t>(cat_track(static_cast<Cat>(r.cat)));
  }
  return static_cast<std::uint32_t>(Track::kOps);
}

const char* tech_label(std::uint8_t tech) {
  switch (tech) {
    case 0: return "ble";
    case 1: return "wifi_aware";
    case 2: return "wifi_multicast";
    case 3: return "wifi_unicast";
    default: return nullptr;
  }
}

class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(os) {
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  }
  void finish() { os_ << "\n]}\n"; }

  void open() {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "{";
  }
  std::ostream& os() { return os_; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void emit_metadata(Emitter& e, const char* what, std::uint32_t pid,
                   std::uint32_t tid, bool with_tid,
                   const std::string& name) {
  e.open();
  e.os() << "\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (with_tid) e.os() << ",\"tid\":" << tid;
  e.os() << ",\"args\":{\"name\":\"";
  json_escape(e.os(), name);
  e.os() << "\"}}";
}

void emit_args(std::ostream& os, const TraceRecord& r) {
  os << "\"args\":{\"a0\":" << r.a0 << ",\"a1\":" << r.a1;
  if (const char* t = tech_label(r.tech)) os << ",\"tech\":\"" << t << "\"";
  os << "}";
}

}  // namespace

void write_perfetto_json(std::ostream& os, const TraceCapture& cap,
                         const ExportOptions& opts) {
  Emitter e(os);

  // Name every process and track that appears in the capture (Perfetto shows
  // pids/tids raw otherwise).
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> tracks;
  for (const TraceRecord& r : cap.records) {
    pids.insert(pid_for(r.owner));
    tracks.insert({pid_for(r.owner), tid_for(r)});
  }
  if (!opts.annotations.empty()) {
    pids.insert(0);
    tracks.insert({0, static_cast<std::uint32_t>(Track::kFaults)});
  }
  for (std::uint32_t pid : pids) {
    std::string name =
        pid == 0 ? "global" : cap.owner_name(pid - 1);
    emit_metadata(e, "process_name", pid, 0, false, name);
  }
  for (const auto& [pid, tid] : tracks) {
    emit_metadata(e, "thread_name", pid, tid, true,
                  track_name(static_cast<Track>(tid)));
  }

  for (const TraceRecord& r : cap.records) {
    const std::uint32_t pid = pid_for(r.owner);
    const std::uint32_t tid = tid_for(r);
    const std::string name = cap.category_name(r.cat);
    e.open();
    e.os() << "\"name\":\"";
    json_escape(e.os(), name);
    e.os() << "\",\"cat\":\"omni\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"ts\":" << r.t_us << ",";
    switch (static_cast<Phase>(r.phase)) {
      case Phase::kInstant:
        e.os() << "\"ph\":\"i\",\"s\":\"t\",";
        emit_args(e.os(), r);
        break;
      case Phase::kComplete:
        e.os() << "\"ph\":\"X\",\"dur\":" << r.a1 << ",";
        emit_args(e.os(), r);
        break;
      case Phase::kAsyncBegin:
        e.os() << "\"ph\":\"b\",\"id\":" << r.a0 << ",";
        emit_args(e.os(), r);
        break;
      case Phase::kAsyncEnd:
        e.os() << "\"ph\":\"e\",\"id\":" << r.a0 << ",";
        emit_args(e.os(), r);
        break;
      case Phase::kCounter:
        e.os() << "\"ph\":\"C\",\"args\":{\"value\":" << r.a0 << "}";
        break;
      default:
        e.os() << "\"ph\":\"i\",\"s\":\"t\",";
        emit_args(e.os(), r);
        break;
    }
    e.os() << "}";
  }

  // Scripted fault windows as async spans on the global fault track, so the
  // timeline shows when chaos was active without hunting for instants.
  std::uint64_t span_id = 1u << 30;
  for (const AnnotationSpan& a : opts.annotations) {
    for (int edge = 0; edge < 2; ++edge) {
      e.open();
      e.os() << "\"name\":\"";
      json_escape(e.os(), a.name);
      e.os() << "\",\"cat\":\"omni.fault\",\"pid\":0,\"tid\":"
             << static_cast<std::uint32_t>(Track::kFaults)
             << ",\"ts\":" << (edge == 0 ? a.begin_us : a.end_us)
             << ",\"ph\":\"" << (edge == 0 ? 'b' : 'e')
             << "\",\"id\":" << span_id << ",\"args\":{}}";
    }
    ++span_id;
  }

  e.finish();
}

bool write_perfetto_json(const std::string& path, const TraceCapture& cap,
                         const ExportOptions& opts) {
  std::ofstream os(path);
  if (!os) return false;
  write_perfetto_json(os, cap, opts);
  return static_cast<bool>(os);
}

}  // namespace omni::obs
