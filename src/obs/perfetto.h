// Chrome trace_event / Perfetto JSON exporter.
//
// Maps a TraceCapture onto the trace_event JSON array format that
// ui.perfetto.dev (and chrome://tracing) load directly:
//
//   * one *process* per node — pid = owner + 1, pid 0 is the global/engine
//     process — named via process_name metadata events;
//   * one *thread* per track inside each process (ops, ble, wifi, nan, mesh,
//     faults, engine), named via thread_name metadata;
//   * Phase::kInstant  -> "i" instant events,
//     Phase::kComplete -> "X" complete events (dur from a1),
//     Phase::kAsyncBegin/kAsyncEnd -> "b"/"e" async spans (id from a0) —
//     the manager's op lifecycle and fault windows render as spans,
//     Phase::kCounter  -> "C" counter tracks.
//
// Timestamps are virtual microseconds, which trace_event's "ts" field uses
// natively, so the timeline in the UI is simulated time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_file.h"

namespace omni::obs {

/// A labelled interval rendered as an async span on the global process's
/// fault track — Testbed turns scripted fault windows (blackouts, link
/// faults, partitions) into these.
struct AnnotationSpan {
  std::string name;
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
};

struct ExportOptions {
  std::vector<AnnotationSpan> annotations;
};

void write_perfetto_json(std::ostream& os, const TraceCapture& cap,
                         const ExportOptions& opts = {});
bool write_perfetto_json(const std::string& path, const TraceCapture& cap,
                         const ExportOptions& opts = {});

}  // namespace omni::obs
