// Per-node, per-technology energy ledger, built on the metrics registry.
//
// The radio models meter energy as (current draw, time span) charges against
// a device-wide EnergyMeter (the paper's inline USB power meter). The ledger
// mirrors every charge into rail-tagged registry counters so per-node,
// per-technology charge totals become first-class queryable metrics — the
// quantity the paper's Tables 3-5 are built from — instead of a bench-local
// computation.
//
// Values are stored fixed-point (micro-amp-seconds) so aggregation stays
// integer and therefore bit-deterministic across thread counts; the ~1e-3
// mA*s resolution is ~6 orders of magnitude below the 1% tolerance the
// Table-3 reproduction bench checks against the meter's own float integrals.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "obs/metrics.h"

namespace omni::obs {

/// Which radio rail a charge belongs to. The paper's Table 3 calibration
/// currents are all attributable to exactly one of these.
/// kBleScan splits passive listen cost out of the BLE rail so the adaptive
/// discovery scheduler's scan-duty savings are directly visible.
enum class EnergyRail : std::uint8_t { kOther = 0, kBle = 1, kWifi = 2,
                                       kNan = 3, kBleScan = 4 };
inline constexpr std::size_t kEnergyRailCount = 5;

const char* rail_name(EnergyRail r);

class EnergyLedger {
 public:
  EnergyLedger() = default;
  EnergyLedger(const EnergyLedger&) = delete;
  EnergyLedger& operator=(const EnergyLedger&) = delete;

  /// Register the rail counters in `registry` (idempotent).
  void bind(MetricsRegistry& registry);
  bool bound() const { return registry_ != nullptr; }

  /// Hot path: account `mAs` milliamp-seconds of charge on `rail` to `node`.
  /// `lane` is the caller's execution lane.
  void add(std::size_t lane, NodeId node, EnergyRail rail, double mAs) {
    auto uAs = static_cast<std::int64_t>(mAs * 1000.0 + (mAs >= 0 ? 0.5
                                                                  : -0.5));
    registry_->add(lane, rails_[static_cast<std::size_t>(rail)], node,
                   static_cast<std::uint64_t>(uAs));
  }

  /// Total charge for one node on one rail, in mA*s.
  double rail_mAs(NodeId node, EnergyRail rail) const {
    return as_mAs(registry_->counter_value(
        rails_[static_cast<std::size_t>(rail)], node));
  }
  /// Total charge for one node across rails, in mA*s.
  double total_mAs(NodeId node) const;
  /// Total charge for one node across rails, in mAh (the paper's unit).
  double total_mAh(NodeId node) const { return total_mAs(node) / 3600.0; }
  /// Fleet-wide charge on one rail, in mA*s.
  double fleet_rail_mAs(EnergyRail rail) const {
    return as_mAs(registry_->counter_total(
        rails_[static_cast<std::size_t>(rail)]));
  }

  MetricId rail_metric(EnergyRail rail) const {
    return rails_[static_cast<std::size_t>(rail)];
  }

 private:
  static double as_mAs(std::uint64_t uAs) {
    return static_cast<double>(static_cast<std::int64_t>(uAs)) / 1000.0;
  }

  MetricsRegistry* registry_ = nullptr;
  MetricId rails_[kEnergyRailCount] = {kInvalidMetric, kInvalidMetric,
                                       kInvalidMetric, kInvalidMetric,
                                       kInvalidMetric};
};

}  // namespace omni::obs
