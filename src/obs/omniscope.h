// Omniscope: the always-on observability facade.
//
// One Omniscope attaches to one Simulator (Simulator::set_scope) and bundles
//
//   * a MetricsRegistry — typed counters/gauges/histograms with per-owner,
//     per-lane sharded storage (obs/metrics.h);
//   * a FlightRecorder — per-lane binary trace rings of 32-byte POD records
//     (obs/flight_recorder.h);
//   * an EnergyLedger — per-node per-technology charge counters fed by the
//     radio models' EnergyMeters (obs/energy_ledger.h);
//   * a StringTable for dynamic labels and owner (node) names.
//
// Instrumented components reach the scope through their Simulator reference:
//
//     if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc && sc->recording()) {
//       sc->count(sc->core().beacon_rx);
//       sc->instant(obs::Cat::kBeaconRx, sender.value);
//     }
//
// A null scope (the default — observability is opt-in per Testbed) costs one
// predicted branch per site; compiling with -DOMNI_OBS_DISABLED removes the
// sites entirely (OMNI_SCOPE expands to a null literal). Recording never
// feeds back into simulation decisions, never draws simulator RNG, and never
// schedules events, so instrumented runs are bit-identical to bare ones.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/energy_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/strings.h"
#include "obs/trace_record.h"
#include "sim/simulator.h"

namespace omni::obs {

/// Well-known metric ids, registered at attach() so hot paths never look a
/// metric up by name.
struct CoreMetrics {
  // Manager.
  MetricId data_ops = kInvalidMetric;
  MetricId data_ok = kInvalidMetric;
  MetricId data_failed = kInvalidMetric;
  MetricId data_failovers = kInvalidMetric;
  MetricId deadline_failovers = kInvalidMetric;
  MetricId quarantines = kInvalidMetric;
  MetricId beacon_rx = kInvalidMetric;
  MetricId context_rx = kInvalidMetric;
  MetricId data_rx = kInvalidMetric;
  MetricId engagements = kInvalidMetric;
  MetricId data_latency_ms = kInvalidMetric;  ///< histogram, ok ops only
  // Beacon fast path (manager send/receive caches; see DESIGN.md).
  MetricId beacon_encodes = kInvalidMetric;        ///< wire-frame (re)encodes
  MetricId beacon_frames_cached = kInvalidMetric;  ///< sends from the cache
  MetricId beacon_decode_skips = kInvalidMetric;   ///< digest-memo rx hits
  MetricId peer_expire_sweeps = kInvalidMetric;    ///< periodic expiry sweeps
  // Adaptive discovery scheduler (DiscoveryPolicy; see DESIGN.md).
  MetricId beacons_suppressed = kInvalidMetric;    ///< beacons saved vs floor
  MetricId scan_windows_skipped = kInvalidMetric;  ///< probe duty below default
  MetricId beacon_interval_ms = kInvalidMetric;    ///< histogram, per tick
  // Technology plugins (one send counter per technology).
  MetricId tech_send[4] = {kInvalidMetric, kInvalidMetric, kInvalidMetric,
                           kInvalidMetric};
  // Radios.
  MetricId ble_adv = kInvalidMetric;
  MetricId ble_rx = kInvalidMetric;
  MetricId wifi_scans = kInvalidMetric;
  MetricId mesh_tx = kInvalidMetric;
  MetricId nan_dw = kInvalidMetric;
  // Fault engine.
  MetricId fault_drops = kInvalidMetric;
  MetricId fault_corruptions = kInvalidMetric;
  MetricId fault_delays = kInvalidMetric;
  MetricId fault_partition_drops = kInvalidMetric;
  // Parallel engine (gauges, refreshed by flush()).
  MetricId engine_events = kInvalidMetric;
  MetricId engine_windows = kInvalidMetric;
  MetricId engine_global_events = kInvalidMetric;
  MetricId engine_mailbox_posts = kInvalidMetric;
};

class Omniscope {
 public:
  Omniscope();
  ~Omniscope();
  Omniscope(const Omniscope&) = delete;
  Omniscope& operator=(const Omniscope&) = delete;

  /// Bind to `sim`: size metric lanes and trace rings to its shard count,
  /// register the core metrics, publish this scope via sim.set_scope(), and
  /// start recording. Call from setup (never inside a run).
  void attach(sim::Simulator& sim, std::size_t ring_capacity = 1 << 16);
  void detach();
  sim::Simulator* simulator() const { return sim_; }

  /// Grow per-owner metric storage to cover nodes [0, owner_count). Callable
  /// between runs / from global context as devices are added.
  void ensure_owner_capacity(std::size_t owner_count);

  bool recording() const { return recording_; }
  void set_recording(bool on) { recording_ = on; }

  /// Per-frame verbosity. At detail (the default — right for testbeds up to
  /// a few dozen nodes), every mark_frame site writes a trace record. With
  /// detail off — the always-on profile bench_scale's obs_overhead rows
  /// measure at 1000 nodes — per-frame sites still bump their counters but
  /// skip the ring, keeping instrumented runs within a few percent of bare.
  bool detail() const { return detail_; }
  void set_detail(bool on) { detail_ = on; }

  // --- Hot-path recording ---------------------------------------------------

  /// The calling context's execution lane.
  std::size_t lane() const { return sim_->current_shard_index(); }

  /// Counter bump + instant record in one call, attributed to the current
  /// event's owner. One thread-local context fetch instead of the five that
  /// separate count() + instant() calls would make — use this on per-frame
  /// hot paths (BLE delivery, beacon decode).
  void mark(MetricId m, Cat c, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
            std::uint8_t tech = 0xff) {
    const sim::Simulator::ObsCtx x = sim_->obs_ctx();
    metrics_.add(x.lane, m, x.owner, 1);
    write_at(x, x.owner, c, Phase::kInstant, a0, a1, tech);
  }
  /// mark(), attributed to a specific node.
  void mark_on(sim::OwnerId owner, MetricId m, Cat c, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0, std::uint8_t tech = 0xff) {
    const sim::Simulator::ObsCtx x = sim_->obs_ctx();
    metrics_.add(x.lane, m, owner, 1);
    write_at(x, owner, c, Phase::kInstant, a0, a1, tech);
  }

  /// mark() for per-frame events (one BLE delivery, one decoded beacon):
  /// the counter is unconditional, the trace record only lands at detail
  /// verbosity (see set_detail).
  void mark_frame(MetricId m, Cat c, std::uint64_t a0 = 0,
                  std::uint64_t a1 = 0, std::uint8_t tech = 0xff) {
    const sim::Simulator::ObsCtx x = sim_->obs_ctx();
    metrics_.add(x.lane, m, x.owner, 1);
    if (detail_) write_at(x, x.owner, c, Phase::kInstant, a0, a1, tech);
  }
  /// mark_frame(), attributed to a specific node.
  void mark_frame_on(sim::OwnerId owner, MetricId m, Cat c,
                     std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                     std::uint8_t tech = 0xff) {
    const sim::Simulator::ObsCtx x = sim_->obs_ctx();
    metrics_.add(x.lane, m, owner, 1);
    if (detail_) write_at(x, owner, c, Phase::kInstant, a0, a1, tech);
  }

  /// Append a trace record attributed to the current event's owner.
  void instant(Cat c, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
               std::uint8_t tech = 0xff) {
    const sim::Simulator::ObsCtx x = sim_->obs_ctx();
    write_at(x, x.owner, c, Phase::kInstant, a0, a1, tech);
  }
  /// Append a trace record attributed to a specific node.
  void instant_on(sim::OwnerId owner, Cat c, std::uint64_t a0 = 0,
                  std::uint64_t a1 = 0, std::uint8_t tech = 0xff) {
    write(owner, c, Phase::kInstant, a0, a1, tech);
  }
  /// A span with a known duration (exported as one Perfetto "X" event).
  void complete_on(sim::OwnerId owner, Cat c, Duration duration,
                   std::uint64_t a0 = 0, std::uint8_t tech = 0xff) {
    write(owner, c, Phase::kComplete, a0,
          static_cast<std::uint64_t>(duration.as_micros()), tech);
  }
  /// Id-matched async span edges (exported as Perfetto "b"/"e" events).
  void async_begin_on(sim::OwnerId owner, Cat c, std::uint64_t id,
                      std::uint64_t a1 = 0, std::uint8_t tech = 0xff) {
    write(owner, c, Phase::kAsyncBegin, id, a1, tech);
  }
  void async_end_on(sim::OwnerId owner, Cat c, std::uint64_t id,
                    std::uint64_t a1 = 0, std::uint8_t tech = 0xff) {
    write(owner, c, Phase::kAsyncEnd, id, a1, tech);
  }

  /// Bump a counter attributed to the current event's owner.
  void count(MetricId m, std::uint64_t delta = 1) {
    const sim::Simulator::ObsCtx x = sim_->obs_ctx();
    metrics_.add(x.lane, m, x.owner, delta);
  }
  /// Bump a counter attributed to a specific node.
  void count_on(sim::OwnerId owner, MetricId m, std::uint64_t delta = 1) {
    metrics_.add(lane(), m, owner, delta);
  }
  /// Record a histogram sample attributed to a specific node.
  void observe_on(sim::OwnerId owner, MetricId m, double sample) {
    metrics_.observe(lane(), m, owner, sample);
  }

  // --- Components -----------------------------------------------------------

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }
  EnergyLedger& energy() { return energy_; }
  const EnergyLedger& energy() const { return energy_; }
  StringTable& labels() { return labels_; }
  const CoreMetrics& core() const { return core_; }

  /// Record a display name for an owner (used by exporters and the CLI).
  void set_owner_name(sim::OwnerId owner, std::string name);
  const std::vector<std::pair<std::uint32_t, std::string>>& owner_names()
      const {
    return owner_names_;
  }

  // --- Snapshot / export (outside parallel windows only) --------------------

  /// Register work to run at flush() time (e.g. closing open energy-meter
  /// levels into the ledger so totals are current).
  void add_flush_hook(std::function<void()> hook) {
    flush_hooks_.push_back(std::move(hook));
  }

  /// Bring pull-based state current: runs flush hooks and refreshes the
  /// engine gauges from the simulator's counters. Call before reading
  /// metrics or exporting a capture.
  void flush();

  /// Canonical metrics dump (MetricsRegistry::dump), after a flush. Byte-
  /// identical across thread counts for deterministic workloads — the digest
  /// oracle for the parallel-engine metric tests.
  std::string metrics_dump();

 private:
  void write(sim::OwnerId owner, Cat c, Phase p, std::uint64_t a0,
             std::uint64_t a1, std::uint8_t tech) {
    write_at(sim_->obs_ctx(), owner, c, p, a0, a1, tech);
  }

  void write_at(const sim::Simulator::ObsCtx& x, sim::OwnerId owner, Cat c,
                Phase p, std::uint64_t a0, std::uint64_t a1,
                std::uint8_t tech) {
    TraceRecord r;
    r.t_us = x.now.as_micros();
    r.owner = owner;
    r.cat = static_cast<std::uint16_t>(c);
    r.phase = static_cast<std::uint8_t>(p);
    r.tech = tech;
    r.a0 = a0;
    r.a1 = a1;
    recorder_.write(x.lane, r);
  }

  sim::Simulator* sim_ = nullptr;
  bool recording_ = false;
  bool detail_ = true;
  MetricsRegistry metrics_;
  FlightRecorder recorder_;
  EnergyLedger energy_;
  StringTable labels_{kCatCount};
  CoreMetrics core_;
  std::vector<std::pair<std::uint32_t, std::string>> owner_names_;
  std::vector<std::function<void()>> flush_hooks_;
};

}  // namespace omni::obs

/// Instrumentation sites fetch the scope through this macro so a build with
/// -DOMNI_OBS_DISABLED compiles them out entirely (the null literal makes
/// every `if (sc && ...)` block dead code).
#if defined(OMNI_OBS_DISABLED)
#define OMNI_SCOPE(sim) (static_cast<::omni::obs::Omniscope*>(nullptr))
#else
#define OMNI_SCOPE(sim) ((sim).scope())
#endif
