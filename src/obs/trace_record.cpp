#include "obs/trace_record.h"

namespace omni::obs {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kOpData: return "op.data";
    case Cat::kOpContext: return "op.context";
    case Cat::kTechSelect: return "op.tech_select";
    case Cat::kFailover: return "op.failover";
    case Cat::kDeadline: return "op.deadline";
    case Cat::kRetry: return "op.retry";
    case Cat::kQuarantine: return "op.quarantine";
    case Cat::kEngage: return "mgr.engage";
    case Cat::kDisengage: return "mgr.disengage";
    case Cat::kBeaconOn: return "mgr.beacon_on";
    case Cat::kBeaconOff: return "mgr.beacon_off";
    case Cat::kBeaconRx: return "mgr.beacon_rx";
    case Cat::kContextRx: return "mgr.context_rx";
    case Cat::kDataRx: return "mgr.data_rx";
    case Cat::kTechSend: return "tech.send";
    case Cat::kTechResponse: return "tech.response";
    case Cat::kRitual: return "tech.ritual";
    case Cat::kBleAdv: return "ble.adv";
    case Cat::kBleRx: return "ble.rx";
    case Cat::kWifiScan: return "wifi.scan";
    case Cat::kWifiJoin: return "wifi.join";
    case Cat::kMeshTx: return "mesh.tx";
    case Cat::kMeshMulticast: return "mesh.multicast";
    case Cat::kFlow: return "mesh.flow";
    case Cat::kNanDw: return "nan.dw";
    case Cat::kNanTx: return "nan.tx";
    case Cat::kFaultDrop: return "fault.drop";
    case Cat::kFaultCorrupt: return "fault.corrupt";
    case Cat::kFaultDelay: return "fault.delay";
    case Cat::kFaultPartition: return "fault.partition";
    case Cat::kFaultPower: return "fault.power";
    case Cat::kCrash: return "fault.crash";
    case Cat::kWindow: return "engine.window";
    case Cat::kCount_: break;
  }
  return "unknown";
}

Track cat_track(Cat c) {
  switch (c) {
    case Cat::kOpData:
    case Cat::kOpContext:
    case Cat::kTechSelect:
    case Cat::kFailover:
    case Cat::kDeadline:
    case Cat::kRetry:
    case Cat::kQuarantine:
    case Cat::kEngage:
    case Cat::kDisengage:
    case Cat::kBeaconOn:
    case Cat::kBeaconOff:
    case Cat::kBeaconRx:
    case Cat::kContextRx:
    case Cat::kDataRx:
    case Cat::kTechSend:
    case Cat::kTechResponse:
      return Track::kOps;
    case Cat::kRitual:
    case Cat::kWifiScan:
    case Cat::kWifiJoin:
      return Track::kWifi;
    case Cat::kBleAdv:
    case Cat::kBleRx:
      return Track::kBle;
    case Cat::kMeshTx:
    case Cat::kMeshMulticast:
    case Cat::kFlow:
      return Track::kMesh;
    case Cat::kNanDw:
    case Cat::kNanTx:
      return Track::kNan;
    case Cat::kFaultDrop:
    case Cat::kFaultCorrupt:
    case Cat::kFaultDelay:
    case Cat::kFaultPartition:
    case Cat::kFaultPower:
    case Cat::kCrash:
      return Track::kFaults;
    case Cat::kWindow:
    case Cat::kCount_:
      return Track::kEngine;
  }
  return Track::kEngine;
}

const char* track_name(Track t) {
  switch (t) {
    case Track::kOps: return "ops";
    case Track::kBle: return "ble";
    case Track::kWifi: return "wifi";
    case Track::kNan: return "nan";
    case Track::kMesh: return "mesh";
    case Track::kFaults: return "faults";
    case Track::kEngine: return "engine";
  }
  return "engine";
}

}  // namespace omni::obs
