#include "obs/flight_recorder.h"

#include <algorithm>

namespace omni::obs {

namespace {
std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

void FlightRecorder::configure(std::size_t lanes, std::size_t capacity) {
  std::size_t cap = round_up_pow2(std::max<std::size_t>(capacity, 16));
  mask_ = cap - 1;
  if (lanes < lanes_.size()) lanes = lanes_.size();
  lanes_.resize(lanes);
  for (auto& lane : lanes_) {
    if (lane == nullptr) lane = std::make_unique<Lane>();
    lane->ring.assign(cap, TraceRecord{});
    lane->head = 0;
  }
}

std::uint64_t FlightRecorder::total_written() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->head;
  return n;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) {
    if (lane->head > lane->ring.size()) n += lane->head - lane->ring.size();
  }
  return n;
}

void FlightRecorder::collect(std::vector<TraceRecord>& out) const {
  std::size_t start = out.size();
  for (const auto& lane : lanes_) {
    std::uint64_t kept = std::min<std::uint64_t>(lane->head,
                                                 lane->ring.size());
    for (std::uint64_t i = lane->head - kept; i < lane->head; ++i) {
      out.push_back(lane->ring[static_cast<std::size_t>(i & mask_)]);
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
            canonical_less);
}

void FlightRecorder::clear() {
  for (auto& lane : lanes_) lane->head = 0;
}

}  // namespace omni::obs
