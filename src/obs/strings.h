// Interned label table for the flight recorder.
//
// Dynamic strings (node names, scenario labels, extra categories registered
// by tools or tests) are interned once — at setup, on the driving thread —
// into dense ids that ride in TraceRecord argument fields. The static
// category table (obs/trace_record.h) occupies ids [0, kCatCount); dynamic
// categories continue from kCatCount so one id space covers both.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace omni::obs {

class StringTable {
 public:
  /// Intern `s`, returning its stable id. Ids start at `base` (the table
  /// pretends `base` earlier ids exist — used to keep dynamic category ids
  /// disjoint from the static Cat enum). Not safe during parallel windows;
  /// intern at setup or from global events only.
  explicit StringTable(std::uint32_t base = 0) : base_(base) {}

  std::uint32_t intern(std::string_view s) {
    auto it = index_.find(std::string(s));
    if (it != index_.end()) return it->second;
    std::uint32_t id = base_ + static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    index_.emplace(strings_.back(), id);
    return id;
  }

  /// Name for an id below `base` is unknown ("?").
  const std::string& name(std::uint32_t id) const {
    static const std::string kUnknown = "?";
    if (id < base_ || id - base_ >= strings_.size()) return kUnknown;
    return strings_[id - base_];
  }

  std::uint32_t base() const { return base_; }
  std::size_t size() const { return strings_.size(); }
  const std::vector<std::string>& all() const { return strings_; }

 private:
  std::uint32_t base_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

}  // namespace omni::obs
