#include "obs/trace_file.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "obs/omniscope.h"

namespace omni::obs {

namespace {

constexpr char kMagic[8] = {'O', 'M', 'N', 'I', 'T', 'R', 'C', '1'};
// A capture larger than this is corrupt, not big (the recorder's rings are
// bounded); the cap keeps a bad count field from driving a huge allocation.
constexpr std::uint64_t kMaxRecords = 1ull << 28;
constexpr std::uint32_t kMaxStrings = 1u << 20;

template <typename T>
void put(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}

void put_string(std::ostream& os, const std::string& s) {
  put(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& is, std::string& s) {
  std::uint32_t len = 0;
  if (!get(is, len) || len > kMaxStrings) return false;
  s.resize(len);
  is.read(s.data(), len);
  return static_cast<bool>(is);
}

}  // namespace

std::string TraceCapture::category_name(std::uint16_t cat) const {
  if (cat < kCatCount) return cat_name(static_cast<Cat>(cat));
  for (const auto& [id, name] : categories) {
    if (id == cat) return name;
  }
  return "cat" + std::to_string(cat);
}

std::string TraceCapture::owner_name(std::uint32_t owner) const {
  for (const auto& [o, name] : owner_names) {
    if (o == owner) return name;
  }
  if (owner == sim::kGlobalOwner) return "global";
  return "node" + std::to_string(owner);
}

TraceCapture capture(Omniscope& scope) {
  scope.flush();
  TraceCapture cap;
  scope.recorder().collect(cap.records);
  cap.dropped = scope.recorder().dropped();
  const StringTable& labels = scope.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::uint32_t id = labels.base() + static_cast<std::uint32_t>(i);
    cap.categories.emplace_back(id, labels.name(id));
  }
  cap.owner_names = scope.owner_names();
  return cap;
}

void write_trace_file(std::ostream& os, const TraceCapture& cap) {
  os.write(kMagic, sizeof(kMagic));
  put(os, static_cast<std::uint64_t>(cap.records.size()));
  put(os, cap.dropped);
  for (const TraceRecord& r : cap.records) {
    put(os, r.t_us);
    put(os, r.owner);
    put(os, r.cat);
    put(os, r.phase);
    put(os, r.tech);
    put(os, r.a0);
    put(os, r.a1);
  }
  put(os, static_cast<std::uint32_t>(cap.categories.size()));
  for (const auto& [id, name] : cap.categories) {
    put(os, id);
    put_string(os, name);
  }
  put(os, static_cast<std::uint32_t>(cap.owner_names.size()));
  for (const auto& [owner, name] : cap.owner_names) {
    put(os, owner);
    put_string(os, name);
  }
}

bool write_trace_file(const std::string& path, const TraceCapture& cap) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_trace_file(os, cap);
  return static_cast<bool>(os);
}

bool read_trace_file(std::istream& is, TraceCapture& cap) {
  char magic[8] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  if (!get(is, count) || !get(is, cap.dropped) || count > kMaxRecords) {
    return false;
  }
  cap.records.resize(static_cast<std::size_t>(count));
  for (TraceRecord& r : cap.records) {
    if (!get(is, r.t_us) || !get(is, r.owner) || !get(is, r.cat) ||
        !get(is, r.phase) || !get(is, r.tech) || !get(is, r.a0) ||
        !get(is, r.a1)) {
      return false;
    }
  }
  std::uint32_t ncat = 0;
  if (!get(is, ncat) || ncat > kMaxStrings) return false;
  cap.categories.resize(ncat);
  for (auto& [id, name] : cap.categories) {
    if (!get(is, id) || !get_string(is, name)) return false;
  }
  std::uint32_t nowner = 0;
  if (!get(is, nowner) || nowner > kMaxStrings) return false;
  cap.owner_names.resize(nowner);
  for (auto& [owner, name] : cap.owner_names) {
    if (!get(is, owner) || !get_string(is, name)) return false;
  }
  return true;
}

bool read_trace_file(const std::string& path, TraceCapture& cap) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  return read_trace_file(is, cap);
}

}  // namespace omni::obs
