#include "obs/energy_ledger.h"

namespace omni::obs {

const char* rail_name(EnergyRail r) {
  switch (r) {
    case EnergyRail::kOther: return "other";
    case EnergyRail::kBle: return "ble";
    case EnergyRail::kWifi: return "wifi";
    case EnergyRail::kNan: return "nan";
    case EnergyRail::kBleScan: return "ble_scan";
  }
  return "other";
}

void EnergyLedger::bind(MetricsRegistry& registry) {
  registry_ = &registry;
  for (std::size_t r = 0; r < kEnergyRailCount; ++r) {
    rails_[r] = registry.counter(
        std::string("energy.") + rail_name(static_cast<EnergyRail>(r)) +
        ".uAs");
  }
}

double EnergyLedger::total_mAs(NodeId node) const {
  double total = 0;
  for (std::size_t r = 0; r < kEnergyRailCount; ++r) {
    total += as_mAs(registry_->counter_value(rails_[r], node));
  }
  return total;
}

}  // namespace omni::obs
