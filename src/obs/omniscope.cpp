#include "obs/omniscope.h"

#include <algorithm>
#include <array>

#include "common/result.h"

namespace omni::obs {

Omniscope::Omniscope() = default;

Omniscope::~Omniscope() { detach(); }

void Omniscope::attach(sim::Simulator& sim, std::size_t ring_capacity) {
  OMNI_CHECK_MSG(sim_ == nullptr || sim_ == &sim,
                 "Omniscope is already attached to another simulator");
  sim_ = &sim;

  // Lanes: one per shard plus the global/setup lane (current_shard_index()
  // returns threads() outside windows).
  const std::size_t lanes = static_cast<std::size_t>(sim.threads()) + 1;
  recorder_.configure(lanes, ring_capacity);

  // Core metrics, registered once (registration is idempotent by name).
  static constexpr std::array<double, 10> kLatencyBoundsMs = {
      1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000};
  core_.data_ops = metrics_.counter("mgr.data_ops");
  core_.data_ok = metrics_.counter("mgr.data_ok");
  core_.data_failed = metrics_.counter("mgr.data_failed");
  core_.data_failovers = metrics_.counter("mgr.data_failovers");
  core_.deadline_failovers = metrics_.counter("mgr.deadline_failovers");
  core_.quarantines = metrics_.counter("mgr.quarantines");
  core_.beacon_rx = metrics_.counter("mgr.beacon_rx");
  core_.context_rx = metrics_.counter("mgr.context_rx");
  core_.data_rx = metrics_.counter("mgr.data_rx");
  core_.engagements = metrics_.counter("mgr.engagements");
  core_.data_latency_ms =
      metrics_.histogram("mgr.data_latency_ms", kLatencyBoundsMs);
  core_.beacon_encodes = metrics_.counter("mgr.beacon_encodes");
  core_.beacon_frames_cached = metrics_.counter("mgr.beacon_frames_cached");
  core_.beacon_decode_skips = metrics_.counter("mgr.beacon_decode_skips");
  core_.peer_expire_sweeps = metrics_.counter("mgr.peer_expire_sweeps");
  static constexpr std::array<double, 7> kIntervalBoundsMs = {
      250, 500, 1000, 2000, 4000, 8000, 16000};
  core_.beacons_suppressed = metrics_.counter("mgr.beacons_suppressed");
  core_.scan_windows_skipped = metrics_.counter("mgr.scan_windows_skipped");
  core_.beacon_interval_ms =
      metrics_.histogram("mgr.beacon_interval_ms", kIntervalBoundsMs);
  core_.tech_send[0] = metrics_.counter("tech.ble.sends");
  core_.tech_send[1] = metrics_.counter("tech.nan.sends");
  core_.tech_send[2] = metrics_.counter("tech.wifi_multicast.sends");
  core_.tech_send[3] = metrics_.counter("tech.wifi_unicast.sends");
  core_.ble_adv = metrics_.counter("radio.ble.adv_events");
  core_.ble_rx = metrics_.counter("radio.ble.rx");
  core_.wifi_scans = metrics_.counter("radio.wifi.scans");
  core_.mesh_tx = metrics_.counter("radio.mesh.tx");
  core_.nan_dw = metrics_.counter("radio.nan.dw");
  core_.fault_drops = metrics_.counter("fault.drops");
  core_.fault_corruptions = metrics_.counter("fault.corruptions");
  core_.fault_delays = metrics_.counter("fault.delays");
  core_.fault_partition_drops = metrics_.counter("fault.partition_drops");
  core_.engine_events = metrics_.gauge("engine.events");
  core_.engine_windows = metrics_.gauge("engine.windows");
  core_.engine_global_events = metrics_.gauge("engine.global_events");
  core_.engine_mailbox_posts = metrics_.gauge("engine.mailbox_posts");
  energy_.bind(metrics_);

  metrics_.shape(std::max<std::size_t>(metrics_.owner_capacity(), 1), lanes);
  sim.set_scope(this);
  recording_ = true;
}

void Omniscope::detach() {
  if (sim_ != nullptr && sim_->scope() == this) sim_->set_scope(nullptr);
  sim_ = nullptr;
  recording_ = false;
}

void Omniscope::ensure_owner_capacity(std::size_t owner_count) {
  const std::size_t lanes =
      sim_ != nullptr ? static_cast<std::size_t>(sim_->threads()) + 1
                      : std::max<std::size_t>(metrics_.lane_count(), 1);
  if (owner_count + 1 > metrics_.owner_capacity() ||
      lanes > metrics_.lane_count()) {
    metrics_.shape(owner_count, lanes);
  }
}

void Omniscope::set_owner_name(sim::OwnerId owner, std::string name) {
  for (auto& [o, n] : owner_names_) {
    if (o == owner) {
      n = std::move(name);
      return;
    }
  }
  owner_names_.emplace_back(owner, std::move(name));
}

void Omniscope::flush() {
  if (sim_ == nullptr) return;
  for (auto& hook : flush_hooks_) hook();
  // Engine telemetry is pulled from the simulator's counters rather than
  // pushed from barrier hooks: the simulator never calls into the scope.
  const std::size_t ln = lane();  // global lane outside windows
  const std::int64_t stamp = sim_->now().as_micros();
  metrics_.set_gauge(ln, core_.engine_events, sim::kGlobalOwner,
                     sim_->executed_events(), stamp);
  metrics_.set_gauge(ln, core_.engine_windows, sim::kGlobalOwner,
                     sim_->windows_run(), stamp);
  metrics_.set_gauge(ln, core_.engine_global_events, sim::kGlobalOwner,
                     sim_->global_events_run(), stamp);
  metrics_.set_gauge(ln, core_.engine_mailbox_posts, sim::kGlobalOwner,
                     sim_->mailbox_posts(), stamp);
}

std::string Omniscope::metrics_dump() {
  flush();
  return metrics_.dump();
}

}  // namespace omni::obs
