// Flight-recorder capture snapshots and the "OMNITRC1" binary trace file.
//
// A TraceCapture is everything needed to interpret a ring dump offline: the
// canonically sorted records plus the interned category and owner-name
// tables. The binary file is a straight little-endian dump —
//
//   magic "OMNITRC1"                        (8 bytes)
//   u64 record_count, u64 dropped
//   record_count * TraceRecord              (32 bytes each)
//   u32 dynamic_category_count, then per category: u32 id, u32 len, bytes
//   u32 owner_name_count, then per owner:   u32 owner, u32 len, bytes
//
// — written by Omniscope-enabled runs (`dump trace foo.otr` in scenarios,
// bench --trace flags) and read back by tools/omniscope and the exporters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_record.h"

namespace omni::obs {

class Omniscope;

struct TraceCapture {
  std::vector<TraceRecord> records;  ///< canonical order (canonical_less)
  /// Dynamic categories (ids >= kCatCount) as (id, name).
  std::vector<std::pair<std::uint32_t, std::string>> categories;
  /// Display names for owners, as (owner, name).
  std::vector<std::pair<std::uint32_t, std::string>> owner_names;
  std::uint64_t dropped = 0;  ///< records lost to ring wraparound

  /// Name for a record's category id (static table or dynamic entries).
  std::string category_name(std::uint16_t cat) const;
  /// Display name for an owner ("global"/"node<N>" fallback).
  std::string owner_name(std::uint32_t owner) const;
};

/// Snapshot `scope`'s rings and tables into a capture (flushes first).
TraceCapture capture(Omniscope& scope);

void write_trace_file(std::ostream& os, const TraceCapture& cap);
bool write_trace_file(const std::string& path, const TraceCapture& cap);

/// Parse a capture; returns false (and leaves `cap` unspecified) on a
/// malformed or truncated file.
bool read_trace_file(std::istream& is, TraceCapture& cap);
bool read_trace_file(const std::string& path, TraceCapture& cap);

}  // namespace omni::obs
