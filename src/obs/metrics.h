// Omniscope metrics registry: typed counters, gauges, and fixed-bucket
// histograms registered by name, with per-owner per-lane sharded storage.
//
// Layout. Every metric owns a block of 64-bit cells per *owner slot* (owner
// slot 0 is the global owner, slot o+1 is node o). Each execution lane —
// one per simulator shard, plus one for setup/global/barrier context — holds
// its own private copy of the whole cell array, so a hot-path increment is a
// single unsynchronized add into the calling lane's array:
//
//     lane.cells[def.cell_base + owner_slot * def.stride + bucket] += delta
//
// Lanes are only ever written by the thread driving that shard's window (or
// the driving thread, for the global lane), and reads happen exclusively
// outside parallel windows, so there are no data races and no atomics on the
// write path.
//
// Determinism. Aggregation sums lane arrays cell-wise. All cells are
// unsigned 64-bit integers (fractional quantities are stored fixed-point,
// e.g. the energy ledger's micro-amp-seconds), so the sum is independent of
// how owners were partitioned into lanes — aggregates are bit-equal for any
// --threads value. Metrics are written from simulation state but never read
// back by it, so instrumentation cannot perturb the simulation itself.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace omni::obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = 0xffffffffu;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration & layout (setup / global context only) -----------------

  /// Register (or look up) a monotonically increasing counter.
  MetricId counter(std::string name);
  /// Register (or look up) a last-write-wins gauge.
  MetricId gauge(std::string name);
  /// Register (or look up) a histogram with the given upper bucket bounds
  /// (an implicit +inf bucket is appended). Bounds must be increasing.
  MetricId histogram(std::string name, std::span<const double> bounds);

  /// Size storage for owners 0..owner_count-1 plus the global owner, across
  /// `lanes` execution lanes (shards + 1). Callable repeatedly as nodes are
  /// added — existing cell values are preserved. Must not run concurrently
  /// with lane writes (i.e. only outside parallel windows, which is where
  /// all setup happens).
  void shape(std::size_t owner_count, std::size_t lanes);

  std::size_t owner_capacity() const { return owner_capacity_; }
  std::size_t lane_count() const { return lanes_.size(); }
  std::size_t metric_count() const { return defs_.size(); }

  // --- Hot path -------------------------------------------------------------

  /// Add `delta` to a counter cell. `lane` must be the caller's execution
  /// lane (Simulator::current_shard_index()); `owner` is the node the sample
  /// is attributed to (any owner — attribution and execution lane are
  /// independent, which is what makes cross-owner samples race-free).
  /// Indexing goes through layout_ — one packed word per metric — rather
  /// than the full Def, keeping the per-increment dependent-load chain short
  /// enough for per-frame call sites.
  void add(std::size_t lane, MetricId id, sim::OwnerId owner,
           std::uint64_t delta) {
    const std::uint64_t lw = layout_[id];
    lanes_[lane].cells[(lw >> 16) + owner_slot(owner) * (lw & 0xffff)] +=
        delta;
  }

  /// Set a gauge. `stamp_us` (the current virtual time) arbitrates between
  /// lanes at aggregation; later stamps win, ties prefer the larger value so
  /// the result stays partition-independent.
  void set_gauge(std::size_t lane, MetricId id, sim::OwnerId owner,
                 std::uint64_t value, std::int64_t stamp_us) {
    const std::uint64_t lw = layout_[id];
    std::uint64_t* cell =
        &lanes_[lane].cells[(lw >> 16) + owner_slot(owner) * (lw & 0xffff)];
    cell[0] = value;
    cell[1] = static_cast<std::uint64_t>(stamp_us) + 1;  // 0 = never set
  }

  /// Record a histogram sample.
  void observe(std::size_t lane, MetricId id, sim::OwnerId owner,
               double sample);

  // --- Aggregation (outside parallel windows only) --------------------------

  /// Counter total across lanes for one owner.
  std::uint64_t counter_value(MetricId id, sim::OwnerId owner) const;
  /// Counter total across lanes and owners.
  std::uint64_t counter_total(MetricId id) const;
  /// Gauge value for one owner (0 if never set).
  std::uint64_t gauge_value(MetricId id, sim::OwnerId owner) const;
  /// Histogram bucket counts (bounds().size() + 1 entries) for one owner.
  std::vector<std::uint64_t> histogram_counts(MetricId id,
                                              sim::OwnerId owner) const;
  /// Histogram bucket counts summed over owners.
  std::vector<std::uint64_t> histogram_total(MetricId id) const;

  const std::string& name(MetricId id) const { return defs_[id].name; }
  MetricKind kind(MetricId id) const { return defs_[id].kind; }
  const std::vector<double>& bounds(MetricId id) const {
    return defs_[id].bounds;
  }
  /// Id of a registered metric by name, or kInvalidMetric.
  MetricId find(const std::string& name) const;

  /// Canonical plain-text dump: one line per metric (and per owner with a
  /// non-zero value), in registration order. Two runs with the same
  /// simulated behavior produce byte-identical dumps regardless of thread
  /// count — the digest oracle used by the parallel-engine tests.
  std::string dump() const;

  /// Aggregated totals as a JSON object (metric name -> total), embedded in
  /// BENCH_*.json files under "omniscope".
  std::string totals_json() const;

  /// Zero every cell (layout and registrations are kept).
  void reset();

 private:
  struct Def {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::vector<double> bounds;   ///< histogram upper bounds (no +inf)
    std::uint32_t stride = 1;     ///< cells per owner slot
    std::uint64_t cell_base = 0;  ///< offset of owner slot 0 in a lane
  };
  // Lanes are written concurrently by different shard threads; keep each
  // lane's bookkeeping on its own cache line (the cell arrays themselves are
  // separate heap allocations).
  struct alignas(64) Lane {
    std::vector<std::uint64_t> cells;
  };

  std::size_t owner_slot(sim::OwnerId owner) const {
    return owner == sim::kGlobalOwner ? 0 : static_cast<std::size_t>(owner) + 1;
  }
  MetricId register_metric(std::string name, MetricKind kind,
                           std::span<const double> bounds);
  void relayout();

  std::vector<Def> defs_;
  /// Hot-path indexing table, rebuilt by relayout(): per metric,
  /// (cell_base << 16) | stride.
  std::vector<std::uint64_t> layout_;
  std::vector<Lane> lanes_;
  std::size_t owner_capacity_ = 0;  ///< owner slots (nodes + global)
  std::uint64_t cells_per_lane_ = 0;
  std::size_t laid_out_ = 0;  ///< metrics covered by the current cell layout
};

}  // namespace omni::obs
