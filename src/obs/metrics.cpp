#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/result.h"

namespace omni::obs {

MetricId MetricsRegistry::register_metric(std::string name, MetricKind kind,
                                          std::span<const double> bounds) {
  for (MetricId i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) {
      OMNI_CHECK_MSG(defs_[i].kind == kind,
                     "metric re-registered with a different kind");
      return i;
    }
  }
  Def d;
  d.name = std::move(name);
  d.kind = kind;
  d.bounds.assign(bounds.begin(), bounds.end());
  OMNI_CHECK_MSG(std::is_sorted(d.bounds.begin(), d.bounds.end()),
                 "histogram bounds must be increasing");
  switch (kind) {
    case MetricKind::kCounter:
      d.stride = 1;
      break;
    case MetricKind::kGauge:
      d.stride = 2;  // value + stamp
      break;
    case MetricKind::kHistogram:
      d.stride = static_cast<std::uint32_t>(d.bounds.size()) + 1;
      break;
  }
  defs_.push_back(std::move(d));
  relayout();
  return static_cast<MetricId>(defs_.size() - 1);
}

MetricId MetricsRegistry::counter(std::string name) {
  return register_metric(std::move(name), MetricKind::kCounter, {});
}

MetricId MetricsRegistry::gauge(std::string name) {
  return register_metric(std::move(name), MetricKind::kGauge, {});
}

MetricId MetricsRegistry::histogram(std::string name,
                                    std::span<const double> bounds) {
  return register_metric(std::move(name), MetricKind::kHistogram, bounds);
}

void MetricsRegistry::shape(std::size_t owner_count, std::size_t lanes) {
  std::size_t want_owners = owner_count + 1;  // + global slot
  if (want_owners <= owner_capacity_ && lanes <= lanes_.size()) return;
  owner_capacity_ = std::max(owner_capacity_, want_owners);
  if (lanes > lanes_.size()) lanes_.resize(lanes);
  relayout();
}

void MetricsRegistry::relayout() {
  // Recompute cell offsets for the current (defs, owner_capacity) shape and
  // migrate existing lane contents cell-by-cell so registrations and owner
  // growth during setup never lose samples.
  std::vector<std::uint64_t> old_bases(defs_.size());
  std::uint64_t base = 0;
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    old_bases[i] = defs_[i].cell_base;
    defs_[i].cell_base = base;
    base += static_cast<std::uint64_t>(defs_[i].stride) * owner_capacity_;
  }
  std::uint64_t old_cells = cells_per_lane_;
  cells_per_lane_ = base;
  for (Lane& lane : lanes_) {
    if (lane.cells.size() == cells_per_lane_) continue;
    std::vector<std::uint64_t> fresh(cells_per_lane_, 0);
    if (old_cells != 0 && !lane.cells.empty()) {
      // Metric ordering is append-only, so a previously laid-out metric i's
      // old extent runs from its old base to the next laid-out metric's old
      // base (or the old lane end). Metrics registered since the last layout
      // had no cells yet.
      for (std::size_t i = 0; i < laid_out_; ++i) {
        std::uint64_t old_end =
            (i + 1 < laid_out_) ? old_bases[i + 1] : old_cells;
        if (old_bases[i] >= old_end) continue;
        std::copy_n(
            lane.cells.begin() + static_cast<std::ptrdiff_t>(old_bases[i]),
            static_cast<std::ptrdiff_t>(old_end - old_bases[i]),
            fresh.begin() + static_cast<std::ptrdiff_t>(defs_[i].cell_base));
      }
    }
    lane.cells = std::move(fresh);
  }
  laid_out_ = defs_.size();
  layout_.resize(defs_.size());
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    OMNI_CHECK_MSG(defs_[i].stride <= 0xffff && defs_[i].cell_base < (1ull
                   << 48), "metric layout exceeds packed-word range");
    layout_[i] = (defs_[i].cell_base << 16) | defs_[i].stride;
  }
}

void MetricsRegistry::observe(std::size_t lane, MetricId id,
                              sim::OwnerId owner, double sample) {
  const Def& d = defs_[id];
  const std::vector<double>& b = d.bounds;
  std::size_t bucket =
      static_cast<std::size_t>(std::upper_bound(b.begin(), b.end(), sample) -
                               b.begin());
  lanes_[lane].cells[d.cell_base + owner_slot(owner) * d.stride + bucket] += 1;
}

std::uint64_t MetricsRegistry::counter_value(MetricId id,
                                             sim::OwnerId owner) const {
  const Def& d = defs_[id];
  std::uint64_t idx = d.cell_base + owner_slot(owner) * d.stride;
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    if (idx < lane.cells.size()) total += lane.cells[idx];
  }
  return total;
}

std::uint64_t MetricsRegistry::counter_total(MetricId id) const {
  const Def& d = defs_[id];
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) {
    for (std::size_t s = 0; s < owner_capacity_; ++s) {
      std::uint64_t idx = d.cell_base + s * d.stride;
      if (idx < lane.cells.size()) total += lane.cells[idx];
    }
  }
  return total;
}

std::uint64_t MetricsRegistry::gauge_value(MetricId id,
                                           sim::OwnerId owner) const {
  const Def& d = defs_[id];
  std::uint64_t idx = d.cell_base + owner_slot(owner) * d.stride;
  std::uint64_t best = 0;
  std::uint64_t best_stamp = 0;
  for (const Lane& lane : lanes_) {
    if (idx + 1 >= lane.cells.size()) continue;
    std::uint64_t stamp = lane.cells[idx + 1];
    if (stamp > best_stamp ||
        (stamp == best_stamp && lane.cells[idx] > best)) {
      best_stamp = stamp;
      best = lane.cells[idx];
    }
  }
  return best;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_counts(
    MetricId id, sim::OwnerId owner) const {
  const Def& d = defs_[id];
  std::vector<std::uint64_t> out(d.stride, 0);
  std::uint64_t base = d.cell_base + owner_slot(owner) * d.stride;
  for (const Lane& lane : lanes_) {
    for (std::uint32_t b = 0; b < d.stride; ++b) {
      if (base + b < lane.cells.size()) out[b] += lane.cells[base + b];
    }
  }
  return out;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_total(
    MetricId id) const {
  const Def& d = defs_[id];
  std::vector<std::uint64_t> out(d.stride, 0);
  for (std::size_t s = 0; s < owner_capacity_; ++s) {
    std::uint64_t base = d.cell_base + s * d.stride;
    for (const Lane& lane : lanes_) {
      for (std::uint32_t b = 0; b < d.stride; ++b) {
        if (base + b < lane.cells.size()) out[b] += lane.cells[base + b];
      }
    }
  }
  return out;
}

MetricId MetricsRegistry::find(const std::string& name) const {
  for (MetricId i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return i;
  }
  return kInvalidMetric;
}

std::string MetricsRegistry::dump() const {
  std::ostringstream os;
  for (MetricId id = 0; id < defs_.size(); ++id) {
    const Def& d = defs_[id];
    switch (d.kind) {
      case MetricKind::kCounter: {
        os << "counter " << d.name << " total=" << counter_total(id) << "\n";
        for (std::size_t s = 1; s < owner_capacity_; ++s) {
          std::uint64_t v =
              counter_value(id, static_cast<sim::OwnerId>(s - 1));
          if (v != 0) os << "  owner " << (s - 1) << " = " << v << "\n";
        }
        std::uint64_t g = counter_value(id, sim::kGlobalOwner);
        if (g != 0) os << "  owner global = " << g << "\n";
        break;
      }
      case MetricKind::kGauge: {
        os << "gauge " << d.name << "\n";
        for (std::size_t s = 1; s < owner_capacity_; ++s) {
          std::uint64_t v = gauge_value(id, static_cast<sim::OwnerId>(s - 1));
          if (v != 0) os << "  owner " << (s - 1) << " = " << v << "\n";
        }
        std::uint64_t g = gauge_value(id, sim::kGlobalOwner);
        if (g != 0) os << "  owner global = " << g << "\n";
        break;
      }
      case MetricKind::kHistogram: {
        os << "histogram " << d.name << " buckets=";
        std::vector<std::uint64_t> counts = histogram_total(id);
        for (std::size_t b = 0; b < counts.size(); ++b) {
          os << (b ? "," : "") << counts[b];
        }
        os << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::totals_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (MetricId id = 0; id < defs_.size(); ++id) {
    const Def& d = defs_[id];
    if (d.kind == MetricKind::kGauge) continue;  // gauges are per-owner
    os << (first ? "" : ", ") << "\"" << d.name << "\": ";
    if (d.kind == MetricKind::kCounter) {
      os << counter_total(id);
    } else {
      std::vector<std::uint64_t> counts = histogram_total(id);
      os << "[";
      for (std::size_t b = 0; b < counts.size(); ++b) {
        os << (b ? "," : "") << counts[b];
      }
      os << "]";
    }
    first = false;
  }
  os << "}";
  return os.str();
}

void MetricsRegistry::reset() {
  for (Lane& lane : lanes_) {
    std::fill(lane.cells.begin(), lane.cells.end(), 0);
  }
}

}  // namespace omni::obs
