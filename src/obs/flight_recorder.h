// Omniscope binary flight-recorder: per-lane rings of fixed-size POD
// TraceRecords.
//
// Each execution lane (one per simulator shard + one global) owns a
// power-of-two ring written with a single store and index increment — no
// allocation, no locking, no atomics. When a ring fills, the oldest records
// are overwritten (flight-recorder semantics) and the overwrite count is
// reported so lossy captures are never mistaken for complete ones.
//
// Reads (collect/clear) must happen outside parallel windows, which is true
// for every caller: exporters, barrier hooks, benches, and tests all run on
// the driving thread between windows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace_record.h"

namespace omni::obs {

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Size `lanes` rings of `capacity` records each (capacity is rounded up
  /// to a power of two). Existing records are dropped. Lanes only grow.
  void configure(std::size_t lanes, std::size_t capacity);

  std::size_t lane_count() const { return lanes_.size(); }
  std::size_t capacity() const { return mask_ + 1; }

  /// Hot path: append one record to the calling lane's ring.
  void write(std::size_t lane, const TraceRecord& r) {
    Lane& l = *lanes_[lane];
    l.ring[static_cast<std::size_t>(l.head & mask_)] = r;
    ++l.head;
  }

  /// Records written since the last clear (including overwritten ones).
  std::uint64_t total_written() const;
  /// Records lost to ring overwrite since the last clear.
  std::uint64_t dropped() const;

  /// Append every retained record, merged across lanes into canonical
  /// (time, owner, cat, ...) order, to `out`.
  void collect(std::vector<TraceRecord>& out) const;

  /// Forget all records (ring memory is retained).
  void clear();

 private:
  struct alignas(64) Lane {
    std::vector<TraceRecord> ring;
    std::uint64_t head = 0;  ///< total records ever written to this lane
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t mask_ = 0;
};

}  // namespace omni::obs
