// Omniscope flight-recorder primitives: the fixed-size POD trace record and
// the static category table.
//
// A record is 32 bytes of plain data — virtual timestamp, owning node,
// category id, phase, technology hint, and two 64-bit arguments. Hot paths
// (one record per BLE advertising event at 1000 nodes) write records into
// per-shard rings with a single store + increment; everything string-shaped
// is interned once at setup (categories below are a compile-time table,
// dynamic labels go through obs::StringTable).
//
// Records never feed back into simulation decisions, so instrumentation
// cannot perturb the deterministic engine: an instrumented run is
// bit-identical to an uninstrumented one (tests/test_golden_trace.cpp).
#pragma once

#include <cstdint>

#include "common/time.h"
#include "sim/event_queue.h"

namespace omni::obs {

/// Trace-event phase, modelled on the Chrome trace_event format so export
/// is a straight mapping (perfetto.h).
enum class Phase : std::uint8_t {
  kInstant = 0,     ///< point event ("i")
  kComplete = 1,    ///< span with known duration in a1, micros ("X")
  kAsyncBegin = 2,  ///< start of an id-matched span, id in a0 ("b")
  kAsyncEnd = 3,    ///< end of an id-matched span, id in a0 ("e")
  kCounter = 4,     ///< sampled counter value in a0 ("C")
};

/// Static category table. Categories are stable small integers so hot-path
/// writes never touch a string; cat_name() maps back for export/CLI.
enum class Cat : std::uint16_t {
  // Manager op lifecycle (one async span per data/context op).
  kOpData = 0,      ///< a0 = op id, a1 = payload bytes (begin) / 0 ok, 1 fail (end)
  kOpContext,       ///< a0 = context id
  kTechSelect,      ///< a0 = op id, tech = chosen technology
  kFailover,        ///< a0 = op id, tech = failed technology
  kDeadline,        ///< a0 = request id, tech = silent technology
  kRetry,           ///< a0 = attempt number (beacon re-arm / backoff retry)
  kQuarantine,      ///< a0 = hold micros, tech = benched technology
  kEngage,          ///< tech = technology engaged
  kDisengage,       ///< tech = technology disengaged
  kBeaconOn,        ///< tech = carrier the address beacon starts on
  kBeaconOff,       ///< tech = carrier the address beacon leaves
  kBeaconRx,        ///< a0 = sender omni address (hot path)
  kContextRx,       ///< a0 = sender omni address, a1 = context id
  kDataRx,          ///< a0 = sender omni address, a1 = payload bytes
  // Technology plugins.
  kTechSend,        ///< a0 = request id, a1 = packed bytes, tech = plugin
  kTechResponse,    ///< a0 = request id, a1 = 0 ok / 1 fail, tech = plugin
  kRitual,          ///< WiFi address-resolution ritual span, a0 = ritual id
  // Radios.
  kBleAdv,          ///< one advertising event; a0 = datagram bytes (hot path)
  kBleRx,           ///< a0 = payload bytes (hot path)
  kWifiScan,        ///< kComplete, a1 = scan duration micros
  kWifiJoin,        ///< kComplete, a1 = join duration micros
  kMeshTx,          ///< a0 = dst node id, a1 = bytes
  kMeshMulticast,   ///< a1 = bytes
  kFlow,            ///< TCP-like bulk flow span, a0 = flow id, a1 = bytes
  kNanDw,           ///< kComplete, one discovery window, a1 = dw micros
  kNanTx,           ///< a0 = frames sent in the window
  // Fault engine (armed decisions as instants).
  kFaultDrop,       ///< a0 = dst node id (kAnyNode-wide drops use 0xffffffff)
  kFaultCorrupt,    ///< a0 = dst node id
  kFaultDelay,      ///< a0 = extra latency micros
  kFaultPartition,  ///< a0 = dst node id
  kFaultPower,      ///< a0 = 1 power-on / 0 power-off
  kCrash,           ///< a0 = 1 restart / 0 crash
  // Parallel engine.
  kWindow,          ///< barrier instant; a0 = windows run so far
  kCount_,          ///< number of static categories (not a category)
};

inline constexpr std::uint16_t kCatCount =
    static_cast<std::uint16_t>(Cat::kCount_);

/// Stable export name of a static category.
const char* cat_name(Cat c);

/// Default track a category renders on in the Perfetto export (one named
/// thread per track inside each node's process).
enum class Track : std::uint8_t {
  kOps = 1,
  kBle = 2,
  kWifi = 3,
  kNan = 4,
  kMesh = 5,
  kFaults = 6,
  kEngine = 7,
};
Track cat_track(Cat c);
const char* track_name(Track t);

/// One flight-recorder record. POD, fixed 32 bytes, written allocation-free.
struct TraceRecord {
  std::int64_t t_us = 0;       ///< virtual time, microseconds
  std::uint32_t owner = sim::kGlobalOwner;  ///< attributed node (pid in export)
  std::uint16_t cat = 0;       ///< Cat, or an interned dynamic category id
  std::uint8_t phase = 0;      ///< Phase
  std::uint8_t tech = 0xff;    ///< Technology hint (0xff = none)
  std::uint64_t a0 = 0;        ///< span id / primary argument
  std::uint64_t a1 = 0;        ///< secondary argument (bytes, micros, ...)
};
static_assert(sizeof(TraceRecord) == 32, "records are fixed-size POD");

/// Canonical record order: (time, owner, cat, phase, args). Sorting a
/// capture by this key yields the same sequence for any shard partition of
/// the same record multiset, which is what makes captures comparable across
/// --threads values.
inline bool canonical_less(const TraceRecord& a, const TraceRecord& b) {
  if (a.t_us != b.t_us) return a.t_us < b.t_us;
  if (a.owner != b.owner) return a.owner < b.owner;
  if (a.cat != b.cat) return a.cat < b.cat;
  if (a.phase != b.phase) return a.phase < b.phase;
  if (a.a0 != b.a0) return a.a0 < b.a0;
  if (a.a1 != b.a1) return a.a1 < b.a1;
  return a.tech < b.tech;
}

}  // namespace omni::obs
