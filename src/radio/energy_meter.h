// Per-device energy accounting.
//
// Reproduces what the paper's USB power meter measured: instantaneous current
// draw integrated over time. Two charge styles:
//
//   * interval charges — a known draw over a known span (a WiFi scan, a BLE
//     advertising event, a multicast burst);
//   * levels — open-ended draws that persist until changed (WiFi standby,
//     BLE scanning duty), keyed by tag.
//
// Reported values follow the paper's convention: average mA over a window,
// optionally minus the WiFi-standby floor (which is how the paper's Table 4
// produces a *negative* value for the WiFi-off State-of-the-Practice row).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace omni::radio {

class EnergyMeter {
 public:
  explicit EnergyMeter(sim::Simulator& sim) : sim_(sim) {}
  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Charge `ma` over [t0, t1). Out-of-order and overlapping charges are
  /// fine; they accumulate.
  void charge(TimePoint t0, TimePoint t1, double ma);

  /// Charge `ma` for `d` starting now.
  void charge_for(Duration d, double ma) {
    charge(sim_.now(), sim_.now() + d, ma);
  }

  /// Set an open-ended draw for `tag` starting now (replaces any previous
  /// level under the same tag, closing it at the current instant).
  void set_level(const std::string& tag, double ma);

  /// Remove the open-ended draw for `tag`.
  void clear_level(const std::string& tag) { set_level(tag, 0.0); }

  /// Current draw of an open level (0 when unset).
  double level(const std::string& tag) const;

  /// Sum of all open levels right now.
  double current_level_total() const;

  /// Total charge (mA*s) accrued in [t0, t1]; open levels are integrated up
  /// to t1 (t1 should not exceed the simulator's current time).
  double total_mAs(TimePoint t0, TimePoint t1) const;

  /// Average current over [t0, t1] in mA.
  double average_ma(TimePoint t0, TimePoint t1) const;

  sim::Simulator& simulator() { return sim_; }

 private:
  struct Segment {
    TimePoint t0;
    TimePoint t1;
    double ma;
  };
  struct Level {
    double ma = 0;
    TimePoint since;
  };

  sim::Simulator& sim_;
  std::vector<Segment> segments_;
  std::map<std::string, Level> levels_;
};

/// Converts bulk traffic into capped radio-active time.
///
/// A fluid flow reports "this link direction needed A seconds of active radio
/// during [t0, t1]". Concurrent flows over the same radio direction must not
/// double-charge: the charger keeps a busy-until watermark, so total busy
/// time never exceeds wall (virtual) time.
class BusyCharger {
 public:
  BusyCharger(EnergyMeter& meter, double ma) : meter_(meter), ma_(ma) {}

  /// Charge up to `active` seconds of busy time within [t0, t1].
  /// Returns the seconds actually charged.
  double charge_active(TimePoint t0, TimePoint t1, double active_seconds);

  /// Fraction of [t0, t1] this direction was busy (for tests/telemetry).
  double busy_until_seconds() const { return busy_until_.as_seconds(); }

 private:
  EnergyMeter& meter_;
  double ma_;
  TimePoint busy_until_ = TimePoint::origin();
};

}  // namespace omni::radio
