// Per-device energy accounting.
//
// Reproduces what the paper's USB power meter measured: instantaneous current
// draw integrated over time. Two charge styles:
//
//   * interval charges — a known draw over a known span (a WiFi scan, a BLE
//     advertising event, a multicast burst);
//   * levels — open-ended draws that persist until changed (WiFi standby,
//     BLE scanning duty), keyed by tag.
//
// Reported values follow the paper's convention: average mA over a window,
// optionally minus the WiFi-standby floor (which is how the paper's Table 4
// produces a *negative* value for the WiFi-off State-of-the-Practice row).
//
// Every charge carries an obs::EnergyRail (which radio the draw belongs to).
// When an Omniscope is attached to the simulator and the meter knows its
// node, charges are mirrored into the scope's energy ledger, making per-node
// per-technology totals queryable as metrics. Mirroring is batched: the
// charge() hot path only appends a segment; flush_levels() (Testbed calls it
// at every report or export) walks the segments recorded since the last
// flush, clips them to the current instant, and feeds them to the ledger, so
// ledger totals always equal total_mAs(origin, now) at a flush point.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "obs/energy_ledger.h"
#include "sim/simulator.h"

namespace omni::obs {
class Omniscope;
}

namespace omni::radio {

class EnergyMeter {
 public:
  explicit EnergyMeter(sim::Simulator& sim, NodeId node = kInvalidNode)
      : sim_(sim), node_(node) {}
  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  /// Charge `ma` over [t0, t1). Out-of-order and overlapping charges are
  /// fine; they accumulate.
  void charge(TimePoint t0, TimePoint t1, double ma,
              obs::EnergyRail rail = obs::EnergyRail::kOther);

  /// Charge `ma` for `d` starting now.
  void charge_for(Duration d, double ma,
                  obs::EnergyRail rail = obs::EnergyRail::kOther) {
    charge(sim_.now(), sim_.now() + d, ma, rail);
  }

  /// Set an open-ended draw for `tag` starting now (replaces any previous
  /// level under the same tag, closing it at the current instant).
  void set_level(const std::string& tag, double ma,
                 obs::EnergyRail rail = obs::EnergyRail::kOther);

  /// Remove the open-ended draw for `tag`.
  void clear_level(const std::string& tag) { set_level(tag, 0.0); }

  /// Current draw of an open level (0 when unset).
  double level(const std::string& tag) const;

  /// Sum of all open levels right now.
  double current_level_total() const;

  /// Close every open level at the current instant and immediately reopen
  /// it. The meter's integrals are unchanged; the closed spans flow into the
  /// attached energy ledger so its totals match total_mAs up to now.
  void flush_levels();

  /// Total charge (mA*s) accrued in [t0, t1]; open levels are integrated up
  /// to t1 (t1 should not exceed the simulator's current time).
  double total_mAs(TimePoint t0, TimePoint t1) const;

  /// Average current over [t0, t1] in mA.
  double average_ma(TimePoint t0, TimePoint t1) const;

  sim::Simulator& simulator() { return sim_; }
  NodeId node() const { return node_; }

 private:
  struct Segment {
    TimePoint t0;
    TimePoint t1;
    double ma;
    obs::EnergyRail rail = obs::EnergyRail::kOther;
  };
  struct Level {
    double ma = 0;
    TimePoint since;
    obs::EnergyRail rail = obs::EnergyRail::kOther;
  };
  /// The not-yet-elapsed tail of a future-dated charge, awaiting mirroring
  /// into the ledger once virtual time catches up (see flush_ledger()).
  struct Pending {
    TimePoint t0;
    TimePoint t1;
    double ma;
    obs::EnergyRail rail;
  };

  bool ledger_active() const;
  void ledger_add(obs::Omniscope& sc, std::size_t lane, TimePoint t0,
                  TimePoint t1, double ma, obs::EnergyRail rail);
  /// Mirror segments recorded since the last flush into the attached energy
  /// ledger, clipped to `now` (called by flush_levels()).
  void flush_ledger(TimePoint now);

  sim::Simulator& sim_;
  NodeId node_;
  std::vector<Segment> segments_;
  std::map<std::string, Level> levels_;
  std::vector<Pending> pending_;
  std::size_t mirrored_idx_ = 0;  ///< segments mirrored into the ledger
};

/// Converts bulk traffic into capped radio-active time.
///
/// A fluid flow reports "this link direction needed A seconds of active radio
/// during [t0, t1]". Concurrent flows over the same radio direction must not
/// double-charge: the charger keeps a busy-until watermark, so total busy
/// time never exceeds wall (virtual) time.
class BusyCharger {
 public:
  BusyCharger(EnergyMeter& meter, double ma,
              obs::EnergyRail rail = obs::EnergyRail::kOther)
      : meter_(meter), ma_(ma), rail_(rail) {}

  /// Charge up to `active` seconds of busy time within [t0, t1].
  /// Returns the seconds actually charged.
  double charge_active(TimePoint t0, TimePoint t1, double active_seconds);

  /// Fraction of [t0, t1] this direction was busy (for tests/telemetry).
  double busy_until_seconds() const { return busy_until_.as_seconds(); }

 private:
  EnergyMeter& meter_;
  double ma_;
  obs::EnergyRail rail_;
  TimePoint busy_until_ = TimePoint::origin();
};

}  // namespace omni::radio
