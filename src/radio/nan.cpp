#include "radio/nan.h"

#include "obs/omniscope.h"

#include <algorithm>

#include "sim/fault_plan.h"

namespace omni::radio {

// --- NanSystem ---------------------------------------------------------------

void NanSystem::attach(NanRadio* radio) {
  if (std::find(radios_.begin(), radios_.end(), radio) == radios_.end()) {
    radios_.push_back(radio);
  }
  ensure_ticking();
}

void NanSystem::detach(NanRadio* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
}

TimePoint NanSystem::next_window_start(TimePoint now) const {
  std::int64_t period = cal_.nan_dw_period.as_micros();
  std::int64_t t = now.as_micros();
  std::int64_t k = (t + period - 1) / period;
  return TimePoint::from_micros(k * period);
}

std::uint64_t NanSystem::window_index(TimePoint at) const {
  return static_cast<std::uint64_t>(at.as_micros() /
                                    cal_.nan_dw_period.as_micros());
}

void NanSystem::ensure_ticking() {
  if (tick_event_.pending()) return;
  bool any_enabled = false;
  for (NanRadio* r : radios_) any_enabled |= r->enabled();
  if (!any_enabled) return;
  auto& sim = world_.simulator();
  // Pinned to the global owner: the DW tick scans every radio and fans out
  // across nodes, so it must run barrier-serialized no matter which context
  // (re-)starts the ticking.
  TimePoint when = next_window_start(sim.now() + Duration::micros(1));
  tick_event_ =
      sim.after_global(when - sim.now(), [this] { run_window(); });
}

void NanSystem::run_window() {
  auto& sim = world_.simulator();
  TimePoint start = sim.now();
  std::uint64_t index = window_index(start);
  ++windows_run_;

  // Wake every attending radio (charges the DW receive energy) and index
  // the awake set by node so publish fan-out can run off the spatial grid.
  std::vector<NanRadio*> awake;
  awake_by_node_.clear();
  for (NanRadio* r : radios_) {
    if (r->enabled() && r->attends(index)) {
      r->window_wake(start);
      awake.push_back(r);
      awake_by_node_[r->node()].push_back(r);
    }
  }

  // Service discovery frames: every publish reaches every other awake radio
  // in range. Delivery lands just after the window (processing). Candidate
  // receivers come from the grid, not a scan of the whole awake set.
  // Fault injection: the whole window runs barrier-serialized, so a single
  // salt counter keeps draws deterministic; latency spikes only push
  // delivery further past the window.
  const sim::FaultPlan* plan = world_.fault_plan();
  Duration deliver_after = cal_.nan_dw_duration;
  for (NanRadio* tx : awake) {
    if (tx->publishes().empty() && tx->followups().empty()) continue;
    // Transmit airtime for this radio's frames.
    double frames = static_cast<double>(tx->publishes().size());
    if (!tx->publishes().empty()) {
      world_.nodes_near(tx->node(), cal_.nan_range_m, scratch_nodes_);
    }
    Duration tx_extra = Duration::zero();
    if (plan != nullptr) {
      tx_extra = plan->extra_latency(tx->node(), sim::FaultPlan::kAnyNode,
                                     sim::FaultRadio::kNan, start);
      if (tx_extra > Duration::zero()) {
        plan->note_delay();
        if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                  sc->recording()) {
          sc->count_on(tx->node(), sc->core().fault_delays);
          sc->instant_on(tx->node(), obs::Cat::kFaultDelay,
                         static_cast<std::uint64_t>(tx_extra.as_micros()));
        }
      }
    }
    for (const auto& [id, payload] : tx->publishes()) {
      const std::uint64_t salt = plan != nullptr ? ++fault_salt_ : 0;
      for (NodeId node : scratch_nodes_) {
        auto it = awake_by_node_.find(node);
        if (it == awake_by_node_.end()) continue;
        for (NanRadio* rx : it->second) {
          if (rx == tx) continue;
          NanAddress from = tx->address();
          Bytes copy = payload;
          if (plan != nullptr) {
            obs::Omniscope* sc = OMNI_SCOPE(sim);
            if (sc != nullptr && !sc->recording()) sc = nullptr;
            if (plan->partitioned(world_.position(tx->node()),
                                  world_.position(rx->node()), start)) {
              plan->note_partition_drop();
              if (sc != nullptr) {
                sc->count_on(tx->node(), sc->core().fault_partition_drops);
                sc->instant_on(tx->node(), obs::Cat::kFaultPartition,
                               rx->node());
              }
              continue;
            }
            if (plan->dropped(tx->node(), rx->node(), sim::FaultRadio::kNan,
                              start, salt)) {
              plan->note_drop();
              if (sc != nullptr) {
                sc->count_on(tx->node(), sc->core().fault_drops);
                sc->instant_on(tx->node(), obs::Cat::kFaultDrop, rx->node());
              }
              continue;
            }
            if (plan->corrupted(tx->node(), rx->node(), sim::FaultRadio::kNan,
                                start, salt)) {
              plan->note_corruption();
              if (sc != nullptr) {
                sc->count_on(tx->node(), sc->core().fault_corruptions);
                sc->instant_on(tx->node(), obs::Cat::kFaultCorrupt,
                               rx->node());
              }
              sim::FaultPlan::corrupt_in_place(copy, salt);
            }
          }
          sim.after(deliver_after + tx_extra,
                    [rx, from, copy = std::move(copy)] {
                      rx->deliver(from, copy);
                    });
        }
      }
    }
    // Follow-ups: serviced FIFO; a follow-up whose destination is not awake
    // or not in range stays queued for a later window (bounded retries are
    // the caller's concern via timeouts).
    auto& queue = tx->followups();
    std::size_t n = queue.size();
    for (std::size_t i = 0; i < n; ++i) {
      NanRadio::Followup fu = std::move(queue.front());
      queue.pop_front();
      NanRadio* dest = nullptr;
      for (NanRadio* rx : awake) {
        if (rx->address() == fu.dest) {
          dest = rx;
          break;
        }
      }
      bool reachable =
          dest != nullptr &&
          world_.in_range(tx->node(), dest->node(), cal_.nan_range_m) &&
          !(plan != nullptr &&
            plan->partitioned(world_.position(tx->node()),
                              world_.position(dest->node()), start));
      if (!reachable) {
        if (--fu.windows_left <= 0) {
          if (fu.done) fu.done(Status::error("NAN follow-up timed out"));
        } else {
          queue.push_back(std::move(fu));  // try again next window
        }
        continue;
      }
      frames += 1;
      if (plan != nullptr) {
        const std::uint64_t salt = ++fault_salt_;
        if (plan->dropped(tx->node(), dest->node(), sim::FaultRadio::kNan,
                          start, salt)) {
          // The frame (or its ack) was lost: retry in a later window, like
          // an unreachable destination.
          plan->note_drop();
          if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                    sc->recording()) {
            sc->count_on(tx->node(), sc->core().fault_drops);
            sc->instant_on(tx->node(), obs::Cat::kFaultDrop, dest->node());
          }
          if (--fu.windows_left <= 0) {
            if (fu.done) fu.done(Status::error("NAN follow-up timed out"));
          } else {
            queue.push_back(std::move(fu));
          }
          continue;
        }
        if (plan->corrupted(tx->node(), dest->node(), sim::FaultRadio::kNan,
                            start, salt)) {
          plan->note_corruption();
          if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                    sc->recording()) {
            sc->count_on(tx->node(), sc->core().fault_corruptions);
            sc->instant_on(tx->node(), obs::Cat::kFaultCorrupt,
                           dest->node());
          }
          sim::FaultPlan::corrupt_in_place(fu.payload, salt);
        }
      }
      NanAddress from = tx->address();
      NanRadio* rx = dest;
      sim.after(deliver_after + tx_extra,
                [rx, from, payload = std::move(fu.payload),
                 done = std::move(fu.done)] {
                  rx->deliver(from, payload);
                  if (done) done(Status::ok());
                });
    }
    if (frames > 0) {
      tx->meter().charge(
          start, start + cal_.nan_frame_airtime * frames,
          cal_.wifi_send_ma, obs::EnergyRail::kNan);
      if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                sc->recording()) {
        sc->instant_on(tx->node(), obs::Cat::kNanTx,
                       static_cast<std::uint64_t>(frames));
      }
    }
  }

  tick_event_ = sim.after_global(
      next_window_start(start + Duration::micros(1)) - sim.now(),
      [this] { run_window(); });
  // Stop ticking entirely if nobody is enabled anymore.
  bool any_enabled = false;
  for (NanRadio* r : radios_) any_enabled |= r->enabled();
  if (!any_enabled) tick_event_.cancel();
}

// --- NanRadio ----------------------------------------------------------------

NanRadio::NanRadio(NanSystem& system, sim::Simulator& sim, EnergyMeter& meter,
                   NodeId node, const Calibration& cal)
    : system_(system),
      sim_(sim),
      meter_(meter),
      node_(node),
      cal_(cal),
      address_(NanAddress::from_node(node)) {
  system_.attach(this);
}

NanRadio::~NanRadio() {
  on_receive_ = nullptr;
  set_enabled(false);
  system_.detach(this);
}

void NanRadio::set_enabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  if (!enabled_) {
    // Pending follow-ups fail: the radio left the cluster.
    std::deque<Followup> dropped;
    dropped.swap(followups_);
    for (auto& fu : dropped) {
      if (fu.done) fu.done(Status::error("NAN disabled"));
    }
    publishes_.clear();
  } else {
    system_.attach(this);  // idempotent registration also restarts ticking
  }
}

void NanRadio::set_attendance(std::uint32_t every_nth) {
  OMNI_CHECK_MSG(every_nth >= 1, "attendance must be >= 1");
  attendance_ = every_nth;
}

bool NanRadio::attends(std::uint64_t window_index) const {
  if (!enabled_) return false;
  // Offset by node id so power-saving radios do not all pick the same
  // windows (they still meet full-attendance radios every window they wake).
  return (window_index + node_) % attendance_ == 0;
}

void NanRadio::window_wake(TimePoint window_start) {
  meter_.charge(window_start, window_start + cal_.nan_dw_duration,
                cal_.wifi_receive_ma, obs::EnergyRail::kNan);
  if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc != nullptr &&
                                             sc->recording()) {
    sc->count_on(node_, sc->core().nan_dw);
    sc->complete_on(node_, obs::Cat::kNanDw, cal_.nan_dw_duration);
  }
}

Result<NanRadio::PublishId> NanRadio::publish(Bytes payload) {
  if (!enabled_) return Result<PublishId>::error("NAN disabled");
  if (payload.size() > cal_.nan_max_payload) {
    return Result<PublishId>::error("NAN service info exceeds " +
                                    std::to_string(cal_.nan_max_payload) +
                                    " bytes");
  }
  PublishId id = next_publish_++;
  publishes_[id] = std::move(payload);
  return id;
}

Status NanRadio::update_publish(PublishId id, Bytes payload) {
  auto it = publishes_.find(id);
  if (it == publishes_.end()) return Status::error("unknown publish id");
  if (payload.size() > cal_.nan_max_payload) {
    return Status::error("NAN service info too large");
  }
  it->second = std::move(payload);
  return Status::ok();
}

Status NanRadio::stop_publish(PublishId id) {
  if (publishes_.erase(id) == 0) return Status::error("unknown publish id");
  return Status::ok();
}

Status NanRadio::send_followup(const NanAddress& dest, Bytes payload,
                               SendDoneFn done) {
  if (!enabled_) return Status::error("NAN disabled");
  if (payload.size() > cal_.nan_max_followup) {
    return Status::error("NAN follow-up exceeds " +
                         std::to_string(cal_.nan_max_followup) + " bytes");
  }
  followups_.push_back(Followup{dest, std::move(payload), std::move(done)});
  return Status::ok();
}

void NanRadio::deliver(const NanAddress& from, const Bytes& payload) {
  if (!enabled_) return;
  if (on_receive_) on_receive_(from, payload);
}

}  // namespace omni::radio
