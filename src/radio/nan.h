// WiFi-Aware (Neighbor Awareness Networking) model.
//
// The technology the paper expects to "eventually replace multicast over
// WiFi as a technology for context transmission" (§3.2). All enabled radios
// share a synchronized discovery-window (DW) schedule; within each window a
// radio transmits its active publishes (service discovery frames) and
// queued follow-up datagrams, and receives its peers' — then sleeps until
// the next window. Duty cycle ~3%, at WiFi range, with no network to join.
//
// Attendance control models NAN power save: a radio may attend only every
// nth window (the Omni plugin uses this for disengaged probe-listening).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "radio/calibration.h"
#include "radio/energy_meter.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::radio {

class NanRadio;

/// The shared DW schedule and delivery fabric.
class NanSystem {
 public:
  NanSystem(sim::World& world, const Calibration& cal)
      : world_(world), cal_(cal) {}
  NanSystem(const NanSystem&) = delete;
  NanSystem& operator=(const NanSystem&) = delete;
  ~NanSystem() { tick_event_.cancel(); }

  void attach(NanRadio* radio);
  void detach(NanRadio* radio);

  /// Start of the next discovery window at or after `now`.
  TimePoint next_window_start(TimePoint now) const;
  std::uint64_t window_index(TimePoint at) const;

  /// Smallest cross-node latency NAN can produce: frames transmitted in a
  /// discovery window are processed after it ends. NAN runs barrier-
  /// serialized (global owner), so this bounds nothing today — exposed for
  /// symmetry with the sharded media and for lookahead audits.
  Duration min_latency() const { return cal_.nan_dw_duration; }

  sim::World& world() { return world_; }
  const Calibration& calibration() const { return cal_; }
  std::uint64_t windows_run() const { return windows_run_; }

 private:
  void ensure_ticking();
  void run_window();

  sim::World& world_;
  const Calibration& cal_;
  std::vector<NanRadio*> radios_;
  sim::EventHandle tick_event_;
  std::uint64_t windows_run_ = 0;
  /// Fault-draw salt, bumped per frame. Windows run barrier-serialized, so
  /// one counter is deterministic at any thread count.
  std::uint64_t fault_salt_ = 0;
  // Per-window scratch (cleared each window): awake radios indexed by node
  // for grid-backed publish fan-out, and the candidate-node query buffer.
  std::unordered_map<NodeId, std::vector<NanRadio*>> awake_by_node_;
  std::vector<NodeId> scratch_nodes_;
};

class NanRadio {
 public:
  using ReceiveFn =
      std::function<void(const NanAddress& from, const Bytes& payload)>;
  using SendDoneFn = std::function<void(Status)>;
  using PublishId = std::uint32_t;

  NanRadio(NanSystem& system, sim::Simulator& sim, EnergyMeter& meter,
           NodeId node, const Calibration& cal);
  ~NanRadio();
  NanRadio(const NanRadio&) = delete;
  NanRadio& operator=(const NanRadio&) = delete;

  const NanAddress& address() const { return address_; }
  NodeId node() const { return node_; }
  sim::Simulator& simulator() { return sim_; }

  /// Enable NAN operation (joins the DW schedule).
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Attend only every nth DW (1 = every window; larger = power save).
  void set_attendance(std::uint32_t every_nth);
  std::uint32_t attendance() const { return attendance_; }

  /// Begin publishing a service discovery frame in every attended window.
  Result<PublishId> publish(Bytes payload);
  Status update_publish(PublishId id, Bytes payload);
  Status stop_publish(PublishId id);
  std::size_t active_publishes() const { return publishes_.size(); }

  /// Queue a follow-up datagram for `dest`, transmitted in the next window
  /// both devices attend.
  Status send_followup(const NanAddress& dest, Bytes payload,
                       SendDoneFn done);

  void set_receive_handler(ReceiveFn fn) { on_receive_ = std::move(fn); }

  // Called by the NanSystem during windows.
  bool attends(std::uint64_t window_index) const;
  void window_wake(TimePoint window_start);
  void deliver(const NanAddress& from, const Bytes& payload);
  const std::map<PublishId, Bytes>& publishes() const { return publishes_; }
  struct Followup {
    NanAddress dest;
    Bytes payload;
    SendDoneFn done;
    /// Windows left before the follow-up gives up (destination asleep or
    /// out of range throughout).
    int windows_left = 10;
  };
  std::deque<Followup>& followups() { return followups_; }
  EnergyMeter& meter() { return meter_; }
  const Calibration& calibration() const { return cal_; }

 private:
  NanSystem& system_;
  sim::Simulator& sim_;
  EnergyMeter& meter_;
  NodeId node_;
  const Calibration& cal_;
  NanAddress address_;

  bool enabled_ = false;
  std::uint32_t attendance_ = 1;
  std::map<PublishId, Bytes> publishes_;
  PublishId next_publish_ = 1;
  std::deque<Followup> followups_;
  ReceiveFn on_receive_;
};

}  // namespace omni::radio
