// A WiFi-Mesh network: membership, fluid-flow unicast TCP, and 802.11
// multicast with base-rate airtime accounting.
//
// The fluid model: active TCP flows share the effective channel capacity
// equally; the effective capacity is the calibrated capacity scaled down by
// the fraction of airtime multicast traffic occupies (periodic discovery
// beacons registered via register_periodic_multicast, plus bulk multicast
// backlog). This is the minimal model that reproduces both the paper's slow
// multicast data path (Table 5, State of the Practice) and the ~8 % TCP
// impediment that periodic multicast discovery inflicts on the State of the
// Art (Table 5, 1000 KBps row).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "radio/wifi_system.h"
#include "sim/event_queue.h"

namespace omni::radio {

class WifiRadio;

using FlowId = std::uint64_t;
using PeriodicLoadId = std::uint64_t;

class MeshNetwork {
 public:
  using FlowDoneFn = std::function<void(Status)>;
  /// Progress callback: cumulative bytes delivered so far.
  using FlowProgressFn = std::function<void(std::uint64_t bytes_done)>;
  /// Multicast bulk completion: receivers the chunk reached.
  using MulticastDoneFn = std::function<void(std::vector<WifiRadio*>)>;

  MeshNetwork(WifiSystem& system, std::string name);
  ~MeshNetwork();
  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  const std::string& name() const { return name_; }

  /// Smallest cross-node latency the mesh can produce: half an RTT of
  /// propagation ahead of any datagram delivery. The mesh runs barrier-
  /// serialized (global owner) under the parallel engine, so this bounds
  /// nothing today — exposed for symmetry with the sharded media and for
  /// lookahead audits.
  Duration min_latency() const;

  // --- Membership (called by WifiRadio::join/leave).
  void add_member(WifiRadio& radio);
  void remove_member(WifiRadio& radio);
  bool is_member(const WifiRadio& radio) const;
  WifiRadio* find_member(const MeshAddress& addr) const;
  const std::vector<WifiRadio*>& members() const { return members_; }
  /// Member radios hosted on `node` (attach order), or nullptr if none —
  /// the grid-backed fan-out paths resolve candidate nodes through this.
  const std::vector<WifiRadio*>* members_on_node(NodeId node) const;

  // --- Unicast TCP (fluid flows).
  /// Open a reliable flow of `bytes` from src to the member at `dst`.
  /// Completion (or failure: unknown peer, out of range, membership loss)
  /// is reported through `done`. The flow includes connection setup
  /// (3*RTT + tcp_setup_overhead) before bytes move. If `payload` is
  /// non-empty it is handed to the destination radio's datagram handlers
  /// when the flow completes (the in-band application message).
  Result<FlowId> open_flow(WifiRadio& src, const MeshAddress& dst,
                           std::uint64_t bytes, FlowDoneFn done,
                           FlowProgressFn progress = nullptr,
                           Bytes payload = {});
  void cancel_flow(FlowId id);
  std::size_t active_flow_count() const { return flows_.size(); }
  /// Current per-flow fluid rate in bytes/sec (0 when no flows).
  double current_flow_rate_Bps() const;

  // --- Small unicast datagram (UDP-style single frame, no fluid flow).
  Status send_datagram(WifiRadio& src, const MeshAddress& dst, Bytes payload);

  // --- Multicast.
  /// Broadcast a small datagram (discovery beacon / advert) to all members
  /// in range of src. Channel occupancy = beacon_occupancy (calibrated
  /// contention + base-rate airtime); sender is charged the multicast send
  /// burst. If the caller beacons periodically it should also register the
  /// load below so TCP flows feel it.
  Status multicast_datagram(WifiRadio& src, Bytes payload);

  /// Send `bytes` of bulk data via multicast (fragmented at the multicast
  /// MTU, serialized on the channel at the base rate). `payload` is
  /// delivered to every member in range of src when the last fragment
  /// lands.
  Status multicast_bulk(WifiRadio& src, std::uint64_t bytes, Bytes payload,
                        MulticastDoneFn done = nullptr);

  /// Declare a periodic multicast load (period + datagram size) so the fluid
  /// model deducts its airtime from TCP capacity. Returns a handle to
  /// unregister.
  PeriodicLoadId register_periodic_multicast(Duration period);
  void unregister_periodic_multicast(PeriodicLoadId id);

  /// Fraction of channel airtime currently consumed by multicast.
  double multicast_airtime_fraction() const;
  /// Effective capacity available to TCP flows right now (bytes/sec).
  double effective_capacity_Bps() const;

 private:
  struct Flow {
    FlowId id;
    WifiRadio* src;
    WifiRadio* dst;
    double remaining_bytes;
    std::uint64_t total_bytes;
    double rate_Bps = 0;
    TimePoint last_settle;
    bool started = false;  // setup handshake finished
    FlowDoneFn done;
    FlowProgressFn progress;
    Bytes payload;  // delivered to dst on successful completion
    sim::EventHandle completion;
  };

  struct BulkItem {
    WifiRadio* src;
    std::uint64_t fragments_left;
    std::uint64_t bytes;
    Bytes payload;
    MulticastDoneFn done;
  };

  void settle_flows();
  void recompute_rates();
  void schedule_completion(Flow& flow);
  void finish_flow(FlowId id, Status status);
  void fail_flows_involving(WifiRadio& radio, const std::string& why);
  void validate_flow_ranges();
  void ensure_validator();
  void service_bulk_queue();
  void charge_flow_segment(Flow& flow, TimePoint t0, TimePoint t1,
                           double bytes);
  std::vector<WifiRadio*> receivers_in_range(const WifiRadio& src) const;
  double beacon_occupancy_seconds() const;

  WifiSystem& system_;
  std::string name_;
  std::vector<WifiRadio*> members_;
  std::unordered_map<NodeId, std::vector<WifiRadio*>> members_by_node_;
  mutable std::vector<NodeId> scratch_nodes_;  // reused range-query buffer

  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;

  std::map<PeriodicLoadId, double> periodic_loads_;  // id -> airtime fraction
  PeriodicLoadId next_load_id_ = 1;

  std::deque<BulkItem> bulk_queue_;
  bool bulk_busy_ = false;
  TimePoint mc_busy_until_ = TimePoint::origin();

  sim::EventHandle validator_;
  /// Fault-draw salt, bumped per transmission. All mesh traffic is
  /// barrier-serialized (global owner), so a single counter is
  /// deterministic at any thread count.
  std::uint64_t fault_salt_ = 0;

  /// The world's fault plan, or nullptr when injection is unarmed.
  const sim::FaultPlan* fault_plan() const;
  bool fault_partitioned(const WifiRadio& a, const WifiRadio& b,
                         TimePoint at) const;
};

}  // namespace omni::radio
