#include "radio/energy_meter.h"

#include <algorithm>

#include "common/result.h"

namespace omni::radio {

void EnergyMeter::charge(TimePoint t0, TimePoint t1, double ma) {
  if (t1 <= t0 || ma == 0.0) return;
  segments_.push_back(Segment{t0, t1, ma});
}

void EnergyMeter::set_level(const std::string& tag, double ma) {
  TimePoint now = sim_.now();
  auto it = levels_.find(tag);
  if (it != levels_.end()) {
    // Close the previous level as a concrete segment.
    charge(it->second.since, now, it->second.ma);
    if (ma == 0.0) {
      levels_.erase(it);
      return;
    }
    it->second = Level{ma, now};
    return;
  }
  if (ma == 0.0) return;
  levels_.emplace(tag, Level{ma, now});
}

double EnergyMeter::level(const std::string& tag) const {
  auto it = levels_.find(tag);
  return it == levels_.end() ? 0.0 : it->second.ma;
}

double EnergyMeter::current_level_total() const {
  double total = 0;
  for (const auto& [tag, lvl] : levels_) total += lvl.ma;
  return total;
}

double EnergyMeter::total_mAs(TimePoint t0, TimePoint t1) const {
  OMNI_CHECK_MSG(t1 >= t0, "total_mAs window reversed");
  double total = 0;
  auto overlap = [&](TimePoint a, TimePoint b) {
    TimePoint lo = std::max(a, t0);
    TimePoint hi = std::min(b, t1);
    return hi > lo ? (hi - lo).as_seconds() : 0.0;
  };
  for (const auto& s : segments_) total += overlap(s.t0, s.t1) * s.ma;
  for (const auto& [tag, lvl] : levels_) {
    total += overlap(lvl.since, t1) * lvl.ma;
  }
  return total;
}

double EnergyMeter::average_ma(TimePoint t0, TimePoint t1) const {
  double span = (t1 - t0).as_seconds();
  if (span <= 0) return 0;
  return total_mAs(t0, t1) / span;
}

double BusyCharger::charge_active(TimePoint t0, TimePoint t1,
                                  double active_seconds) {
  if (active_seconds <= 0 || t1 <= t0) return 0;
  TimePoint start = std::max(t0, busy_until_);
  TimePoint cap = t1;
  if (start >= cap) return 0;
  TimePoint end =
      std::min(cap, start + Duration::seconds(active_seconds));
  if (end <= start) return 0;
  meter_.charge(start, end, ma_);
  busy_until_ = end;
  return (end - start).as_seconds();
}

}  // namespace omni::radio
