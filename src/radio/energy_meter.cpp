#include "radio/energy_meter.h"

#include <algorithm>

#include "common/result.h"
#include "obs/omniscope.h"

namespace omni::radio {

void EnergyMeter::charge(TimePoint t0, TimePoint t1, double ma,
                         obs::EnergyRail rail) {
  if (t1 <= t0 || ma == 0.0) return;
  segments_.push_back(Segment{t0, t1, ma, rail});
}

bool EnergyMeter::ledger_active() const {
  if (node_ == kInvalidNode) return false;
  obs::Omniscope* sc = OMNI_SCOPE(sim_);
  return sc != nullptr && sc->recording();
}

void EnergyMeter::ledger_add(obs::Omniscope& sc, std::size_t lane,
                             TimePoint t0, TimePoint t1, double ma,
                             obs::EnergyRail rail) {
  sc.energy().add(lane, node_, rail, (t1 - t0).as_seconds() * ma);
}

void EnergyMeter::flush_ledger(TimePoint now) {
  if (!ledger_active()) return;
  obs::Omniscope& sc = *OMNI_SCOPE(sim_);
  const std::size_t lane = sc.lane();
  // Finish previously seen segments whose spans were still open at the last
  // flush (a charge may be future-dated: a BLE advertising event books its
  // whole span the instant it starts).
  std::size_t keep = 0;
  for (Pending& p : pending_) {
    TimePoint hi = std::min(p.t1, now);
    if (hi > p.t0) {
      ledger_add(sc, lane, p.t0, hi, p.ma, p.rail);
      p.t0 = hi;
    }
    if (p.t1 > now) pending_[keep++] = p;
  }
  pending_.resize(keep);
  // Mirror every segment recorded since the last flush, clipped to `now`, so
  // ledger totals equal total_mAs(origin, now) at every flush point. Doing
  // this here — never on the charge() hot path — keeps instrumented runs
  // within the flight-recorder overhead budget.
  for (; mirrored_idx_ < segments_.size(); ++mirrored_idx_) {
    const Segment& s = segments_[mirrored_idx_];
    TimePoint hi = std::min(s.t1, now);
    if (hi > s.t0) ledger_add(sc, lane, s.t0, hi, s.ma, s.rail);
    if (s.t1 > now) {
      pending_.push_back(Pending{std::max(s.t0, now), s.t1, s.ma, s.rail});
    }
  }
}

void EnergyMeter::set_level(const std::string& tag, double ma,
                            obs::EnergyRail rail) {
  TimePoint now = sim_.now();
  auto it = levels_.find(tag);
  if (it != levels_.end()) {
    // Close the previous level as a concrete segment.
    charge(it->second.since, now, it->second.ma, it->second.rail);
    if (ma == 0.0) {
      levels_.erase(it);
      return;
    }
    it->second = Level{ma, now, rail};
    return;
  }
  if (ma == 0.0) return;
  levels_.emplace(tag, Level{ma, now, rail});
}

double EnergyMeter::level(const std::string& tag) const {
  auto it = levels_.find(tag);
  return it == levels_.end() ? 0.0 : it->second.ma;
}

double EnergyMeter::current_level_total() const {
  double total = 0;
  for (const auto& [tag, lvl] : levels_) total += lvl.ma;
  return total;
}

void EnergyMeter::flush_levels() {
  TimePoint now = sim_.now();
  for (auto& [tag, lvl] : levels_) {
    if (now <= lvl.since) continue;
    charge(lvl.since, now, lvl.ma, lvl.rail);
    lvl.since = now;
  }
  // Closed level spans are segments now, so one ledger pass covers both
  // interval charges and levels.
  flush_ledger(now);
}

double EnergyMeter::total_mAs(TimePoint t0, TimePoint t1) const {
  OMNI_CHECK_MSG(t1 >= t0, "total_mAs window reversed");
  double total = 0;
  auto overlap = [&](TimePoint a, TimePoint b) {
    TimePoint lo = std::max(a, t0);
    TimePoint hi = std::min(b, t1);
    return hi > lo ? (hi - lo).as_seconds() : 0.0;
  };
  for (const auto& s : segments_) total += overlap(s.t0, s.t1) * s.ma;
  for (const auto& [tag, lvl] : levels_) {
    total += overlap(lvl.since, t1) * lvl.ma;
  }
  return total;
}

double EnergyMeter::average_ma(TimePoint t0, TimePoint t1) const {
  double span = (t1 - t0).as_seconds();
  if (span <= 0) return 0;
  return total_mAs(t0, t1) / span;
}

double BusyCharger::charge_active(TimePoint t0, TimePoint t1,
                                  double active_seconds) {
  if (active_seconds <= 0 || t1 <= t0) return 0;
  TimePoint start = std::max(t0, busy_until_);
  TimePoint cap = t1;
  if (start >= cap) return 0;
  TimePoint end =
      std::min(cap, start + Duration::seconds(active_seconds));
  if (end <= start) return 0;
  meter_.charge(start, end, ma_, rail_);
  busy_until_ = end;
  return (end - start).as_seconds();
}

}  // namespace omni::radio
