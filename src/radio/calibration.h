// Physical-layer calibration constants.
//
// Every physical constant in the radio models lives here. Current draws come
// straight from the paper's Table 3 (measured on their Raspberry Pi 3 testbed
// with an AVHzY CT-2 USB power meter, relative to WiFi-standby). Timing
// constants are calibrated so the controlled comparison (paper Table 4)
// reproduces the paper's latency structure:
//
//   * WiFi network scan + mesh join  =>  the ~3.2 s discovery cliff that every
//     approach pays when context rides on WiFi multicast;
//   * TCP setup ~16 ms when the peer's mesh address is already known (Omni's
//     BLE-context rows);
//   * ~8.1 MB/s effective TCP capacity => 25 MB in ~3.1 s;
//   * 802.11 multicast base-rate + contention overhead => the slow multicast
//     data path and the ~8 % TCP impediment of Table 5.
//
// EXPERIMENTS.md discusses each calibrated value next to the paper number it
// reproduces.
#pragma once

#include <cstddef>

#include "common/time.h"

namespace omni::radio {

struct Calibration {
  // --- Current draw (mA). Table 3 of the paper; values are *added* draw on
  // top of WiFi-standby, which itself draws wifi_standby_ma above the
  // radios-off floor.
  double wifi_standby_ma = 92.1;
  double wifi_receive_ma = 162.4;
  double wifi_send_ma = 183.3;
  double wifi_scan_ma = 129.2;
  double wifi_connect_ma = 169.0;
  double ble_scan_ma = 7.0;
  double ble_advertise_ma = 8.2;

  // --- BLE timing.
  /// Airtime + controller time for one advertising event (3 channels).
  Duration ble_adv_event = Duration::millis(10);
  /// Legacy advertisement payload ceiling (Bluetooth 4.x). The paper's
  /// future-work item — Bluetooth 5 extended advertisements — raises this;
  /// see ble_extended_advertising below.
  std::size_t ble_legacy_adv_payload = 31;
  std::size_t ble_extended_adv_payload = 255;
  bool ble_extended_advertising = false;
  /// Probability a continuously-running scanner captures a given in-range
  /// advertising event (channel overlap + collisions).
  double ble_capture_probability = 0.9;
  /// Interval used when a small *data* payload is pushed through BLE: the
  /// sender switches to fast advertising until the exchange acks. Mean
  /// one-way latency is interval/2 + event time = 41 ms, so a request +
  /// response interaction lands on the paper's 82 ms BLE service latency.
  Duration ble_fast_adv_interval = Duration::millis(62);

  // --- WiFi-Mesh timing.
  /// Full 802.11 network scan (all channels).
  Duration wifi_scan_duration = Duration::millis(2500);
  /// Mesh peering + SAE authentication once the network is known.
  Duration wifi_join_duration = Duration::millis(250);
  /// One-way latency of a unicast frame inside the mesh.
  Duration wifi_rtt = Duration::millis(2);
  /// Stack/setup overhead for a TCP exchange beyond the 3-way handshake.
  Duration tcp_setup_overhead = Duration::millis(10);
  /// How long a TCP connection attempt to an unreachable peer lingers before
  /// failing (drives Omni's technology-failover path).
  Duration tcp_connect_timeout = Duration::millis(1000);

  // --- WiFi address-resolution ritual.
  //
  // A peer mapping learned through application-level multicast (rather than
  // integrated low-level neighbor discovery) must be re-validated before
  // data transfer: scan for the network, join it, and resolve the peer
  // (paper §4.2's explanation of the multi-second State-of-the-Art/Practice
  // latencies). scan + join + query = ~2.79 s; waiting out the peer's next
  // 500 ms service advertisement adds wifi_advert_wait for ~3.23 s total.
  /// Unicast query/response to resolve a peer address once joined.
  Duration wifi_resolve_query = Duration::millis(43);
  /// Mean wait for the peer's next periodic service advertisement when the
  /// service itself must also be (re)discovered over WiFi.
  Duration wifi_advert_wait = Duration::millis(436);
  /// Maintenance rescan period for WiFi-multicast-based discovery (footnote
  /// 12: the environment cannot be assumed static).
  Duration wifi_maintenance_scan_period = Duration::seconds(60);
  /// Processing burst charged per multicast probe window (paper §3.3's
  /// periodic listen on non-engaged technologies): frames already reach a
  /// joined standby radio, so a probe only pays to wake and process them.
  Duration wifi_probe_listen_burst = Duration::millis(10);
  /// Effective shared channel capacity available to fluid TCP flows.
  double wifi_capacity_Bps = 8.1e6;
  /// 802.11 multicast frames go out at the lowest basic rate.
  double wifi_multicast_base_rate_bps = 6e6;
  /// Fixed channel occupancy per multicast frame: contention, preamble,
  /// and the rate-adaptation stall the paper attributes to "devices with the
  /// weakest signal strength and slowest radios".
  Duration wifi_multicast_overhead = Duration::millis(8);
  /// Payload bytes per multicast datagram (bulk data is fragmented to this).
  std::size_t wifi_multicast_mtu = 1400;
  /// Energy burst for one small multicast *context* send (driver wakeup +
  /// queueing + airtime), charged at wifi_send_ma. Dominates the cost of
  /// naive 500 ms multicast advertising (paper §4.1).
  Duration wifi_multicast_send_burst = Duration::millis(30);
  /// Channel occupancy of one small multicast discovery beacon: management
  /// framing, DTIM buffering and retries at the lowest rate. Feeds the
  /// periodic-load deduction that slows concurrent TCP flows.
  Duration wifi_multicast_beacon_occupancy = Duration::millis(14);

  // --- WiFi power/duty modelling for bulk flows.
  /// Fraction of wall time the radio stays awake while any stream (flow or
  /// rate-limited download) is in progress, regardless of the stream's
  /// rate: interrupts, polling, and inter-frame listen keep a mesh-mode
  /// adapter out of power-save. This reproduces the paper's Disseminate
  /// energy being nearly rate-independent for the infrastructure leg
  /// (~67-80 mA at both 100 and 1000 KBps).
  double wifi_stream_duty = 0.4;
  /// Reverse-direction activity of a TCP endpoint (ACK stream, driver
  /// interrupts) as a fraction of the forward active time. The paper's
  /// 25 MB rows draw well above the pure receive current, implying the
  /// radio is substantially busy in both directions during a transfer.
  double tcp_reverse_activity_factor = 0.5;
  /// MTU used to convert flow bytes into frame counts.
  std::size_t wifi_mtu = 1448;

  // --- WiFi-Aware (Neighbor Awareness Networking).
  //
  // The paper's §3.2 names WiFi-Aware as the coming replacement for
  // multicast-based WiFi context transmission. The model: all NAN devices
  // synchronize to a global discovery-window (DW) schedule; a device wakes
  // for nan_dw_duration every nan_dw_period, exchanging service discovery
  // frames and small follow-ups, and sleeps (WiFi-standby) in between —
  // low-duty discovery at WiFi range, no network membership required.
  /// DW period (512 TU in the spec, ~524 ms).
  Duration nan_dw_period = Duration::millis(524);
  /// DW duration (16 TU, ~16 ms), charged at WiFi-receive draw.
  Duration nan_dw_duration = Duration::millis(16);
  /// Airtime per transmitted service discovery frame inside a DW.
  Duration nan_frame_airtime = Duration::millis(1);
  /// Service-info payload ceiling per SDF.
  std::size_t nan_max_payload = 255;
  /// Follow-up datagram ceiling.
  std::size_t nan_max_followup = 512;

  // --- Radio ranges (meters).
  double ble_range_m = 40.0;
  double wifi_range_m = 100.0;
  double nan_range_m = 100.0;

  /// Fluid-model bookkeeping window: flow rates are recomputed at least this
  /// often when multicast load changes.
  Duration channel_accounting_window = Duration::millis(200);

  static const Calibration& defaults();
};

}  // namespace omni::radio
