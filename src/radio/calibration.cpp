#include "radio/calibration.h"

namespace omni::radio {

const Calibration& Calibration::defaults() {
  static const Calibration kDefaults{};
  return kDefaults;
}

}  // namespace omni::radio
