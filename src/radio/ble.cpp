#include "radio/ble.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/hash.h"
#include "obs/omniscope.h"
#include "sim/fault_plan.h"

namespace omni::radio {

namespace {

/// Deterministic slotted listen schedule (set_scanning's `slotted` duty).
///
/// Openness of fixed 500 ms slots follows a golden-ratio rotation with a
/// receiver-keyed phase: slot s is open iff fract(s*phi + phase) < duty.
/// The slot width equals the beacon-interval floor, so a floor-rate
/// advertiser (every new arrival beacons at the floor) advances the
/// rotation by the full golden step per beacon and hits open slots with
/// frequency exactly `duty` and bounded miss runs (three-distance theorem)
/// — unlike an independent Bernoulli trial, whose geometric loss tails can
/// starve a peer's freshness long enough to outrun any finite expiry
/// horizon, and unlike a sub-floor slot width, whose per-beacon rotation
/// step fract(k*phi) can be near-resonant and bunch the misses. Pure
/// function of (receiver, arrival slot), so it is bit-identical at any
/// thread count and costs no RNG draw.
constexpr std::int64_t kListenSlotUs = 500'000;
constexpr double kGoldenFract = 0.6180339887498949;

bool listen_slot_open(NodeId node, TimePoint at, double duty) {
  const std::int64_t slot = at.as_micros() / kListenSlotUs;
  const double phase =
      static_cast<double>(splitmix64(static_cast<std::uint64_t>(node) + 1) >>
                          11) *
      0x1.0p-53;
  double x = static_cast<double>(slot) * kGoldenFract + phase;
  x -= std::floor(x);
  return x < duty;
}

}  // namespace

BleRadio::BleRadio(BleMedium& medium, sim::Simulator& sim, EnergyMeter& meter,
                   NodeId node, const Calibration& cal)
    : medium_(medium),
      sim_(sim),
      meter_(meter),
      node_(node),
      cal_(cal),
      address_(BleAddress::from_node(node)) {
  sim_.ensure_owner(node_);
  medium_.attach(this);
}

BleRadio::~BleRadio() {
  // Callbacks may point at protocol layers that are already gone.
  on_power_ = nullptr;
  on_receive_ = nullptr;
  on_address_ = nullptr;
  set_powered(false);
  medium_.detach(this);
}

void BleRadio::set_powered(bool on) {
  if (powered_ == on) return;
  powered_ = on;
  if (!on) {
    for (auto& [id, adv] : advertisements_) adv.next_event.cancel();
    advertisements_.clear();
    scanning_ = false;
  }
  apply_scan_level();
  medium_.update_scan_state(this);
  if (on_power_) on_power_(powered_);
}

void BleRadio::rotate_address() {
  ++rotation_count_;
  // Resolvable-private-style: derive a fresh address from the node id and
  // rotation counter (deterministic so tests can reproduce runs).
  address_ = BleAddress::from_node(node_);
  address_.octets[1] = static_cast<std::uint8_t>(0x40 | (rotation_count_ & 0x3f));
  address_.octets[2] = static_cast<std::uint8_t>(rotation_count_ >> 6);
  if (on_address_) on_address_(address_);
}

void BleRadio::apply_scan_level() {
  double ma = (powered_ && scanning_) ? cal_.ble_scan_ma * scan_duty_ : 0.0;
  // Passive listen cost rides its own ledger rail so discovery-policy scan
  // savings are separable from advertise/rx charges.
  meter_.set_level("ble.scan", ma, obs::EnergyRail::kBleScan);
}

void BleRadio::set_scanning(bool enabled, double duty, bool slotted) {
  OMNI_CHECK_MSG(duty > 0.0 && duty <= 1.0, "scan duty out of (0,1]");
  scanning_ = enabled && powered_;
  scan_duty_ = duty;
  scan_slotted_ = slotted;
  apply_scan_level();
  medium_.update_scan_state(this);
}

std::size_t BleRadio::max_payload() const {
  return cal_.ble_extended_advertising ? cal_.ble_extended_adv_payload
                                       : cal_.ble_legacy_adv_payload;
}

Result<AdvertisementId> BleRadio::start_advertising(Bytes payload,
                                                    Duration interval) {
  if (!powered_) return Result<AdvertisementId>::error("BLE radio is off");
  if (payload.size() > max_payload()) {
    return Result<AdvertisementId>::error("advertisement payload exceeds " +
                                          std::to_string(max_payload()) +
                                          " bytes");
  }
  if (interval <= Duration::zero()) {
    return Result<AdvertisementId>::error("advertisement interval must be >0");
  }
  AdvertisementId id = next_adv_id_++;
  advertisements_.emplace_back(
      id, Advertisement{std::make_shared<const Bytes>(std::move(payload)),
                        interval, sim::EventHandle{}});
  // First event after a full interval: a freshly added advertisement is not
  // instantly on the air.
  schedule_adv(id, interval);
  return id;
}

BleRadio::Advertisement* BleRadio::find_adv(AdvertisementId id) {
  for (auto& [adv_id, adv] : advertisements_) {
    if (adv_id == id) return &adv;
  }
  return nullptr;
}

Status BleRadio::update_advertising(AdvertisementId id, Bytes payload,
                                    Duration interval) {
  Advertisement* adv = find_adv(id);
  if (adv == nullptr) {
    return Status::error("unknown advertisement id");
  }
  if (payload.size() > max_payload()) {
    return Status::error("advertisement payload exceeds " +
                         std::to_string(max_payload()) + " bytes");
  }
  if (interval <= Duration::zero()) {
    return Status::error("advertisement interval must be >0");
  }
  bool reschedule = interval != adv->interval;
  adv->payload = std::make_shared<const Bytes>(std::move(payload));
  adv->interval = interval;
  if (reschedule) {
    adv->next_event.cancel();
    schedule_adv(id, interval);
  }
  return Status::ok();
}

Status BleRadio::stop_advertising(AdvertisementId id) {
  for (auto it = advertisements_.begin(); it != advertisements_.end(); ++it) {
    if (it->first == id) {
      it->second.next_event.cancel();
      advertisements_.erase(it);
      return Status::ok();
    }
  }
  return Status::error("unknown advertisement id");
}

void BleRadio::schedule_adv(AdvertisementId id, Duration delay) {
  Advertisement* adv = find_adv(id);
  if (adv == nullptr) return;
  // Pinned to this node's owner: advertising chains run on the node's shard
  // no matter which context (setup, queue drain) started them. The fire is a
  // {node, uid, adv} descriptor, not a closure: the medium resolves it back
  // to this radio (dropping it if we detached), and the slab stores 12
  // payload bytes instead of a captured `this`.
  unsigned char p[sim::kEventPayloadMax];
  std::uint8_t n = sim::pack_u32s(p, {node_, uid_, id});
  adv->next_event =
      sim_.schedule_desc_on(node_, delay, sim::kEventBleAdvertFire, p, n);
}

void BleRadio::fire_adv(AdvertisementId id) {
  Advertisement* adv = find_adv(id);
  if (adv == nullptr || !powered_) return;
  meter_.charge_for(cal_.ble_adv_event, cal_.ble_advertise_ma,
                    obs::EnergyRail::kBle);
  if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc != nullptr &&
                                             sc->recording()) {
    sc->mark_frame(sc->core().ble_adv, obs::Cat::kBleAdv);
  }
  // Reschedule before broadcasting, reusing this lookup. A receive handler
  // that stops or retunes this advertisement mid-broadcast cancels/replaces
  // the handle we just stored, so the outcome matches reschedule-after.
  unsigned char p[sim::kEventPayloadMax];
  std::uint8_t n = sim::pack_u32s(p, {node_, uid_, id});
  adv->next_event = sim_.schedule_desc_on(node_, adv->interval,
                                          sim::kEventBleAdvertFire, p, n);
  // The shared payload keeps delivery events valid even if a later event
  // stops the advertisement (or reallocates the vector) before they fire.
  medium_.broadcast(*this, adv->payload);
}

Status BleRadio::send_datagram(Bytes payload, SendDoneFn done,
                               bool deterministic_latency) {
  if (!powered_) return Status::error("BLE radio is off");
  // Datagrams ride advertisement + scan-response, so twice the single-PDU
  // payload is available.
  std::size_t cap = 2 * max_payload();
  if (payload.size() > cap) {
    return Status::error("BLE datagram exceeds " + std::to_string(cap) +
                         " bytes");
  }
  Duration wait =
      deterministic_latency
          ? Duration::micros(cal_.ble_fast_adv_interval.as_micros() / 2)
          : Duration::micros(static_cast<std::int64_t>(sim_.rng().uniform(
                0, static_cast<double>(
                       cal_.ble_fast_adv_interval.as_micros()))));
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  // The burst goes on the air at `wait`; receivers hear it one advertising
  // event later (the medium's delivery latency), and completion reports at
  // the same instant the transmission ends.
  sim_.after_on(node_, wait, [this, shared = std::move(shared),
                              done = std::move(done)]() mutable {
    if (!powered_) {
      if (done) done(Status::error("BLE radio powered off mid-send"));
      return;
    }
    meter_.charge_for(cal_.ble_adv_event, cal_.ble_advertise_ma,
                      obs::EnergyRail::kBle);
    if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc != nullptr &&
                                               sc->recording()) {
      sc->mark_frame(sc->core().ble_adv, obs::Cat::kBleAdv,
                     /*a0=*/shared->size());
    }
    medium_.broadcast(*this, shared, /*reliable_burst=*/true);
    if (done) {
      sim_.after_on(node_, cal_.ble_adv_event,
                    [done = std::move(done)] { done(Status::ok()); });
    }
  });
  return Status::ok();
}

void BleRadio::deliver(const BleAddress& from, const Bytes& payload) {
  if (!powered_ || !scanning_) return;
  if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc != nullptr &&
                                             sc->recording()) {
    sc->mark_frame(sc->core().ble_rx, obs::Cat::kBleRx,
                   /*a0=*/payload.size());
  }
  if (on_receive_) on_receive_(from, payload);
}

BleMedium::BleMedium(sim::World& world, const Calibration& cal)
    : world_(world), cal_(cal), lanes_(world.simulator().threads() + 1) {
  // One lane per shard plus the global lane (current_shard_index() returns
  // threads() outside windows).
  world_.simulator().add_barrier_hook([this] { flush_pending(); });
  // The medium owns the BLE descriptor kinds: advert fires, sweep batches,
  // and deferred scan-state applies dispatch here instead of through
  // captured-`this` closures.
  sim::Simulator& sim = world_.simulator();
  sim.register_desc_handler(sim::kEventBleAdvertFire, this,
                            &BleMedium::advert_fire_handler);
  sim.register_desc_handler(sim::kEventBleSweep, this,
                            &BleMedium::sweep_handler);
  sim.register_desc_handler(sim::kEventBleScanApply, this,
                            &BleMedium::scan_apply_handler);
}

BleRadio* BleMedium::find_radio(NodeId node, std::uint32_t uid) {
  if (node >= radios_by_node_.size()) return nullptr;
  for (const RadioState& st : radios_by_node_[node]) {
    if (st.uid == uid) return st.radio;
  }
  return nullptr;
}

void BleMedium::advert_fire_handler(void* ctx, sim::Simulator& /*sim*/,
                                    const sim::EventDesc& d) {
  auto* medium = static_cast<BleMedium*>(ctx);
  BleRadio* radio = medium->find_radio(d.payload_u32(0), d.payload_u32(4));
  if (radio != nullptr) radio->fire_adv(d.payload_u32(8));
}

void BleMedium::sweep_handler(void* ctx, sim::Simulator& /*sim*/,
                              const sim::EventDesc& d) {
  static_cast<BleMedium*>(ctx)->run_sweep(d.payload_u64(0));
}

void BleMedium::scan_apply_handler(void* ctx, sim::Simulator& /*sim*/,
                                   const sim::EventDesc& d) {
  auto* medium = static_cast<BleMedium*>(ctx);
  BleRadio* radio = medium->find_radio(d.payload_u32(0), d.payload_u32(4));
  if (radio != nullptr) medium->apply_scan_state(radio);
}

std::uint64_t BleMedium::delivered_count() const {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) n += lane.delivered;
  return n;
}

void BleMedium::attach(BleRadio* radio) {
  if (radio->node() >= radios_by_node_.size()) {
    radios_by_node_.resize(radio->node() + 1);
  }
  if (radio->node() >= fault_salts_.size()) {
    fault_salts_.resize(radio->node() + 1, 0);
  }
  const std::uint32_t uid = next_uid_++;
  radio->uid_ = uid;
  radios_by_node_[radio->node()].push_back(
      RadioState{radio, uid, radio->powered() && radio->scanning(),
                 radio->scan_duty(), radio->scan_slotted()});
  fanout_by_uid_.resize(next_uid_);
  ++medium_epoch_;
}

void BleMedium::detach(BleRadio* radio) {
  if (radio->node() >= radios_by_node_.size()) return;
  auto& on_node = radios_by_node_[radio->node()];
  on_node.erase(std::remove_if(on_node.begin(), on_node.end(),
                               [radio](const RadioState& st) {
                                 return st.radio == radio;
                               }),
                on_node.end());
  ++medium_epoch_;
}

void BleMedium::apply_scan_state(BleRadio* radio) {
  if (radio->node() >= radios_by_node_.size()) return;
  for (RadioState& st : radios_by_node_[radio->node()]) {
    if (st.radio != radio) continue;
    st.scanning = radio->powered() && radio->scanning();
    st.duty = radio->scan_duty();
    st.slotted = radio->scan_slotted();
    ++medium_epoch_;
  }
}

void BleMedium::update_scan_state(BleRadio* radio) {
  sim::Simulator& sim = world_.simulator();
  if (sim.owns_context(sim::kGlobalOwner)) {
    apply_scan_state(radio);
    return;
  }
  // A node-owned event changed the state mid-window: defer the snapshot
  // write to the barrier so concurrent senders keep reading a stable table.
  // Until then the radio keeps its old *eligibility* for capture trials;
  // actual delivery always revalidates against the receiver's live state.
  // The defer is a {node, uid} descriptor: this is a node→global cross-owner
  // post, and as data it can ship between partitioned workers.
  unsigned char p[sim::kEventPayloadMax];
  std::uint8_t n = sim::pack_u32s(p, {radio->node(), radio->uid_});
  sim.schedule_desc_on(sim::kGlobalOwner, Duration::zero(),
                       sim::kEventBleScanApply, p, n);
}

void BleMedium::broadcast(const BleRadio& from,
                          const std::shared_ptr<const Bytes>& payload,
                          bool reliable_burst) {
  // Candidate nodes come from the world's spatial grid (exact-range
  // filtered, ascending by node id, including the sender's own node so
  // co-located radios still hear each other). thread_local scratch: each
  // shard broadcasts concurrently, and broadcast never re-enters itself
  // (receive handlers run in posted delivery events, not inline).
  sim::Simulator& sim = world_.simulator();
  Rng& rng = sim.rng();
  const double capture_p = cal_.ble_capture_probability;
  const Duration latency = cal_.ble_adv_event;
  const BleAddress src_addr = from.address();
  const std::size_t lane_idx = sim.current_shard_index();
  const bool in_window = lane_idx < static_cast<std::size_t>(sim.threads());

  // Fan-out fast path: with a static world and no fault plan, the sender's
  // flattened candidate list (see FanoutCache) replaces the grid query and
  // the per-node RadioState walk — the steady-state fire touches one
  // contiguous array. Candidate order matches the uncached walk exactly, so
  // the capture-trial draw sequence (and with it every downstream event) is
  // identical whichever path runs.
  if (world_.fault_plan() == nullptr && world_.is_static(sim.now())) {
    std::uint32_t self_uid = 0;
    if (from.node() < radios_by_node_.size()) {
      for (const RadioState& st : radios_by_node_[from.node()]) {
        if (st.radio == &from) {
          self_uid = st.uid;
          break;
        }
      }
    }
    if (self_uid != 0) {
      FanoutCache& fc = fanout_by_uid_[self_uid];
      // Per-region validation: the fingerprint folds only the epochs of the
      // regions the sender's disc overlaps, so a topology change across town
      // leaves this sender's cache hot. The center pins the overlapped
      // region set itself (the sender may have moved since the build).
      const sim::Vec2 center = world_.position(from.node());
      const std::uint64_t nb =
          world_.neighborhood_epoch(center, cal_.ble_range_m);
      if (fc.nb_epoch != nb || fc.medium_epoch != medium_epoch_ ||
          !(fc.center == center)) {
        thread_local std::vector<NodeId> rebuild_nodes;
        world_.nodes_near(from.node(), cal_.ble_range_m, rebuild_nodes);
        fc.cands.clear();
        for (NodeId node : rebuild_nodes) {
          if (node >= radios_by_node_.size()) continue;
          for (const RadioState& st : radios_by_node_[node]) {
            if (st.radio == &from || !st.scanning) continue;
            fc.cands.push_back(
                FanoutCandidate{st.radio, st.uid, node, st.duty, st.slotted});
          }
        }
        fc.nb_epoch = nb;
        fc.medium_epoch = medium_epoch_;
        fc.center = center;
      }
      const TimePoint at = sim.now() + latency;
      constexpr std::uint32_t kNoTxIdx = 0xffffffffu;
      std::uint32_t tx_idx = kNoTxIdx;
      for (const FanoutCandidate& c : fc.cands) {
        if (!reliable_burst) {
          // Slotted scanners take the radio capture trial at full strength
          // and realize the duty as a deterministic slot filter; plain duty
          // keeps the historical single Bernoulli(capture * duty) draw.
          if (c.slotted) {
            if (capture_p < 1.0 && !rng.chance(capture_p)) continue;
            if (c.duty < 1.0 && !listen_slot_open(c.node, at, c.duty)) {
              continue;
            }
          } else {
            const double p = capture_p * c.duty;
            if (p < 1.0 && !rng.chance(p)) continue;
          }
        }
        if (in_window) {
          Lane& lane = lanes_[lane_idx];
          if (tx_idx == kNoTxIdx) {
            tx_idx = static_cast<std::uint32_t>(lane.txs.size());
            lane.txs.push_back(PendingTx{at, from.node(), src_addr, payload});
          }
          lane.winners.push_back(PendingWinner{c.node, c.uid, tx_idx});
        } else {
          sim.after_on(c.node, latency,
                       [this, node = c.node, rx_uid = c.uid, src_addr,
                        pl = payload] { deliver(node, rx_uid, src_addr, *pl); });
        }
      }
      return;
    }
  }

  thread_local std::vector<NodeId> scratch_nodes;
  std::vector<NodeId>& nodes = scratch_nodes;
  world_.nodes_near(from.node(), cal_.ble_range_m, nodes);
  // Fault injection: draws are stateless hashes of (plan seed, link, time,
  // per-sender frame salt) — no simulator RNG is consumed, so arming a plan
  // leaves the capture-trial sequence untouched, and the draws are
  // independent of how shards interleave. Latency spikes only add delay, so
  // the delivery instant stays >= the engine's lookahead bound.
  const sim::FaultPlan* plan = world_.fault_plan();
  const TimePoint now = sim.now();
  std::uint64_t salt = 0;
  Duration fault_delay = Duration::zero();
  sim::Vec2 src_pos{};
  std::shared_ptr<const Bytes> mangled;
  if (plan != nullptr) {
    salt = ++fault_salts_[from.node()];
    fault_delay = plan->extra_latency(from.node(), sim::FaultPlan::kAnyNode,
                                      sim::FaultRadio::kBle, now);
    if (fault_delay > Duration::zero()) {
      plan->note_delay();
      if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                sc->recording()) {
        sc->mark_on(from.node(), sc->core().fault_delays,
                    obs::Cat::kFaultDelay,
                    static_cast<std::uint64_t>(fault_delay.as_micros()));
      }
    }
    src_pos = world_.position(from.node());
  }
  const bool partitions_now =
      plan != nullptr && plan->partition_active(now);
  const TimePoint at = now + latency + fault_delay;
  // The transmission record is created lazily on the first winner, so a
  // frame nobody captures costs nothing at the flush. A corrupted frame gets
  // its own record (same instant/sender, mangled payload).
  constexpr std::uint32_t kNoTx = 0xffffffffu;
  std::uint32_t tx_idx = kNoTx;
  std::uint32_t mangled_tx_idx = kNoTx;
  for (NodeId node : nodes) {
    if (node >= radios_by_node_.size()) continue;
    bool corrupt_here = false;
    if (plan != nullptr && node != from.node()) {
      if (partitions_now &&
          plan->partitioned(src_pos, world_.position(node), now)) {
        plan->note_partition_drop();
        if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                  sc->recording()) {
          sc->mark_on(from.node(), sc->core().fault_partition_drops,
                      obs::Cat::kFaultPartition, node);
        }
        continue;
      }
      if (plan->dropped(from.node(), node, sim::FaultRadio::kBle, now,
                        salt)) {
        plan->note_drop();
        if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                  sc->recording()) {
          sc->mark_on(from.node(), sc->core().fault_drops,
                      obs::Cat::kFaultDrop, node);
        }
        continue;
      }
      corrupt_here =
          plan->corrupted(from.node(), node, sim::FaultRadio::kBle, now, salt);
      if (corrupt_here && mangled == nullptr) {
        auto copy = std::make_shared<Bytes>(*payload);
        sim::FaultPlan::corrupt_in_place(*copy, salt);
        mangled = std::move(copy);
      }
    }
    for (const RadioState& st : radios_by_node_[node]) {
      if (st.radio == &from || !st.scanning) continue;
      if (!reliable_burst) {
        if (st.slotted) {
          if (capture_p < 1.0 && !rng.chance(capture_p)) continue;
          if (st.duty < 1.0 && !listen_slot_open(node, at, st.duty)) continue;
        } else {
          double p = capture_p * st.duty;
          if (p < 1.0 && !rng.chance(p)) continue;
        }
      }
      if (corrupt_here) {
        plan->note_corruption();
        if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                                  sc->recording()) {
          sc->mark_on(from.node(), sc->core().fault_corruptions,
                      obs::Cat::kFaultCorrupt, node);
        }
      }
      if (in_window) {
        // Record the winner in this shard's lane; the barrier hook batches
        // the window's winners into one sweep event per (instant, receiver).
        // The delivery instant (transmission + min_latency >= the engine's
        // lookahead) always lands past the window end.
        Lane& lane = lanes_[lane_idx];
        std::uint32_t& idx = corrupt_here ? mangled_tx_idx : tx_idx;
        if (idx == kNoTx) {
          idx = static_cast<std::uint32_t>(lane.txs.size());
          lane.txs.push_back(PendingTx{at, from.node(), src_addr,
                                       corrupt_here ? mangled : payload});
        }
        lane.winners.push_back(PendingWinner{node, st.uid, idx});
      } else {
        // Setup code or a global event: every queue is quiescent, schedule
        // the delivery on the receiver's owner directly.
        sim.after_on(node, latency + fault_delay,
                     [this, node, rx_uid = st.uid, src_addr,
                      pl = corrupt_here ? mangled : payload] {
                       deliver(node, rx_uid, src_addr, *pl);
                     });
      }
    }
  }
}

void BleMedium::flush_pending() {
  std::size_t total = 0;
  std::size_t total_tx = 0;
  for (const Lane& lane : lanes_) {
    total += lane.winners.size();
    total_tx += lane.txs.size();
  }
  if (total == 0) return;
  // Claim a recycled batch: the first whose sweeps have all run. Slot
  // choice is deterministic — whether a prior window's sweeps finished
  // depends only on simulated event times, never on wall-clock or thread
  // count — and immaterial anyway (the slot is pure storage).
  std::size_t slot = 0;
  for (; slot < sweep_batches_.size(); ++slot) {
    if (sweep_batches_[slot]->remaining.load(std::memory_order_acquire) ==
        0) {
      break;
    }
  }
  if (slot == sweep_batches_.size()) {
    sweep_batches_.push_back(std::make_unique<SweepBatch>());
  }
  SweepBatch& sweep = *sweep_batches_[slot];
  // Concatenate the per-shard transmission records, rebasing each lane's
  // winner->tx indices by its lane offset as the winners are scattered.
  std::vector<PendingTx>* txs = &sweep.txs;
  txs->clear();
  txs->reserve(total_tx);
  // Canonical order: each receiver hears the window's frames in (time,
  // sending node) order — a total order independent of the shard partition.
  // A comparison sort of the whole batch dominated the flush, so bucket by
  // receiver with a counting scatter (dense node ids) and finish each
  // receiver's handful of frames with a stable insertion sort. Ties (one
  // sender, several same-instant frames) sit in a single lane in
  // transmission order, and the scatter preserves lane order, so the result
  // is identical at any thread count.
  const std::size_t nbuckets = radios_by_node_.size();
  bucket_starts_.assign(nbuckets + 1, 0);
  for (const Lane& lane : lanes_) {
    for (const PendingWinner& rec : lane.winners) {
      ++bucket_starts_[rec.dst + 1];
    }
  }
  for (std::size_t d = 0; d < nbuckets; ++d) {
    bucket_starts_[d + 1] += bucket_starts_[d];
  }
  std::vector<PendingWinner>* batch = &sweep.winners;
  batch->assign(total, PendingWinner{});
  bucket_fill_ = bucket_starts_;
  for (Lane& lane : lanes_) {
    const std::uint32_t base = static_cast<std::uint32_t>(txs->size());
    for (PendingTx& tx : lane.txs) txs->push_back(std::move(tx));
    lane.txs.clear();
    for (const PendingWinner& rec : lane.winners) {
      (*batch)[bucket_fill_[rec.dst]++] =
          PendingWinner{rec.dst, rec.rx_uid, rec.tx + base};
    }
    lane.winners.clear();
  }
  auto earlier = [txs](const PendingWinner& a, const PendingWinner& b) {
    const PendingTx& ta = (*txs)[a.tx];
    const PendingTx& tb = (*txs)[b.tx];
    if (ta.at != tb.at) return ta.at < tb.at;
    return ta.src < tb.src;
  };
  for (std::size_t d = 0; d < nbuckets; ++d) {
    std::size_t b = bucket_starts_[d], e = bucket_starts_[d + 1];
    if (e - b < 2) continue;
    if (e - b > 64) {
      // Degenerate fan-in (burst floods); insertion sort would go quadratic.
      std::stable_sort(batch->begin() + static_cast<std::ptrdiff_t>(b),
                       batch->begin() + static_cast<std::ptrdiff_t>(e),
                       earlier);
      continue;
    }
    for (std::size_t k = b + 1; k < e; ++k) {
      PendingWinner rec = (*batch)[k];
      std::size_t m = k;
      for (; m > b && earlier(rec, (*batch)[m - 1]); --m) {
        (*batch)[m] = (*batch)[m - 1];
      }
      (*batch)[m] = rec;
    }
  }
  sim::Simulator& sim = world_.simulator();
  std::size_t i = 0;
  std::uint32_t sweeps = 0;
  while (i < batch->size()) {
    const PendingWinner& head = (*batch)[i];
    const TimePoint head_at = (*txs)[head.tx].at;
    std::size_t j = i + 1;
    while (j < batch->size() && (*batch)[j].dst == head.dst &&
           (*txs)[(*batch)[j].tx].at == head_at) {
      ++j;
    }
    const std::uint64_t packed = (static_cast<std::uint64_t>(slot) << 48) |
                                 (static_cast<std::uint64_t>(i) << 24) |
                                 static_cast<std::uint64_t>(j);
    OMNI_ASSERTF(slot < (1u << 16) && j < (1u << 24),
                 "sweep range exceeds packed encoding (slot %zu, j %zu)",
                 slot, j);
    unsigned char p[sim::kEventPayloadMax];
    std::uint8_t n = sim::pack_u64(p, packed);
    sim.schedule_desc_at_on(head.dst, head_at, sim::kEventBleSweep, p, n);
    ++sweeps;
    i = j;
  }
  // Events cannot dispatch until this barrier hook returns, so arming the
  // countdown after scheduling is race-free.
  sweep.remaining.store(sweeps, std::memory_order_release);
}

void BleMedium::run_sweep(std::uint64_t packed) {
  SweepBatch& sweep = *sweep_batches_[packed >> 48];
  deliver_batch(sweep.txs, sweep.winners,
                (packed >> 24) & 0xffffffu, packed & 0xffffffu);
  sweep.remaining.fetch_sub(1, std::memory_order_release);
}

void BleMedium::deliver_batch(const std::vector<PendingTx>& txs,
                              const std::vector<PendingWinner>& batch,
                              std::size_t begin, std::size_t end) {
  std::uint64_t delivered = 0;
  for (std::size_t k = begin; k < end; ++k) {
    const PendingWinner& rec = batch[k];
    const PendingTx& tx = txs[rec.tx];
    delivered += deliver_uncounted(rec.dst, rec.rx_uid, tx.from, *tx.payload);
  }
  if (delivered != 0) {
    lanes_[world_.simulator().current_shard_index()].delivered += delivered;
  }
}

void BleMedium::deliver(NodeId node, std::uint32_t rx_uid,
                        const BleAddress& from, const Bytes& payload) {
  if (deliver_uncounted(node, rx_uid, from, payload)) {
    ++lanes_[world_.simulator().current_shard_index()].delivered;
  }
}

bool BleMedium::deliver_uncounted(NodeId node, std::uint32_t rx_uid,
                                  const BleAddress& from,
                                  const Bytes& payload) {
  if (node >= radios_by_node_.size()) return false;
  for (const RadioState& st : radios_by_node_[node]) {
    if (st.uid != rx_uid) continue;  // radio detached since the broadcast
    st.radio->deliver(from, payload);
    return true;
  }
  return false;
}

}  // namespace omni::radio
