#include "radio/ble.h"

#include <algorithm>

namespace omni::radio {

BleRadio::BleRadio(BleMedium& medium, sim::Simulator& sim, EnergyMeter& meter,
                   NodeId node, const Calibration& cal)
    : medium_(medium),
      sim_(sim),
      meter_(meter),
      node_(node),
      cal_(cal),
      address_(BleAddress::from_node(node)) {
  medium_.attach(this);
}

BleRadio::~BleRadio() {
  // Callbacks may point at protocol layers that are already gone.
  on_power_ = nullptr;
  on_receive_ = nullptr;
  on_address_ = nullptr;
  set_powered(false);
  medium_.detach(this);
}

void BleRadio::set_powered(bool on) {
  if (powered_ == on) return;
  powered_ = on;
  if (!on) {
    for (auto& [id, adv] : advertisements_) adv.next_event.cancel();
    advertisements_.clear();
    scanning_ = false;
  }
  apply_scan_level();
  if (on_power_) on_power_(powered_);
}

void BleRadio::rotate_address() {
  ++rotation_count_;
  // Resolvable-private-style: derive a fresh address from the node id and
  // rotation counter (deterministic so tests can reproduce runs).
  address_ = BleAddress::from_node(node_);
  address_.octets[1] = static_cast<std::uint8_t>(0x40 | (rotation_count_ & 0x3f));
  address_.octets[2] = static_cast<std::uint8_t>(rotation_count_ >> 6);
  if (on_address_) on_address_(address_);
}

void BleRadio::apply_scan_level() {
  double ma = (powered_ && scanning_) ? cal_.ble_scan_ma * scan_duty_ : 0.0;
  meter_.set_level("ble.scan", ma);
}

void BleRadio::set_scanning(bool enabled, double duty) {
  OMNI_CHECK_MSG(duty > 0.0 && duty <= 1.0, "scan duty out of (0,1]");
  scanning_ = enabled && powered_;
  scan_duty_ = duty;
  apply_scan_level();
}

std::size_t BleRadio::max_payload() const {
  return cal_.ble_extended_advertising ? cal_.ble_extended_adv_payload
                                       : cal_.ble_legacy_adv_payload;
}

Result<AdvertisementId> BleRadio::start_advertising(Bytes payload,
                                                    Duration interval) {
  if (!powered_) return Result<AdvertisementId>::error("BLE radio is off");
  if (payload.size() > max_payload()) {
    return Result<AdvertisementId>::error("advertisement payload exceeds " +
                                          std::to_string(max_payload()) +
                                          " bytes");
  }
  if (interval <= Duration::zero()) {
    return Result<AdvertisementId>::error("advertisement interval must be >0");
  }
  AdvertisementId id = next_adv_id_++;
  advertisements_.emplace_back(
      id, Advertisement{std::move(payload), interval, sim::EventHandle{}});
  // First event after a full interval: a freshly added advertisement is not
  // instantly on the air.
  schedule_adv(id, interval);
  return id;
}

BleRadio::Advertisement* BleRadio::find_adv(AdvertisementId id) {
  for (auto& [adv_id, adv] : advertisements_) {
    if (adv_id == id) return &adv;
  }
  return nullptr;
}

Status BleRadio::update_advertising(AdvertisementId id, Bytes payload,
                                    Duration interval) {
  Advertisement* adv = find_adv(id);
  if (adv == nullptr) {
    return Status::error("unknown advertisement id");
  }
  if (payload.size() > max_payload()) {
    return Status::error("advertisement payload exceeds " +
                         std::to_string(max_payload()) + " bytes");
  }
  if (interval <= Duration::zero()) {
    return Status::error("advertisement interval must be >0");
  }
  bool reschedule = interval != adv->interval;
  adv->payload = std::move(payload);
  adv->interval = interval;
  if (reschedule) {
    adv->next_event.cancel();
    schedule_adv(id, interval);
  }
  return Status::ok();
}

Status BleRadio::stop_advertising(AdvertisementId id) {
  for (auto it = advertisements_.begin(); it != advertisements_.end(); ++it) {
    if (it->first == id) {
      it->second.next_event.cancel();
      advertisements_.erase(it);
      return Status::ok();
    }
  }
  return Status::error("unknown advertisement id");
}

void BleRadio::schedule_adv(AdvertisementId id, Duration delay) {
  Advertisement* adv = find_adv(id);
  if (adv == nullptr) return;
  adv->next_event = sim_.after(delay, [this, id] { fire_adv(id); });
}

void BleRadio::fire_adv(AdvertisementId id) {
  Advertisement* adv = find_adv(id);
  if (adv == nullptr || !powered_) return;
  meter_.charge_for(cal_.ble_adv_event, cal_.ble_advertise_ma);
  // Reschedule before broadcasting, reusing this lookup. A receive handler
  // that stops or retunes this advertisement mid-broadcast cancels/replaces
  // the handle we just stored, so the outcome matches reschedule-after.
  adv->next_event = sim_.after(adv->interval, [this, id] { fire_adv(id); });
  // Broadcast from a reused scratch copy: a handler that adds or stops an
  // advertisement mid-broadcast may reallocate or erase vector storage, so
  // `adv` must not be dereferenced past this point.
  adv_scratch_.assign(adv->payload.begin(), adv->payload.end());
  medium_.broadcast(*this, adv_scratch_);
}

Status BleRadio::send_datagram(Bytes payload, SendDoneFn done,
                               bool deterministic_latency) {
  if (!powered_) return Status::error("BLE radio is off");
  // Datagrams ride advertisement + scan-response, so twice the single-PDU
  // payload is available.
  std::size_t cap = 2 * max_payload();
  if (payload.size() > cap) {
    return Status::error("BLE datagram exceeds " + std::to_string(cap) +
                         " bytes");
  }
  Duration wait =
      deterministic_latency
          ? Duration::micros(cal_.ble_fast_adv_interval.as_micros() / 2)
          : Duration::micros(static_cast<std::int64_t>(sim_.rng().uniform(
                0, static_cast<double>(
                       cal_.ble_fast_adv_interval.as_micros()))));
  Duration total = wait + cal_.ble_adv_event;
  sim_.after(total, [this, payload = std::move(payload),
                     done = std::move(done)]() mutable {
    if (!powered_) {
      if (done) done(Status::error("BLE radio powered off mid-send"));
      return;
    }
    meter_.charge(sim_.now() - cal_.ble_adv_event, sim_.now(),
                  cal_.ble_advertise_ma);
    medium_.broadcast(*this, payload, /*reliable_burst=*/true);
    if (done) done(Status::ok());
  });
  return Status::ok();
}

void BleRadio::deliver(const BleAddress& from, const Bytes& payload) {
  if (!powered_ || !scanning_) return;
  if (on_receive_) on_receive_(from, payload);
}

void BleMedium::attach(BleRadio* radio) {
  radios_.push_back(radio);
  if (radio->node() >= radios_by_node_.size()) {
    radios_by_node_.resize(radio->node() + 1);
  }
  radios_by_node_[radio->node()].push_back(radio);
}

void BleMedium::detach(BleRadio* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
  if (radio->node() >= radios_by_node_.size()) return;
  auto& on_node = radios_by_node_[radio->node()];
  on_node.erase(std::remove(on_node.begin(), on_node.end(), radio),
                on_node.end());
}

void BleMedium::broadcast(const BleRadio& from, const Bytes& payload,
                          bool reliable_burst) {
  // Candidate nodes come from the world's spatial grid (exact-range
  // filtered, ascending by node id, including the sender's own node so
  // co-located radios still hear each other). The scratch buffer is swapped
  // out for the duration of delivery: a receive handler that indirectly
  // re-broadcasts then simply grows a temporary instead of corrupting this
  // iteration.
  std::vector<NodeId> nodes;
  std::swap(nodes, scratch_nodes_);
  world_.nodes_near(from.node(), cal_.ble_range_m, nodes);
  Rng& rng = world_.simulator().rng();
  const double capture_p = cal_.ble_capture_probability;
  for (NodeId node : nodes) {
    if (node >= radios_by_node_.size()) continue;
    for (BleRadio* rx : radios_by_node_[node]) {
      if (rx == &from || !rx->powered() || !rx->scanning()) continue;
      if (!reliable_burst) {
        double p = capture_p * rx->scan_duty();
        if (p < 1.0 && !rng.chance(p)) continue;
      }
      ++delivered_;
      rx->deliver(from.address(), payload);
    }
  }
  std::swap(nodes, scratch_nodes_);
}

}  // namespace omni::radio
