// Registry tying together WiFi radios and mesh networks.
//
// Owns the mesh networks, resolves which meshes a scanning radio can see
// (any mesh with a member inside WiFi range), and provides the world/clock
// context shared by the 802.11 models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "radio/calibration.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::radio {

class WifiRadio;
class MeshNetwork;

class WifiSystem {
 public:
  WifiSystem(sim::World& world, const Calibration& cal);
  WifiSystem(const WifiSystem&) = delete;
  WifiSystem& operator=(const WifiSystem&) = delete;
  ~WifiSystem();

  /// Create a mesh network; the system owns it.
  MeshNetwork& create_mesh(std::string name);

  MeshNetwork* find_mesh(const std::string& name) const;
  const std::vector<std::unique_ptr<MeshNetwork>>& meshes() const {
    return meshes_;
  }

  void attach(WifiRadio* radio) { radios_.push_back(radio); }
  void detach(WifiRadio* radio);

  /// Meshes visible to `from`: those with >= 1 powered member in WiFi range.
  std::vector<MeshNetwork*> visible_meshes(const WifiRadio& from) const;

  sim::World& world() { return world_; }
  sim::Simulator& simulator() { return world_.simulator(); }
  const Calibration& calibration() const { return cal_; }

 private:
  sim::World& world_;
  const Calibration& cal_;
  std::vector<std::unique_ptr<MeshNetwork>> meshes_;
  std::vector<WifiRadio*> radios_;
  mutable std::vector<NodeId> scratch_nodes_;  // reused range-query buffer
};

}  // namespace omni::radio
