// Bluetooth Low Energy model: connection-less advertising and scanning.
//
// Models what the paper's BlueZ-based prototype used: periodic advertisement
// broadcasts (the carrier for Omni context and address beacons) plus a
// fast-advertising path for pushing a small datagram to neighbors. Payload
// sizes honour the legacy 31-byte advertisement ceiling; the Bluetooth 5
// extended-advertising flag (the paper's future-work item) raises it.
//
// Energy: scanning is a level charge (scan duty * 7.0 mA); every advertising
// event charges 8.2 mA for the event duration — matching the paper's Table 3.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "radio/calibration.h"
#include "radio/energy_meter.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::radio {

class BleMedium;

/// Identifier for an active periodic advertisement on one radio.
using AdvertisementId = std::uint32_t;

class BleRadio {
 public:
  using ReceiveFn = std::function<void(const BleAddress& from, const Bytes&)>;
  using SendDoneFn = std::function<void(Status)>;

  BleRadio(BleMedium& medium, sim::Simulator& sim, EnergyMeter& meter,
           NodeId node, const Calibration& cal);
  ~BleRadio();
  BleRadio(const BleRadio&) = delete;
  BleRadio& operator=(const BleRadio&) = delete;

  const BleAddress& address() const { return address_; }
  NodeId node() const { return node_; }
  bool powered() const { return powered_; }
  const Calibration& calibration() const { return cal_; }
  sim::Simulator& simulator() { return sim_; }

  /// Power the controller on/off. Off cancels advertisements and scanning.
  void set_powered(bool on);

  /// Notified after every power-state change (protocol layers use this to
  /// report technology status to the Omni Manager).
  using PowerFn = std::function<void(bool powered)>;
  void set_power_handler(PowerFn fn) { on_power_ = std::move(fn); }

  /// Rotate to a fresh (resolvable-private-style) address, as BLE privacy
  /// features periodically do. Running advertisements continue under the
  /// new address; the address-change handler fires so protocol layers can
  /// report it upward (paper §3.2: a response is generated "when ... the
  /// address changes").
  void rotate_address();
  using AddressFn = std::function<void(const BleAddress& fresh)>;
  void set_address_handler(AddressFn fn) { on_address_ = std::move(fn); }

  /// Enable the scanner at a duty cycle in (0, 1]. Received advertisements
  /// (from in-range advertisers, subject to capture probability * duty) are
  /// delivered to the receive handler.
  void set_scanning(bool enabled, double duty = 1.0);
  bool scanning() const { return scanning_; }
  double scan_duty() const { return scan_duty_; }

  void set_receive_handler(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Maximum advertisement payload under the current calibration.
  std::size_t max_payload() const;

  /// Begin a periodic advertisement. Fails if the payload exceeds
  /// max_payload() or the radio is off.
  Result<AdvertisementId> start_advertising(Bytes payload, Duration interval);

  /// Replace payload and/or interval of an existing advertisement.
  Status update_advertising(AdvertisementId id, Bytes payload,
                            Duration interval);

  Status stop_advertising(AdvertisementId id);
  std::size_t active_advertisements() const { return advertisements_.size(); }

  /// Push one datagram via fast advertising: broadcast to in-range scanners
  /// after the fast-advertising latency, then report completion.
  /// With `deterministic_latency` (the default) the delay is the analytic
  /// mean (interval/2 + event); otherwise it is sampled uniformly.
  Status send_datagram(Bytes payload, SendDoneFn done,
                       bool deterministic_latency = true);

  /// Called by the medium when an in-range advertisement fires.
  void deliver(const BleAddress& from, const Bytes& payload);

 private:
  struct Advertisement {
    Bytes payload;
    Duration interval;
    sim::EventHandle next_event;
  };

  void schedule_adv(AdvertisementId id, Duration delay);
  void fire_adv(AdvertisementId id);
  void apply_scan_level();
  Advertisement* find_adv(AdvertisementId id);

  BleMedium& medium_;
  sim::Simulator& sim_;
  EnergyMeter& meter_;
  NodeId node_;
  const Calibration& cal_;
  BleAddress address_;

  bool powered_ = true;
  bool scanning_ = false;
  double scan_duty_ = 1.0;
  ReceiveFn on_receive_;
  PowerFn on_power_;
  AddressFn on_address_;
  std::uint32_t rotation_count_ = 0;
  AdvertisementId next_adv_id_ = 1;
  // A device runs a handful of advertisements (address beacon + a few
  // contexts): a flat vector with linear lookup beats hashing on the
  // per-fire hot path.
  std::vector<std::pair<AdvertisementId, Advertisement>> advertisements_;
  Bytes adv_scratch_;  ///< fire_adv broadcast staging (see fire_adv)
};

/// The shared BLE broadcast medium: tracks radios, resolves range via the
/// world, and applies the scan-capture model.
class BleMedium {
 public:
  BleMedium(sim::World& world, const Calibration& cal)
      : world_(world), cal_(cal) {}
  BleMedium(const BleMedium&) = delete;
  BleMedium& operator=(const BleMedium&) = delete;

  void attach(BleRadio* radio);
  void detach(BleRadio* radio);

  /// Deliver `payload` from `from` to every powered, scanning radio in range
  /// that wins its capture trial. A `reliable_burst` (fast-advertising
  /// repetition, used for datagrams) bypasses the capture trial: repeating
  /// the event across the window makes capture all but certain.
  void broadcast(const BleRadio& from, const Bytes& payload,
                 bool reliable_burst = false);

  sim::World& world() { return world_; }
  const Calibration& calibration() const { return cal_; }

  /// Total advertisements delivered (for tests/telemetry).
  std::uint64_t delivered_count() const { return delivered_; }

 private:
  sim::World& world_;
  const Calibration& cal_;
  std::vector<BleRadio*> radios_;
  /// Grid-backed delivery: broadcast() asks the world for candidate nodes in
  /// range and resolves them to radios here instead of scanning every
  /// attached radio. Indexed directly by NodeId (ids are dense); a node may
  /// host several radios (kept in attach order).
  std::vector<std::vector<BleRadio*>> radios_by_node_;
  std::vector<NodeId> scratch_nodes_;  // reused query buffer
  std::uint64_t delivered_ = 0;
};

}  // namespace omni::radio
