// Bluetooth Low Energy model: connection-less advertising and scanning.
//
// Models what the paper's BlueZ-based prototype used: periodic advertisement
// broadcasts (the carrier for Omni context and address beacons) plus a
// fast-advertising path for pushing a small datagram to neighbors. Payload
// sizes honour the legacy 31-byte advertisement ceiling; the Bluetooth 5
// extended-advertising flag (the paper's future-work item) raises it.
//
// Energy: scanning is a level charge (scan duty * 7.0 mA); every advertising
// event charges 8.2 mA for the event duration — matching the paper's Table 3.
//
// Parallel engine: BLE is the sharded medium. A broadcast runs on the
// transmitting node's shard; it resolves candidates against a barrier-
// maintained scan-state snapshot, draws capture trials from the sender's own
// RNG stream, and records one pending delivery per winning radio, due one
// advertising event (min_latency()) in the future — the strictly positive
// latency the simulator's conservative lookahead is derived from. At the
// window barrier the medium flushes the recorded winners into one sweep
// event per (delivery instant, receiving node), owned by the receiver, so a
// fire that reaches seven neighbors costs one batched event per neighbor
// instead of seven mailbox posts through the serial merge.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "radio/calibration.h"
#include "radio/energy_meter.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::radio {

class BleMedium;

/// Identifier for an active periodic advertisement on one radio.
using AdvertisementId = std::uint32_t;

class BleRadio {
 public:
  using ReceiveFn = std::function<void(const BleAddress& from, const Bytes&)>;
  using SendDoneFn = std::function<void(Status)>;

  BleRadio(BleMedium& medium, sim::Simulator& sim, EnergyMeter& meter,
           NodeId node, const Calibration& cal);
  ~BleRadio();
  BleRadio(const BleRadio&) = delete;
  BleRadio& operator=(const BleRadio&) = delete;

  const BleAddress& address() const { return address_; }
  NodeId node() const { return node_; }
  bool powered() const { return powered_; }
  const Calibration& calibration() const { return cal_; }
  sim::Simulator& simulator() { return sim_; }

  /// Power the controller on/off. Off cancels advertisements and scanning.
  void set_powered(bool on);

  /// Notified after every power-state change (protocol layers use this to
  /// report technology status to the Omni Manager).
  using PowerFn = std::function<void(bool powered)>;
  void set_power_handler(PowerFn fn) { on_power_ = std::move(fn); }

  /// Rotate to a fresh (resolvable-private-style) address, as BLE privacy
  /// features periodically do. Running advertisements continue under the
  /// new address; the address-change handler fires so protocol layers can
  /// report it upward (paper §3.2: a response is generated "when ... the
  /// address changes").
  void rotate_address();
  using AddressFn = std::function<void(const BleAddress& fresh)>;
  void set_address_handler(AddressFn fn) { on_address_ = std::move(fn); }

  /// Enable the scanner at a duty cycle in (0, 1]. Received advertisements
  /// (from in-range advertisers, subject to capture probability * duty) are
  /// delivered to the receive handler. With `slotted` set the duty is
  /// realized as a deterministic open-slot schedule instead of an
  /// independent per-advertisement thinning trial: openness of each fixed
  /// 100 ms slot follows a receiver-keyed golden-ratio rotation, so a
  /// periodic advertiser on the beacon lattice is heard with bounded miss
  /// runs (at most O(1/duty) consecutive losses) rather than geometric
  /// tails. The adaptive discovery scheduler uses slotted scanning so its
  /// hint-scaled peer-expiry horizon is never outrun by an unlucky streak;
  /// plain duty keeps the historical Bernoulli semantics byte-for-byte.
  void set_scanning(bool enabled, double duty = 1.0, bool slotted = false);
  bool scanning() const { return scanning_; }
  double scan_duty() const { return scan_duty_; }
  bool scan_slotted() const { return scan_slotted_; }

  void set_receive_handler(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Maximum advertisement payload under the current calibration.
  std::size_t max_payload() const;

  /// Begin a periodic advertisement. Fails if the payload exceeds
  /// max_payload() or the radio is off.
  Result<AdvertisementId> start_advertising(Bytes payload, Duration interval);

  /// Replace payload and/or interval of an existing advertisement.
  Status update_advertising(AdvertisementId id, Bytes payload,
                            Duration interval);

  Status stop_advertising(AdvertisementId id);
  std::size_t active_advertisements() const { return advertisements_.size(); }

  /// Push one datagram via fast advertising: broadcast to in-range scanners
  /// after the fast-advertising latency, then report completion.
  /// With `deterministic_latency` (the default) the delay is the analytic
  /// mean (interval/2 + event); otherwise it is sampled uniformly.
  Status send_datagram(Bytes payload, SendDoneFn done,
                       bool deterministic_latency = true);

  /// Called by the medium when an in-range advertisement arrives.
  void deliver(const BleAddress& from, const Bytes& payload);

 private:
  struct Advertisement {
    // Immutable once set (replaced wholesale on update): in-flight delivery
    // events share it, and every fire broadcasts it without copying.
    std::shared_ptr<const Bytes> payload;
    Duration interval;
    sim::EventHandle next_event;
  };

  void schedule_adv(AdvertisementId id, Duration delay);
  void fire_adv(AdvertisementId id);
  void apply_scan_level();
  Advertisement* find_adv(AdvertisementId id);

  /// The medium assigns uid_ at attach and fires advertisements by
  /// descriptor ({node, uid, adv} — see kEventBleAdvertFire), resolving the
  /// uid back to this radio through its snapshot table.
  friend class BleMedium;

  BleMedium& medium_;
  sim::Simulator& sim_;
  EnergyMeter& meter_;
  NodeId node_;
  const Calibration& cal_;
  BleAddress address_;

  bool powered_ = true;
  bool scanning_ = false;
  double scan_duty_ = 1.0;
  bool scan_slotted_ = false;
  ReceiveFn on_receive_;
  PowerFn on_power_;
  AddressFn on_address_;
  std::uint32_t rotation_count_ = 0;
  std::uint32_t uid_ = 0;  ///< medium-stable id, set by BleMedium::attach
  AdvertisementId next_adv_id_ = 1;
  // A device runs a handful of advertisements (address beacon + a few
  // contexts): a flat vector with linear lookup beats hashing on the
  // per-fire hot path.
  std::vector<std::pair<AdvertisementId, Advertisement>> advertisements_;
};

/// The shared BLE broadcast medium: tracks radios, resolves range via the
/// world, and applies the scan-capture model.
class BleMedium {
 public:
  BleMedium(sim::World& world, const Calibration& cal);
  BleMedium(const BleMedium&) = delete;
  BleMedium& operator=(const BleMedium&) = delete;

  void attach(BleRadio* radio);
  void detach(BleRadio* radio);

  /// Deliver `payload` from `from` to every powered, scanning radio in range
  /// that wins its capture trial, one advertising event from now. A
  /// `reliable_burst` (fast-advertising repetition, used for datagrams)
  /// bypasses the capture trial: repeating the event across the window makes
  /// capture all but certain. Runs in the sender's execution context; trials
  /// draw from the sender's RNG stream against the scan-state snapshot.
  void broadcast(const BleRadio& from,
                 const std::shared_ptr<const Bytes>& payload,
                 bool reliable_burst = false);

  /// Smallest cross-node latency this medium can produce: one advertising
  /// event (the 3-channel sweep airtime) separates every transmission from
  /// its reception. The simulator's conservative lookahead derives from
  /// this (Testbed calls set_lookahead(min_latency())).
  Duration min_latency() const { return cal_.ble_adv_event; }

  /// Called by radios whenever power/scanning/duty changes. Snapshot updates
  /// apply immediately from barrier-serialized contexts and are deferred to
  /// the next window barrier from node-owned events, so concurrent senders
  /// always read a stable snapshot.
  void update_scan_state(BleRadio* radio);

  sim::World& world() { return world_; }
  const Calibration& calibration() const { return cal_; }

  /// Total advertisements delivered (for tests/telemetry). Sums per-shard
  /// counters; call it from barrier-serialized contexts (tests, reports).
  std::uint64_t delivered_count() const;

 private:
  /// Per-radio snapshot entry, mutated only at epoch barriers (attach,
  /// detach, scan-state applies) and read concurrently by senders.
  struct RadioState {
    BleRadio* radio;
    std::uint32_t uid;  ///< stable id; delivery events revalidate against it
    bool scanning;      ///< powered && scanner enabled, at last barrier
    double duty;
    bool slotted;  ///< duty realized as a deterministic slot schedule
  };

  /// One frame on the air during the current window: the fields every
  /// winner shares. Splitting these out keeps the per-winner record at 12
  /// bytes and takes one payload refcount per transmission instead of one
  /// per receiver.
  struct PendingTx {
    TimePoint at;  ///< delivery instant (transmission + min_latency)
    NodeId src;    ///< transmitting node (canonical-order key)
    BleAddress from;
    std::shared_ptr<const Bytes> payload;
  };
  /// A capture-trial winner awaiting delivery. Produced on the sender's
  /// shard during a window (one lane per shard, so recording is contention-
  /// free), flushed at the barrier by flush_pending().
  struct PendingWinner {
    NodeId dst;  ///< receiving node (sweep events group on this)
    std::uint32_t rx_uid;
    std::uint32_t tx;  ///< PendingTx index: lane-local until the flush
                       ///< concatenation rebases it
  };

  /// One flushed window's delivery working set (the concatenated
  /// transmissions and the canonically sorted winners), recycled across
  /// windows. Sweep events reference their batch by pool slot packed with
  /// the winner range into one u64, so the event closure is 16 bytes and
  /// stays in std::function's small-buffer storage — no allocation and no
  /// shared_ptr refcount traffic per sweep event. `remaining` counts the
  /// batch's unfinished sweep events (decremented on receiver shards, read
  /// at the flush barrier); a batch is reused once it reaches zero.
  struct SweepBatch {
    std::vector<PendingTx> txs;
    std::vector<PendingWinner> winners;
    std::atomic<std::uint32_t> remaining{0};
  };

  /// Flattened broadcast fan-out for one sender: every scanning radio in
  /// range minus the sender itself, in the exact order the uncached walk
  /// visits them (ascending node id, attach order within a node), so the
  /// capture-trial RNG draw sequence is identical either way. Rebuilt when
  /// the sender's neighborhood fingerprint (per-region epochs — churn in
  /// distant regions leaves it untouched), its home position, or the medium
  /// snapshot epoch move; only consulted while the world is static and no
  /// fault plan is armed (fault draws are per-node, which the flattened walk
  /// cannot reproduce).
  struct FanoutCandidate {
    BleRadio* radio;
    std::uint32_t uid;
    NodeId node;
    double duty;
    bool slotted;
  };
  struct FanoutCache {
    std::uint64_t nb_epoch = 0;  // 0 = never built
    std::uint64_t medium_epoch = 0;
    sim::Vec2 center;
    std::vector<FanoutCandidate> cands;
  };

  void apply_scan_state(BleRadio* radio);
  /// Resolve a (node, uid) descriptor reference back to a live radio;
  /// nullptr if it detached since the descriptor was scheduled.
  BleRadio* find_radio(NodeId node, std::uint32_t uid);
  /// Descriptor dispatch (registered in the constructor): advert fires,
  /// sweep batches, and deferred scan-state applies arrive as typed events
  /// instead of `this`-capturing closures.
  static void advert_fire_handler(void* ctx, sim::Simulator& sim,
                                  const sim::EventDesc& d);
  static void sweep_handler(void* ctx, sim::Simulator& sim,
                            const sim::EventDesc& d);
  static void scan_apply_handler(void* ctx, sim::Simulator& sim,
                                 const sim::EventDesc& d);
  void deliver(NodeId node, std::uint32_t rx_uid, const BleAddress& from,
               const Bytes& payload);
  /// Run one sweep event: slot(16) | begin(24) | end(24), see flush_pending.
  void run_sweep(std::uint64_t packed);
  /// deliver() minus the per-reception shard-lane counter bump; returns
  /// whether the radio was still attached. deliver_batch counts locally and
  /// settles its lane counter once per sweep event.
  bool deliver_uncounted(NodeId node, std::uint32_t rx_uid,
                         const BleAddress& from, const Bytes& payload);
  /// Barrier hook: sort this window's recorded winners into canonical
  /// (receiver, time, sender) order and schedule one sweep event per
  /// (delivery instant, receiver) run of the sorted batch.
  void flush_pending();
  void deliver_batch(const std::vector<PendingTx>& txs,
                     const std::vector<PendingWinner>& batch,
                     std::size_t begin, std::size_t end);

  /// Per-shard working set, padded to a cache line: the pending transmission
  /// and winner lanes written while broadcasting and the delivered counter
  /// bumped on every reception. Shards touch only their own Lane during
  /// windows — without the padding, adjacent vector headers and counters
  /// ping-pong a shared line across every core.
  struct alignas(64) Lane {
    std::vector<PendingTx> txs;
    std::vector<PendingWinner> winners;
    std::uint64_t delivered = 0;
  };

  sim::World& world_;
  const Calibration& cal_;
  /// Snapshot table indexed by NodeId (ids are dense); a node may host
  /// several radios (kept in attach order).
  std::vector<std::vector<RadioState>> radios_by_node_;
  std::uint32_t next_uid_ = 1;
  /// Index nshards_ is the barrier-serialized global lane.
  std::vector<Lane> lanes_;
  /// Recycled flush batches (see SweepBatch). Sweeps fire up to one
  /// lookahead after the barrier — past later flushes — so a slot is only
  /// reused once its `remaining` countdown hits zero. The pool stabilizes
  /// at the number of windows in flight (a few), all reclaimed at teardown
  /// via the owning unique_ptrs.
  std::vector<std::unique_ptr<SweepBatch>> sweep_batches_;
  /// Reused counting-scatter scratch (flush_pending): per-receiver bucket
  /// boundaries and the scatter cursor.
  std::vector<std::uint32_t> bucket_starts_;
  std::vector<std::uint32_t> bucket_fill_;
  /// Per-sender fault-draw salts (one frame counter per node). A node's
  /// broadcasts all run on its own shard, so each slot is single-writer and
  /// the sequence — and with it every fault draw — is thread-count
  /// independent. Sized in attach() (barrier-serialized).
  std::vector<std::uint64_t> fault_salts_;
  /// Fan-out caches indexed by sender radio uid (see FanoutCache), plus the
  /// medium's snapshot epoch, bumped whenever the RadioState table changes
  /// (attach/detach/apply_scan_state — all barrier-serialized). A sender's
  /// broadcasts all run on its own shard, so each cache slot stays
  /// single-writer during windows.
  std::vector<FanoutCache> fanout_by_uid_;
  std::uint64_t medium_epoch_ = 1;
};

}  // namespace omni::radio
