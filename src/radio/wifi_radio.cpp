#include "radio/wifi_radio.h"

#include "obs/omniscope.h"
#include "radio/mesh.h"

namespace omni::radio {

WifiRadio::WifiRadio(WifiSystem& system, EnergyMeter& meter, NodeId node)
    : system_(system),
      sim_(system.simulator()),
      meter_(meter),
      node_(node),
      cal_(system.calibration()),
      address_(MeshAddress::from_node(node)),
      rx_charger_(meter, system.calibration().wifi_receive_ma,
                  obs::EnergyRail::kWifi),
      tx_charger_(meter, system.calibration().wifi_send_ma,
                  obs::EnergyRail::kWifi) {
  system_.attach(this);
}

WifiRadio::~WifiRadio() {
  // Callbacks may point at protocol layers that are already gone.
  power_handlers_.clear();
  handlers_.clear();
  set_powered(false);
  system_.detach(this);
}

void WifiRadio::apply_standby_level() {
  meter_.set_level("wifi.standby", powered_ ? cal_.wifi_standby_ma : 0.0,
                   obs::EnergyRail::kWifi);
}

void WifiRadio::set_powered(bool on) {
  if (powered_ == on) return;
  powered_ = on;
  if (!on) {
    leave();
    // Abort any queued management operations.
    std::deque<PendingOp> dropped;
    dropped.swap(pending_ops_);
    op_in_progress_ = false;
    for (auto& op : dropped) {
      if (op.kind == PendingOp::Kind::kScan && op.scan_done) {
        op.scan_done({});
      } else if (op.kind == PendingOp::Kind::kJoin && op.join_done) {
        op.join_done(Status::error("radio powered off"));
      }
    }
  }
  apply_standby_level();
  for (const auto& handler : power_handlers_) handler(powered_);
}

void WifiRadio::scan(ScanFn done) {
  PendingOp op{PendingOp::Kind::kScan, std::move(done), nullptr, nullptr};
  enqueue_op(std::move(op));
}

void WifiRadio::join(MeshNetwork& mesh, JoinFn done) {
  PendingOp op{PendingOp::Kind::kJoin, nullptr, std::move(done), &mesh};
  enqueue_op(std::move(op));
}

void WifiRadio::enqueue_op(PendingOp op) {
  if (!powered_) {
    if (op.kind == PendingOp::Kind::kScan && op.scan_done) {
      op.scan_done({});
    } else if (op.kind == PendingOp::Kind::kJoin && op.join_done) {
      op.join_done(Status::error("radio is off"));
    }
    return;
  }
  pending_ops_.push_back(std::move(op));
  if (!op_in_progress_) start_next_op();
}

void WifiRadio::start_next_op() {
  if (pending_ops_.empty()) {
    op_in_progress_ = false;
    return;
  }
  op_in_progress_ = true;
  PendingOp op = std::move(pending_ops_.front());
  pending_ops_.pop_front();

  if (op.kind == PendingOp::Kind::kScan) {
    meter_.charge_for(cal_.wifi_scan_duration, cal_.wifi_scan_ma,
                      obs::EnergyRail::kWifi);
    if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc != nullptr &&
                                               sc->recording()) {
      sc->count_on(node_, sc->core().wifi_scans);
      sc->complete_on(node_, obs::Cat::kWifiScan, cal_.wifi_scan_duration);
    }
    sim_.after(cal_.wifi_scan_duration,
               [this, done = std::move(op.scan_done)] {
                 std::vector<MeshNetwork*> found;
                 if (powered_) found = system_.visible_meshes(*this);
                 op_in_progress_ = false;
                 if (done) done(std::move(found));
                 if (!op_in_progress_) start_next_op();
               });
    return;
  }

  // Join: peering + SAE authentication.
  meter_.charge_for(cal_.wifi_join_duration, cal_.wifi_connect_ma,
                    obs::EnergyRail::kWifi);
  if (obs::Omniscope* sc = OMNI_SCOPE(sim_); sc != nullptr &&
                                             sc->recording()) {
    sc->complete_on(node_, obs::Cat::kWifiJoin, cal_.wifi_join_duration);
  }
  sim_.after(cal_.wifi_join_duration,
             [this, mesh = op.target, done = std::move(op.join_done)] {
               Status status = Status::ok();
               if (!powered_) {
                 status = Status::error("radio powered off during join");
               } else {
                 if (mesh_ != nullptr && mesh_ != mesh) leave();
                 if (mesh_ != mesh) {
                   mesh->add_member(*this);
                   mesh_ = mesh;
                 }
               }
               op_in_progress_ = false;
               if (done) done(status);
               if (!op_in_progress_) start_next_op();
             });
}

void WifiRadio::leave() {
  if (mesh_ == nullptr) return;
  MeshNetwork* m = mesh_;
  mesh_ = nullptr;
  m->remove_member(*this);
}

void WifiRadio::deliver_datagram(const MeshAddress& from,
                                 const Bytes& payload, bool multicast) {
  if (!powered_) return;
  for (const auto& handler : handlers_) handler(from, payload, multicast);
}

}  // namespace omni::radio
