#include "radio/wifi_system.h"

#include <algorithm>

#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni::radio {

WifiSystem::WifiSystem(sim::World& world, const Calibration& cal)
    : world_(world), cal_(cal) {}

WifiSystem::~WifiSystem() = default;

MeshNetwork& WifiSystem::create_mesh(std::string name) {
  meshes_.push_back(std::make_unique<MeshNetwork>(*this, std::move(name)));
  return *meshes_.back();
}

MeshNetwork* WifiSystem::find_mesh(const std::string& name) const {
  for (const auto& m : meshes_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

void WifiSystem::detach(WifiRadio* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
}

std::vector<MeshNetwork*> WifiSystem::visible_meshes(
    const WifiRadio& from) const {
  std::vector<MeshNetwork*> out;
  for (const auto& m : meshes_) {
    for (WifiRadio* member : m->members()) {
      if (member == &from) continue;
      if (!member->powered()) continue;
      if (world_.in_range(from.node(), member->node(), cal_.wifi_range_m)) {
        out.push_back(m.get());
        break;
      }
    }
  }
  return out;
}

}  // namespace omni::radio
