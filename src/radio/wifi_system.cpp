#include "radio/wifi_system.h"

#include <algorithm>

#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni::radio {

WifiSystem::WifiSystem(sim::World& world, const Calibration& cal)
    : world_(world), cal_(cal) {}

WifiSystem::~WifiSystem() = default;

MeshNetwork& WifiSystem::create_mesh(std::string name) {
  meshes_.push_back(std::make_unique<MeshNetwork>(*this, std::move(name)));
  return *meshes_.back();
}

MeshNetwork* WifiSystem::find_mesh(const std::string& name) const {
  for (const auto& m : meshes_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

void WifiSystem::detach(WifiRadio* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
}

std::vector<MeshNetwork*> WifiSystem::visible_meshes(
    const WifiRadio& from) const {
  std::vector<MeshNetwork*> out;
  // One grid query covers every mesh: a mesh is visible iff some candidate
  // node in WiFi range hosts one of its powered members.
  world_.nodes_near(from.node(), cal_.wifi_range_m, scratch_nodes_);
  for (const auto& m : meshes_) {
    for (NodeId node : scratch_nodes_) {
      const std::vector<WifiRadio*>* members = m->members_on_node(node);
      if (members == nullptr) continue;
      bool visible = false;
      for (WifiRadio* member : *members) {
        if (member != &from && member->powered()) {
          visible = true;
          break;
        }
      }
      if (visible) {
        out.push_back(m.get());
        break;
      }
    }
  }
  return out;
}

}  // namespace omni::radio
