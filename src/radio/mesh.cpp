#include "radio/mesh.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "radio/wifi_radio.h"
#include "obs/omniscope.h"
#include "sim/fault_plan.h"

namespace omni::radio {

namespace {
/// Bulk multicast fragments served per scheduler event (keeps the event count
/// manageable for multi-megabyte transfers without changing throughput).
constexpr std::uint64_t kFragmentsPerServe = 64;
/// Contention stretch applied to bulk multicast while TCP flows are active.
constexpr double kBulkContentionStretch = 2.0;
/// Channel share bulk multicast claims from TCP while backlogged.
constexpr double kBulkAirtimeFraction = 0.5;
/// Flow endpoints are re-validated (range/membership) this often.
constexpr Duration kFlowValidationPeriod = Duration::millis(500);
}  // namespace

MeshNetwork::MeshNetwork(WifiSystem& system, std::string name)
    : system_(system), name_(std::move(name)) {}

Duration MeshNetwork::min_latency() const {
  return system_.calibration().wifi_rtt * 0.5;
}

const sim::FaultPlan* MeshNetwork::fault_plan() const {
  return system_.world().fault_plan();
}

bool MeshNetwork::fault_partitioned(const WifiRadio& a, const WifiRadio& b,
                                    TimePoint at) const {
  const sim::FaultPlan* plan = fault_plan();
  if (plan == nullptr) return false;
  auto& world = system_.world();
  return plan->partitioned(world.position(a.node()), world.position(b.node()),
                           at);
}

MeshNetwork::~MeshNetwork() {
  validator_.cancel();
  for (auto& [id, flow] : flows_) flow.completion.cancel();
}

void MeshNetwork::add_member(WifiRadio& radio) {
  if (is_member(radio)) return;
  members_.push_back(&radio);
  members_by_node_[radio.node()].push_back(&radio);
}

void MeshNetwork::remove_member(WifiRadio& radio) {
  auto it = std::find(members_.begin(), members_.end(), &radio);
  if (it == members_.end()) return;
  members_.erase(it);
  auto by_node = members_by_node_.find(radio.node());
  if (by_node != members_by_node_.end()) {
    auto& on_node = by_node->second;
    on_node.erase(std::remove(on_node.begin(), on_node.end(), &radio),
                  on_node.end());
    if (on_node.empty()) members_by_node_.erase(by_node);
  }
  fail_flows_involving(radio, "peer left the mesh");
}

const std::vector<WifiRadio*>* MeshNetwork::members_on_node(
    NodeId node) const {
  auto it = members_by_node_.find(node);
  return it == members_by_node_.end() ? nullptr : &it->second;
}

bool MeshNetwork::is_member(const WifiRadio& radio) const {
  return std::find(members_.begin(), members_.end(), &radio) !=
         members_.end();
}

WifiRadio* MeshNetwork::find_member(const MeshAddress& addr) const {
  for (WifiRadio* r : members_) {
    if (r->address() == addr) return r;
  }
  return nullptr;
}

double MeshNetwork::beacon_occupancy_seconds() const {
  return system_.calibration().wifi_multicast_beacon_occupancy.as_seconds();
}

double MeshNetwork::multicast_airtime_fraction() const {
  double frac = bulk_busy_ ? kBulkAirtimeFraction : 0.0;
  for (const auto& [id, f] : periodic_loads_) frac += f;
  return std::min(frac, 0.95);
}

double MeshNetwork::effective_capacity_Bps() const {
  const auto& cal = system_.calibration();
  return cal.wifi_capacity_Bps * (1.0 - multicast_airtime_fraction());
}

double MeshNetwork::current_flow_rate_Bps() const {
  std::size_t started = 0;
  for (const auto& [id, f] : flows_) {
    if (f.started) ++started;
  }
  if (started == 0) return 0;
  return effective_capacity_Bps() / static_cast<double>(started);
}

// --- Unicast TCP -----------------------------------------------------------

Result<FlowId> MeshNetwork::open_flow(WifiRadio& src, const MeshAddress& dst,
                                      std::uint64_t bytes, FlowDoneFn done,
                                      FlowProgressFn progress, Bytes payload) {
  const auto& cal = system_.calibration();
  auto& sim = system_.simulator();
  if (!src.powered() || src.mesh() != this) {
    return Result<FlowId>::error("source radio is not a member of " + name_);
  }
  WifiRadio* peer = find_member(dst);
  if (peer == nullptr) {
    return Result<FlowId>::error("no member with address " + dst.to_string() +
                                 " in " + name_);
  }
  FlowId id = next_flow_id_++;
  Flow flow;
  flow.id = id;
  flow.src = &src;
  flow.dst = peer;
  flow.remaining_bytes = static_cast<double>(bytes);
  flow.total_bytes = bytes;
  flow.done = std::move(done);
  flow.progress = std::move(progress);
  flow.payload = std::move(payload);
  flow.last_settle = sim.now();
  flows_.emplace(id, std::move(flow));
  if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                            sc->recording()) {
    sc->async_begin_on(src.node(), obs::Cat::kFlow, id, bytes);
  }

  bool reachable =
      peer->powered() && system_.world().in_range(src.node(), peer->node(),
                                                  cal.wifi_range_m) &&
      !fault_partitioned(src, *peer, sim.now());
  if (!reachable) {
    // SYN retries time out.
    flows_[id].completion = sim.after(cal.tcp_connect_timeout, [this, id] {
      finish_flow(id, Status::error("connect timeout: peer unreachable"));
    });
    return id;
  }

  Duration setup = cal.wifi_rtt * 3.0 + cal.tcp_setup_overhead;
  flows_[id].completion = sim.after(setup, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    settle_flows();
    it->second.started = true;
    it->second.last_settle = system_.simulator().now();
    recompute_rates();
  });
  return id;
}

void MeshNetwork::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  settle_flows();
  it->second.completion.cancel();
  it->second.done = nullptr;  // cancelled flows report nothing
  finish_flow(id, Status::error("cancelled"));
}

void MeshNetwork::charge_flow_segment(Flow& flow, TimePoint t0, TimePoint t1,
                                      double bytes) {
  if (bytes <= 0) return;
  const auto& cal = system_.calibration();
  double span = (t1 - t0).as_seconds();
  double airtime = bytes / cal.wifi_capacity_Bps;
  double active = airtime + span * cal.wifi_stream_duty;
  double reverse = active * cal.tcp_reverse_activity_factor;
  flow.src->tx_charger().charge_active(t0, t1, active);
  flow.src->rx_charger().charge_active(t0, t1, reverse);
  flow.dst->rx_charger().charge_active(t0, t1, active);
  flow.dst->tx_charger().charge_active(t0, t1, reverse);
}

void MeshNetwork::settle_flows() {
  TimePoint now = system_.simulator().now();
  for (auto& [id, flow] : flows_) {
    if (!flow.started) continue;
    double dt = (now - flow.last_settle).as_seconds();
    if (dt <= 0) continue;
    double moved = std::min(flow.rate_Bps * dt, flow.remaining_bytes);
    flow.remaining_bytes -= moved;
    charge_flow_segment(flow, flow.last_settle, now, moved);
    flow.last_settle = now;
    if (moved > 0 && flow.progress) {
      flow.progress(flow.total_bytes -
                    static_cast<std::uint64_t>(flow.remaining_bytes));
    }
  }
}

void MeshNetwork::recompute_rates() {
  settle_flows();
  double rate = current_flow_rate_Bps();
  for (auto& [id, flow] : flows_) {
    if (!flow.started) continue;
    flow.rate_Bps = rate;
    schedule_completion(flow);
  }
  ensure_validator();
}

void MeshNetwork::schedule_completion(Flow& flow) {
  flow.completion.cancel();
  if (flow.rate_Bps <= 0) return;
  double secs = flow.remaining_bytes / flow.rate_Bps;
  FlowId id = flow.id;
  flow.completion = system_.simulator().after(
      Duration::seconds(secs), [this, id] {
        auto it = flows_.find(id);
        if (it == flows_.end()) return;
        settle_flows();
        it->second.remaining_bytes = 0;  // absorb fp rounding
        finish_flow(id, Status::ok());
      });
}

void MeshNetwork::finish_flow(FlowId id, Status status) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  it->second.completion.cancel();
  if (obs::Omniscope* sc = OMNI_SCOPE(system_.simulator());
      sc != nullptr && sc->recording()) {
    sc->async_end_on(it->second.src->node(), obs::Cat::kFlow, id,
                     status.is_ok() ? 0 : 1);
  }
  FlowDoneFn done = std::move(it->second.done);
  Bytes payload = std::move(it->second.payload);
  WifiRadio* dst = it->second.dst;
  MeshAddress src_addr = it->second.src->address();
  flows_.erase(it);
  recompute_rates();
  if (status.is_ok() && !payload.empty()) {
    dst->deliver_datagram(src_addr, payload, /*multicast=*/false);
  }
  if (done) done(std::move(status));
}

void MeshNetwork::fail_flows_involving(WifiRadio& radio,
                                       const std::string& why) {
  settle_flows();
  std::vector<FlowId> failed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == &radio || flow.dst == &radio) failed.push_back(id);
  }
  for (FlowId id : failed) finish_flow(id, Status::error(why));
}

void MeshNetwork::validate_flow_ranges() {
  const auto& cal = system_.calibration();
  settle_flows();
  std::vector<FlowId> failed;
  for (const auto& [id, flow] : flows_) {
    bool ok = flow.src->powered() && flow.dst->powered() &&
              flow.src->mesh() == this && flow.dst->mesh() == this &&
              system_.world().in_range(flow.src->node(), flow.dst->node(),
                                       cal.wifi_range_m) &&
              !fault_partitioned(*flow.src, *flow.dst,
                                 system_.simulator().now());
    if (!ok) failed.push_back(id);
  }
  for (FlowId id : failed) {
    finish_flow(id, Status::error("link lost: peer out of range"));
  }
}

void MeshNetwork::ensure_validator() {
  if (flows_.empty() || validator_.pending()) return;
  validator_ = system_.simulator().after(kFlowValidationPeriod, [this] {
    validate_flow_ranges();
    ensure_validator();
  });
}

// --- Datagrams and multicast ------------------------------------------------

Status MeshNetwork::send_datagram(WifiRadio& src, const MeshAddress& dst,
                                  Bytes payload) {
  const auto& cal = system_.calibration();
  if (!src.powered() || src.mesh() != this) {
    return Status::error("source radio is not a member of " + name_);
  }
  WifiRadio* peer = find_member(dst);
  if (peer == nullptr) {
    return Status::error("no member with address " + dst.to_string());
  }
  if (!peer->powered() ||
      !system_.world().in_range(src.node(), peer->node(), cal.wifi_range_m)) {
    return Status::error("peer unreachable");
  }
  auto& sim = system_.simulator();
  // Small frame: half an RTT of latency, short tx/rx bursts for energy.
  src.meter().charge_for(Duration::millis(2), cal.wifi_send_ma,
                         obs::EnergyRail::kWifi);
  if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                            sc->recording()) {
    sc->count_on(src.node(), sc->core().mesh_tx);
    sc->instant_on(src.node(), obs::Cat::kMeshTx, peer->node(),
                   payload.size());
  }
  Duration extra = Duration::zero();
  if (const sim::FaultPlan* plan = fault_plan()) {
    // UDP semantics: a faulted frame vanishes (or arrives mangled) and the
    // sender still sees ok — it already paid the tx energy.
    const std::uint64_t salt = ++fault_salt_;
    const TimePoint now = sim.now();
    obs::Omniscope* sc = OMNI_SCOPE(sim);
    if (sc != nullptr && !sc->recording()) sc = nullptr;
    if (fault_partitioned(src, *peer, now)) {
      plan->note_partition_drop();
      if (sc != nullptr) {
        sc->count_on(src.node(), sc->core().fault_partition_drops);
        sc->instant_on(src.node(), obs::Cat::kFaultPartition, peer->node());
      }
      return Status::ok();
    }
    if (plan->dropped(src.node(), peer->node(), sim::FaultRadio::kWifi, now,
                      salt)) {
      plan->note_drop();
      if (sc != nullptr) {
        sc->count_on(src.node(), sc->core().fault_drops);
        sc->instant_on(src.node(), obs::Cat::kFaultDrop, peer->node());
      }
      return Status::ok();
    }
    if (plan->corrupted(src.node(), peer->node(), sim::FaultRadio::kWifi, now,
                        salt)) {
      plan->note_corruption();
      if (sc != nullptr) {
        sc->count_on(src.node(), sc->core().fault_corruptions);
        sc->instant_on(src.node(), obs::Cat::kFaultCorrupt, peer->node());
      }
      sim::FaultPlan::corrupt_in_place(payload, salt);
    }
    extra = plan->extra_latency(src.node(), peer->node(),
                                sim::FaultRadio::kWifi, now);
    if (extra > Duration::zero()) {
      plan->note_delay();
      if (sc != nullptr) {
        sc->count_on(src.node(), sc->core().fault_delays);
        sc->instant_on(src.node(), obs::Cat::kFaultDelay,
                       static_cast<std::uint64_t>(extra.as_micros()));
      }
    }
  }
  MeshAddress from = src.address();
  sim.after(cal.wifi_rtt * 0.5 + extra,
            [peer, from, payload = std::move(payload), &cal] {
              peer->meter().charge_for(Duration::millis(2),
                                       cal.wifi_receive_ma,
                                       obs::EnergyRail::kWifi);
              peer->deliver_datagram(from, payload, /*multicast=*/false);
            });
  return Status::ok();
}

std::vector<WifiRadio*> MeshNetwork::receivers_in_range(
    const WifiRadio& src) const {
  const auto& cal = system_.calibration();
  auto& world = system_.world();
  std::vector<WifiRadio*> out;
  // Grid-backed candidate iteration: ask the world for nodes within range
  // (ascending by id, sender's node included for co-located members) and
  // resolve them through the membership index.
  world.nodes_near(src.node(), cal.wifi_range_m, scratch_nodes_);
  for (NodeId node : scratch_nodes_) {
    auto it = members_by_node_.find(node);
    if (it == members_by_node_.end()) continue;
    for (WifiRadio* r : it->second) {
      if (r == &src || !r->powered()) continue;
      out.push_back(r);
    }
  }
  return out;
}

Status MeshNetwork::multicast_datagram(WifiRadio& src, Bytes payload) {
  const auto& cal = system_.calibration();
  if (!src.powered() || src.mesh() != this) {
    return Status::error("source radio is not a member of " + name_);
  }
  auto& sim = system_.simulator();
  // The sender pays the full driver wakeup + queueing burst.
  src.meter().charge_for(cal.wifi_multicast_send_burst, cal.wifi_send_ma,
                         obs::EnergyRail::kWifi);
  if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                            sc->recording()) {
    sc->count_on(src.node(), sc->core().mesh_tx);
    sc->instant_on(src.node(), obs::Cat::kMeshMulticast, 0, payload.size());
  }
  // Serialize on the channel behind other multicast traffic.
  TimePoint start = std::max(sim.now(), mc_busy_until_);
  Duration occ = cal.wifi_multicast_beacon_occupancy;
  mc_busy_until_ = start + occ;
  MeshAddress from = src.address();
  sim.at(mc_busy_until_, [this, &src, from, payload = std::move(payload)] {
    const auto& c = system_.calibration();
    const sim::FaultPlan* plan = fault_plan();
    const TimePoint now = system_.simulator().now();
    const std::uint64_t salt = plan != nullptr ? ++fault_salt_ : 0;
    for (WifiRadio* rx : receivers_in_range(src)) {
      rx->meter().charge_for(Duration::millis(3), c.wifi_receive_ma,
                             obs::EnergyRail::kWifi);
      if (plan != nullptr) {
        obs::Omniscope* sc = OMNI_SCOPE(system_.simulator());
        if (sc != nullptr && !sc->recording()) sc = nullptr;
        if (fault_partitioned(src, *rx, now)) {
          plan->note_partition_drop();
          if (sc != nullptr) {
            sc->count_on(src.node(), sc->core().fault_partition_drops);
            sc->instant_on(src.node(), obs::Cat::kFaultPartition, rx->node());
          }
          continue;
        }
        if (plan->dropped(src.node(), rx->node(), sim::FaultRadio::kWifi, now,
                          salt)) {
          plan->note_drop();
          if (sc != nullptr) {
            sc->count_on(src.node(), sc->core().fault_drops);
            sc->instant_on(src.node(), obs::Cat::kFaultDrop, rx->node());
          }
          continue;
        }
        if (plan->corrupted(src.node(), rx->node(), sim::FaultRadio::kWifi,
                            now, salt)) {
          plan->note_corruption();
          if (sc != nullptr) {
            sc->count_on(src.node(), sc->core().fault_corruptions);
            sc->instant_on(src.node(), obs::Cat::kFaultCorrupt, rx->node());
          }
          Bytes mangled = payload;
          sim::FaultPlan::corrupt_in_place(mangled, salt);
          rx->deliver_datagram(from, mangled, /*multicast=*/true);
          continue;
        }
      }
      rx->deliver_datagram(from, payload, /*multicast=*/true);
    }
  });
  return Status::ok();
}

Status MeshNetwork::multicast_bulk(WifiRadio& src, std::uint64_t bytes,
                                   Bytes payload, MulticastDoneFn done) {
  const auto& cal = system_.calibration();
  if (!src.powered() || src.mesh() != this) {
    return Status::error("source radio is not a member of " + name_);
  }
  std::uint64_t fragments =
      std::max<std::uint64_t>(1, (bytes + cal.wifi_multicast_mtu - 1) /
                                     cal.wifi_multicast_mtu);
  bulk_queue_.push_back(
      BulkItem{&src, fragments, bytes, std::move(payload), std::move(done)});
  if (!bulk_busy_) {
    bulk_busy_ = true;
    recompute_rates();
    service_bulk_queue();
  }
  return Status::ok();
}

void MeshNetwork::service_bulk_queue() {
  auto& sim = system_.simulator();
  if (bulk_queue_.empty()) {
    if (bulk_busy_) {
      bulk_busy_ = false;
      recompute_rates();
    }
    return;
  }
  const auto& cal = system_.calibration();
  BulkItem& item = bulk_queue_.front();

  if (!item.src->powered() || item.src->mesh() != this) {
    // Sender dropped out: abandon the item.
    MulticastDoneFn done = std::move(item.done);
    bulk_queue_.pop_front();
    if (done) done({});
    service_bulk_queue();
    return;
  }

  std::uint64_t n = std::min<std::uint64_t>(kFragmentsPerServe,
                                            item.fragments_left);
  double frag_air =
      static_cast<double>(cal.wifi_multicast_mtu) * 8.0 /
      cal.wifi_multicast_base_rate_bps;
  double frag_occ = frag_air + cal.wifi_multicast_overhead.as_seconds();
  double stretch = flows_.empty() ? 1.0 : kBulkContentionStretch;
  Duration busy = Duration::seconds(static_cast<double>(n) * frag_occ *
                                    stretch);
  // Energy: actual airtime only; contention/backoff idles at standby draw.
  Duration airtime = Duration::seconds(static_cast<double>(n) * frag_air);
  item.src->meter().charge_for(airtime, cal.wifi_send_ma,
                               obs::EnergyRail::kWifi);
  for (WifiRadio* rx : receivers_in_range(*item.src)) {
    rx->meter().charge_for(airtime, cal.wifi_receive_ma,
                           obs::EnergyRail::kWifi);
  }
  if (obs::Omniscope* sc = OMNI_SCOPE(sim); sc != nullptr &&
                                            sc->recording()) {
    sc->count_on(item.src->node(), sc->core().mesh_tx, n);
    sc->instant_on(item.src->node(), obs::Cat::kMeshMulticast, n,
                   static_cast<std::uint64_t>(n) * cal.wifi_multicast_mtu);
  }

  item.fragments_left -= n;
  bool last = item.fragments_left == 0;
  sim.after(busy, [this, last] {
    if (last) {
      BulkItem item = std::move(bulk_queue_.front());
      bulk_queue_.pop_front();
      auto rx = receivers_in_range(*item.src);
      MeshAddress from = item.src->address();
      const sim::FaultPlan* plan = fault_plan();
      if (plan != nullptr) {
        // A bulk chunk rides many fragments; model faults as whole-transfer
        // loss per receiver (a partitioned or lossy receiver misses it).
        const TimePoint now = system_.simulator().now();
        const std::uint64_t salt = ++fault_salt_;
        auto gone = [&](WifiRadio* r) {
          if (fault_partitioned(*item.src, *r, now)) {
            plan->note_partition_drop();
            return true;
          }
          if (plan->dropped(item.src->node(), r->node(),
                            sim::FaultRadio::kWifi, now, salt)) {
            plan->note_drop();
            return true;
          }
          return false;
        };
        rx.erase(std::remove_if(rx.begin(), rx.end(), gone), rx.end());
      }
      for (WifiRadio* r : rx) {
        r->deliver_datagram(from, item.payload, /*multicast=*/true);
      }
      if (item.done) item.done(std::move(rx));
    }
    service_bulk_queue();
  });
}

PeriodicLoadId MeshNetwork::register_periodic_multicast(Duration period) {
  OMNI_CHECK_MSG(period > Duration::zero(), "periodic load needs period > 0");
  PeriodicLoadId id = next_load_id_++;
  periodic_loads_[id] = beacon_occupancy_seconds() / period.as_seconds();
  recompute_rates();
  return id;
}

void MeshNetwork::unregister_periodic_multicast(PeriodicLoadId id) {
  if (periodic_loads_.erase(id) > 0) recompute_rates();
}

}  // namespace omni::radio
