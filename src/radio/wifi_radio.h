// One device's 802.11 interface.
//
// States: off, or on (drawing WiFi-standby current) with optional in-progress
// management operation (network scan / mesh join) and optional mesh
// membership. Management operations are serialized in a FIFO, matching a real
// single-chain adapter. Bulk traffic energy is charged through per-direction
// BusyChargers (airtime + tail model), capped so concurrent flows never
// charge more than real time.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "radio/calibration.h"
#include "radio/energy_meter.h"
#include "radio/wifi_system.h"
#include "sim/simulator.h"

namespace omni::radio {

class MeshNetwork;

class WifiRadio {
 public:
  using ScanFn = std::function<void(std::vector<MeshNetwork*>)>;
  using JoinFn = std::function<void(Status)>;
  /// Datagram delivery: `multicast` distinguishes multicast receptions from
  /// unicast ones so protocol layers sharing the radio can demux.
  using DatagramFn = std::function<void(const MeshAddress& from,
                                        const Bytes& payload, bool multicast)>;

  WifiRadio(WifiSystem& system, EnergyMeter& meter, NodeId node);
  ~WifiRadio();
  WifiRadio(const WifiRadio&) = delete;
  WifiRadio& operator=(const WifiRadio&) = delete;

  NodeId node() const { return node_; }
  const MeshAddress& address() const { return address_; }
  bool powered() const { return powered_; }

  /// Power the interface. Powering off leaves any mesh, cancels queued
  /// management operations, and drops the standby draw.
  void set_powered(bool on);

  /// Start a full network scan (wifi_scan_duration at wifi_scan_ma); the
  /// callback receives the meshes visible at completion time. Queued behind
  /// any in-progress management operation.
  void scan(ScanFn done);

  /// Peer into `mesh` (wifi_join_duration at wifi_connect_ma). Succeeds even
  /// if no member is currently in range (a lone node can form the mesh).
  void join(MeshNetwork& mesh, JoinFn done);

  /// Leave the current mesh immediately. Active flows through this radio
  /// fail.
  void leave();

  MeshNetwork* mesh() const { return mesh_; }
  bool management_busy() const { return op_in_progress_; }

  /// Add a handler for datagrams delivered by the mesh (multiple protocol
  /// layers may listen on one radio).
  void add_datagram_handler(DatagramFn fn) {
    handlers_.push_back(std::move(fn));
  }

  /// Notified after every power-state change.
  using PowerFn = std::function<void(bool powered)>;
  void add_power_handler(PowerFn fn) {
    power_handlers_.push_back(std::move(fn));
  }
  void clear_datagram_handlers() { handlers_.clear(); }
  void deliver_datagram(const MeshAddress& from, const Bytes& payload,
                        bool multicast);

  BusyCharger& rx_charger() { return rx_charger_; }
  BusyCharger& tx_charger() { return tx_charger_; }
  EnergyMeter& meter() { return meter_; }

  WifiSystem& system() { return system_; }
  sim::Simulator& simulator() { return sim_; }
  const Calibration& calibration() const { return cal_; }

 private:
  struct PendingOp {
    enum class Kind { kScan, kJoin } kind;
    ScanFn scan_done;
    JoinFn join_done;
    MeshNetwork* target = nullptr;
  };

  void enqueue_op(PendingOp op);
  void start_next_op();
  void apply_standby_level();

  WifiSystem& system_;
  sim::Simulator& sim_;
  EnergyMeter& meter_;
  NodeId node_;
  const Calibration& cal_;
  MeshAddress address_;

  bool powered_ = false;
  MeshNetwork* mesh_ = nullptr;
  bool op_in_progress_ = false;
  std::deque<PendingOp> pending_ops_;
  std::vector<DatagramFn> handlers_;
  std::vector<PowerFn> power_handlers_;
  BusyCharger rx_charger_;
  BusyCharger tx_charger_;
};

}  // namespace omni::radio
