// Local fleet launcher: fork coordinator + N workers from one scenario.
//
// run_local_fleet builds one socketpair per worker, forks the workers
// (before any engine thread exists — fork and threads do not mix), runs the
// coordinator in the calling process, and reaps the children. The tool
// (tools/run_distributed), the bench (bench/bench_distributed), and the
// tests all go through this one path.
//
// run_single executes the same scenario in-process with the same
// end-of-run summary hook, producing the 1-process reference that the
// acceptance criterion compares distributed runs against.
#pragma once

#include <string>

#include "common/result.h"
#include "dist/coordinator.h"

namespace omni::dist {

/// Outcome of a verified distributed run (coordinator's view).
struct FleetResult {
  std::string report;  ///< the coordinator replica's report stream
  RunSummary summary;  ///< whole-run summary every process agreed on
  DistStats stats;     ///< coordinator-side wire totals
  /// Coordinator's partitioned-execution view: the mode the fleet finished
  /// in (kFallback when a non-serializable post was hit) and its own
  /// shipped-byte/fallback record. kReplica defaults otherwise.
  PartitionStats partition;
  /// Per-worker end-of-run accounting, indexed by worker id (empty for
  /// replica-mode runs). owned_events across workers sums exactly to the
  /// 1-process node-owner event count — the coordinator enforced it.
  std::vector<PartitionStats> workers;
};

/// Fork cfg.nworkers workers, run the coordinator here, verify every round
/// and the end-of-run summaries, reap the children. cfg.worker_id is
/// ignored (assigned per child); cfg.capture_path applies to the
/// coordinator's link to worker 0; cfg.die_at_round is armed on worker 0
/// only. Any divergence, dead worker, or child failure is the error.
Result<FleetResult> run_local_fleet(const EndpointConfig& cfg);

/// Outcome of the 1-process reference run.
struct SingleResult {
  std::string report;
  RunSummary summary;
  /// Node-owner events the run executed (executed minus global) — the
  /// total a partitioned fleet's per-worker owned_events must sum to.
  std::uint64_t node_events = 0;
};

/// Run the scenario in-process (no protocol) with the identical summary
/// computation. A distributed run is correct iff report and
/// summary.state_digest match this.
Result<SingleResult> run_single(const std::string& scenario_text,
                                unsigned threads = 1, bool observe = false);

/// Parse a --workers value. The whole string must be an integer in
/// [1, 64]; anything else (empty, trailing junk, 0, absurd counts) is an
/// error naming the offending text — the tool turns it into usage + exit 2.
Result<std::uint32_t> parse_worker_count(const std::string& text);

/// Parse a --mode value: "replica" or "partitioned". ("fallback" is an
/// outcome the engine reports, not a mode a run can request.)
Result<RunMode> parse_run_mode(const std::string& text);

}  // namespace omni::dist
