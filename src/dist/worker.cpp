#include "dist/worker.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/hash.h"
#include "net/testbed.h"
#include "scenario/scenario.h"

namespace omni::dist {

Worker::Worker(EndpointConfig cfg, Transport link)
    : cfg_(std::move(cfg)), link_(std::move(link)) {
  partition_.mode = cfg_.mode;
}

bool Worker::fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
    Frame e;
    e.type = FrameType::kError;
    e.sender = cfg_.worker_id;
    e.error = message;
    if (link_.open()) (void)send_frame(link_, e);
  }
  return false;
}

Status Worker::handshake(net::Testbed& bed) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.sender = cfg_.worker_id;
  hello.handshake =
      Handshake{kProtocolVersion, cfg_.worker_id, cfg_.nworkers,
                bed.simulator().seed(), fnv1a64(cfg_.scenario_text),
                bed.simulator().lookahead().as_micros(), cfg_.mode};
  Status s = send_frame(link_, hello);
  if (!s.is_ok()) return s;
  Result<Frame> welcome = recv_frame(link_);
  if (!welcome.is_ok()) {
    return Status::error("handshake: " + welcome.error_message());
  }
  const Frame& w = welcome.value();
  if (w.type == FrameType::kError) {
    return Status::error("coordinator refused: " + w.error);
  }
  if (w.type != FrameType::kWelcome) {
    return Status::error(std::string("handshake: expected Welcome, got ") +
                         frame_type_name(w.type));
  }
  // The Welcome echoes the authoritative config; since the Hello already
  // carried this replica's view, a mismatch here means the coordinator
  // accepted someone else's Hello on this link.
  if (w.handshake.worker != cfg_.worker_id) {
    return Status::error("handshake: Welcome addressed to worker " +
                         std::to_string(w.handshake.worker) + ", this is " +
                         std::to_string(cfg_.worker_id));
  }
  return Status::ok();
}

bool Worker::window_open(std::uint64_t round, TimePoint t, TimePoint w) {
  if (!error_.empty()) return false;
  Result<Frame> fr = recv_frame(link_);
  if (!fr.is_ok()) {
    return fail("round " + std::to_string(round) +
                ": lost the coordinator (" + fr.error_message() + ")");
  }
  const Frame& g = fr.value();
  if (g.type == FrameType::kError) {
    return fail("coordinator aborted: " + g.error);
  }
  if (g.type == FrameType::kFin) {
    // The coordinator thinks the run is over while this replica still has
    // window work — a schedule divergence, not a clean shutdown.
    return fail("round " + std::to_string(round) +
                ": coordinator sent Fin but this replica still has a window "
                "at t=" + std::to_string(t.as_micros()) + "us");
  }
  if (g.type != FrameType::kWindowGrant) {
    return fail("round " + std::to_string(round) + ": expected WindowGrant, "
                "got " + frame_type_name(g.type));
  }
  const WindowBounds local{t.as_micros(), w.as_micros(),
                           bed_->simulator().executed_events(),
                           bed_->simulator().global_events_run()};
  if (g.round != round || !(g.window == local)) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "round %llu: grant diverged from local window "
                  "(round=%llu/%llu t=%lld/%lld w=%lld/%lld "
                  "executed=%llu/%llu globals=%llu/%llu, "
                  "coordinator/worker)",
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(g.round),
                  static_cast<unsigned long long>(round),
                  static_cast<long long>(g.window.t_us),
                  static_cast<long long>(local.t_us),
                  static_cast<long long>(g.window.w_us),
                  static_cast<long long>(local.w_us),
                  static_cast<unsigned long long>(g.window.executed),
                  static_cast<unsigned long long>(local.executed),
                  static_cast<unsigned long long>(g.window.global_events),
                  static_cast<unsigned long long>(local.global_events));
    return fail(buf);
  }
  granted_ = local;
  ++stats_.rounds;
  return true;
}

bool Worker::window_close(std::uint64_t round,
                          std::span<const sim::PostRecord> posts) {
  if (!error_.empty()) return false;
  // Same verdict the coordinator reaches from the same merge; workers
  // record it silently (the coordinator owns the diagnostic).
  (void)note_partition_window(posts, cfg_.nworkers, cfg_.worker_id, round,
                              partition_);
  if (cfg_.die_at_round != 0 && round >= cfg_.die_at_round) {
    // Test knob: vanish without a goodbye, exactly like a killed host. The
    // coordinator must detect the hangup, not wait forever.
    std::_Exit(41);
  }
  Frame done;
  done.type = FrameType::kWindowDone;
  done.sender = cfg_.worker_id;
  done.round = round;
  done.window = WindowBounds{granted_.t_us, granted_.w_us,
                             bed_->simulator().executed_events(),
                             bed_->simulator().global_events_run()};
  for (const sim::PostRecord& p : posts) {
    if (owner_worker(p.src, cfg_.nworkers) == cfg_.worker_id) {
      done.posts.push_back(p);
    }
  }
  stats_.posts_on_wire += done.posts.size();
  Status s = send_frame(link_, done);
  if (!s.is_ok()) {
    return fail("round " + std::to_string(round) + ": WindowDone failed: " +
                s.message());
  }
  return true;
}

Status Worker::finish(net::Testbed& bed) {
  if (!error_.empty()) return Status::error(error_);
  Result<Frame> fr = recv_frame(link_);
  if (!fr.is_ok()) {
    return Status::error("end of run: lost the coordinator (" +
                         fr.error_message() + ")");
  }
  const Frame& f = fr.value();
  if (f.type == FrameType::kError) {
    return Status::error("coordinator aborted: " + f.error);
  }
  if (f.type == FrameType::kWindowGrant) {
    fail("coordinator granted round " + std::to_string(f.round) +
         " beyond this replica's schedule — divergent run lengths");
    return Status::error(error_);
  }
  if (f.type != FrameType::kFin) {
    return Status::error(std::string("end of run: expected Fin, got ") +
                         frame_type_name(f.type));
  }
  summary_ = collect_summary(bed, fnv1a64(report_.str()));
  const std::string diff = diff_summaries(summary_, f.summary);
  if (!diff.empty()) {
    fail("run summary diverged (worker vs coordinator): " + diff);
    return Status::error(error_);
  }
  Frame finished;
  finished.type = FrameType::kFinished;
  finished.sender = cfg_.worker_id;
  finished.round = stats_.rounds;
  finished.summary = summary_;
  partition_.owned_events = bed.simulator().owned_node_events();
  partition_.node_events = bed.simulator().node_events_run();
  finished.partition = partition_;
  return send_frame(link_, finished);
}

Status Worker::run() {
  auto parsed = scenario::Scenario::parse(cfg_.scenario_text);
  if (!parsed.is_ok()) {
    return Status::error("scenario: " + parsed.error_message());
  }
  if (!cfg_.capture_path.empty()) {
    Status s = link_.set_capture(cfg_.capture_path);
    if (!s.is_ok()) return s;
  }
  scenario::RunHooks hooks;
  hooks.on_ready = [this](net::Testbed& bed) -> Status {
    bed_ = &bed;
    // Replica discipline: captures run (they are part of the event
    // schedule), files do not get written.
    bed.set_artifact_writes(false);
    Status s = handshake(bed);
    if (!s.is_ok()) return s;
    if (cfg_.mode != RunMode::kReplica) {
      bed.simulator().set_partition_accounting(cfg_.worker_id, cfg_.nworkers);
    }
    arm_closure_post_injection(bed, cfg_.inject_closure_post_at_us);
    bed.simulator().set_dist_driver(this);
    return Status::ok();
  };
  hooks.on_complete = [this](net::Testbed& bed) { return finish(bed); };
  Status s = parsed.value()->run(report_, cfg_.threads, cfg_.observe,
                                 /*resume_path=*/{}, hooks);
  bed_ = nullptr;
  if (!error_.empty()) return Status::error(error_);
  if (!s.is_ok()) return s;
  stats_.frames = link_.stats().frames_sent + link_.stats().frames_received;
  stats_.bytes = link_.stats().bytes_sent + link_.stats().bytes_received;
  return Status::ok();
}

}  // namespace omni::dist
