// Worker endpoint of a distributed run.
//
// A worker is a full replica of the scenario that owns a slice of the node
// owners (owner % nworkers == worker id). Each conservative window it
// blocks until the coordinator's WindowGrant arrives, verifies the grant
// matches the window its own deterministic engine computed (bounds and
// cumulative counters — any disagreement is a divergence, reported before
// a single event of the window runs), executes, and answers with a
// WindowDone carrying the canonical post records of its authoritative
// owners. At end of run it cross-checks the coordinator's Fin summary
// against its own and replies Finished.
//
// Workers never write artifact files (snapshots, checkpoints, traces) —
// the captures still execute, because they are part of the deterministic
// event schedule, but only the coordinator touches the filesystem.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "common/result.h"
#include "dist/coordinator.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "sim/simulator.h"

namespace omni::dist {

class Worker : public sim::DistDriver {
 public:
  Worker(EndpointConfig cfg, Transport link);

  /// Parse + execute the scenario as worker cfg.worker_id. The report this
  /// replica produces is digested for verification, never printed.
  Status run();

  /// This replica's whole-run summary (valid after a successful run).
  const RunSummary& summary() const { return summary_; }
  const DistStats& stats() const { return stats_; }
  /// Partitioned-execution accounting this worker reported in its Finished
  /// frame (owned node events, shipped descriptor bytes, fallback record).
  const PartitionStats& partition() const { return partition_; }

  bool window_open(std::uint64_t round, TimePoint t, TimePoint w) override;
  bool window_close(std::uint64_t round,
                    std::span<const sim::PostRecord> posts) override;

 private:
  Status handshake(net::Testbed& bed);
  Status finish(net::Testbed& bed);
  /// Record the first fatal diagnostic and best-effort send it upstream.
  bool fail(const std::string& message);

  EndpointConfig cfg_;
  Transport link_;
  net::Testbed* bed_ = nullptr;
  std::ostringstream report_;
  std::string error_;
  WindowBounds granted_;  ///< bounds the coordinator granted this round
  RunSummary summary_;
  DistStats stats_;
  PartitionStats partition_;
};

}  // namespace omni::dist
