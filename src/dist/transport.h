// Frame transport over a local stream socket (socketpair/AF_UNIX).
//
// The wire carries length-prefixed frames: a LEB128 varint byte count, then
// that many bytes of serialized frame container. Reads are fail-soft in the
// spirit of the snapshot loader: EOF, short reads, torn frames, and insane
// lengths all surface as diagnostics naming the peer — never UB, never a
// hang on garbage. Writes loop over partial sends and are SIGPIPE-free
// (MSG_NOSIGNAL), so a dead peer is an error return, not a killed process.
//
// An optional capture tee appends every frame this endpoint sends or
// receives — in processing order — to an `.ofrs` file, using the exact wire
// framing, so `omnisnap inspect` replays what the endpoint saw.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/protocol.h"

namespace omni::dist {

/// Byte/frame counters of one transport, both directions.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;      ///< includes length prefixes
  std::uint64_t bytes_received = 0;  ///< includes length prefixes
};

/// Owns one stream-socket fd and speaks the length-prefixed frame wire
/// format over it. Move-only.
class Transport {
 public:
  /// Refuse anything larger: a corrupted length prefix must fail fast, not
  /// drive a multi-gigabyte allocation.
  static constexpr std::uint64_t kMaxFrameBytes = 64ull << 20;

  Transport() = default;
  /// Takes ownership of `fd` (must be a stream socket — writes use
  /// send(MSG_NOSIGNAL)). `peer` names the other end in diagnostics
  /// ("worker 0", "coordinator").
  Transport(int fd, std::string peer);
  ~Transport();
  Transport(Transport&& other) noexcept;
  Transport& operator=(Transport&& other) noexcept;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  const std::string& peer() const { return peer_; }
  bool open() const { return fd_ >= 0; }

  /// Tee every subsequent send/recv to an `.ofrs` capture file (truncates
  /// an existing file). Pass "" to stop capturing.
  Status set_capture(const std::string& path);

  /// Send one serialized frame (length prefix added here).
  Status send(std::span<const std::uint8_t> frame);

  /// Receive one frame's bytes (length prefix stripped). EOF before any
  /// length byte reports "connection closed"; EOF mid-frame reports a torn
  /// frame with the byte counts.
  Result<std::vector<std::uint8_t>> recv();

  /// Close the fd early (destruction also closes).
  void close();

  const TransportStats& stats() const { return stats_; }

 private:
  int fd_ = -1;
  std::string peer_;
  std::FILE* capture_ = nullptr;
  TransportStats stats_;
};

/// encode + send, with the peer name folded into any error.
Status send_frame(Transport& t, const Frame& f);

/// recv + decode; transport and parse diagnostics both carry the peer
/// name, so a fail-soft codec error ("frame corrupt: checksum mismatch in
/// section 'posts'") propagates to the caller instead of being swallowed.
Result<Frame> recv_frame(Transport& t);

}  // namespace omni::dist
