// Wire protocol of the distributed engine: typed frames over the shared
// sectioned container (common/codec.h) with magic "OFRM".
//
// A distributed run is N+1 replicas of one scenario — a coordinator and N
// workers — advancing in lockstep. Determinism does the heavy lifting:
// every replica computes the same windows, the same global events, and the
// same cross-owner mailbox posts, so the protocol's job is to *prove* that
// lockstep each round rather than to ship work. Each conservative window
// [T, W) is an explicit round:
//
//   coordinator --- WindowGrant{round, t, w, executed, globals} --> workers
//   workers ----- WindowDone{round, bounds-after, posts, digest} --> coordinator
//
// A worker's WindowDone carries the canonical (time, src_owner, seq, dst)
// records of the posts *its authoritative owners* produced (owner % N ==
// worker id); the coordinator compares them byte-for-byte against its own
// merge. Any divergence — bounds, counters, records — fails loudly naming
// the round and the worker. The run ends with Fin/Finished frames carrying
// whole-run summaries (executed events, RNG/report/metrics digests) that
// must agree across every process.
//
// Framing on the wire and in `.ofrs` capture files is identical: a LEB128
// varint byte length followed by one serialized container per frame.
// docs/FORMATS.md is the normative byte-level specification.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/result.h"
#include "sim/simulator.h"

namespace omni::net {
class Testbed;
}

namespace omni::dist {

// The frame codec is the shared container machinery; note the *other*
// omni::ByteWriter (common/byte_buffer.h, big-endian packets) is a
// different animal — dist always means the codec one.
using ::omni::codec::ByteReader;
using ::omni::codec::ByteWriter;
using ::omni::codec::ContainerSpec;
using ::omni::codec::Section;
using ::omni::codec::SectionContainer;

inline constexpr char kFrameMagic[4] = {'O', 'F', 'R', 'M'};
inline constexpr std::uint32_t kFrameVersion = 1;
/// Bumped on any incompatible change to frame semantics (handshake refuses
/// mismatches even when the container version still parses).
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Sender id of the coordinator (workers are 0..nworkers-1).
inline constexpr std::uint32_t kCoordinatorId = 0xffffffffu;

/// Every frame type on the wire. Values are stable protocol constants.
enum class FrameType : std::uint32_t {
  kHello = 1,        ///< worker -> coordinator: identify + prove config
  kWelcome = 2,      ///< coordinator -> worker: accept + authoritative config
  kWindowGrant = 3,  ///< coordinator -> workers: round may execute
  kWindowDone = 4,   ///< worker -> coordinator: round executed + post records
  kFin = 5,          ///< coordinator -> workers: run complete, summary
  kFinished = 6,     ///< worker -> coordinator: summary back, then exit
  kError = 7,        ///< either direction: fatal diagnostic, abort the run
};

/// Human name of a frame type ("WindowGrant", ...; "frame<n>" for unknown
/// values — that pointer is a static scratch).
const char* frame_type_name(FrameType type);

/// Section ids inside a frame container.
enum FrameSectionId : std::uint32_t {
  kFSecHead = 1,       ///< type, sender, round — present in every frame
  kFSecHandshake = 2,  ///< Hello/Welcome payload
  kFSecWindow = 3,     ///< WindowGrant/WindowDone bounds + counters
  kFSecPosts = 4,      ///< WindowDone post records (delta-encoded)
  kFSecSummary = 5,    ///< Fin/Finished whole-run summary
  kFSecError = 6,      ///< Error message
  kFSecDescPosts = 7,  ///< WindowDone: descriptor bodies, aligned with posts
  kFSecPartition = 8,  ///< Finished: partitioned-execution stats
};

/// How a fleet executes each window. Replica mode (the PR-9 engine) runs
/// every event everywhere and uses the wire only to prove agreement.
/// Partitioned mode additionally divides the node-owner event work by
/// ownership (owner % nworkers) and ships cross-owner descriptor posts as
/// data; a window containing a cross-owner *closure* post — which cannot
/// travel as data — drops the fleet loudly into kFallback (replica
/// semantics, diagnostic naming the event kind).
enum class RunMode : std::uint32_t {
  kReplica = 0,
  kPartitioned = 1,
  kFallback = 2,  ///< partitioned run that hit a non-serializable post
};

/// Human name ("replica", "partitioned", "fallback").
const char* run_mode_name(RunMode mode);

/// Human name for a frame section id ("head", "posts", ...).
const char* frame_section_name(std::uint32_t id);

/// The ContainerSpec describing frames (magic "OFRM" + the names above).
const ContainerSpec& frame_spec();

/// Hello/Welcome payload: everything two replicas must agree on before the
/// first round. The coordinator's Welcome is authoritative; a worker whose
/// Hello disagrees is refused with an Error frame.
struct Handshake {
  std::uint32_t protocol = kProtocolVersion;
  std::uint32_t worker = 0;    ///< sender's id (Hello) / addressee (Welcome)
  std::uint32_t nworkers = 1;  ///< fleet size, excluding the coordinator
  std::uint64_t seed = 0;
  std::uint64_t scenario_hash = 0;  ///< fnv1a64 of the scenario source
  std::int64_t lookahead_us = 0;    ///< conservative window span
  /// Execution mode the fleet runs in. Appended to the handshake section;
  /// decoders treat its absence as kReplica, so version-1 streams parse.
  RunMode mode = RunMode::kReplica;
};

/// WindowGrant/WindowDone bounds and cumulative engine counters. A grant
/// carries the counters *before* the window; a done carries them *after* —
/// so each round cross-checks both edges of the window.
struct WindowBounds {
  std::int64_t t_us = 0;  ///< window start (inclusive)
  std::int64_t w_us = 0;  ///< window end (exclusive)
  std::uint64_t executed = 0;       ///< cumulative executed_events()
  std::uint64_t global_events = 0;  ///< cumulative global_events_run()

  friend bool operator==(const WindowBounds&, const WindowBounds&) = default;
};

/// Fin/Finished whole-run summary. state_digest folds the other fields
/// into the one number the ROADMAP acceptance compares across process
/// counts; the individual fields make a mismatch diagnosable.
struct RunSummary {
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  std::uint64_t global_events = 0;
  std::uint64_t mailbox_posts = 0;
  std::uint64_t rng_digest = 0;      ///< fnv over per-owner RNG digests
  std::uint64_t report_digest = 0;   ///< fnv over the accumulated report text
  std::uint64_t metrics_digest = 0;  ///< fnv over the metrics dump (0 = off)
  std::uint64_t state_digest = 0;    ///< fnv folding all of the above

  friend bool operator==(const RunSummary&, const RunSummary&) = default;
};

/// Per-endpoint partitioned-execution accounting, attached to Fin/Finished
/// frames (kFSecPartition). `owned_events` is the endpoint's share of the
/// node-owner events under the ownership map (owner % nworkers) — across a
/// fleet these sum exactly to the 1-process node-owner event count, which
/// is the division-of-work proof the bench records. Decode-optional:
/// version-1 frames simply carry none.
struct PartitionStats {
  RunMode mode = RunMode::kReplica;  ///< mode the endpoint finished in
  std::uint64_t owned_events = 0;    ///< node-owner events this endpoint owns
  std::uint64_t node_events = 0;     ///< all node-owner events it executed
  std::uint64_t desc_post_bytes = 0; ///< descriptor payload bytes shipped
  /// Round of the first non-serializable cross-owner post, plus one
  /// (0 = the run never fell back).
  std::uint64_t fallback_round_plus1 = 0;
  std::uint32_t fallback_kind = 0;  ///< event kind of the offending post

  friend bool operator==(const PartitionStats&, const PartitionStats&) =
      default;
};

/// One decoded frame. Only the members implied by head.type are
/// meaningful; encode_frame writes only those sections.
struct Frame {
  FrameType type = FrameType::kError;
  std::uint32_t sender = kCoordinatorId;
  std::uint64_t round = 0;

  Handshake handshake;                  ///< Hello/Welcome
  WindowBounds window;                  ///< WindowGrant/WindowDone
  std::vector<sim::PostRecord> posts;   ///< WindowDone
  RunSummary summary;                   ///< Fin/Finished
  PartitionStats partition;             ///< Fin/Finished (decode-optional)
  std::string error;                    ///< Error
};

/// Serialize one frame (container bytes only — no stream length prefix).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Parse + validate one frame. Hardened like snapshot loading: any
/// truncation or bit flip yields a diagnostic naming the damaged section.
Result<Frame> decode_frame(std::span<const std::uint8_t> data);

/// fnv1a64 over the canonical encoding of a post-record list — the
/// per-shard digest a WindowDone carries alongside the records themselves.
std::uint64_t posts_digest(std::span<const sim::PostRecord> posts);

/// Which process is authoritative for posts from `src`: worker
/// `src % nworkers`, or the coordinator for global-owner work.
inline std::uint32_t owner_worker(sim::OwnerId src, std::uint32_t nworkers) {
  return src == sim::kGlobalOwner
             ? kCoordinatorId
             : static_cast<std::uint32_t>(src % (nworkers == 0 ? 1 : nworkers));
}

/// Partitioned-mode bookkeeping both endpoint kinds run at window close,
/// over the full merged post list (which every replica computes
/// identically, so every replica reaches the same verdict with no extra
/// wire traffic). Sums into `stats.desc_post_bytes` the payload bytes of
/// cross-process descriptor posts whose source owner maps to `self` — the
/// bytes this endpoint ships as data — and, on the first cross-process
/// *closure* post while `stats.mode` is kPartitioned, drops the mode to
/// kFallback recording the round and kind. Returns that offending post
/// (pointer into `posts`) so the caller can diagnose, or nullptr. No-op in
/// kReplica mode.
const sim::PostRecord* note_partition_window(
    std::span<const sim::PostRecord> posts, std::uint32_t nworkers,
    std::uint32_t self, std::uint64_t round, PartitionStats& stats);

/// Test knob behind EndpointConfig::inject_closure_post_at_us: schedule a
/// node-owner event at `at_us` whose body posts an opaque closure to the
/// global owner — the canonical non-serializable cross-process post. Every
/// replica arms it identically so the fleet stays deterministic; a
/// partitioned fleet falls back loudly, which is exactly what the fallback
/// test wants to observe. at_us <= 0 disables.
void arm_closure_post_injection(net::Testbed& bed, std::int64_t at_us);

/// One-line human summary of a frame (`omnisnap inspect` on a captured
/// .ofrs stream prints one per frame).
std::string describe_frame(const Frame& f);

/// Parse a whole frame stream (varint length prefix + container, repeated)
/// — the `.ofrs` capture file format. Appends every cleanly decoded frame
/// to `out`; the error names the frame index and byte offset where the
/// stream went bad.
Status parse_frame_stream(std::span<const std::uint8_t> data,
                          std::vector<Frame>& out);

/// "" when equal; otherwise a diagnostic naming every differing summary
/// field with both values — the end-of-run mismatch must say *what*
/// diverged (RNG vs report vs counters), not just that something did.
std::string diff_summaries(const RunSummary& a, const RunSummary& b);

/// Whole-run summary of a finished testbed: engine counters + RNG digest,
/// folded with the caller-computed report/metrics digests into
/// state_digest. Every replica computes this locally; equality across the
/// fleet is the end-of-run acceptance check.
RunSummary collect_summary(net::Testbed& bed, std::uint64_t report_digest);

}  // namespace omni::dist
