#include "dist/transport.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

namespace omni::dist {

Transport::Transport(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {}

Transport::~Transport() { close(); }

Transport::Transport(Transport&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      peer_(std::move(other.peer_)),
      capture_(std::exchange(other.capture_, nullptr)),
      stats_(other.stats_) {}

Transport& Transport::operator=(Transport&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    peer_ = std::move(other.peer_);
    capture_ = std::exchange(other.capture_, nullptr);
    stats_ = other.stats_;
  }
  return *this;
}

void Transport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (capture_ != nullptr) {
    std::fclose(capture_);
    capture_ = nullptr;
  }
}

Status Transport::set_capture(const std::string& path) {
  if (capture_ != nullptr) {
    std::fclose(capture_);
    capture_ = nullptr;
  }
  if (path.empty()) return Status::ok();
  capture_ = std::fopen(path.c_str(), "wb");
  if (capture_ == nullptr) {
    return Status::error("cannot open capture file '" + path + "'");
  }
  return Status::ok();
}

namespace {

// Retry-on-EINTR full write; returns false on any hard error.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Retry-on-EINTR read of exactly n bytes. Returns the count actually read
// (short on EOF); a hard error reports -1.
ssize_t read_all(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

void append_capture(std::FILE* f, std::span<const std::uint8_t> prefix,
                    std::span<const std::uint8_t> body) {
  if (f == nullptr) return;
  std::fwrite(prefix.data(), 1, prefix.size(), f);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fflush(f);
}

}  // namespace

Status Transport::send(std::span<const std::uint8_t> frame) {
  if (fd_ < 0) return Status::error("send on closed transport to " + peer_);
  ByteWriter w;
  w.var(frame.size());
  const std::vector<std::uint8_t>& prefix = w.bytes();
  if (!write_all(fd_, prefix.data(), prefix.size()) ||
      !write_all(fd_, frame.data(), frame.size())) {
    return Status::error("send to " + peer_ + " failed: " +
                         std::strerror(errno));
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += prefix.size() + frame.size();
  append_capture(capture_, prefix, frame);
  return Status::ok();
}

Result<std::vector<std::uint8_t>> Transport::recv() {
  using R = Result<std::vector<std::uint8_t>>;
  if (fd_ < 0) return R::error("recv on closed transport from " + peer_);
  // Read the varint length one byte at a time (it is at most 10 bytes and
  // we must not consume past it).
  std::uint64_t len = 0;
  std::vector<std::uint8_t> prefix;
  for (int shift = 0;; shift += 7) {
    if (shift >= 64) {
      return R::error("malformed frame length from " + peer_);
    }
    std::uint8_t b;
    const ssize_t r = read_all(fd_, &b, 1);
    if (r < 0) {
      return R::error("recv from " + peer_ + " failed: " +
                      std::strerror(errno));
    }
    if (r == 0) {
      if (prefix.empty()) {
        return R::error("connection closed by " + peer_);
      }
      return R::error("torn frame from " + peer_ +
                      ": stream ended inside the length prefix");
    }
    prefix.push_back(b);
    len |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
  }
  if (len > kMaxFrameBytes) {
    return R::error("insane frame length " + std::to_string(len) +
                    " from " + peer_ + " (corrupt stream?)");
  }
  std::vector<std::uint8_t> body(static_cast<std::size_t>(len));
  const ssize_t got = read_all(fd_, body.data(), body.size());
  if (got < 0) {
    return R::error("recv from " + peer_ + " failed: " +
                    std::strerror(errno));
  }
  if (static_cast<std::size_t>(got) != body.size()) {
    return R::error("torn frame from " + peer_ + ": got " +
                    std::to_string(got) + " of " +
                    std::to_string(body.size()) + " payload bytes");
  }
  stats_.frames_received += 1;
  stats_.bytes_received += prefix.size() + body.size();
  append_capture(capture_, prefix, body);
  return body;
}

Status send_frame(Transport& t, const Frame& f) {
  return t.send(encode_frame(f));
}

Result<Frame> recv_frame(Transport& t) {
  using R = Result<Frame>;
  Result<std::vector<std::uint8_t>> bytes = t.recv();
  if (!bytes.is_ok()) return R::error(bytes.error_message());
  Result<Frame> f = decode_frame(bytes.value());
  if (!f.is_ok()) {
    return R::error("bad frame from " + t.peer() + ": " + f.error_message());
  }
  return f;
}

}  // namespace omni::dist
