#include "dist/launch.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/hash.h"
#include "dist/worker.h"
#include "net/testbed.h"
#include "scenario/scenario.h"

namespace omni::dist {

Result<FleetResult> run_local_fleet(const EndpointConfig& cfg) {
  using R = Result<FleetResult>;
  const std::uint32_t n = cfg.nworkers;
  if (n == 0) return R::error("a fleet needs at least one worker");

  // All pairs exist before the first fork so every child can close the fds
  // that are not its own.
  std::vector<int> parent_fd(n, -1), child_fd(n, -1);
  for (std::uint32_t i = 0; i < n; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      for (std::uint32_t j = 0; j < i; ++j) {
        ::close(parent_fd[j]);
        ::close(child_fd[j]);
      }
      return R::error("socketpair failed");
    }
    parent_fd[i] = sv[0];
    child_fd[i] = sv[1];
  }

  std::vector<pid_t> pids;
  pids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (std::uint32_t j = 0; j < n; ++j) {
        ::close(parent_fd[j]);
        ::close(child_fd[j]);
      }
      for (pid_t p : pids) ::waitpid(p, nullptr, 0);
      return R::error("fork failed");
    }
    if (pid == 0) {
      // Child: keep only this worker's end of this worker's pair.
      for (std::uint32_t j = 0; j < n; ++j) {
        ::close(parent_fd[j]);
        if (j != i) ::close(child_fd[j]);
      }
      EndpointConfig wcfg = cfg;
      wcfg.worker_id = i;
      wcfg.capture_path.clear();  // only the coordinator captures
      if (i != 0) wcfg.die_at_round = 0;
      Worker worker(std::move(wcfg), Transport(child_fd[i], "coordinator"));
      Status s = worker.run();
      if (!s.is_ok()) {
        std::fprintf(stderr, "[worker %u] %s\n", i, s.message().c_str());
        std::_Exit(1);
      }
      std::_Exit(0);
    }
    pids.push_back(pid);
  }

  FleetResult res;
  Status st = Status::ok();
  {
    std::vector<Transport> links;
    links.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      ::close(child_fd[i]);
      links.emplace_back(parent_fd[i], "worker " + std::to_string(i));
    }
    Coordinator coord(cfg, std::move(links));
    std::ostringstream os;
    st = coord.run(os);
    res.report = os.str();
    res.summary = coord.summary();
    res.stats = coord.stats();
    res.partition = coord.partition();
    res.workers = coord.worker_partitions();
  }  // links close here: a child blocked in recv sees EOF and exits

  std::string child_problem;
  for (std::uint32_t i = 0; i < n; ++i) {
    int wstatus = 0;
    ::waitpid(pids[i], &wstatus, 0);
    const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    if (!clean && child_problem.empty()) {
      child_problem =
          "worker " + std::to_string(i) + " exited with status " +
          std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1);
    }
  }
  if (!st.is_ok()) return R::error(st.message());
  if (!child_problem.empty()) return R::error(child_problem);
  return res;
}

Result<SingleResult> run_single(const std::string& scenario_text,
                                unsigned threads, bool observe) {
  using R = Result<SingleResult>;
  auto parsed = scenario::Scenario::parse(scenario_text);
  if (!parsed.is_ok()) return R::error("scenario: " + parsed.error_message());
  SingleResult res;
  std::ostringstream os;
  scenario::RunHooks hooks;
  // Same digest discipline as the endpoints: summary over the report text
  // accumulated when the last instruction finished.
  hooks.on_complete = [&](net::Testbed& bed) -> Status {
    res.summary = collect_summary(bed, fnv1a64(os.str()));
    res.node_events = bed.simulator().node_events_run();
    return Status::ok();
  };
  Status s = parsed.value()->run(os, threads, observe, /*resume_path=*/{},
                                 hooks);
  if (!s.is_ok()) return R::error(s.message());
  res.report = os.str();
  return res;
}

Result<std::uint32_t> parse_worker_count(const std::string& text) {
  using R = Result<std::uint32_t>;
  char* end = nullptr;
  const long v = text.empty() ? 0 : std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    return R::error("'" + text + "' is not a worker count");
  }
  if (v < 1 || v > 64) {
    return R::error("worker count " + text + " out of range [1, 64]");
  }
  return static_cast<std::uint32_t>(v);
}

Result<RunMode> parse_run_mode(const std::string& text) {
  using R = Result<RunMode>;
  if (text == "replica") return RunMode::kReplica;
  if (text == "partitioned") return RunMode::kPartitioned;
  return R::error("unknown mode '" + text +
                  "' (expected 'replica' or 'partitioned')");
}

}  // namespace omni::dist
