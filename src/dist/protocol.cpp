#include "dist/protocol.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "net/testbed.h"

namespace omni::dist {

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kWelcome: return "Welcome";
    case FrameType::kWindowGrant: return "WindowGrant";
    case FrameType::kWindowDone: return "WindowDone";
    case FrameType::kFin: return "Fin";
    case FrameType::kFinished: return "Finished";
    case FrameType::kError: return "Error";
  }
  static thread_local char buf[20];
  std::snprintf(buf, sizeof(buf), "frame%u", static_cast<unsigned>(type));
  return buf;
}

const char* frame_section_name(std::uint32_t id) {
  switch (id) {
    case kFSecHead: return "head";
    case kFSecHandshake: return "handshake";
    case kFSecWindow: return "window";
    case kFSecPosts: return "posts";
    case kFSecSummary: return "summary";
    case kFSecError: return "error";
    case kFSecDescPosts: return "desc-posts";
    case kFSecPartition: return "partition";
    default: {
      static thread_local char buf[16];
      std::snprintf(buf, sizeof(buf), "sec%u", id);
      return buf;
    }
  }
}

const char* run_mode_name(RunMode mode) {
  switch (mode) {
    case RunMode::kReplica: return "replica";
    case RunMode::kPartitioned: return "partitioned";
    case RunMode::kFallback: return "fallback";
  }
  return "mode?";
}

const ContainerSpec& frame_spec() {
  static const ContainerSpec spec = {
      {kFrameMagic[0], kFrameMagic[1], kFrameMagic[2], kFrameMagic[3]},
      kFrameVersion,
      "frame",
      &frame_section_name,
  };
  return spec;
}

namespace {

// Destination owners include kGlobalOwner; bias by one so the sentinel
// encodes as a single varint byte instead of five 0xff's.
std::uint64_t encode_dst(sim::OwnerId dst) {
  return dst == sim::kGlobalOwner ? 0 : static_cast<std::uint64_t>(dst) + 1;
}

sim::OwnerId decode_dst(std::uint64_t enc) {
  return enc == 0 ? sim::kGlobalOwner
                  : static_cast<sim::OwnerId>(enc - 1);
}

void write_posts(const Frame& f, ByteWriter& w) {
  w.var(f.posts.size());
  for (const sim::PostRecord& p : f.posts) {
    // Post times are clamped to >= the window end, so the delta against
    // f.window.w_us is non-negative and small.
    w.var(static_cast<std::uint64_t>(p.at.as_micros() - f.window.w_us));
    w.var(p.src);
    w.var(p.seq);
    w.var(encode_dst(p.dst));
  }
}

// Companion to write_posts, index-aligned with it: every record's descriptor
// body. Keeping this a separate section leaves the version-1 kFSecPosts
// bytes untouched; closures write a bare kind 0.
void write_desc_posts(const Frame& f, ByteWriter& w) {
  w.var(f.posts.size());
  for (const sim::PostRecord& p : f.posts) {
    if (p.kind == sim::kEventClosure) {
      w.var(sim::kEventClosure);
    } else {
      sim::encode_event_desc(w, p.kind, p.psize, p.payload);
    }
  }
}

void write_partition(const PartitionStats& p, ByteWriter& w) {
  w.var(static_cast<std::uint32_t>(p.mode));
  w.var(p.owned_events);
  w.var(p.node_events);
  w.var(p.desc_post_bytes);
  w.var(p.fallback_round_plus1);
  w.var(p.fallback_kind);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  SectionContainer c;
  c.version = kFrameVersion;
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(f.type));
    w.u32(f.sender);
    w.var(f.round);
    c.section(kFSecHead).bytes = w.take();
  }
  switch (f.type) {
    case FrameType::kHello:
    case FrameType::kWelcome: {
      ByteWriter w;
      w.var(f.handshake.protocol);
      w.var(f.handshake.worker);
      w.var(f.handshake.nworkers);
      w.u64(f.handshake.seed);
      w.u64(f.handshake.scenario_hash);
      w.svar(f.handshake.lookahead_us);
      w.var(static_cast<std::uint32_t>(f.handshake.mode));
      c.section(kFSecHandshake).bytes = w.take();
      break;
    }
    case FrameType::kWindowGrant:
    case FrameType::kWindowDone: {
      ByteWriter w;
      w.svar(f.window.t_us);
      w.svar(f.window.w_us);
      w.var(f.window.executed);
      w.var(f.window.global_events);
      c.section(kFSecWindow).bytes = w.take();
      if (f.type == FrameType::kWindowDone) {
        ByteWriter pw;
        write_posts(f, pw);
        c.section(kFSecPosts).bytes = pw.take();
        ByteWriter dw;
        write_desc_posts(f, dw);
        c.section(kFSecDescPosts).bytes = dw.take();
      }
      break;
    }
    case FrameType::kFin:
    case FrameType::kFinished: {
      ByteWriter w;
      w.var(f.summary.executed);
      w.var(f.summary.windows);
      w.var(f.summary.global_events);
      w.var(f.summary.mailbox_posts);
      w.u64(f.summary.rng_digest);
      w.u64(f.summary.report_digest);
      w.u64(f.summary.metrics_digest);
      w.u64(f.summary.state_digest);
      c.section(kFSecSummary).bytes = w.take();
      ByteWriter pw;
      write_partition(f.partition, pw);
      c.section(kFSecPartition).bytes = pw.take();
      break;
    }
    case FrameType::kError: {
      ByteWriter w;
      w.str(f.error);
      c.section(kFSecError).bytes = w.take();
      break;
    }
  }
  return serialize_container(c, frame_spec());
}

namespace {

Status malformed(std::uint32_t id) {
  return Status::error(std::string("frame section '") +
                       frame_section_name(id) + "' is malformed");
}

}  // namespace

Result<Frame> decode_frame(std::span<const std::uint8_t> data) {
  using R = Result<Frame>;
  Result<SectionContainer> parsed = parse_container(data, frame_spec());
  if (!parsed.is_ok()) return R::error(parsed.error_message());
  const SectionContainer& c = parsed.value();

  Frame f;
  const Section* head = c.find(kFSecHead);
  if (head == nullptr) return R::error("frame has no head section");
  {
    ByteReader r(head->bytes);
    f.type = static_cast<FrameType>(r.u32());
    f.sender = r.u32();
    f.round = r.var();
    if (!r.done()) return R::error(malformed(kFSecHead).message());
  }

  // Every type-specific section is required for its type; unknown extra
  // sections are tolerated (forward compatibility), missing required ones
  // are not.
  auto need = [&c](std::uint32_t id) -> Result<const Section*> {
    const Section* s = c.find(id);
    if (s == nullptr) {
      return Result<const Section*>::error(
          std::string("frame is missing its '") + frame_section_name(id) +
          "' section");
    }
    return s;
  };

  switch (f.type) {
    case FrameType::kHello:
    case FrameType::kWelcome: {
      auto s = need(kFSecHandshake);
      if (!s.is_ok()) return R::error(s.error_message());
      ByteReader r(s.value()->bytes);
      f.handshake.protocol = static_cast<std::uint32_t>(r.var());
      f.handshake.worker = static_cast<std::uint32_t>(r.var());
      f.handshake.nworkers = static_cast<std::uint32_t>(r.var());
      f.handshake.seed = r.u64();
      f.handshake.scenario_hash = r.u64();
      f.handshake.lookahead_us = r.svar();
      // Mode was appended after version 1 shipped: absent means replica.
      if (r.remaining() > 0) {
        f.handshake.mode = static_cast<RunMode>(r.var());
      }
      if (!r.done()) return R::error(malformed(kFSecHandshake).message());
      break;
    }
    case FrameType::kWindowGrant:
    case FrameType::kWindowDone: {
      auto s = need(kFSecWindow);
      if (!s.is_ok()) return R::error(s.error_message());
      ByteReader r(s.value()->bytes);
      f.window.t_us = r.svar();
      f.window.w_us = r.svar();
      f.window.executed = r.var();
      f.window.global_events = r.var();
      if (!r.done()) return R::error(malformed(kFSecWindow).message());
      if (f.type == FrameType::kWindowDone) {
        auto ps = need(kFSecPosts);
        if (!ps.is_ok()) return R::error(ps.error_message());
        ByteReader pr(ps.value()->bytes);
        const std::uint64_t n = pr.var();
        // Each record is at least 4 bytes; bound before reserving so a
        // corrupted count cannot drive a giant allocation.
        if (!pr.ok() || n > pr.remaining()) {
          return R::error(malformed(kFSecPosts).message());
        }
        f.posts.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && pr.ok(); ++i) {
          sim::PostRecord p;
          p.at = TimePoint::from_micros(
              f.window.w_us + static_cast<std::int64_t>(pr.var()));
          p.src = static_cast<sim::OwnerId>(pr.var());
          p.seq = pr.var();
          p.dst = decode_dst(pr.var());
          f.posts.push_back(p);
        }
        if (!pr.done()) return R::error(malformed(kFSecPosts).message());
        // Descriptor bodies, index-aligned with the posts above. Optional
        // (version-1 senders omit it), but when present it must cover every
        // record exactly — a count mismatch means a damaged frame.
        if (const Section* ds = c.find(kFSecDescPosts); ds != nullptr) {
          ByteReader dr(ds->bytes);
          const std::uint64_t dn = dr.var();
          if (!dr.ok() || dn != f.posts.size()) {
            return R::error(malformed(kFSecDescPosts).message());
          }
          for (std::uint64_t i = 0; i < dn && dr.ok(); ++i) {
            // Peek the kind: closures are a bare 0, descriptors a full body.
            ByteReader peek = dr;
            if (peek.var() == sim::kEventClosure) {
              dr.var();
              continue;
            }
            sim::EventDesc d;
            if (!sim::decode_event_desc(dr, d)) break;
            f.posts[i].kind = d.kind;
            f.posts[i].psize = d.psize;
            std::memcpy(f.posts[i].payload, d.payload, sim::kEventPayloadMax);
          }
          if (!dr.done()) return R::error(malformed(kFSecDescPosts).message());
        }
      }
      break;
    }
    case FrameType::kFin:
    case FrameType::kFinished: {
      auto s = need(kFSecSummary);
      if (!s.is_ok()) return R::error(s.error_message());
      ByteReader r(s.value()->bytes);
      f.summary.executed = r.var();
      f.summary.windows = r.var();
      f.summary.global_events = r.var();
      f.summary.mailbox_posts = r.var();
      f.summary.rng_digest = r.u64();
      f.summary.report_digest = r.u64();
      f.summary.metrics_digest = r.u64();
      f.summary.state_digest = r.u64();
      if (!r.done()) return R::error(malformed(kFSecSummary).message());
      // Partition stats are decode-optional (absent from version-1 frames).
      if (const Section* ps = c.find(kFSecPartition); ps != nullptr) {
        ByteReader pr(ps->bytes);
        f.partition.mode = static_cast<RunMode>(pr.var());
        f.partition.owned_events = pr.var();
        f.partition.node_events = pr.var();
        f.partition.desc_post_bytes = pr.var();
        f.partition.fallback_round_plus1 = pr.var();
        f.partition.fallback_kind = static_cast<std::uint32_t>(pr.var());
        if (!pr.done()) return R::error(malformed(kFSecPartition).message());
      }
      break;
    }
    case FrameType::kError: {
      auto s = need(kFSecError);
      if (!s.is_ok()) return R::error(s.error_message());
      ByteReader r(s.value()->bytes);
      f.error = r.str();
      if (!r.done()) return R::error(malformed(kFSecError).message());
      break;
    }
    default:
      return R::error("unknown frame type " +
                      std::to_string(static_cast<std::uint32_t>(f.type)));
  }
  return f;
}

std::uint64_t posts_digest(std::span<const sim::PostRecord> posts) {
  ByteWriter w;
  w.var(posts.size());
  for (const sim::PostRecord& p : posts) {
    w.svar(p.at.as_micros());
    w.var(p.src);
    w.var(p.seq);
    w.var(encode_dst(p.dst));
  }
  return fnv1a64(w.bytes());
}

std::string describe_frame(const Frame& f) {
  char buf[256];
  std::string out = frame_type_name(f.type);
  if (f.sender == kCoordinatorId) {
    out += " from=coord";
  } else {
    std::snprintf(buf, sizeof(buf), " from=w%u", f.sender);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " round=%llu",
                static_cast<unsigned long long>(f.round));
  out += buf;
  switch (f.type) {
    case FrameType::kHello:
    case FrameType::kWelcome:
      std::snprintf(buf, sizeof(buf),
                    " proto=%u worker=%u nworkers=%u seed=%llu "
                    "scenario=%016llx lookahead=%lldus",
                    f.handshake.protocol, f.handshake.worker,
                    f.handshake.nworkers,
                    static_cast<unsigned long long>(f.handshake.seed),
                    static_cast<unsigned long long>(f.handshake.scenario_hash),
                    static_cast<long long>(f.handshake.lookahead_us));
      out += buf;
      out += std::string(" mode=") + run_mode_name(f.handshake.mode);
      break;
    case FrameType::kWindowGrant:
    case FrameType::kWindowDone:
      std::snprintf(buf, sizeof(buf),
                    " t=%.6fs w=%.6fs executed=%llu globals=%llu",
                    static_cast<double>(f.window.t_us) / 1e6,
                    static_cast<double>(f.window.w_us) / 1e6,
                    static_cast<unsigned long long>(f.window.executed),
                    static_cast<unsigned long long>(f.window.global_events));
      out += buf;
      if (f.type == FrameType::kWindowDone) {
        std::size_t typed = 0;
        for (const sim::PostRecord& p : f.posts) {
          if (p.kind != sim::kEventClosure) ++typed;
        }
        std::snprintf(buf, sizeof(buf), " posts=%zu typed=%zu digest=%016llx",
                      f.posts.size(), typed,
                      static_cast<unsigned long long>(posts_digest(f.posts)));
        out += buf;
      }
      break;
    case FrameType::kFin:
    case FrameType::kFinished:
      std::snprintf(
          buf, sizeof(buf),
          " executed=%llu windows=%llu globals=%llu posts=%llu "
          "state=%016llx report=%016llx",
          static_cast<unsigned long long>(f.summary.executed),
          static_cast<unsigned long long>(f.summary.windows),
          static_cast<unsigned long long>(f.summary.global_events),
          static_cast<unsigned long long>(f.summary.mailbox_posts),
          static_cast<unsigned long long>(f.summary.state_digest),
          static_cast<unsigned long long>(f.summary.report_digest));
      out += buf;
      if (f.partition.mode != RunMode::kReplica) {
        std::snprintf(buf, sizeof(buf),
                      " mode=%s owned=%llu/%llu desc_bytes=%llu",
                      run_mode_name(f.partition.mode),
                      static_cast<unsigned long long>(f.partition.owned_events),
                      static_cast<unsigned long long>(f.partition.node_events),
                      static_cast<unsigned long long>(
                          f.partition.desc_post_bytes));
        out += buf;
        if (f.partition.fallback_round_plus1 != 0) {
          std::snprintf(
              buf, sizeof(buf), " fallback_round=%llu fallback_kind=%s",
              static_cast<unsigned long long>(
                  f.partition.fallback_round_plus1 - 1),
              sim::event_kind_name(
                  static_cast<sim::EventKind>(f.partition.fallback_kind)));
          out += buf;
        }
      }
      break;
    case FrameType::kError:
      out += " \"" + f.error + "\"";
      break;
  }
  return out;
}

Status parse_frame_stream(std::span<const std::uint8_t> data,
                          std::vector<Frame>& out) {
  std::size_t pos = 0;
  std::size_t index = 0;
  while (pos < data.size()) {
    ByteReader r(data.subspan(pos));
    const std::uint64_t len = r.var();
    if (!r.ok() || len > r.remaining()) {
      return Status::error("frame stream truncated at frame " +
                           std::to_string(index) + " (offset " +
                           std::to_string(pos) + ")");
    }
    const std::size_t body = data.size() - pos - r.remaining();
    Result<Frame> f = decode_frame(
        data.subspan(pos + body, static_cast<std::size_t>(len)));
    if (!f.is_ok()) {
      return Status::error("frame " + std::to_string(index) + " (offset " +
                           std::to_string(pos) + "): " + f.error_message());
    }
    out.push_back(std::move(f).value());
    pos += body + static_cast<std::size_t>(len);
    ++index;
  }
  return Status::ok();
}

std::string diff_summaries(const RunSummary& a, const RunSummary& b) {
  std::string out;
  auto note = [&out](const char* field, std::uint64_t va, std::uint64_t vb,
                     bool hex) {
    if (va == vb) return;
    if (!out.empty()) out += "; ";
    char buf[96];
    if (hex) {
      std::snprintf(buf, sizeof(buf), "%s %016llx vs %016llx", field,
                    static_cast<unsigned long long>(va),
                    static_cast<unsigned long long>(vb));
    } else {
      std::snprintf(buf, sizeof(buf), "%s %llu vs %llu", field,
                    static_cast<unsigned long long>(va),
                    static_cast<unsigned long long>(vb));
    }
    out += buf;
  };
  note("executed", a.executed, b.executed, false);
  note("windows", a.windows, b.windows, false);
  note("global_events", a.global_events, b.global_events, false);
  note("mailbox_posts", a.mailbox_posts, b.mailbox_posts, false);
  note("rng_digest", a.rng_digest, b.rng_digest, true);
  note("report_digest", a.report_digest, b.report_digest, true);
  note("metrics_digest", a.metrics_digest, b.metrics_digest, true);
  note("state_digest", a.state_digest, b.state_digest, true);
  return out;
}

RunSummary collect_summary(net::Testbed& bed, std::uint64_t report_digest) {
  sim::Simulator& sim = bed.simulator();
  RunSummary s;
  s.executed = sim.executed_events();
  s.windows = sim.windows_run();
  s.global_events = sim.global_events_run();
  s.mailbox_posts = sim.mailbox_posts();

  std::vector<std::pair<sim::OwnerId, std::uint64_t>> digests;
  sim.snapshot_rng_digests(digests);
  ByteWriter rw;
  rw.var(digests.size());
  for (const auto& [owner, digest] : digests) {
    rw.var(owner);
    rw.u64(digest);
  }
  s.rng_digest = fnv1a64(rw.bytes());

  s.report_digest = report_digest;
  if (obs::Omniscope* scope = bed.observability(); scope != nullptr) {
    s.metrics_digest = fnv1a64(scope->metrics().dump());
  }

  ByteWriter w;
  w.var(s.executed);
  w.var(s.windows);
  w.var(s.global_events);
  w.var(s.mailbox_posts);
  w.u64(s.rng_digest);
  w.u64(s.report_digest);
  w.u64(s.metrics_digest);
  s.state_digest = fnv1a64(w.bytes());
  return s;
}

const sim::PostRecord* note_partition_window(
    std::span<const sim::PostRecord> posts, std::uint32_t nworkers,
    std::uint32_t self, std::uint64_t round, PartitionStats& stats) {
  if (stats.mode == RunMode::kReplica) return nullptr;
  const sim::PostRecord* offender = nullptr;
  for (const sim::PostRecord& p : posts) {
    if (owner_worker(p.src, nworkers) == owner_worker(p.dst, nworkers)) {
      continue;  // stays on one process; never needs to travel
    }
    if (p.kind != sim::kEventClosure) {
      if (owner_worker(p.src, nworkers) == self) {
        stats.desc_post_bytes += p.psize;
      }
    } else if (stats.mode == RunMode::kPartitioned) {
      // The detection is symmetric on purpose: it reads only the merged
      // post list, so every replica falls back at the same round without
      // any coordination frame.
      stats.mode = RunMode::kFallback;
      stats.fallback_round_plus1 = round + 1;
      stats.fallback_kind = p.kind;
      if (offender == nullptr) offender = &p;
    }
  }
  return offender;
}

void arm_closure_post_injection(net::Testbed& bed, std::int64_t at_us) {
  if (at_us <= 0) return;
  sim::Simulator& sim = bed.simulator();
  sim.ensure_owner(0);
  sim.after_on(0, Duration::micros(at_us),
               [&sim] { sim.after_global(Duration::zero(), [] {}); });
}

}  // namespace omni::dist
