// Coordinator endpoint of a distributed run.
//
// The coordinator is a full replica of the scenario — it runs the serial
// global phase (mesh, mobility, scenario instructions, fault actuation,
// owner kGlobalOwner) exactly like a 1-process run and *additionally*
// drives the round protocol: before each conservative window executes it
// broadcasts a WindowGrant to every worker, and after the barrier it
// collects each worker's WindowDone and byte-compares the worker's
// authoritative post records and counters against its own merge. The
// coordinator's replica is the one that produces the report stream, so a
// fleet whose every round verified clean is *proven* — not assumed — to
// have produced the 1-process report.
//
// Failure modes are loud by design: a worker that dies mid-window surfaces
// as a torn frame/closed connection naming the worker and round; a worker
// that diverged surfaces as a record/counter mismatch naming the round and
// the first divergent record.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "sim/simulator.h"

namespace omni::dist {

/// Configuration shared by both endpoint kinds. The launcher builds one per
/// process from the command line.
struct EndpointConfig {
  std::string scenario_text;  ///< the full scenario source, verbatim
  unsigned threads = 1;       ///< engine threads *inside* this process
  std::uint32_t nworkers = 1;
  std::uint32_t worker_id = 0;  ///< meaningful for workers only
  bool observe = false;         ///< attach an Omniscope to the replica
  std::string capture_path;     ///< tee frames to this .ofrs ("" = off)
  /// Test knob (workers only): _exit(41) right before sending the
  /// WindowDone of this round index — simulates a shard host dying
  /// mid-window. 0 disables.
  std::uint64_t die_at_round = 0;
  /// Execution mode: replica (verify only) or partitioned (divide the
  /// node-owner work by ownership and ship cross-process descriptor posts
  /// as data; non-serializable posts fall back loudly). All endpoints of a
  /// fleet must request the same mode — the handshake enforces it.
  RunMode mode = RunMode::kReplica;
  /// Test knob: at this sim time (µs) schedule a node-owner event that
  /// posts an opaque closure cross-process — the thing partitioned mode
  /// cannot ship — to exercise the fallback path. Every replica arms it
  /// identically. 0 disables.
  std::int64_t inject_closure_post_at_us = 0;
};

/// Wire-level totals of one endpoint's run, summed over its links.
struct DistStats {
  std::uint64_t rounds = 0;         ///< windows granted/acknowledged
  std::uint64_t frames = 0;         ///< frames sent + received
  std::uint64_t bytes = 0;          ///< bytes sent + received (with prefixes)
  std::uint64_t posts_on_wire = 0;  ///< post records carried by WindowDones
};

class Coordinator : public sim::DistDriver {
 public:
  /// `links[i]` talks to worker i; there must be exactly cfg.nworkers.
  Coordinator(EndpointConfig cfg, std::vector<Transport> links);

  /// Parse + execute the scenario as the coordinator replica, writing the
  /// verified report stream to `out` on success. Any handshake, per-round,
  /// or end-of-run divergence is the returned error.
  Status run(std::ostream& out);

  /// Whole-run summary (valid after a successful run); summary().state_digest
  /// is the number the acceptance criterion compares against 1-process runs.
  const RunSummary& summary() const { return summary_; }
  const DistStats& stats() const { return stats_; }
  /// This endpoint's partitioned-execution accounting (mode it finished
  /// in, shipped descriptor bytes, fallback record). kReplica stats when
  /// the run was not partitioned.
  const PartitionStats& partition() const { return partition_; }
  /// Each worker's end-of-run PartitionStats, collected from the Finished
  /// frames (indexed by worker id; empty for replica-mode runs). Their
  /// owned_events sum exactly to this replica's node_events_run() — finish()
  /// enforces it.
  const std::vector<PartitionStats>& worker_partitions() const {
    return worker_partitions_;
  }

  bool window_open(std::uint64_t round, TimePoint t, TimePoint w) override;
  bool window_close(std::uint64_t round,
                    std::span<const sim::PostRecord> posts) override;

 private:
  Status handshake(net::Testbed& bed);
  Status finish(net::Testbed& bed);
  /// Record the first fatal diagnostic and best-effort notify every worker.
  bool fail(const std::string& message);

  EndpointConfig cfg_;
  std::vector<Transport> links_;
  net::Testbed* bed_ = nullptr;  ///< valid between on_ready and run() end
  std::ostringstream report_;
  std::string error_;
  WindowBounds granted_;  ///< bounds of the round currently executing
  RunSummary summary_;
  DistStats stats_;
  PartitionStats partition_;
  std::vector<PartitionStats> worker_partitions_;
};

}  // namespace omni::dist
