#include "dist/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/hash.h"
#include "net/testbed.h"
#include "scenario/scenario.h"

namespace omni::dist {

Coordinator::Coordinator(EndpointConfig cfg, std::vector<Transport> links)
    : cfg_(std::move(cfg)), links_(std::move(links)) {}

bool Coordinator::fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
    Frame e;
    e.type = FrameType::kError;
    e.sender = kCoordinatorId;
    e.error = message;
    // Best effort: a worker blocked in recv gets the reason instead of a
    // bare hangup; one that is already gone just fails the send.
    for (Transport& link : links_) {
      if (link.open()) (void)send_frame(link, e);
    }
  }
  return false;
}

Status Coordinator::handshake(net::Testbed& bed) {
  const std::uint64_t scenario_hash = fnv1a64(cfg_.scenario_text);
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Result<Frame> hello = recv_frame(links_[i]);
    if (!hello.is_ok()) {
      return Status::error("handshake with worker " + std::to_string(i) +
                           ": " + hello.error_message());
    }
    const Frame& h = hello.value();
    if (h.type == FrameType::kError) {
      return Status::error("worker " + std::to_string(i) +
                           " refused to start: " + h.error);
    }
    if (h.type != FrameType::kHello) {
      return Status::error("handshake with worker " + std::to_string(i) +
                           ": expected Hello, got " +
                           frame_type_name(h.type));
    }
    const Handshake& hs = h.handshake;
    std::string mismatch;
    if (hs.protocol != kProtocolVersion) mismatch = "protocol version";
    else if (hs.worker != i) mismatch = "worker id";
    else if (hs.nworkers != cfg_.nworkers) mismatch = "fleet size";
    else if (hs.seed != bed.simulator().seed()) mismatch = "seed";
    else if (hs.scenario_hash != scenario_hash) mismatch = "scenario hash";
    else if (hs.lookahead_us != bed.simulator().lookahead().as_micros()) {
      mismatch = "lookahead";
    }
    if (!mismatch.empty()) {
      const std::string msg = "handshake with worker " + std::to_string(i) +
                              ": " + mismatch + " mismatch";
      Frame e;
      e.type = FrameType::kError;
      e.sender = kCoordinatorId;
      e.error = msg;
      (void)send_frame(links_[i], e);
      return Status::error(msg);
    }
    Frame welcome;
    welcome.type = FrameType::kWelcome;
    welcome.sender = kCoordinatorId;
    welcome.handshake = Handshake{kProtocolVersion, i, cfg_.nworkers,
                                  bed.simulator().seed(), scenario_hash,
                                  bed.simulator().lookahead().as_micros()};
    Status s = send_frame(links_[i], welcome);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

bool Coordinator::window_open(std::uint64_t round, TimePoint t, TimePoint w) {
  if (!error_.empty()) return false;
  granted_ = WindowBounds{t.as_micros(), w.as_micros(),
                          bed_->simulator().executed_events(),
                          bed_->simulator().global_events_run()};
  Frame grant;
  grant.type = FrameType::kWindowGrant;
  grant.sender = kCoordinatorId;
  grant.round = round;
  grant.window = granted_;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Status s = send_frame(links_[i], grant);
    if (!s.is_ok()) {
      return fail("round " + std::to_string(round) + ": granting worker " +
                  std::to_string(i) + " failed: " + s.message());
    }
  }
  ++stats_.rounds;
  return true;
}

bool Coordinator::window_close(std::uint64_t round,
                               std::span<const sim::PostRecord> posts) {
  if (!error_.empty()) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(links_.size());
  std::vector<sim::PostRecord> expected;
  for (std::uint32_t i = 0; i < n; ++i) {
    Result<Frame> done = recv_frame(links_[i]);
    if (!done.is_ok()) {
      // The loud dead-shard path: a worker killed mid-window shows up here
      // as a closed connection or torn frame.
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " is gone (" + done.error_message() +
                  "); its owner shards are dead");
    }
    const Frame& d = done.value();
    if (d.type == FrameType::kError) {
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " aborted: " + d.error);
    }
    if (d.type != FrameType::kWindowDone) {
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " sent " + frame_type_name(d.type) +
                  " where WindowDone was due");
    }
    if (d.round != round) {
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " answered for round " +
                  std::to_string(d.round));
    }
    const WindowBounds after =
        WindowBounds{granted_.t_us, granted_.w_us,
                     bed_->simulator().executed_events(),
                     bed_->simulator().global_events_run()};
    if (!(d.window == after)) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "round %llu: worker %u window state diverged "
                    "(t=%lld/%lld w=%lld/%lld executed=%llu/%llu "
                    "globals=%llu/%llu, worker/coordinator)",
                    static_cast<unsigned long long>(round), i,
                    static_cast<long long>(d.window.t_us),
                    static_cast<long long>(after.t_us),
                    static_cast<long long>(d.window.w_us),
                    static_cast<long long>(after.w_us),
                    static_cast<unsigned long long>(d.window.executed),
                    static_cast<unsigned long long>(after.executed),
                    static_cast<unsigned long long>(d.window.global_events),
                    static_cast<unsigned long long>(after.global_events));
      return fail(buf);
    }
    // The worker is authoritative for posts whose source owner maps to it;
    // its record list must equal this replica's merge, filtered the same
    // way, in the same canonical order.
    expected.clear();
    for (const sim::PostRecord& p : posts) {
      if (owner_worker(p.src, n) == i) expected.push_back(p);
    }
    if (d.posts.size() != expected.size() ||
        posts_digest(d.posts) != posts_digest(expected)) {
      std::size_t k = 0;
      const std::size_t lim = std::min(d.posts.size(), expected.size());
      while (k < lim && d.posts[k] == expected[k]) ++k;
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " post records diverged (" +
                  std::to_string(d.posts.size()) + " vs " +
                  std::to_string(expected.size()) +
                  " records, first difference at index " + std::to_string(k) +
                  ")");
    }
    stats_.posts_on_wire += d.posts.size();
  }
  return true;
}

Status Coordinator::finish(net::Testbed& bed) {
  if (!error_.empty()) return Status::error(error_);
  summary_ = collect_summary(bed, fnv1a64(report_.str()));
  Frame fin;
  fin.type = FrameType::kFin;
  fin.sender = kCoordinatorId;
  fin.round = stats_.rounds;
  fin.summary = summary_;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Status s = send_frame(links_[i], fin);
    if (!s.is_ok()) {
      return Status::error("Fin to worker " + std::to_string(i) +
                           " failed: " + s.message());
    }
  }
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Result<Frame> fr = recv_frame(links_[i]);
    if (!fr.is_ok()) {
      return Status::error("worker " + std::to_string(i) +
                           " vanished before Finished: " +
                           fr.error_message());
    }
    const Frame& f = fr.value();
    if (f.type == FrameType::kError) {
      return Status::error("worker " + std::to_string(i) +
                           " failed at end of run: " + f.error);
    }
    if (f.type != FrameType::kFinished) {
      return Status::error("worker " + std::to_string(i) + " sent " +
                           frame_type_name(f.type) +
                           " where Finished was due");
    }
    const std::string diff = diff_summaries(f.summary, summary_);
    if (!diff.empty()) {
      return Status::error("worker " + std::to_string(i) +
                           " run summary diverged (worker vs coordinator): " +
                           diff);
    }
  }
  return Status::ok();
}

Status Coordinator::run(std::ostream& out) {
  auto parsed = scenario::Scenario::parse(cfg_.scenario_text);
  if (!parsed.is_ok()) {
    return Status::error("scenario: " + parsed.error_message());
  }
  if (!cfg_.capture_path.empty() && !links_.empty()) {
    Status s = links_[0].set_capture(cfg_.capture_path);
    if (!s.is_ok()) return s;
  }
  scenario::RunHooks hooks;
  hooks.on_ready = [this](net::Testbed& bed) -> Status {
    bed_ = &bed;
    Status s = handshake(bed);
    if (!s.is_ok()) return s;
    bed.simulator().set_dist_driver(this);
    return Status::ok();
  };
  hooks.on_complete = [this](net::Testbed& bed) { return finish(bed); };
  Status s = parsed.value()->run(report_, cfg_.threads, cfg_.observe,
                                 /*resume_path=*/{}, hooks);
  bed_ = nullptr;
  // A protocol failure recorded by the driver is the primary diagnostic;
  // the scenario status may just be its echo through on_complete.
  if (!error_.empty()) return Status::error(error_);
  if (!s.is_ok()) return s;
  for (const Transport& link : links_) {
    stats_.frames += link.stats().frames_sent + link.stats().frames_received;
    stats_.bytes += link.stats().bytes_sent + link.stats().bytes_received;
  }
  out << report_.str();
  return Status::ok();
}

}  // namespace omni::dist
