#include "dist/coordinator.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>

#include "common/hash.h"
#include "net/testbed.h"
#include "scenario/scenario.h"

namespace omni::dist {

Coordinator::Coordinator(EndpointConfig cfg, std::vector<Transport> links)
    : cfg_(std::move(cfg)), links_(std::move(links)) {
  partition_.mode = cfg_.mode;
}

bool Coordinator::fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
    Frame e;
    e.type = FrameType::kError;
    e.sender = kCoordinatorId;
    e.error = message;
    // Best effort: a worker blocked in recv gets the reason instead of a
    // bare hangup; one that is already gone just fails the send.
    for (Transport& link : links_) {
      if (link.open()) (void)send_frame(link, e);
    }
  }
  return false;
}

Status Coordinator::handshake(net::Testbed& bed) {
  const std::uint64_t scenario_hash = fnv1a64(cfg_.scenario_text);
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Result<Frame> hello = recv_frame(links_[i]);
    if (!hello.is_ok()) {
      return Status::error("handshake with worker " + std::to_string(i) +
                           ": " + hello.error_message());
    }
    const Frame& h = hello.value();
    if (h.type == FrameType::kError) {
      return Status::error("worker " + std::to_string(i) +
                           " refused to start: " + h.error);
    }
    if (h.type != FrameType::kHello) {
      return Status::error("handshake with worker " + std::to_string(i) +
                           ": expected Hello, got " +
                           frame_type_name(h.type));
    }
    const Handshake& hs = h.handshake;
    std::string mismatch;
    if (hs.protocol != kProtocolVersion) mismatch = "protocol version";
    else if (hs.worker != i) mismatch = "worker id";
    else if (hs.nworkers != cfg_.nworkers) mismatch = "fleet size";
    else if (hs.seed != bed.simulator().seed()) mismatch = "seed";
    else if (hs.scenario_hash != scenario_hash) mismatch = "scenario hash";
    else if (hs.lookahead_us != bed.simulator().lookahead().as_micros()) {
      mismatch = "lookahead";
    }
    else if (hs.mode != cfg_.mode) mismatch = "run mode";
    if (!mismatch.empty()) {
      const std::string msg = "handshake with worker " + std::to_string(i) +
                              ": " + mismatch + " mismatch";
      Frame e;
      e.type = FrameType::kError;
      e.sender = kCoordinatorId;
      e.error = msg;
      (void)send_frame(links_[i], e);
      return Status::error(msg);
    }
    Frame welcome;
    welcome.type = FrameType::kWelcome;
    welcome.sender = kCoordinatorId;
    welcome.handshake = Handshake{kProtocolVersion, i, cfg_.nworkers,
                                  bed.simulator().seed(), scenario_hash,
                                  bed.simulator().lookahead().as_micros(),
                                  cfg_.mode};
    Status s = send_frame(links_[i], welcome);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

bool Coordinator::window_open(std::uint64_t round, TimePoint t, TimePoint w) {
  if (!error_.empty()) return false;
  granted_ = WindowBounds{t.as_micros(), w.as_micros(),
                          bed_->simulator().executed_events(),
                          bed_->simulator().global_events_run()};
  Frame grant;
  grant.type = FrameType::kWindowGrant;
  grant.sender = kCoordinatorId;
  grant.round = round;
  grant.window = granted_;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Status s = send_frame(links_[i], grant);
    if (!s.is_ok()) {
      return fail("round " + std::to_string(round) + ": granting worker " +
                  std::to_string(i) + " failed: " + s.message());
    }
  }
  ++stats_.rounds;
  return true;
}

bool Coordinator::window_close(std::uint64_t round,
                               std::span<const sim::PostRecord> posts) {
  if (!error_.empty()) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(links_.size());
  // Partitioned bookkeeping first, so the fallback diagnostic lands even
  // when a worker turns out to have diverged this same round. The
  // coordinator is the only endpoint that prints it; the workers reach the
  // identical verdict silently from the identical merge.
  if (const sim::PostRecord* bad =
          note_partition_window(posts, n, kCoordinatorId, round, partition_)) {
    char src[24], dst[24];
    if (bad->src == sim::kGlobalOwner) std::snprintf(src, sizeof(src), "global");
    else std::snprintf(src, sizeof(src), "node %u", bad->src);
    if (bad->dst == sim::kGlobalOwner) std::snprintf(dst, sizeof(dst), "global");
    else std::snprintf(dst, sizeof(dst), "node %u", bad->dst);
    std::fprintf(stderr,
                 "dist: round %llu: cross-process post of a '%s' event "
                 "(%s -> %s at t=%lldus) cannot ship as data; "
                 "falling back to replica execution\n",
                 static_cast<unsigned long long>(round),
                 sim::event_kind_name(
                     static_cast<sim::EventKind>(partition_.fallback_kind)),
                 src, dst, static_cast<long long>(bad->at.as_micros()));
  }
  std::vector<sim::PostRecord> expected;
  for (std::uint32_t i = 0; i < n; ++i) {
    Result<Frame> done = recv_frame(links_[i]);
    if (!done.is_ok()) {
      // The loud dead-shard path: a worker killed mid-window shows up here
      // as a closed connection or torn frame.
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " is gone (" + done.error_message() +
                  "); its owner shards are dead");
    }
    const Frame& d = done.value();
    if (d.type == FrameType::kError) {
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " aborted: " + d.error);
    }
    if (d.type != FrameType::kWindowDone) {
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " sent " + frame_type_name(d.type) +
                  " where WindowDone was due");
    }
    if (d.round != round) {
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " answered for round " +
                  std::to_string(d.round));
    }
    const WindowBounds after =
        WindowBounds{granted_.t_us, granted_.w_us,
                     bed_->simulator().executed_events(),
                     bed_->simulator().global_events_run()};
    if (!(d.window == after)) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "round %llu: worker %u window state diverged "
                    "(t=%lld/%lld w=%lld/%lld executed=%llu/%llu "
                    "globals=%llu/%llu, worker/coordinator)",
                    static_cast<unsigned long long>(round), i,
                    static_cast<long long>(d.window.t_us),
                    static_cast<long long>(after.t_us),
                    static_cast<long long>(d.window.w_us),
                    static_cast<long long>(after.w_us),
                    static_cast<unsigned long long>(d.window.executed),
                    static_cast<unsigned long long>(after.executed),
                    static_cast<unsigned long long>(d.window.global_events),
                    static_cast<unsigned long long>(after.global_events));
      return fail(buf);
    }
    // The worker is authoritative for posts whose source owner maps to it;
    // its record list must equal this replica's merge, filtered the same
    // way, in the same canonical order.
    expected.clear();
    for (const sim::PostRecord& p : posts) {
      if (owner_worker(p.src, n) == i) expected.push_back(p);
    }
    if (d.posts.size() != expected.size() ||
        posts_digest(d.posts) != posts_digest(expected)) {
      std::size_t k = 0;
      const std::size_t lim = std::min(d.posts.size(), expected.size());
      while (k < lim && d.posts[k] == expected[k]) ++k;
      return fail("round " + std::to_string(round) + ": worker " +
                  std::to_string(i) + " post records diverged (" +
                  std::to_string(d.posts.size()) + " vs " +
                  std::to_string(expected.size()) +
                  " records, first difference at index " + std::to_string(k) +
                  ")");
    }
    stats_.posts_on_wire += d.posts.size();
  }
  return true;
}

Status Coordinator::finish(net::Testbed& bed) {
  if (!error_.empty()) return Status::error(error_);
  summary_ = collect_summary(bed, fnv1a64(report_.str()));
  partition_.owned_events = bed.simulator().owned_node_events();
  partition_.node_events = bed.simulator().node_events_run();
  Frame fin;
  fin.type = FrameType::kFin;
  fin.sender = kCoordinatorId;
  fin.round = stats_.rounds;
  fin.summary = summary_;
  fin.partition = partition_;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Status s = send_frame(links_[i], fin);
    if (!s.is_ok()) {
      return Status::error("Fin to worker " + std::to_string(i) +
                           " failed: " + s.message());
    }
  }
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    Result<Frame> fr = recv_frame(links_[i]);
    if (!fr.is_ok()) {
      return Status::error("worker " + std::to_string(i) +
                           " vanished before Finished: " +
                           fr.error_message());
    }
    const Frame& f = fr.value();
    if (f.type == FrameType::kError) {
      return Status::error("worker " + std::to_string(i) +
                           " failed at end of run: " + f.error);
    }
    if (f.type != FrameType::kFinished) {
      return Status::error("worker " + std::to_string(i) + " sent " +
                           frame_type_name(f.type) +
                           " where Finished was due");
    }
    const std::string diff = diff_summaries(f.summary, summary_);
    if (!diff.empty()) {
      return Status::error("worker " + std::to_string(i) +
                           " run summary diverged (worker vs coordinator): " +
                           diff);
    }
    worker_partitions_.push_back(f.partition);
  }
  if (cfg_.mode != RunMode::kReplica) {
    // Division-of-work proof: the fallback verdict is deterministic, so
    // every endpoint must have finished in the same mode, and the owned
    // node-event counts of the workers must tile this replica's node-owner
    // total exactly — no event unowned, none owned twice.
    std::uint64_t owned_sum = 0;
    for (std::uint32_t i = 0; i < worker_partitions_.size(); ++i) {
      const PartitionStats& wp = worker_partitions_[i];
      if (wp.mode != partition_.mode) {
        return Status::error(
            "worker " + std::to_string(i) + " finished in " +
            run_mode_name(wp.mode) + " mode, coordinator in " +
            run_mode_name(partition_.mode) +
            " — the fallback verdict was supposed to be deterministic");
      }
      owned_sum += wp.owned_events;
    }
    if (owned_sum != partition_.node_events) {
      return Status::error(
          "partition accounting broken: workers own " +
          std::to_string(owned_sum) + " of " +
          std::to_string(partition_.node_events) +
          " node-owner events (must tile exactly)");
    }
  }
  return Status::ok();
}

Status Coordinator::run(std::ostream& out) {
  auto parsed = scenario::Scenario::parse(cfg_.scenario_text);
  if (!parsed.is_ok()) {
    return Status::error("scenario: " + parsed.error_message());
  }
  if (!cfg_.capture_path.empty() && !links_.empty()) {
    Status s = links_[0].set_capture(cfg_.capture_path);
    if (!s.is_ok()) return s;
  }
  scenario::RunHooks hooks;
  hooks.on_ready = [this](net::Testbed& bed) -> Status {
    bed_ = &bed;
    Status s = handshake(bed);
    if (!s.is_ok()) return s;
    arm_closure_post_injection(bed, cfg_.inject_closure_post_at_us);
    bed.simulator().set_dist_driver(this);
    return Status::ok();
  };
  hooks.on_complete = [this](net::Testbed& bed) { return finish(bed); };
  Status s = parsed.value()->run(report_, cfg_.threads, cfg_.observe,
                                 /*resume_path=*/{}, hooks);
  bed_ = nullptr;
  // A protocol failure recorded by the driver is the primary diagnostic;
  // the scenario status may just be its echo through on_complete.
  if (!error_.empty()) return Status::error(error_);
  if (!s.is_ok()) return s;
  for (const Transport& link : links_) {
    stats_.frames += link.stats().frames_sent + link.stats().frames_received;
    stats_.bytes += link.stats().bytes_sent + link.stats().bytes_received;
  }
  out << report_.str();
  return Status::ok();
}

}  // namespace omni::dist
