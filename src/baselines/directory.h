// Resolution directory for the SA baseline.
//
// The SA stack's WiFi-level resolve query ("who has application id X?") is
// answered by the target device itself on the real testbed. The ritual
// (net/discovery_ritual) models the query's time and energy; this directory
// models the *content* of the response: every SA node registers its
// id -> mesh address mapping at start, and a node that has completed the
// ritual may look a peer up here.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/types.h"

namespace omni::baselines {

class Directory {
 public:
  void register_node(std::uint64_t app_id, MeshAddress address) {
    entries_[app_id] = address;
  }
  void unregister_node(std::uint64_t app_id) { entries_.erase(app_id); }

  std::optional<MeshAddress> lookup(std::uint64_t app_id) const {
    auto it = entries_.find(app_id);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::uint64_t, MeshAddress> entries_;
};

}  // namespace omni::baselines
