#include "baselines/sa_node.h"

#include "baselines/wire.h"

namespace omni::baselines {

SaNode::SaNode(net::Device& device, radio::MeshNetwork& mesh,
               Directory& directory, Options options)
    : device_(device), mesh_(mesh), directory_(directory), options_(options) {
  OMNI_CHECK_MSG(options_.enable_ble || options_.enable_wifi,
                 "SA node needs at least one technology");
}

SaNode::~SaNode() { stop(); }

void SaNode::start() {
  if (started_) return;
  started_ = true;
  if (options_.enable_ble) {
    device_.ble().set_powered(true);
    device_.ble().set_receive_handler(
        [this](const BleAddress& from, const Bytes& frame) {
          if (started_) on_ble_receive(from, frame);
        });
    // The overlay listens continuously on every technology.
    device_.ble().set_scanning(true, 1.0);
  } else {
    device_.ble().set_powered(false);
  }
  if (options_.enable_wifi) {
    device_.wifi().set_powered(true);
    directory_.register_node(self(), device_.wifi().address());
    device_.wifi().add_datagram_handler(
        [this](const MeshAddress& from, const Bytes& frame, bool multicast) {
          if (started_) on_wifi_datagram(from, frame, multicast);
        });
    device_.wifi().join(mesh_, [this](Status s) { joined_ = s.is_ok(); });
    wifi_advert_load_ =
        mesh_.register_periodic_multicast(options_.overlay_interval);
    schedule_wifi_advert(options_.overlay_interval);
    // First rescan at half period, de-phasing it from other periodic work.
    schedule_maintenance(options_.maintenance_scan_period / 2);
  }
  refresh_overlay_adverts();
}

void SaNode::stop() {
  if (!started_) return;
  started_ = false;
  wifi_advert_event_.cancel();
  maintenance_event_.cancel();
  if (wifi_advert_load_ != 0) {
    mesh_.unregister_periodic_multicast(wifi_advert_load_);
    wifi_advert_load_ = 0;
  }
  if (ble_advert_ != 0) {
    device_.ble().stop_advertising(ble_advert_);
    ble_advert_ = 0;
  }
}

void SaNode::schedule_maintenance(Duration delay) {
  if (options_.maintenance_scan_period <= Duration::zero()) return;
  maintenance_event_ = device_.meter().simulator().after(delay, [this] {
    if (!started_) return;
    device_.wifi().scan([](std::vector<radio::MeshNetwork*>) {});
    schedule_maintenance(options_.maintenance_scan_period);
  });
}

void SaNode::refresh_overlay_adverts() {
  if (!options_.enable_ble) return;
  // Overlay beacon = app id + service info (possibly empty). Sent via BLE
  // advertising; the WiFi copy goes out in fire_wifi_advert().
  Bytes frame = frame_broadcast(with_id(self(), advert_info_));
  if (frame.size() > device_.ble().max_payload()) {
    // Service info too large for a BLE advert: the overlay still announces
    // presence (id only) — matching middleware that degrades to presence
    // beacons on constrained links.
    frame = frame_broadcast(with_id(self(), {}));
  }
  if (ble_advert_ == 0) {
    auto adv = device_.ble().start_advertising(std::move(frame),
                                               options_.overlay_interval);
    OMNI_CHECK_MSG(adv.is_ok(), adv.error_message());
    ble_advert_ = adv.value();
  } else {
    Status s = device_.ble().update_advertising(ble_advert_, std::move(frame),
                                                options_.overlay_interval);
    OMNI_CHECK_MSG(s.is_ok(), s.message());
  }
}

void SaNode::schedule_wifi_advert(Duration delay) {
  wifi_advert_event_ = device_.meter().simulator().after(
      delay, [this] { fire_wifi_advert(); });
}

void SaNode::fire_wifi_advert() {
  if (!started_) return;
  if (joined_) {
    mesh_.multicast_datagram(device_.wifi(),
                             frame_broadcast(with_id(self(), advert_info_)));
  }
  schedule_wifi_advert(options_.overlay_interval);
}

void SaNode::advertise(Bytes info, Duration interval) {
  OMNI_CHECK_MSG(started_, "start() first");
  advert_info_ = std::move(info);
  options_.overlay_interval = interval;
  refresh_overlay_adverts();
}

void SaNode::stop_advertising() {
  advert_info_.clear();
  if (started_) refresh_overlay_adverts();
}

void SaNode::send(PeerId dest, Bytes data, SendDoneFn done) {
  OMNI_CHECK_MSG(started_, "start() first");
  auto it = peers_.find(dest);
  if (it == peers_.end()) {
    if (done) done(Status::error("unknown peer"));
    return;
  }
  // QoS-based selection: WiFi when available (throughput), BLE otherwise.
  if (options_.enable_wifi && options_.data_over_wifi) {
    send_via_wifi(dest, std::move(data), std::move(done));
    return;
  }
  send_via_ble(dest, std::move(data), std::move(done));
}

void SaNode::send_via_wifi(PeerId dest, Bytes data, SendDoneFn done) {
  Peer& peer = peers_.at(dest);
  if (peer.on_wifi && peer.wifi_validated) {
    do_wifi_unicast(dest, std::move(data), std::move(done));
    return;
  }
  // No integrated neighbor discovery: resolve the peer at the WiFi level.
  // Sends issued while a resolution is already in flight wait for it rather
  // than spawning rituals of their own.
  auto& waiting = pending_resolution_[dest];
  waiting.emplace_back(std::move(data), std::move(done));
  if (waiting.size() > 1) return;

  // If the service was already discovered over BLE, only the address needs
  // resolving; otherwise the next periodic advertisement must be awaited.
  bool skip_advert_wait = peer.on_ble;
  net::run_discovery_ritual(
      device_.wifi(), mesh_,
      net::RitualOptions{/*wait_for_advertisement=*/!skip_advert_wait},
      [this, dest](Status s) {
        auto pending_it = pending_resolution_.find(dest);
        std::vector<PendingSend> pending;
        if (pending_it != pending_resolution_.end()) {
          pending = std::move(pending_it->second);
          pending_resolution_.erase(pending_it);
        }
        auto fail_all = [&](const std::string& why) {
          for (auto& [data, done] : pending) {
            if (done) done(Status::error(why));
          }
        };
        if (!s.is_ok()) {
          fail_all(s.message());
          return;
        }
        auto it = peers_.find(dest);
        if (it == peers_.end()) {
          fail_all("peer vanished during resolution");
          return;
        }
        // The resolve query's response carries the peer's mesh address.
        auto resolved = directory_.lookup(dest);
        if (!resolved) {
          fail_all("peer did not answer resolution");
          return;
        }
        it->second.on_wifi = true;
        it->second.mesh_address = *resolved;
        it->second.wifi_validated = true;
        for (auto& [data, done] : pending) {
          do_wifi_unicast(dest, std::move(data), std::move(done));
        }
      });
}

void SaNode::do_wifi_unicast(PeerId dest, Bytes data, SendDoneFn done) {
  Peer& peer = peers_.at(dest);
  if (!joined_) {
    if (done) done(Status::error("not joined to mesh"));
    return;
  }
  Bytes payload = frame_unicast_mesh(peer.mesh_address, with_id(self(), data));
  // Evaluate before the call: std::move(payload) below must not race the
  // size() read (argument evaluation order is unspecified).
  std::uint64_t payload_size = payload.size();
  auto shared_done = std::make_shared<SendDoneFn>(std::move(done));
  auto flow = mesh_.open_flow(
      device_.wifi(), peer.mesh_address, payload_size,
      [shared_done](Status s) {
        if (*shared_done) (*shared_done)(std::move(s));
      },
      nullptr, std::move(payload));
  if (!flow.is_ok() && *shared_done) {
    (*shared_done)(Status::error(flow.error_message()));
  }
}

void SaNode::send_via_ble(PeerId dest, Bytes data, SendDoneFn done) {
  Peer& peer = peers_.at(dest);
  if (!peer.on_ble) {
    if (done) done(Status::error("peer not reachable over BLE"));
    return;
  }
  Bytes frame = frame_unicast_ble(peer.ble_address, with_id(self(), data));
  Status s = device_.ble().send_datagram(
      std::move(frame), [done = std::move(done)](Status st) {
        if (done) done(std::move(st));
      });
  OMNI_CHECK_MSG(s.is_ok(), s.message());
}

void SaNode::broadcast_data(Bytes data, SendDoneFn done) {
  OMNI_CHECK_MSG(started_, "start() first");
  if (!options_.enable_wifi || !joined_) {
    if (done) done(Status::error("WiFi multicast unavailable"));
    return;
  }
  Bytes payload = frame_broadcast_data(with_id(self(), data));
  std::uint64_t payload_size = payload.size();
  Status s = mesh_.multicast_bulk(
      device_.wifi(), payload_size, std::move(payload),
      [done = std::move(done)](std::vector<radio::WifiRadio*> receivers) {
        if (!done) return;
        if (receivers.empty()) {
          done(Status::error("no multicast receivers"));
        } else {
          done(Status::ok());
        }
      });
  if (!s.is_ok() && done) done(std::move(s));
}

std::vector<D2dStack::PeerId> SaNode::known_peers() const {
  std::vector<PeerId> out;
  TimePoint now = device_.meter().simulator().now();
  for (const auto& [id, peer] : peers_) {
    if (now - peer.last_seen <= options_.peer_ttl) out.push_back(id);
  }
  return out;
}

void SaNode::on_ble_receive(const BleAddress& from, const Bytes& frame) {
  auto unframed = unframe_ble(frame, device_.ble().address());
  if (!unframed) return;
  auto parsed = split_id(*unframed);
  if (!parsed) return;
  auto [peer_id, payload] = std::move(*parsed);
  if (peer_id == self()) return;
  Peer& peer = peers_[peer_id];
  peer.on_ble = true;
  peer.ble_address = from;
  peer.last_seen = device_.meter().simulator().now();
  bool is_advert = !frame.empty() && frame[0] == kFrameBroadcast;
  if (is_advert) {
    if (on_advert_) on_advert_(peer_id, payload);
  } else {
    if (on_data_) on_data_(peer_id, payload);
  }
}

void SaNode::on_wifi_datagram(const MeshAddress& from, const Bytes& frame,
                              bool multicast) {
  auto unframed = unframe_mesh(frame, device_.wifi().address());
  if (!unframed) return;
  auto parsed = split_id(*unframed);
  if (!parsed) return;
  auto [peer_id, payload] = std::move(*parsed);
  if (peer_id == self()) return;
  Peer& peer = peers_[peer_id];
  peer.on_wifi = true;
  peer.mesh_address = from;
  peer.last_seen = device_.meter().simulator().now();
  if (!multicast) peer.wifi_validated = true;
  bool is_advert = !frame.empty() && frame[0] == kFrameBroadcast;
  if (is_advert) {
    if (on_advert_) on_advert_(peer_id, payload);
  } else {
    if (on_data_) on_data_(peer_id, payload);
  }
}

}  // namespace omni::baselines
