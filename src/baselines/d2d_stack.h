// Common application-facing interface over the three compared stacks:
// State of the Practice (single-technology, hand-coded discovery), State of
// the Art (ubiSOAP-style multi-radio overlay), and Omni.
//
// The paper's applications (Disseminate-like media sharing, PROPHET routing)
// are written once against this interface and run over each stack, exactly
// as the paper's evaluation does.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"

namespace omni::baselines {

class D2dStack {
 public:
  /// Application-level peer identity. Under Omni this is the omni_address;
  /// the baselines embed an equivalent 8-byte application id in their
  /// advertisements (a real app would use a username or install id).
  using PeerId = std::uint64_t;

  using AdvertFn = std::function<void(PeerId from, const Bytes& info)>;
  using DataFn = std::function<void(PeerId from, const Bytes& data)>;
  using SendDoneFn = std::function<void(Status)>;

  virtual ~D2dStack() = default;

  virtual void start() = 0;
  virtual void stop() {}
  virtual PeerId self() const = 0;

  virtual void set_advert_handler(AdvertFn fn) = 0;
  virtual void set_data_handler(DataFn fn) = 0;

  /// Begin (or replace) this node's periodic advertisement.
  virtual void advertise(Bytes info, Duration interval) = 0;
  virtual void stop_advertising() = 0;

  /// Send data to one peer.
  virtual void send(PeerId dest, Bytes data, SendDoneFn done) = 0;

  /// Broadcast bulk data to all reachable peers (multicast); optional.
  virtual bool supports_broadcast_data() const { return false; }
  virtual void broadcast_data(Bytes /*data*/, SendDoneFn done) {
    if (done) done(Status::error("broadcast data not supported"));
  }

  /// Peers this stack has discovered so far.
  virtual std::vector<PeerId> known_peers() const = 0;

  /// Human-readable stack name for reports.
  virtual const char* name() const = 0;
};

}  // namespace omni::baselines
