#include "baselines/sp_wifi_node.h"

#include "baselines/wire.h"

namespace omni::baselines {

SpWifiNode::SpWifiNode(net::Device& device, radio::MeshNetwork& mesh,
                       Options options)
    : device_(device), mesh_(mesh), options_(options) {}

SpWifiNode::~SpWifiNode() { stop(); }

void SpWifiNode::start() {
  if (started_) return;
  started_ = true;
  device_.ble().set_powered(false);  // single-technology app
  device_.wifi().set_powered(true);
  device_.wifi().add_datagram_handler(
      [this](const MeshAddress& from, const Bytes& frame, bool multicast) {
        if (started_) on_datagram(from, frame, multicast);
      });
  device_.wifi().join(mesh_, [this](Status s) { joined_ = s.is_ok(); });
  // First rescan at half period, de-phasing it from other periodic work.
  schedule_maintenance(options_.maintenance_scan_period / 2);
}

void SpWifiNode::stop() {
  if (!started_) return;
  stop_advertising();
  advert_event_.cancel();
  maintenance_event_.cancel();
  started_ = false;
}

void SpWifiNode::schedule_maintenance(Duration delay) {
  if (options_.maintenance_scan_period <= Duration::zero()) return;
  maintenance_event_ = device_.meter().simulator().after(delay, [this] {
    if (!started_) return;
    device_.wifi().scan([](std::vector<radio::MeshNetwork*>) {});
    schedule_maintenance(options_.maintenance_scan_period);
  });
}

void SpWifiNode::advertise(Bytes info, Duration interval) {
  OMNI_CHECK_MSG(started_, "start() first");
  OMNI_CHECK_MSG(interval > Duration::zero(), "advert interval must be > 0");
  advert_info_ = std::move(info);
  bool was_advertising = advert_interval_ > Duration::zero();
  advert_interval_ = interval;
  if (!was_advertising) {
    advert_load_ = mesh_.register_periodic_multicast(interval);
    schedule_advert(interval);
  }
}

void SpWifiNode::stop_advertising() {
  advert_event_.cancel();
  if (advert_load_ != 0) {
    mesh_.unregister_periodic_multicast(advert_load_);
    advert_load_ = 0;
  }
  advert_interval_ = Duration::zero();
}

void SpWifiNode::schedule_advert(Duration delay) {
  advert_event_ =
      device_.meter().simulator().after(delay, [this] { fire_advert(); });
}

void SpWifiNode::fire_advert() {
  if (!started_ || advert_interval_ <= Duration::zero()) return;
  if (joined_) {
    mesh_.multicast_datagram(device_.wifi(),
                             frame_broadcast(with_id(self(), advert_info_)));
  }
  schedule_advert(advert_interval_);
}

void SpWifiNode::send(PeerId dest, Bytes data, SendDoneFn done) {
  OMNI_CHECK_MSG(started_, "start() first");
  auto it = peers_.find(dest);
  if (it == peers_.end()) {
    if (done) done(Status::error("unknown peer"));
    return;
  }
  if (it->second.validated) {
    do_unicast(dest, std::move(data), std::move(done));
    return;
  }
  // Application-level multicast discovery: the mapping must be re-validated
  // (scan + join + advert wait) before a connection can be formed. Sends
  // issued while a ritual is in flight wait for it.
  auto& waiting = pending_validation_[dest];
  waiting.emplace_back(std::move(data), std::move(done));
  if (waiting.size() > 1) return;
  net::run_discovery_ritual(
      device_.wifi(), mesh_,
      net::RitualOptions{/*wait_for_advertisement=*/true},
      [this, dest](Status s) {
        auto pending_it = pending_validation_.find(dest);
        std::vector<PendingSend> pending;
        if (pending_it != pending_validation_.end()) {
          pending = std::move(pending_it->second);
          pending_validation_.erase(pending_it);
        }
        auto it = peers_.find(dest);
        if (!s.is_ok() || it == peers_.end()) {
          for (auto& [data, done] : pending) {
            if (done) {
              done(s.is_ok() ? Status::error("peer vanished during discovery")
                             : s);
            }
          }
          return;
        }
        it->second.validated = true;
        for (auto& [data, done] : pending) {
          do_unicast(dest, std::move(data), std::move(done));
        }
      });
}

void SpWifiNode::do_unicast(PeerId dest, Bytes data, SendDoneFn done) {
  const Peer& peer = peers_.at(dest);
  Bytes payload = frame_unicast_mesh(peer.address, with_id(self(), data));
  // Evaluate before the call: std::move(payload) below must not race the
  // size() read (argument evaluation order is unspecified).
  std::uint64_t payload_size = payload.size();
  auto shared_done = std::make_shared<SendDoneFn>(std::move(done));
  auto flow = mesh_.open_flow(
      device_.wifi(), peer.address, payload_size,
      [shared_done](Status s) {
        if (*shared_done) (*shared_done)(std::move(s));
      },
      nullptr, std::move(payload));
  if (!flow.is_ok() && *shared_done) {
    (*shared_done)(Status::error(flow.error_message()));
  }
}

void SpWifiNode::broadcast_data(Bytes data, SendDoneFn done) {
  OMNI_CHECK_MSG(started_, "start() first");
  if (!joined_) {
    if (done) done(Status::error("not joined"));
    return;
  }
  Bytes payload = frame_broadcast_data(with_id(self(), data));
  std::uint64_t payload_size = payload.size();
  Status s = mesh_.multicast_bulk(
      device_.wifi(), payload_size, std::move(payload),
      [done = std::move(done)](std::vector<radio::WifiRadio*> receivers) {
        if (!done) return;
        if (receivers.empty()) {
          done(Status::error("no multicast receivers"));
        } else {
          done(Status::ok());
        }
      });
  if (!s.is_ok() && done) done(std::move(s));
}

std::vector<D2dStack::PeerId> SpWifiNode::known_peers() const {
  std::vector<PeerId> out;
  TimePoint now = device_.meter().simulator().now();
  for (const auto& [id, peer] : peers_) {
    if (now - peer.last_seen <= options_.peer_ttl) out.push_back(id);
  }
  return out;
}

void SpWifiNode::on_datagram(const MeshAddress& from, const Bytes& frame,
                             bool multicast) {
  auto unframed = unframe_mesh(frame, device_.wifi().address());
  if (!unframed) return;
  auto parsed = split_id(*unframed);
  if (!parsed) return;
  auto [peer_id, payload] = std::move(*parsed);
  if (peer_id == self()) return;
  Peer& peer = peers_[peer_id];
  peer.address = from;
  peer.last_seen = device_.meter().simulator().now();
  bool is_advert_frame = !frame.empty() && frame[0] == kFrameBroadcast;
  if (!multicast) peer.validated = true;  // unicast exchange proves the path
  if (is_advert_frame) {
    if (on_advert_) on_advert_(peer_id, payload);
  } else {
    if (on_data_) on_data_(peer_id, payload);
  }
}

}  // namespace omni::baselines
