// State of the Practice, WiFi-only variant.
//
// The application is hand-coded against WiFi-Mesh: discovery and
// advertisement ride application-level multicast (the paper: "application-
// level multicast is used for address discovery"), so before any unicast
// transfer the node pays the full discovery ritual — periodic scan, join,
// and waiting out the peer's next advertisement. Bulk dissemination uses
// multicast directly (the Disseminate SP configuration).
#pragma once

#include <map>

#include "baselines/d2d_stack.h"
#include "net/device.h"
#include "net/discovery_ritual.h"
#include "net/link_frame.h"
#include "radio/mesh.h"

namespace omni::baselines {

class SpWifiNode final : public D2dStack {
 public:
  struct Options {
    Duration peer_ttl = Duration::seconds(30);
    /// Maintenance rescan cadence (environment cannot be assumed static).
    Duration maintenance_scan_period = Duration::seconds(60);
  };

  SpWifiNode(net::Device& device, radio::MeshNetwork& mesh)
      : SpWifiNode(device, mesh, Options{}) {}
  SpWifiNode(net::Device& device, radio::MeshNetwork& mesh, Options options);
  ~SpWifiNode() override;

  void start() override;
  void stop() override;
  PeerId self() const override { return device_.omni_address().value; }

  void set_advert_handler(AdvertFn fn) override { on_advert_ = std::move(fn); }
  void set_data_handler(DataFn fn) override { on_data_ = std::move(fn); }

  void advertise(Bytes info, Duration interval) override;
  void stop_advertising() override;
  void send(PeerId dest, Bytes data, SendDoneFn done) override;
  bool supports_broadcast_data() const override { return true; }
  void broadcast_data(Bytes data, SendDoneFn done) override;
  std::vector<PeerId> known_peers() const override;
  const char* name() const override { return "SP(WiFi)"; }

 private:
  struct Peer {
    MeshAddress address;
    TimePoint last_seen;
    /// Proven by a unicast exchange; stale mappings pay the ritual.
    bool validated = false;
  };

  void on_datagram(const MeshAddress& from, const Bytes& frame,
                   bool multicast);
  void fire_advert();
  void schedule_advert(Duration delay);
  void schedule_maintenance(Duration delay);
  void do_unicast(PeerId dest, Bytes data, SendDoneFn done);

  net::Device& device_;
  radio::MeshNetwork& mesh_;
  Options options_;
  bool started_ = false;
  bool joined_ = false;
  AdvertFn on_advert_;
  DataFn on_data_;

  Bytes advert_info_;
  Duration advert_interval_ = Duration::zero();
  sim::EventHandle advert_event_;
  sim::EventHandle maintenance_event_;
  radio::PeriodicLoadId advert_load_ = 0;

  std::map<PeerId, Peer> peers_;
  /// Sends parked behind an in-flight validation ritual, per destination.
  using PendingSend = std::pair<Bytes, SendDoneFn>;
  std::map<PeerId, std::vector<PendingSend>> pending_validation_;
};

}  // namespace omni::baselines
