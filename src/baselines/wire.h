// Application-level wire helpers shared by the SP and SA baselines: every
// advert/data payload is prefixed with the sender's 8-byte application id
// (the baselines have no omni_address; a real app would embed a user or
// install id the same way).
#pragma once

#include <optional>
#include <span>
#include <utility>

#include "common/byte_buffer.h"
#include "baselines/d2d_stack.h"

namespace omni::baselines {

inline Bytes with_id(D2dStack::PeerId id, const Bytes& payload) {
  ByteWriter w(payload.size() + 8);
  w.u64(id);
  w.raw(payload);
  return std::move(w).take();
}

inline std::optional<std::pair<D2dStack::PeerId, Bytes>> split_id(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  auto id = r.u64();
  if (!id || id.value() == 0) return std::nullopt;
  auto rest = r.raw(r.remaining());
  return std::make_pair(id.value(), std::move(rest).value());
}

}  // namespace omni::baselines
