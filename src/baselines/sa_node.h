// State of the Art: a generalized multi-radio middleware baseline in the
// mold of ubiSOAP / Haggle (paper §4: "we implement a generalized
// multi-radio approach that contains the relevant features to operate in our
// setting ... but adopts the paradigms specific to these approaches").
//
// Defining paradigms, per the paper:
//   * advertisements are sent at the application level on ALL active
//     technologies (BLE advertising + WiFi multicast), every interval — the
//     overlay maintenance that costs ~16 mA of continuous multicast energy;
//   * no integration with low-level neighbor discovery: a BLE advert carries
//     service info but NOT the peer's WiFi address, so before WiFi data
//     transfer the node must resolve the peer at the WiFi level
//     (scan + join + query — the ~2.8 s penalty), though it skips the
//     advert wait when the service itself was already discovered over BLE;
//   * data technology is chosen by QoS: WiFi TCP when available, BLE
//     datagrams otherwise.
#pragma once

#include <map>

#include "baselines/d2d_stack.h"
#include "baselines/directory.h"
#include "net/device.h"
#include "net/discovery_ritual.h"
#include "net/link_frame.h"
#include "radio/mesh.h"

namespace omni::baselines {

class SaNode final : public D2dStack {
 public:
  struct Options {
    bool enable_ble = true;
    bool enable_wifi = true;
    /// QoS preference: route data over WiFi TCP when available. Disabled in
    /// configurations where the experiment pins data to BLE.
    bool data_over_wifi = true;
    /// Overlay maintenance interval (address + service info on all
    /// technologies), paper-fixed at 500 ms.
    Duration overlay_interval = Duration::millis(500);
    Duration peer_ttl = Duration::seconds(30);
    Duration maintenance_scan_period = Duration::seconds(60);
  };

  SaNode(net::Device& device, radio::MeshNetwork& mesh, Directory& directory)
      : SaNode(device, mesh, directory, Options{}) {}
  SaNode(net::Device& device, radio::MeshNetwork& mesh, Directory& directory,
         Options options);
  ~SaNode() override;

  void start() override;
  void stop() override;
  PeerId self() const override { return device_.omni_address().value; }

  void set_advert_handler(AdvertFn fn) override { on_advert_ = std::move(fn); }
  void set_data_handler(DataFn fn) override { on_data_ = std::move(fn); }

  void advertise(Bytes info, Duration interval) override;
  void stop_advertising() override;
  void send(PeerId dest, Bytes data, SendDoneFn done) override;
  bool supports_broadcast_data() const override {
    return options_.enable_wifi;
  }
  void broadcast_data(Bytes data, SendDoneFn done) override;
  std::vector<PeerId> known_peers() const override;
  const char* name() const override { return "SA(multi-radio)"; }

 private:
  struct Peer {
    bool on_ble = false;
    BleAddress ble_address;
    bool on_wifi = false;
    MeshAddress mesh_address;
    bool wifi_validated = false;
    TimePoint last_seen;
  };

  void refresh_overlay_adverts();
  void fire_wifi_advert();
  void schedule_wifi_advert(Duration delay);
  void schedule_maintenance(Duration delay);
  void on_ble_receive(const BleAddress& from, const Bytes& frame);
  void on_wifi_datagram(const MeshAddress& from, const Bytes& frame,
                        bool multicast);
  void send_via_wifi(PeerId dest, Bytes data, SendDoneFn done);
  void do_wifi_unicast(PeerId dest, Bytes data, SendDoneFn done);
  void send_via_ble(PeerId dest, Bytes data, SendDoneFn done);

  net::Device& device_;
  radio::MeshNetwork& mesh_;
  Directory& directory_;
  Options options_;
  bool started_ = false;
  bool joined_ = false;
  AdvertFn on_advert_;
  DataFn on_data_;

  Bytes advert_info_;  // empty until advertise(); overlay beacons still flow
  radio::AdvertisementId ble_advert_ = 0;
  sim::EventHandle wifi_advert_event_;
  sim::EventHandle maintenance_event_;
  radio::PeriodicLoadId wifi_advert_load_ = 0;

  std::map<PeerId, Peer> peers_;
  /// Sends parked behind an in-flight WiFi resolution, per destination.
  using PendingSend = std::pair<Bytes, SendDoneFn>;
  std::map<PeerId, std::vector<PendingSend>> pending_resolution_;
};

}  // namespace omni::baselines
