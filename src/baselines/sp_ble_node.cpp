#include "baselines/sp_ble_node.h"

#include "baselines/wire.h"

namespace omni::baselines {

SpBleNode::SpBleNode(net::Device& device, Options options)
    : device_(device), options_(options) {}

void SpBleNode::start() {
  if (started_) return;
  started_ = true;
  // Hand-coded single-technology app: WiFi is not used, so it is off
  // entirely (the paper's negative relative energy).
  device_.wifi().set_powered(false);
  device_.ble().set_powered(true);
  device_.ble().set_receive_handler(
      [this](const BleAddress& from, const Bytes& frame) {
        on_receive(from, frame);
      });
  device_.ble().set_scanning(true, options_.idle_scan_duty);
}

void SpBleNode::stop() {
  if (!started_) return;
  stop_advertising();
  device_.ble().set_scanning(false);
  device_.ble().set_receive_handler(nullptr);
  started_ = false;
}

void SpBleNode::set_interactive(bool interactive) {
  interactive_ = interactive;
  if (started_) {
    device_.ble().set_scanning(true,
                               interactive_ ? 1.0 : options_.idle_scan_duty);
  }
}

void SpBleNode::advertise(Bytes info, Duration interval) {
  OMNI_CHECK_MSG(started_, "start() first");
  Bytes frame = frame_broadcast(with_id(self(), info));
  if (advert_ != 0) {
    Status s = device_.ble().update_advertising(advert_, std::move(frame),
                                                interval);
    OMNI_CHECK_MSG(s.is_ok(), s.message());
    return;
  }
  auto adv = device_.ble().start_advertising(std::move(frame), interval);
  OMNI_CHECK_MSG(adv.is_ok(), adv.error_message());
  advert_ = adv.value();
}

void SpBleNode::stop_advertising() {
  if (advert_ == 0) return;
  device_.ble().stop_advertising(advert_);
  advert_ = 0;
}

void SpBleNode::send(PeerId dest, Bytes data, SendDoneFn done) {
  OMNI_CHECK_MSG(started_, "start() first");
  auto it = peers_.find(dest);
  if (it == peers_.end()) {
    if (done) done(Status::error("unknown peer"));
    return;
  }
  Bytes frame = frame_unicast_ble(it->second.address, with_id(self(), data));
  Status s = device_.ble().send_datagram(
      std::move(frame), [done = std::move(done)](Status st) {
        if (done) done(std::move(st));
      });
  if (!s.is_ok()) {
    OMNI_CHECK_MSG(false, "BLE datagram rejected: " + s.message());
  }
}

std::vector<D2dStack::PeerId> SpBleNode::known_peers() const {
  std::vector<PeerId> out;
  TimePoint now = device_.meter().simulator().now();
  for (const auto& [id, peer] : peers_) {
    if (now - peer.last_seen <= options_.peer_ttl) out.push_back(id);
  }
  return out;
}

void SpBleNode::on_receive(const BleAddress& from, const Bytes& frame) {
  auto unframed = unframe_ble(frame, device_.ble().address());
  if (!unframed) return;
  bool is_broadcast = !frame.empty() && frame[0] == kFrameBroadcast;
  auto parsed = split_id(*unframed);
  if (!parsed) return;
  auto [peer_id, payload] = std::move(*parsed);
  if (peer_id == self()) return;
  peers_[peer_id] = Peer{from, device_.meter().simulator().now()};
  if (is_broadcast) {
    if (on_advert_) on_advert_(peer_id, payload);
  } else {
    if (on_data_) on_data_(peer_id, payload);
  }
}

}  // namespace omni::baselines
