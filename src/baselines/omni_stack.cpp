#include "baselines/omni_stack.h"

namespace omni::baselines {

void OmniStack::start() { node_.start(); }

void OmniStack::set_advert_handler(AdvertFn fn) {
  node_.manager().request_context(
      [fn = std::move(fn)](const OmniAddress& source, const Bytes& context) {
        if (fn) fn(source.value, context);
      });
}

void OmniStack::set_data_handler(DataFn fn) {
  node_.manager().request_data(
      [fn = std::move(fn)](const OmniAddress& source, const Bytes& data) {
        if (fn) fn(source.value, data);
      });
}

void OmniStack::advertise(Bytes info, Duration interval) {
  ContextParams params;
  params.interval = interval;
  if (advert_context_ != kInvalidContext) {
    node_.manager().update_context(advert_context_, params, std::move(info),
                                   nullptr);
    return;
  }
  if (advert_pending_) {
    // The initial add is in flight; remember the newest content and apply
    // it once the context id arrives.
    pending_info_ = std::move(info);
    pending_interval_ = interval;
    return;
  }
  advert_pending_ = true;
  node_.manager().add_context(
      params, std::move(info),
      [this](StatusCode code, const ResponseInfo& response) {
        advert_pending_ = false;
        if (code != StatusCode::kAddContextSuccess) return;
        advert_context_ = response.context_id;
        if (pending_interval_ > Duration::zero()) {
          ContextParams p;
          p.interval = pending_interval_;
          node_.manager().update_context(advert_context_, p,
                                         std::move(pending_info_), nullptr);
          pending_interval_ = Duration::zero();
          pending_info_.clear();
        }
      });
}

void OmniStack::stop_advertising() {
  if (advert_context_ == kInvalidContext) return;
  node_.manager().remove_context(advert_context_, nullptr);
  advert_context_ = kInvalidContext;
}

void OmniStack::send(PeerId dest, Bytes data, SendDoneFn done) {
  node_.manager().send_data(
      {OmniAddress{dest}}, std::move(data),
      [done = std::move(done)](StatusCode code, const ResponseInfo& info) {
        if (!done) return;
        if (code == StatusCode::kSendDataSuccess) {
          done(Status::ok());
        } else {
          done(Status::error(info.failure_description.empty()
                                 ? "send failed"
                                 : info.failure_description));
        }
      });
}

std::vector<D2dStack::PeerId> OmniStack::known_peers() const {
  std::vector<PeerId> out;
  for (OmniAddress a : node_.manager().peer_table().peers()) {
    out.push_back(a.value);
  }
  return out;
}

}  // namespace omni::baselines
