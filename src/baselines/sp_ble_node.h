// State of the Practice, BLE-only variant.
//
// The application is hand-coded directly against the BLE radio: it
// advertises its own info, scans at a hand-tuned low duty cycle while idle
// (which is why the paper's SP BLE/BLE row shows near-zero BLE energy — and
// a *negative* total, since the WiFi radio is simply switched off), and
// exchanges small datagrams via fast advertising.
#pragma once

#include <map>

#include "baselines/d2d_stack.h"
#include "net/device.h"
#include "net/link_frame.h"

namespace omni::baselines {

class SpBleNode final : public D2dStack {
 public:
  struct Options {
    /// Hand-tuned idle scanner duty (the developer knows the app's own
    /// schedule, so it scans just enough to eventually discover peers).
    double idle_scan_duty = 0.05;
    Duration peer_ttl = Duration::seconds(30);
  };

  explicit SpBleNode(net::Device& device) : SpBleNode(device, Options{}) {}
  SpBleNode(net::Device& device, Options options);

  void start() override;
  void stop() override;
  PeerId self() const override { return device_.omni_address().value; }

  void set_advert_handler(AdvertFn fn) override { on_advert_ = std::move(fn); }
  void set_data_handler(DataFn fn) override { on_data_ = std::move(fn); }

  void advertise(Bytes info, Duration interval) override;
  void stop_advertising() override;
  void send(PeerId dest, Bytes data, SendDoneFn done) override;
  std::vector<PeerId> known_peers() const override;
  const char* name() const override { return "SP(BLE)"; }

  /// Raise/lower the scanner duty (the hand-tuned "interactive" mode).
  void set_interactive(bool interactive);

 private:
  void on_receive(const BleAddress& from, const Bytes& frame);

  net::Device& device_;
  Options options_;
  bool started_ = false;
  bool interactive_ = false;
  AdvertFn on_advert_;
  DataFn on_data_;
  radio::AdvertisementId advert_ = 0;
  struct Peer {
    BleAddress address;
    TimePoint last_seen;
  };
  std::map<PeerId, Peer> peers_;
};

}  // namespace omni::baselines
