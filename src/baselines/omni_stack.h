// D2dStack adapter over the Omni middleware, so the paper's applications run
// unchanged over Omni, SA, and SP.
#pragma once

#include "baselines/d2d_stack.h"
#include "omni/omni_node.h"

namespace omni::baselines {

class OmniStack final : public D2dStack {
 public:
  explicit OmniStack(OmniNode& node) : node_(node) {}

  void start() override;
  void stop() override { node_.stop(); }
  PeerId self() const override { return node_.address().value; }

  void set_advert_handler(AdvertFn fn) override;
  void set_data_handler(DataFn fn) override;

  void advertise(Bytes info, Duration interval) override;
  void stop_advertising() override;
  void send(PeerId dest, Bytes data, SendDoneFn done) override;
  std::vector<PeerId> known_peers() const override;
  const char* name() const override { return "Omni"; }

  OmniNode& node() { return node_; }

 private:
  OmniNode& node_;
  ContextId advert_context_ = kInvalidContext;
  bool advert_pending_ = false;
  /// Latest advertise() arguments while the initial add is still in flight.
  Bytes pending_info_;
  Duration pending_interval_ = Duration::zero();
};

}  // namespace omni::baselines
