// Mock infrastructure network.
//
// Stands in for the paper's "mock infrastructure network" in the Disseminate
// experiment: each device has its own rate-limited pipe to the
// infrastructure (100 or 1000 KBps in the paper). Downloads are chunked so
// applications can share pieces over D2D as they arrive. Receive energy is
// charged through the device's WiFi rx charger, so infrastructure and D2D
// traffic never double-charge the radio.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/result.h"
#include "radio/calibration.h"
#include "radio/wifi_radio.h"
#include "sim/simulator.h"

namespace omni::net {

class InfraNetwork {
 public:
  using ChunkDoneFn = std::function<void(std::uint64_t chunk_id)>;

  InfraNetwork(sim::Simulator& sim, const radio::Calibration& cal)
      : sim_(sim), cal_(cal) {}
  InfraNetwork(const InfraNetwork&) = delete;
  InfraNetwork& operator=(const InfraNetwork&) = delete;

  /// Queue a chunk download of `bytes` for `radio` at `rate_Bps` (the
  /// device's infrastructure rate limit). Chunks for the same radio are
  /// served FIFO; different radios are independent pipes.
  Status fetch_chunk(radio::WifiRadio& radio, std::uint64_t chunk_id,
                     std::uint64_t bytes, double rate_Bps, ChunkDoneFn done);

  /// Drop all queued (not yet started) fetches for a radio. Returns how many
  /// were dropped; the in-flight chunk, if any, still completes.
  std::size_t cancel_pending(radio::WifiRadio& radio);

  std::size_t pending_count(radio::WifiRadio& radio) const;

 private:
  struct Request {
    std::uint64_t chunk_id;
    std::uint64_t bytes;
    double rate_Bps;
    ChunkDoneFn done;
  };
  struct Pipe {
    std::deque<Request> queue;
    bool busy = false;
  };

  void service(radio::WifiRadio& radio);

  sim::Simulator& sim_;
  const radio::Calibration& cal_;
  std::map<radio::WifiRadio*, Pipe> pipes_;
};

}  // namespace omni::net
