// A simulated device: one energy meter plus one radio per technology.
//
// Matches the paper's testbed unit — a Raspberry Pi 3 with an onboard BLE
// controller and a USB 802.11n adapter, metered as a whole.
#pragma once

#include <string>

#include "common/hash.h"
#include "common/types.h"
#include "radio/ble.h"
#include "radio/energy_meter.h"
#include "radio/nan.h"
#include "radio/wifi_radio.h"
#include "radio/wifi_system.h"
#include "sim/world.h"

namespace omni::net {

class Device {
 public:
  Device(sim::World& world, radio::BleMedium& ble_medium,
         radio::WifiSystem& wifi_system, radio::NanSystem& nan_system,
         NodeId node)
      : node_(node),
        world_(world),
        meter_(world.simulator(), node),
        ble_(ble_medium, world.simulator(), meter_, node,
             ble_medium.calibration()),
        wifi_(wifi_system, meter_, node),
        nan_(nan_system, world.simulator(), meter_, node,
             ble_medium.calibration()),
        omni_address_(derive_omni_address(ble_.address(), wifi_.address())) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  NodeId node() const { return node_; }
  sim::World& world() { return world_; }
  radio::EnergyMeter& meter() { return meter_; }
  radio::BleRadio& ble() { return ble_; }
  radio::WifiRadio& wifi() { return wifi_; }
  radio::NanRadio& nan() { return nan_; }

  /// The device's technology-agnostic identity: the hash of its *hardware*
  /// addresses, fixed at manufacture (paper §3.3). BLE privacy rotation
  /// changes the on-air link address but never this identity.
  OmniAddress omni_address() const { return omni_address_; }

 private:
  NodeId node_;
  sim::World& world_;
  radio::EnergyMeter meter_;
  radio::BleRadio ble_;
  radio::WifiRadio wifi_;
  radio::NanRadio nan_;
  OmniAddress omni_address_;
};

}  // namespace omni::net
