// Minimal link-level framing used by technology plugins on broadcast media.
//
// Packed structs carry the *source* omni_address but no destination; on a
// broadcast channel (BLE advertisements, WiFi multicast) a directed data
// send needs a link-level destination so non-addressees can drop the frame
// without involving their manager. Frames:
//
//   [0x00] [packed...]                        broadcast (beacons, context)
//   [0x01] [raw destination address] [packed...]  unicast-over-broadcast
//
// The destination is the technology's own address type (6 bytes on BLE,
// 8 bytes on WiFi-Mesh).
#pragma once

#include <cstring>
#include <optional>
#include <span>

#include "common/byte_buffer.h"
#include "common/hash.h"
#include "common/types.h"

namespace omni {

/// 64-bit content digest of a wire frame (sealed or plaintext bytes as they
/// arrived). FNV-1a over 8-byte words (zero-padded tail, length folded in,
/// so a frame and a prefix of it never share a digest) — a frame digests in
/// a handful of multiplies instead of one per byte, which matters because
/// the beacon receive path computes this once per delivered frame. This is
/// a *memoization* key, not an integrity check: the beacon receive fast
/// path trusts a (length, digest) match from the same link-level sender
/// (see DESIGN.md "Beacon fast path" for the collision stance).
inline std::uint64_t wire_digest(std::span<const std::uint8_t> frame) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::size_t i = 0;
  for (; i + 8 <= frame.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, frame.data() + i, 8);
    h = (h ^ w) * 0x100000001b3ull;
  }
  if (i < frame.size()) {
    std::uint64_t w = 0;
    std::memcpy(&w, frame.data() + i, frame.size() - i);
    h = (h ^ w) * 0x100000001b3ull;
  }
  return splitmix64(h ^ static_cast<std::uint64_t>(frame.size()));
}

inline constexpr std::uint8_t kFrameBroadcast = 0x00;
inline constexpr std::uint8_t kFrameUnicast = 0x01;
/// Broadcast frame carrying bulk *data* rather than an advertisement
/// (baselines use it for multicast dissemination).
inline constexpr std::uint8_t kFrameBroadcastData = 0x02;
/// Aggregate broadcast frame: a sequence of u32-length-prefixed inner
/// payloads coalesced into one transmission (beacon aggregation — the
/// paper's "consolidating context into fewer beacons").
inline constexpr std::uint8_t kFrameAggregate = 0x03;

Bytes frame_aggregate(const std::vector<Bytes>& payloads);
/// Split an aggregate frame into its inner payloads (empty if malformed or
/// not an aggregate frame).
std::vector<Bytes> unframe_aggregate(std::span<const std::uint8_t> frame);

inline Bytes frame_broadcast_data(const Bytes& packed) {
  Bytes out;
  out.reserve(packed.size() + 1);
  out.push_back(kFrameBroadcastData);
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

inline Bytes frame_broadcast(const Bytes& packed) {
  Bytes out;
  out.reserve(packed.size() + 1);
  out.push_back(kFrameBroadcast);
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

inline Bytes frame_unicast_ble(const BleAddress& dest, const Bytes& packed) {
  Bytes out;
  out.reserve(packed.size() + 7);
  out.push_back(kFrameUnicast);
  out.insert(out.end(), dest.octets.begin(), dest.octets.end());
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

inline Bytes frame_unicast_mesh(const MeshAddress& dest, const Bytes& packed) {
  ByteWriter w(packed.size() + 9);
  w.u8(kFrameUnicast);
  w.u64(dest.value);
  w.raw(packed);
  return std::move(w).take();
}

/// Unframe a BLE frame addressed to `self` (or broadcast). nullopt if the
/// frame is malformed or addressed elsewhere.
std::optional<Bytes> unframe_ble(std::span<const std::uint8_t> frame,
                                 const BleAddress& self);

/// Unframe a mesh multicast frame addressed to `self` (or broadcast).
std::optional<Bytes> unframe_mesh(std::span<const std::uint8_t> frame,
                                  const MeshAddress& self);

/// Zero-copy unframe: the payload as a view into `frame`. The receive hot
/// path copies it straight into a recycled packet buffer instead of through
/// a temporary allocation. The view is valid only as long as `frame`.
std::optional<std::span<const std::uint8_t>> unframe_ble_view(
    std::span<const std::uint8_t> frame, const BleAddress& self);
std::optional<std::span<const std::uint8_t>> unframe_mesh_view(
    std::span<const std::uint8_t> frame, const MeshAddress& self);

/// Link-frame overhead for a unicast BLE frame.
inline constexpr std::size_t kBleUnicastFrameOverhead = 7;
inline constexpr std::size_t kBleBroadcastFrameOverhead = 1;
inline constexpr std::size_t kMeshUnicastFrameOverhead = 9;

}  // namespace omni
