// Minimal link-level framing used by technology plugins on broadcast media.
//
// Packed structs carry the *source* omni_address but no destination; on a
// broadcast channel (BLE advertisements, WiFi multicast) a directed data
// send needs a link-level destination so non-addressees can drop the frame
// without involving their manager. Frames:
//
//   [0x00] [packed...]                        broadcast (beacons, context)
//   [0x01] [raw destination address] [packed...]  unicast-over-broadcast
//
// The destination is the technology's own address type (6 bytes on BLE,
// 8 bytes on WiFi-Mesh).
#pragma once

#include <optional>
#include <span>

#include "common/byte_buffer.h"
#include "common/types.h"

namespace omni {

inline constexpr std::uint8_t kFrameBroadcast = 0x00;
inline constexpr std::uint8_t kFrameUnicast = 0x01;
/// Broadcast frame carrying bulk *data* rather than an advertisement
/// (baselines use it for multicast dissemination).
inline constexpr std::uint8_t kFrameBroadcastData = 0x02;
/// Aggregate broadcast frame: a sequence of u32-length-prefixed inner
/// payloads coalesced into one transmission (beacon aggregation — the
/// paper's "consolidating context into fewer beacons").
inline constexpr std::uint8_t kFrameAggregate = 0x03;

Bytes frame_aggregate(const std::vector<Bytes>& payloads);
/// Split an aggregate frame into its inner payloads (empty if malformed or
/// not an aggregate frame).
std::vector<Bytes> unframe_aggregate(std::span<const std::uint8_t> frame);

inline Bytes frame_broadcast_data(const Bytes& packed) {
  Bytes out;
  out.reserve(packed.size() + 1);
  out.push_back(kFrameBroadcastData);
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

inline Bytes frame_broadcast(const Bytes& packed) {
  Bytes out;
  out.reserve(packed.size() + 1);
  out.push_back(kFrameBroadcast);
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

inline Bytes frame_unicast_ble(const BleAddress& dest, const Bytes& packed) {
  Bytes out;
  out.reserve(packed.size() + 7);
  out.push_back(kFrameUnicast);
  out.insert(out.end(), dest.octets.begin(), dest.octets.end());
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

inline Bytes frame_unicast_mesh(const MeshAddress& dest, const Bytes& packed) {
  ByteWriter w(packed.size() + 9);
  w.u8(kFrameUnicast);
  w.u64(dest.value);
  w.raw(packed);
  return std::move(w).take();
}

/// Unframe a BLE frame addressed to `self` (or broadcast). nullopt if the
/// frame is malformed or addressed elsewhere.
std::optional<Bytes> unframe_ble(std::span<const std::uint8_t> frame,
                                 const BleAddress& self);

/// Unframe a mesh multicast frame addressed to `self` (or broadcast).
std::optional<Bytes> unframe_mesh(std::span<const std::uint8_t> frame,
                                  const MeshAddress& self);

/// Zero-copy unframe: the payload as a view into `frame`. The receive hot
/// path copies it straight into a recycled packet buffer instead of through
/// a temporary allocation. The view is valid only as long as `frame`.
std::optional<std::span<const std::uint8_t>> unframe_ble_view(
    std::span<const std::uint8_t> frame, const BleAddress& self);
std::optional<std::span<const std::uint8_t>> unframe_mesh_view(
    std::span<const std::uint8_t> frame, const MeshAddress& self);

/// Link-frame overhead for a unicast BLE frame.
inline constexpr std::size_t kBleUnicastFrameOverhead = 7;
inline constexpr std::size_t kBleBroadcastFrameOverhead = 1;
inline constexpr std::size_t kMeshUnicastFrameOverhead = 9;

}  // namespace omni
