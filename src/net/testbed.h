// Testbed: one-stop assembly of simulator, world, media, and devices.
//
// Mirrors the paper's physical testbed setup: a room of Raspberry Pis with
// BLE and WiFi-Mesh radios plus one shared mesh network. Tests, examples,
// and benches build scenarios from this.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/device.h"
#include "obs/omniscope.h"
#include "omni/discovery_policy.h"
#include "obs/perfetto.h"
#include "radio/ble.h"
#include "radio/calibration.h"
#include "radio/mesh.h"
#include "radio/nan.h"
#include "radio/wifi_system.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace omni::net {

class Testbed {
 public:
  /// `threads` > 1 runs the parallel sharded engine; results are
  /// bit-identical at any thread count.
  explicit Testbed(std::uint64_t seed = 1,
                   radio::Calibration cal = radio::Calibration::defaults(),
                   unsigned threads = 1)
      : cal_(cal),
        sim_(seed, threads),
        // Grid cells sized to the smallest radio range: BLE beacons are by
        // far the most frequent queries, and matching their 40 m disc keeps
        // candidate sets tight. Longer-range queries (WiFi/NAN) just probe a
        // few more cells — the disc query is exact at any cell size.
        world_(sim_, std::min({cal.ble_range_m, cal.wifi_range_m,
                               cal.nan_range_m})),
        ble_medium_(world_, cal_),
        wifi_system_(world_, cal_),
        nan_system_(world_, cal_),
        mesh_(&wifi_system_.create_mesh("omni-mesh")) {
    // Conservative lookahead: BLE advertising is the fastest cross-node
    // path any sharded (node-owned) event can take, so its event interval
    // bounds how far shards may run ahead of each other. WiFi/NAN fan-out
    // is barrier-serialized (global owner) and does not constrain this.
    sim_.set_lookahead(ble_medium_.min_latency());
  }

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Add a device at a position. Radios start in their default states
  /// (BLE powered, WiFi off).
  Device& add_device(const std::string& name, sim::Vec2 position = {}) {
    NodeId id = world_.add_node(name, position);
    devices_.push_back(std::make_unique<Device>(world_, ble_medium_,
                                                wifi_system_, nan_system_,
                                                id));
    if (scope_) {
      scope_->ensure_owner_capacity(world_.node_count());
      scope_->set_owner_name(id, name);
    }
    return *devices_.back();
  }

  /// Add a background-population node: world-resident only (queries see it,
  /// nothing runs on it). City-scale benches use these for the crowd around
  /// a core of full-stack devices. Returns the node id.
  NodeId add_crowd_node(const std::string& name, sim::Vec2 position = {}) {
    return world_.add_crowd_node(name, position);
  }

  /// Attach an Omniscope to the simulator: metrics, flight recorder, and
  /// energy ledger all come alive. Idempotent; call any time during setup
  /// (devices added before or after are both covered). Costs one predicted
  /// branch per instrumentation site when off — see obs/omniscope.h.
  /// `detail` gates per-frame trace records (counters are unconditional);
  /// turn it off for large fleets where only aggregates matter.
  obs::Omniscope& enable_observability(std::size_t ring_capacity = 1 << 16,
                                       bool detail = true) {
    if (!scope_) {
      scope_ = std::make_unique<obs::Omniscope>();
      scope_->attach(sim_, ring_capacity);
      scope_->set_detail(detail);
      // Open energy levels (standby draws) only reach the ledger when
      // closed; flush them whenever aggregates are read or exported.
      scope_->add_flush_hook([this] {
        for (auto& d : devices_) d->meter().flush_levels();
      });
      scope_->ensure_owner_capacity(world_.node_count());
      for (auto& d : devices_) {
        scope_->set_owner_name(d->node(), std::string(world_.name(d->node())));
      }
    }
    return *scope_;
  }

  /// The attached scope, or nullptr when observability is off.
  obs::Omniscope* observability() { return scope_.get(); }

  /// Scripted fault windows as labelled spans for the Perfetto export.
  /// Open-ended windows are clamped to the simulator's current time, so
  /// call this after the run.
  obs::ExportOptions export_options() const {
    obs::ExportOptions opts;
    const std::int64_t now_us = sim_.now().as_micros();
    auto clamp_us = [now_us](TimePoint t) {
      const std::int64_t us = t.as_micros();
      return us > now_us ? now_us : us;
    };
    for (const auto& b : fault_plan_.blackouts()) {
      opts.annotations.push_back(obs::AnnotationSpan{
          "blackout " + std::string(world_.name(b.node)), b.start.as_micros(),
          clamp_us(b.end)});
    }
    for (const auto& c : fault_plan_.crashes()) {
      opts.annotations.push_back(obs::AnnotationSpan{
          "crash " + std::string(world_.name(c.node)), c.at.as_micros(),
          c.restart > c.at ? c.restart.as_micros() : now_us});
    }
    for (const auto& f : fault_plan_.link_faults()) {
      std::string kind = f.loss > 0 ? "loss" : f.corrupt > 0 ? "corrupt"
                                                             : "latency";
      opts.annotations.push_back(obs::AnnotationSpan{
          "link " + kind, f.start.as_micros(), clamp_us(f.end)});
    }
    for (const auto& p : fault_plan_.partitions()) {
      opts.annotations.push_back(obs::AnnotationSpan{
          "partition", p.start.as_micros(), clamp_us(p.end)});
    }
    return opts;
  }

  /// Run-wide discovery scheduling policy. The testbed only stores it —
  /// helpers that assemble OmniNodes on top (benches, tests, the scenario
  /// runner) read it into ManagerOptions::discovery when constructing nodes.
  /// Defaults to kFixed, the paper's 500 ms cadence.
  void set_discovery_policy(const DiscoveryPolicy& policy) {
    discovery_ = policy;
  }
  const DiscoveryPolicy& discovery_policy() const { return discovery_; }

  sim::Simulator& simulator() { return sim_; }
  sim::World& world() { return world_; }
  radio::BleMedium& ble_medium() { return ble_medium_; }
  radio::WifiSystem& wifi_system() { return wifi_system_; }
  radio::NanSystem& nan_system() { return nan_system_; }
  radio::MeshNetwork& mesh() { return *mesh_; }
  const radio::Calibration& calibration() const { return cal_; }
  sim::TraceRecorder& trace() { return trace_; }

  Device& device(std::size_t i) { return *devices_.at(i); }
  std::size_t device_count() const { return devices_.size(); }

  /// The testbed's fault plan. The first call arms the media hooks (the
  /// world keeps a pointer to the plan); an untouched testbed pays nothing
  /// on the delivery hot paths. Populate the plan, then call
  /// schedule_faults() once every device has been added.
  sim::FaultPlan& fault_plan() {
    world_.set_fault_plan(&fault_plan_);
    return fault_plan_;
  }

  /// Turn the plan's active entries — blackouts, flap windows, and node
  /// crash/restart churn — into barrier-serialized global power events
  /// against the matching devices. Passive entries (loss, corruption,
  /// latency, partitions) need no scheduling; media query them directly.
  void schedule_faults() {
    const sim::FaultPlan& plan = fault_plan();
    for (const auto& b : plan.blackouts()) {
      Device* dev = device_for(b.node);
      if (dev == nullptr) continue;
      const bool ble = b.radio == sim::FaultRadio::kAll ||
                       b.radio == sim::FaultRadio::kBle;
      const bool wifi = b.radio == sim::FaultRadio::kAll ||
                        b.radio == sim::FaultRadio::kWifi;
      const bool nan = b.radio == sim::FaultRadio::kAll ||
                       b.radio == sim::FaultRadio::kNan;
      auto set_power = [this, dev, ble, wifi, nan](bool on) {
        if (obs::Omniscope* sc = OMNI_SCOPE(sim_);
            sc != nullptr && sc->recording()) {
          sc->instant_on(dev->node(), obs::Cat::kFaultPower, on ? 1 : 0);
        }
        if (ble) dev->ble().set_powered(on);
        if (wifi) dev->wifi().set_powered(on);
        // NAN has no power rail of its own; enabling/disabling the NAN
        // function models the same outage.
        if (nan) dev->nan().set_enabled(on);
      };
      if (b.period <= Duration::zero() || b.off_fraction >= 1.0) {
        sim_.at_on(sim::kGlobalOwner, b.start,
                   [set_power] { set_power(false); });
        if (b.end < TimePoint::max()) {
          sim_.at_on(sim::kGlobalOwner, b.end,
                     [set_power] { set_power(true); });
        }
      } else {
        const Duration off = b.period * b.off_fraction;
        for (TimePoint t = b.start; t < b.end; t = t + b.period) {
          sim_.at_on(sim::kGlobalOwner, t, [set_power] { set_power(false); });
          sim_.at_on(sim::kGlobalOwner, std::min(t + off, b.end),
                     [set_power] { set_power(true); });
        }
      }
    }
    for (const auto& c : plan.crashes()) {
      Device* dev = device_for(c.node);
      if (dev == nullptr) continue;
      // NAN enablement is app-driven; remember whether it was on at crash
      // time so the restart only re-enables what the crash took down.
      auto nan_was_enabled = std::make_shared<bool>(false);
      sim_.at_on(sim::kGlobalOwner, c.at, [this, dev, nan_was_enabled] {
        if (obs::Omniscope* sc = OMNI_SCOPE(sim_);
            sc != nullptr && sc->recording()) {
          sc->instant_on(dev->node(), obs::Cat::kCrash, 0);
        }
        *nan_was_enabled = dev->nan().enabled();
        dev->ble().set_powered(false);
        dev->wifi().set_powered(false);
        dev->nan().set_enabled(false);
      });
      if (c.restart > c.at) {
        const bool rotate = c.rotate_addresses;
        sim_.at_on(sim::kGlobalOwner, c.restart, [this, dev,
                                                  nan_was_enabled, rotate] {
          if (obs::Omniscope* sc = OMNI_SCOPE(sim_);
              sc != nullptr && sc->recording()) {
            sc->instant_on(dev->node(), obs::Cat::kCrash, 1);
          }
          // Rotate before powering on: the node comes back with its fresh
          // link addresses already in place, like a real reboot.
          if (rotate) dev->ble().rotate_address();
          dev->ble().set_powered(true);
          dev->wifi().set_powered(true);
          if (*nan_was_enabled) dev->nan().set_enabled(true);
        });
      }
    }
  }

 private:
  Device* device_for(NodeId node) {
    for (auto& d : devices_) {
      if (d->node() == node) return d.get();
    }
    return nullptr;
  }

  radio::Calibration cal_;
  sim::Simulator sim_;
  sim::World world_;
  radio::BleMedium ble_medium_;
  radio::WifiSystem wifi_system_;
  radio::NanSystem nan_system_;
  radio::MeshNetwork* mesh_;
  std::vector<std::unique_ptr<Device>> devices_;
  sim::TraceRecorder trace_;
  sim::FaultPlan fault_plan_;
  DiscoveryPolicy discovery_;
  std::unique_ptr<obs::Omniscope> scope_;
};

}  // namespace omni::net
