// Testbed: one-stop assembly of simulator, world, media, and devices.
//
// Mirrors the paper's physical testbed setup: a room of Raspberry Pis with
// BLE and WiFi-Mesh radios plus one shared mesh network. Tests, examples,
// and benches build scenarios from this.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/device.h"
#include "radio/ble.h"
#include "radio/calibration.h"
#include "radio/mesh.h"
#include "radio/nan.h"
#include "radio/wifi_system.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace omni::net {

class Testbed {
 public:
  /// `threads` > 1 runs the parallel sharded engine; results are
  /// bit-identical at any thread count.
  explicit Testbed(std::uint64_t seed = 1,
                   radio::Calibration cal = radio::Calibration::defaults(),
                   unsigned threads = 1)
      : cal_(cal),
        sim_(seed, threads),
        // Grid cells sized to the smallest radio range: BLE beacons are by
        // far the most frequent queries, and matching their 40 m disc keeps
        // candidate sets tight. Longer-range queries (WiFi/NAN) just probe a
        // few more cells — the disc query is exact at any cell size.
        world_(sim_, std::min({cal.ble_range_m, cal.wifi_range_m,
                               cal.nan_range_m})),
        ble_medium_(world_, cal_),
        wifi_system_(world_, cal_),
        nan_system_(world_, cal_),
        mesh_(&wifi_system_.create_mesh("omni-mesh")) {
    // Conservative lookahead: BLE advertising is the fastest cross-node
    // path any sharded (node-owned) event can take, so its event interval
    // bounds how far shards may run ahead of each other. WiFi/NAN fan-out
    // is barrier-serialized (global owner) and does not constrain this.
    sim_.set_lookahead(ble_medium_.min_latency());
  }

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Add a device at a position. Radios start in their default states
  /// (BLE powered, WiFi off).
  Device& add_device(const std::string& name, sim::Vec2 position = {}) {
    NodeId id = world_.add_node(name, position);
    devices_.push_back(std::make_unique<Device>(world_, ble_medium_,
                                                wifi_system_, nan_system_,
                                                id));
    return *devices_.back();
  }

  sim::Simulator& simulator() { return sim_; }
  sim::World& world() { return world_; }
  radio::BleMedium& ble_medium() { return ble_medium_; }
  radio::WifiSystem& wifi_system() { return wifi_system_; }
  radio::NanSystem& nan_system() { return nan_system_; }
  radio::MeshNetwork& mesh() { return *mesh_; }
  const radio::Calibration& calibration() const { return cal_; }
  sim::TraceRecorder& trace() { return trace_; }

  Device& device(std::size_t i) { return *devices_.at(i); }
  std::size_t device_count() const { return devices_.size(); }

 private:
  radio::Calibration cal_;
  sim::Simulator sim_;
  sim::World world_;
  radio::BleMedium ble_medium_;
  radio::WifiSystem wifi_system_;
  radio::NanSystem nan_system_;
  radio::MeshNetwork* mesh_;
  std::vector<std::unique_ptr<Device>> devices_;
  sim::TraceRecorder trace_;
};

}  // namespace omni::net
