// Testbed: one-stop assembly of simulator, world, media, and devices.
//
// Mirrors the paper's physical testbed setup: a room of Raspberry Pis with
// BLE and WiFi-Mesh radios plus one shared mesh network. Tests, examples,
// and benches build scenarios from this.
#pragma once

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "net/device.h"
#include "obs/trace_file.h"
#include "obs/omniscope.h"
#include "omni/discovery_policy.h"
#include "obs/perfetto.h"
#include "radio/ble.h"
#include "radio/calibration.h"
#include "radio/mesh.h"
#include "radio/nan.h"
#include "radio/wifi_system.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"
#include "sim/trace.h"
#include "sim/world.h"

namespace omni::net {

class Testbed {
 public:
  /// `threads` > 1 runs the parallel sharded engine; results are
  /// bit-identical at any thread count.
  explicit Testbed(std::uint64_t seed = 1,
                   radio::Calibration cal = radio::Calibration::defaults(),
                   unsigned threads = 1)
      : cal_(cal),
        sim_(seed, threads),
        // Grid cells sized to the smallest radio range: BLE beacons are by
        // far the most frequent queries, and matching their 40 m disc keeps
        // candidate sets tight. Longer-range queries (WiFi/NAN) just probe a
        // few more cells — the disc query is exact at any cell size.
        world_(sim_, std::min({cal.ble_range_m, cal.wifi_range_m,
                               cal.nan_range_m})),
        ble_medium_(world_, cal_),
        wifi_system_(world_, cal_),
        nan_system_(world_, cal_),
        mesh_(&wifi_system_.create_mesh("omni-mesh")) {
    // Conservative lookahead: BLE advertising is the fastest cross-node
    // path any sharded (node-owned) event can take, so its event interval
    // bounds how far shards may run ahead of each other. WiFi/NAN fan-out
    // is barrier-serialized (global owner) and does not constrain this.
    sim_.set_lookahead(ble_medium_.min_latency());
  }

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  ~Testbed() {
    if (crash_dumps_armed_) clear_crash_dump_hook();
  }

  /// Add a device at a position. Radios start in their default states
  /// (BLE powered, WiFi off).
  Device& add_device(const std::string& name, sim::Vec2 position = {}) {
    NodeId id = world_.add_node(name, position);
    devices_.push_back(std::make_unique<Device>(world_, ble_medium_,
                                                wifi_system_, nan_system_,
                                                id));
    if (scope_) {
      scope_->ensure_owner_capacity(world_.node_count());
      scope_->set_owner_name(id, name);
    }
    return *devices_.back();
  }

  /// Add a background-population node: world-resident only (queries see it,
  /// nothing runs on it). City-scale benches use these for the crowd around
  /// a core of full-stack devices. Returns the node id.
  NodeId add_crowd_node(const std::string& name, sim::Vec2 position = {}) {
    return world_.add_crowd_node(name, position);
  }

  /// Attach an Omniscope to the simulator: metrics, flight recorder, and
  /// energy ledger all come alive. Idempotent; call any time during setup
  /// (devices added before or after are both covered). Costs one predicted
  /// branch per instrumentation site when off — see obs/omniscope.h.
  /// `detail` gates per-frame trace records (counters are unconditional);
  /// turn it off for large fleets where only aggregates matter.
  obs::Omniscope& enable_observability(std::size_t ring_capacity = 1 << 16,
                                       bool detail = true) {
    if (!scope_) {
      scope_ = std::make_unique<obs::Omniscope>();
      scope_->attach(sim_, ring_capacity);
      scope_->set_detail(detail);
      // Open energy levels (standby draws) only reach the ledger when
      // closed; flush them whenever aggregates are read or exported.
      scope_->add_flush_hook([this] {
        for (auto& d : devices_) d->meter().flush_levels();
      });
      scope_->ensure_owner_capacity(world_.node_count());
      for (auto& d : devices_) {
        scope_->set_owner_name(d->node(), std::string(world_.name(d->node())));
      }
    }
    return *scope_;
  }

  /// The attached scope, or nullptr when observability is off.
  obs::Omniscope* observability() { return scope_.get(); }

  /// Scripted fault windows as labelled spans for the Perfetto export.
  /// Open-ended windows are clamped to the simulator's current time, so
  /// call this after the run.
  obs::ExportOptions export_options() const {
    obs::ExportOptions opts;
    const std::int64_t now_us = sim_.now().as_micros();
    auto clamp_us = [now_us](TimePoint t) {
      const std::int64_t us = t.as_micros();
      return us > now_us ? now_us : us;
    };
    for (const auto& b : fault_plan_.blackouts()) {
      opts.annotations.push_back(obs::AnnotationSpan{
          "blackout " + std::string(world_.name(b.node)), b.start.as_micros(),
          clamp_us(b.end)});
    }
    for (const auto& c : fault_plan_.crashes()) {
      opts.annotations.push_back(obs::AnnotationSpan{
          "crash " + std::string(world_.name(c.node)), c.at.as_micros(),
          c.restart > c.at ? c.restart.as_micros() : now_us});
    }
    for (const auto& f : fault_plan_.link_faults()) {
      std::string kind = f.loss > 0 ? "loss" : f.corrupt > 0 ? "corrupt"
                                                             : "latency";
      opts.annotations.push_back(obs::AnnotationSpan{
          "link " + kind, f.start.as_micros(), clamp_us(f.end)});
    }
    for (const auto& p : fault_plan_.partitions()) {
      opts.annotations.push_back(obs::AnnotationSpan{
          "partition", p.start.as_micros(), clamp_us(p.end)});
    }
    return opts;
  }

  /// Run-wide discovery scheduling policy. The testbed only stores it —
  /// helpers that assemble OmniNodes on top (benches, tests, the scenario
  /// runner) read it into ManagerOptions::discovery when constructing nodes.
  /// Defaults to kFixed, the paper's 500 ms cadence.
  void set_discovery_policy(const DiscoveryPolicy& policy) {
    discovery_ = policy;
  }
  const DiscoveryPolicy& discovery_policy() const { return discovery_; }

  sim::Simulator& simulator() { return sim_; }
  sim::World& world() { return world_; }
  radio::BleMedium& ble_medium() { return ble_medium_; }
  radio::WifiSystem& wifi_system() { return wifi_system_; }
  radio::NanSystem& nan_system() { return nan_system_; }
  radio::MeshNetwork& mesh() { return *mesh_; }
  const radio::Calibration& calibration() const { return cal_; }
  sim::TraceRecorder& trace() { return trace_; }

  Device& device(std::size_t i) { return *devices_.at(i); }
  std::size_t device_count() const { return devices_.size(); }

  /// The testbed's fault plan. The first call arms the media hooks (the
  /// world keeps a pointer to the plan); an untouched testbed pays nothing
  /// on the delivery hot paths. Populate the plan, then call
  /// schedule_faults() once every device has been added.
  sim::FaultPlan& fault_plan() {
    world_.set_fault_plan(&fault_plan_);
    return fault_plan_;
  }

  /// Turn the plan's active entries — blackouts, flap windows, and node
  /// crash/restart churn — into barrier-serialized global power events
  /// against the matching devices. Passive entries (loss, corruption,
  /// latency, partitions) need no scheduling; media query them directly.
  void schedule_faults() {
    const sim::FaultPlan& plan = fault_plan();
    for (const auto& b : plan.blackouts()) {
      Device* dev = device_for(b.node);
      if (dev == nullptr) continue;
      const bool ble = b.radio == sim::FaultRadio::kAll ||
                       b.radio == sim::FaultRadio::kBle;
      const bool wifi = b.radio == sim::FaultRadio::kAll ||
                        b.radio == sim::FaultRadio::kWifi;
      const bool nan = b.radio == sim::FaultRadio::kAll ||
                       b.radio == sim::FaultRadio::kNan;
      auto set_power = [this, dev, ble, wifi, nan](bool on) {
        if (obs::Omniscope* sc = OMNI_SCOPE(sim_);
            sc != nullptr && sc->recording()) {
          sc->instant_on(dev->node(), obs::Cat::kFaultPower, on ? 1 : 0);
        }
        if (ble) dev->ble().set_powered(on);
        if (wifi) dev->wifi().set_powered(on);
        // NAN has no power rail of its own; enabling/disabling the NAN
        // function models the same outage.
        if (nan) dev->nan().set_enabled(on);
      };
      if (b.period <= Duration::zero() || b.off_fraction >= 1.0) {
        sim_.at_on(sim::kGlobalOwner, b.start,
                   [set_power] { set_power(false); });
        if (b.end < TimePoint::max()) {
          sim_.at_on(sim::kGlobalOwner, b.end,
                     [set_power] { set_power(true); });
        }
      } else {
        const Duration off = b.period * b.off_fraction;
        for (TimePoint t = b.start; t < b.end; t = t + b.period) {
          sim_.at_on(sim::kGlobalOwner, t, [set_power] { set_power(false); });
          sim_.at_on(sim::kGlobalOwner, std::min(t + off, b.end),
                     [set_power] { set_power(true); });
        }
      }
    }
    for (const auto& c : plan.crashes()) {
      Device* dev = device_for(c.node);
      if (dev == nullptr) continue;
      // NAN enablement is app-driven; remember whether it was on at crash
      // time so the restart only re-enables what the crash took down.
      auto nan_was_enabled = std::make_shared<bool>(false);
      sim_.at_on(sim::kGlobalOwner, c.at, [this, dev, nan_was_enabled] {
        if (obs::Omniscope* sc = OMNI_SCOPE(sim_);
            sc != nullptr && sc->recording()) {
          sc->instant_on(dev->node(), obs::Cat::kCrash, 0);
        }
        *nan_was_enabled = dev->nan().enabled();
        dev->ble().set_powered(false);
        dev->wifi().set_powered(false);
        dev->nan().set_enabled(false);
      });
      if (c.restart > c.at) {
        const bool rotate = c.rotate_addresses;
        sim_.at_on(sim::kGlobalOwner, c.restart, [this, dev,
                                                  nan_was_enabled, rotate] {
          if (obs::Omniscope* sc = OMNI_SCOPE(sim_);
              sc != nullptr && sc->recording()) {
            sc->instant_on(dev->node(), obs::Cat::kCrash, 1);
          }
          // Rotate before powering on: the node comes back with its fresh
          // link addresses already in place, like a real reboot.
          if (rotate) dev->ble().rotate_address();
          dev->ble().set_powered(true);
          dev->wifi().set_powered(true);
          if (*nan_was_enabled) dev->nan().set_enabled(true);
        });
      }
    }
  }

  // --- Snapshot / checkpoint / resume (see sim/snapshot.h) ------------------

  /// Register an extra section writer run by every capture_snapshot call.
  /// Upper layers use this to contribute state the net layer cannot see —
  /// e.g. omni::capture_managers for the kSecManagers section.
  void add_snapshot_source(std::function<void(sim::Snapshot&)> source) {
    if (source) snapshot_sources_.push_back(std::move(source));
  }

  /// Identify the driving scenario in every snapshot manifest (resume
  /// refuses a snapshot whose fingerprint disagrees with the rebuilt run).
  /// `text` optionally embeds the scenario source itself.
  void set_scenario_fingerprint(std::uint64_t hash, std::string text = {}) {
    scenario_hash_ = hash;
    scenario_text_ = std::move(text);
  }

  /// Capture the complete logical run state at the current instant. Must be
  /// called from a quiescent context: setup/teardown code or a
  /// barrier-serialized global event (the engine-state walkers assert this).
  /// Metrics are captured from the registry directly — deliberately without
  /// running flush hooks, which would perturb in-progress energy-level
  /// accounting relative to a run that never checkpointed.
  sim::Snapshot capture_snapshot(const std::string& label = {}) {
    sim::Snapshot snap;
    sim::SnapshotManifest m;
    m.seed = sim_.seed();
    m.at = sim_.now();
    m.threads = sim_.threads();
    m.executed_events = sim_.executed_events();
    m.node_count = world_.node_count();
    m.device_count = devices_.size();
    m.label = label;
    m.scenario_hash = scenario_hash_;
    m.scenario_text = scenario_text_;
    sim::write_manifest(m, snap);
    sim::capture_events(sim_, sim_.now(), snap);
    sim::capture_rng(sim_, snap);
    sim::capture_world(world_, snap);
    sim::capture_faults(fault_plan_, snap);
    if (scope_) {
      sim::ByteWriter w;
      w.str(scope_->metrics().dump());
      snap.section(sim::kSecMetrics).bytes = w.take();
    }
    for (auto& source : snapshot_sources_) source(snap);
    maybe_verify_resume(snap);
    return snap;
  }

  /// capture_snapshot + write to `path`. The capture always runs (it is
  /// part of the deterministic schedule — see set_artifact_writes); only
  /// the file write is gated.
  Status write_snapshot(const std::string& path,
                        const std::string& label = {}) {
    sim::Snapshot snap = capture_snapshot(label);
    if (!artifact_writes_) return Status::ok();
    return sim::write_snapshot_file(path, snap);
  }

  /// Arm a periodic checkpoint daemon: a barrier-serialized global event
  /// captures every `interval` and writes `dir/ckpt_<t_us>.osnap`. Capture
  /// runs before the next event is scheduled, so a checkpoint never contains
  /// its own continuation — a resumed run that re-arms the same cadence
  /// reproduces every later checkpoint byte-for-byte.
  ///
  /// Checkpoint events are part of the event schedule: an A/B digest
  /// comparison must run the same cadence on both sides (or none on both).
  void checkpoint_every(Duration interval, std::string dir = ".") {
    OMNI_ASSERT(interval > Duration::zero());
    checkpoint_dir_ = std::move(dir);
    if (artifact_writes_) {
      std::error_code ec;
      std::filesystem::create_directories(checkpoint_dir_, ec);
    }
    schedule_checkpoint(interval);
  }

  /// Paths of every checkpoint written so far, in capture order.
  const std::vector<std::string>& checkpoints() const { return checkpoints_; }

  /// First checkpoint write failure, or empty. The checkpoint daemon runs
  /// inside a global event with no way to abort the run, so the failure is
  /// recorded here; drivers (scenario::run) check it after the run and
  /// turn it into an error instead of silently ending up with fewer
  /// checkpoint files than scheduled.
  const std::string& checkpoint_error() const { return checkpoint_error_; }

  /// Replica mode for the distributed engine: when off, snapshot /
  /// checkpoint / trace *captures* still execute (they are events on the
  /// deterministic schedule, and capture flush hooks touch energy-meter
  /// state), but nothing is written to the filesystem. Defaults to on.
  void set_artifact_writes(bool on) { artifact_writes_ = on; }
  bool artifact_writes() const { return artifact_writes_; }

  /// Anchor this (freshly built, not yet run) testbed to a snapshot: load
  /// `path`, validate it against the rebuilt run (seed, scenario
  /// fingerprint), and hold it as the verification target. The caller then
  /// re-runs the identical setup past the manifest instant T; the first
  /// capture_snapshot at exactly T (normally the re-armed checkpoint daemon)
  /// is byte-compared against the file. resume_verified()/resume_error()
  /// report the outcome. Returns the manifest (so the driver knows T).
  Result<sim::SnapshotManifest> resume_from(const std::string& path) {
    using R = Result<sim::SnapshotManifest>;
    auto snap = sim::read_snapshot_file(path);
    if (!snap.is_ok()) return R::error(snap.error_message());
    auto manifest = sim::read_manifest(snap.value());
    if (!manifest.is_ok()) return R::error(manifest.error_message());
    const sim::SnapshotManifest m = std::move(manifest).value();
    if (m.seed != sim_.seed()) {
      return R::error("resume: snapshot seed " + std::to_string(m.seed) +
                      " != testbed seed " + std::to_string(sim_.seed()));
    }
    if (m.scenario_hash != 0 && scenario_hash_ != 0 &&
        m.scenario_hash != scenario_hash_) {
      return R::error("resume: scenario fingerprint mismatch");
    }
    if (m.at < sim_.now()) {
      return R::error("resume: snapshot instant is in this run's past");
    }
    resume_target_ = std::make_unique<sim::Snapshot>(std::move(snap).value());
    resume_at_ = m.at;
    resume_checked_ = false;
    resume_error_.clear();
    return m;
  }

  /// True once the resume target was reached and byte-verified clean.
  bool resume_verified() const {
    return resume_checked_ && resume_error_.empty();
  }
  /// True while a resume target is loaded but its instant not yet reached.
  bool resume_pending() const {
    return resume_target_ != nullptr && !resume_checked_;
  }
  /// Diff diagnostic when verification failed; empty otherwise.
  const std::string& resume_error() const { return resume_error_; }

  /// Arm OMNI_ASSERT crash capture: on any assertion failure, write
  /// `dir/crash_reason.txt`, the flight-recorder tail (`crash_tail.otr`,
  /// when observability is on), and — when the failure comes from a
  /// quiescent context — a full `crash.osnap` state snapshot. Failures
  /// inside a parallel window degrade to reason + trace tail (a state walk
  /// would race the shards). Disarmed automatically on destruction.
  void arm_crash_dumps(std::string dir) {
    crash_dir_ = std::move(dir);
    std::error_code ec;
    std::filesystem::create_directories(crash_dir_, ec);
    crash_dumps_armed_ = true;
    set_crash_dump_hook(
        [this](const char* reason) { write_crash_dump(reason); });
  }

 private:
  void schedule_checkpoint(Duration interval) {
    sim_.at_on(sim::kGlobalOwner, sim_.now() + interval, [this, interval] {
      take_checkpoint();
      schedule_checkpoint(interval);
    });
  }

  void take_checkpoint() {
    char name[48];
    std::snprintf(name, sizeof(name), "ckpt_%012lld.osnap",
                  static_cast<long long>(sim_.now().as_micros()));
    const std::string path =
        checkpoint_dir_.empty() ? std::string(name)
                                : checkpoint_dir_ + "/" + name;
    sim::Snapshot snap = capture_snapshot("checkpoint");
    if (!artifact_writes_) return;
    Status s = sim::write_snapshot_file(path, snap);
    if (s.is_ok()) {
      checkpoints_.push_back(path);
    } else if (checkpoint_error_.empty()) {
      checkpoint_error_ = s.message();
    }
  }

  void maybe_verify_resume(const sim::Snapshot& snap) {
    if (resume_target_ == nullptr || resume_checked_ ||
        sim_.now() != resume_at_) {
      return;
    }
    resume_checked_ = true;
    // The manifest legitimately differs (capturing thread count, label);
    // every state section must match byte-for-byte.
    resume_error_ = sim::diff_snapshots(*resume_target_, snap,
                                        /*skip_manifest=*/true);
  }

  void write_crash_dump(const char* reason) {
    const std::string dir = crash_dir_.empty() ? "." : crash_dir_;
    {
      std::ofstream rf(dir + "/crash_reason.txt");
      rf << reason << "\n";
    }
    if (scope_) {
      obs::write_trace_file(dir + "/crash_tail.otr", obs::capture(*scope_));
    }
    // Full state capture only from a quiescent context; a failure raised
    // inside a parallel window must not walk shard-owned state.
    if (sim_.current_shard_index() == sim_.threads()) {
      sim::write_snapshot_file(dir + "/crash.osnap",
                               capture_snapshot("crash"));
    }
  }

  Device* device_for(NodeId node) {
    for (auto& d : devices_) {
      if (d->node() == node) return d.get();
    }
    return nullptr;
  }

  radio::Calibration cal_;
  sim::Simulator sim_;
  sim::World world_;
  radio::BleMedium ble_medium_;
  radio::WifiSystem wifi_system_;
  radio::NanSystem nan_system_;
  radio::MeshNetwork* mesh_;
  std::vector<std::unique_ptr<Device>> devices_;
  sim::TraceRecorder trace_;
  sim::FaultPlan fault_plan_;
  DiscoveryPolicy discovery_;
  std::unique_ptr<obs::Omniscope> scope_;

  // Snapshot / checkpoint / resume state.
  std::vector<std::function<void(sim::Snapshot&)>> snapshot_sources_;
  std::uint64_t scenario_hash_ = 0;
  std::string scenario_text_;
  std::string checkpoint_dir_;
  std::vector<std::string> checkpoints_;
  std::string checkpoint_error_;
  bool artifact_writes_ = true;
  std::unique_ptr<sim::Snapshot> resume_target_;
  TimePoint resume_at_;
  bool resume_checked_ = false;
  std::string resume_error_;
  std::string crash_dir_;
  bool crash_dumps_armed_ = false;
};

}  // namespace omni::net
