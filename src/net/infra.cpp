#include "net/infra.h"

namespace omni::net {

Status InfraNetwork::fetch_chunk(radio::WifiRadio& radio,
                                 std::uint64_t chunk_id, std::uint64_t bytes,
                                 double rate_Bps, ChunkDoneFn done) {
  if (!radio.powered()) return Status::error("WiFi radio is off");
  OMNI_CHECK_MSG(rate_Bps > 0, "infrastructure rate must be positive");
  Pipe& pipe = pipes_[&radio];
  pipe.queue.push_back(Request{chunk_id, bytes, rate_Bps, std::move(done)});
  if (!pipe.busy) service(radio);
  return Status::ok();
}

std::size_t InfraNetwork::cancel_pending(radio::WifiRadio& radio) {
  auto it = pipes_.find(&radio);
  if (it == pipes_.end()) return 0;
  std::size_t n = it->second.queue.size();
  it->second.queue.clear();
  return n;
}

std::size_t InfraNetwork::pending_count(radio::WifiRadio& radio) const {
  auto it = pipes_.find(&radio);
  return it == pipes_.end() ? 0 : it->second.queue.size();
}

void InfraNetwork::service(radio::WifiRadio& radio) {
  Pipe& pipe = pipes_[&radio];
  if (pipe.queue.empty()) {
    pipe.busy = false;
    return;
  }
  pipe.busy = true;
  Request req = std::move(pipe.queue.front());
  pipe.queue.pop_front();

  double secs = static_cast<double>(req.bytes) / req.rate_Bps;
  TimePoint t0 = sim_.now();
  TimePoint t1 = t0 + Duration::seconds(secs);
  // Radio-active time: airtime at full channel rate plus the streaming duty
  // (the radio never power-saves while a download is in progress), so
  // low-rate infrastructure flows keep the radio awake disproportionately.
  double airtime = static_cast<double>(req.bytes) / cal_.wifi_capacity_Bps;
  double active = airtime + secs * cal_.wifi_stream_duty;
  radio.rx_charger().charge_active(t0, t1, active);

  sim_.after(Duration::seconds(secs),
             [this, &radio, chunk_id = req.chunk_id,
              done = std::move(req.done)] {
               if (done) done(chunk_id);
               service(radio);
             });
}

}  // namespace omni::net
