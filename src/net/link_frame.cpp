#include "net/link_frame.h"

namespace omni {

std::optional<std::span<const std::uint8_t>> unframe_ble_view(
    std::span<const std::uint8_t> frame, const BleAddress& self) {
  if (frame.empty()) return std::nullopt;
  if (frame[0] == kFrameBroadcast || frame[0] == kFrameBroadcastData) {
    return frame.subspan(1);
  }
  if (frame[0] != kFrameUnicast || frame.size() < 7) return std::nullopt;
  BleAddress dest;
  for (int i = 0; i < 6; ++i) dest.octets[i] = frame[1 + i];
  if (dest != self) return std::nullopt;
  return frame.subspan(7);
}

std::optional<std::span<const std::uint8_t>> unframe_mesh_view(
    std::span<const std::uint8_t> frame, const MeshAddress& self) {
  if (frame.empty()) return std::nullopt;
  if (frame[0] == kFrameBroadcast || frame[0] == kFrameBroadcastData) {
    return frame.subspan(1);
  }
  if (frame[0] != kFrameUnicast || frame.size() < 9) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | frame[1 + i];
  if (MeshAddress{v} != self) return std::nullopt;
  return frame.subspan(9);
}

std::optional<Bytes> unframe_ble(std::span<const std::uint8_t> frame,
                                 const BleAddress& self) {
  auto view = unframe_ble_view(frame, self);
  if (!view) return std::nullopt;
  return Bytes(view->begin(), view->end());
}

std::optional<Bytes> unframe_mesh(std::span<const std::uint8_t> frame,
                                  const MeshAddress& self) {
  auto view = unframe_mesh_view(frame, self);
  if (!view) return std::nullopt;
  return Bytes(view->begin(), view->end());
}

Bytes frame_aggregate(const std::vector<Bytes>& payloads) {
  std::size_t total = 1;
  for (const Bytes& p : payloads) total += 4 + p.size();
  ByteWriter w(total);
  w.u8(kFrameAggregate);
  for (const Bytes& p : payloads) w.blob(p);
  return std::move(w).take();
}

std::vector<Bytes> unframe_aggregate(std::span<const std::uint8_t> frame) {
  std::vector<Bytes> out;
  if (frame.empty() || frame[0] != kFrameAggregate) return out;
  ByteReader r(frame.subspan(1));
  while (!r.exhausted()) {
    auto inner = r.blob();
    if (!inner) return {};
    out.push_back(std::move(inner).value());
  }
  return out;
}

}  // namespace omni
