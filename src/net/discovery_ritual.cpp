#include "net/discovery_ritual.h"

#include <algorithm>

#include "obs/omniscope.h"

namespace omni::net {

void run_discovery_ritual(radio::WifiRadio& radio, radio::MeshNetwork& mesh,
                          RitualOptions options,
                          std::function<void(Status)> done) {
  if (!radio.powered()) {
    done(Status::error("WiFi radio is off"));
    return;
  }
  radio.scan([&radio, &mesh, options, done = std::move(done)](
                 std::vector<radio::MeshNetwork*> found) mutable {
    bool visible = std::find(found.begin(), found.end(), &mesh) != found.end();
    // A mesh we are already part of counts as present even with no other
    // member in range yet (we may be the first).
    if (!visible && radio.mesh() != &mesh) {
      done(Status::error("mesh not found during scan"));
      return;
    }
    radio.join(mesh, [&radio, &mesh, options,
                      done = std::move(done)](Status joined) mutable {
      if (!joined) {
        done(std::move(joined));
        return;
      }
      const auto& cal = radio.calibration();
      Duration wait = cal.wifi_resolve_query;
      if (options.wait_for_advertisement) wait += cal.wifi_advert_wait;
      if (obs::Omniscope* sc = OMNI_SCOPE(radio.simulator());
          sc != nullptr && sc->recording()) {
        // The resolution wait is the span the paper's ritual spends parked
        // on the mesh before contexts can flow.
        sc->complete_on(radio.node(), obs::Cat::kRitual, wait);
      }
      // The resolve query is one small multicast round-trip.
      radio.meter().charge_for(Duration::millis(3), cal.wifi_send_ma,
                               obs::EnergyRail::kWifi);
      radio.simulator().after(wait, [&radio, &mesh,
                                     done = std::move(done)]() mutable {
        if (!radio.powered() || radio.mesh() != &mesh) {
          done(Status::error("radio state changed during resolution"));
          return;
        }
        radio.meter().charge_for(Duration::millis(3),
                                 radio.calibration().wifi_receive_ma,
                                 obs::EnergyRail::kWifi);
        done(Status::ok());
      });
    });
  });
}

}  // namespace omni::net
