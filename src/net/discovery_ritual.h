// The WiFi address-resolution ritual.
//
// When a data transfer is about to use a peer mapping that was obtained via
// application-level multicast (instead of integrated low-level neighbor
// discovery), the stack must re-validate the network first: scan for the
// mesh, (re)join it, and resolve the peer with a query — and, if the service
// itself must be rediscovered over WiFi, wait out the peer's next periodic
// advertisement. This is the paper's explanation for the multi-second
// State-of-the-Art / State-of-the-Practice service latencies (§4.2), and it
// is exactly the step Omni's BLE-derived address beacons let it skip.
#pragma once

#include <functional>

#include "common/result.h"
#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni::net {

struct RitualOptions {
  /// Also wait for the peer's next periodic service advertisement (true when
  /// service discovery itself rides WiFi multicast).
  bool wait_for_advertisement = false;
};

/// Run scan -> join(mesh) -> resolve-query [-> advert wait] on `radio`, then
/// invoke `done`. Charges the corresponding scan/connect/query energy. If the
/// radio is off or the mesh disappears, `done` receives an error.
void run_discovery_ritual(radio::WifiRadio& radio, radio::MeshNetwork& mesh,
                          RitualOptions options,
                          std::function<void(Status)> done);

}  // namespace omni::net
