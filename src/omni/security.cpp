#include "omni/security.h"

#include <cstring>

#include "common/byte_buffer.h"
#include "common/hash.h"

namespace omni {

namespace {
constexpr std::uint32_t kXteaDelta = 0x9E3779B9;
constexpr int kXteaRounds = 32;
}  // namespace

BeaconCipher::BeaconCipher(std::span<const std::uint8_t> key_material) {
  // Stretch arbitrary key material into 4 x 32-bit subkeys via seeded FNV.
  std::uint64_t h1 = fnv1a64(key_material);
  std::uint64_t h2 = fnv1a64(key_material, h1 ^ 0x5bd1e995u);
  key_[0] = static_cast<std::uint32_t>(h1);
  key_[1] = static_cast<std::uint32_t>(h1 >> 32);
  key_[2] = static_cast<std::uint32_t>(h2);
  key_[3] = static_cast<std::uint32_t>(h2 >> 32);
}

std::uint64_t BeaconCipher::encrypt_block(std::uint64_t block) const {
  std::uint32_t v0 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = 0;
  for (int i = 0; i < kXteaRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_[sum & 3]);
    sum += kXteaDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key_[(sum >> 11) & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

void BeaconCipher::keystream(std::uint64_t nonce, std::size_t length,
                             std::uint8_t* out) const {
  std::uint64_t counter = 0;
  std::size_t produced = 0;
  while (produced < length) {
    std::uint64_t block = encrypt_block(nonce ^ counter);
    ++counter;
    for (int i = 0; i < 8 && produced < length; ++i, ++produced) {
      out[produced] = static_cast<std::uint8_t>(block >> (8 * (7 - i)));
    }
  }
}

std::uint32_t BeaconCipher::tag(std::span<const std::uint8_t> plain,
                                std::uint64_t nonce) const {
  // CBC-MAC style tag over the plaintext, keyed by the cipher itself.
  std::uint64_t acc = encrypt_block(nonce ^ 0xA5A5A5A5A5A5A5A5ull);
  std::uint64_t block = 0;
  int fill = 0;
  for (std::uint8_t b : plain) {
    block = (block << 8) | b;
    if (++fill == 8) {
      acc = encrypt_block(acc ^ block);
      block = 0;
      fill = 0;
    }
  }
  // Final partial block carries the length to prevent extension games.
  block = (block << 8) | (plain.size() & 0xff);
  acc = encrypt_block(acc ^ block);
  return static_cast<std::uint32_t>(acc ^ (acc >> 32));
}

Bytes BeaconCipher::seal(std::span<const std::uint8_t> plain,
                         std::uint64_t nonce) const {
  ByteWriter w(plain.size() + kSealOverhead);
  w.u8(kSealedPacketMarker);
  w.u64(nonce);
  w.u32(tag(plain, nonce));
  Bytes cipher(plain.size());
  keystream(nonce, cipher.size(), cipher.data());
  for (std::size_t i = 0; i < plain.size(); ++i) cipher[i] ^= plain[i];
  w.raw(cipher);
  return std::move(w).take();
}

std::optional<Bytes> BeaconCipher::open(
    std::span<const std::uint8_t> sealed) const {
  Bytes plain;
  if (!open_into(sealed, plain)) return std::nullopt;
  return plain;
}

bool BeaconCipher::open_into(std::span<const std::uint8_t> sealed,
                             Bytes& out) const {
  if (sealed.size() < kSealOverhead || sealed[0] != kSealedPacketMarker) {
    return false;
  }
  ByteReader r(sealed.subspan(1));
  std::uint64_t nonce = r.u64().value();
  std::uint32_t expected_tag = r.u32().value();
  std::span<const std::uint8_t> body = sealed.subspan(kSealOverhead);
  out.resize(body.size());
  // Keystream generated straight into `out`, then XORed with the ciphertext
  // in place — no temporary buffer.
  keystream(nonce, out.size(), out.data());
  for (std::size_t i = 0; i < body.size(); ++i) out[i] ^= body[i];
  return tag(out, nonce) == expected_tag;
}

}  // namespace omni
