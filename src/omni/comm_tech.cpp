#include "omni/comm_tech.h"

namespace omni {

std::string to_string(const LowLevelAddress& addr) {
  if (std::holds_alternative<BleAddress>(addr)) {
    return std::get<BleAddress>(addr).to_string();
  }
  if (std::holds_alternative<MeshAddress>(addr)) {
    return std::get<MeshAddress>(addr).to_string();
  }
  if (std::holds_alternative<NanAddress>(addr)) {
    return std::get<NanAddress>(addr).to_string();
  }
  return "(unset)";
}

std::string to_string(SendOp op) {
  switch (op) {
    case SendOp::kAddContext:
      return "add_context";
    case SendOp::kUpdateContext:
      return "update_context";
    case SendOp::kRemoveContext:
      return "remove_context";
    case SendOp::kSendData:
      return "send_data";
  }
  return "send_op(?)";
}

TechResponse TechResponse::result(Technology tech, const SendRequest& req,
                                  bool success, std::string failure) {
  TechResponse r;
  r.kind = Kind::kRequestResult;
  r.tech = tech;
  r.request_id = req.request_id;
  r.op = req.op;
  r.success = success;
  r.failure_reason = std::move(failure);
  r.context_id = req.context_id;
  r.dest_omni = req.dest_omni;
  r.callback = req.callback;
  if (!success) r.original = std::make_shared<SendRequest>(req);
  return r;
}

TechResponse TechResponse::status_change(Technology tech, bool up) {
  TechResponse r;
  r.kind = Kind::kTechStatus;
  r.tech = tech;
  r.up = up;
  return r;
}

TechResponse TechResponse::address_change(Technology tech,
                                          LowLevelAddress new_address) {
  TechResponse r;
  r.kind = Kind::kAddressChange;
  r.tech = tech;
  r.new_address = std::move(new_address);
  return r;
}

}  // namespace omni
