// BLE technology plugin: periodic context via advertisements, small data via
// fast-advertising datagrams (paper §3.2, "Technologies for Distributing
// Context").
//
// The lowest-energy technology in the stack; Omni's default carrier for
// address beacons and context. Payloads are bounded by the 31-byte legacy
// advertisement (or 255-byte Bluetooth 5 extended advertising when the
// calibration enables it — the paper's future-work item).
#pragma once

#include <map>
#include <vector>

#include "omni/comm_tech.h"
#include "radio/ble.h"

namespace omni {

class BleTech final : public CommTechnology {
 public:
  struct Options {
    /// Scanner duty while disengaged (probe listening).
    double probe_scan_duty = 0.1;
  };

  explicit BleTech(radio::BleRadio& radio) : BleTech(radio, Options{}) {}
  BleTech(radio::BleRadio& radio, Options options);

  EnableResult enable(const TechQueues& queues) override;
  void disable() override;

  Technology type() const override { return Technology::kBle; }
  bool enabled() const override { return enabled_; }

  bool supports_context() const override { return true; }
  bool supports_data() const override { return true; }
  std::size_t max_context_payload() const override;
  std::size_t max_data_payload() const override;
  Duration estimate_data_time(std::size_t bytes,
                              bool needs_refresh) const override;

  void set_engaged(bool engaged) override;
  bool engaged() const override { return engaged_; }

  /// Discovery-policy listen scheduling: the manager caps the scan duty when
  /// the neighborhood is saturated and stable, and clears the cap (duty = 0)
  /// when it changes. Applies to both engaged (default duty 1.0) and probe
  /// (options_.probe_scan_duty) listening; data datagrams ride reliable
  /// bursts and are unaffected.
  void set_discovery_scan_duty(double duty) override;
  /// The duty the scanner currently runs at (tests / benches).
  double effective_scan_duty() const;

 private:
  void drain_send_queue();
  void process(SendRequest request);
  void on_radio_receive(const BleAddress& from, const Bytes& frame);
  void respond(const SendRequest& request, bool success,
               std::string failure = {});

  radio::BleRadio& radio_;
  Options options_;
  TechQueues queues_;
  bool enabled_ = false;
  bool engaged_ = true;
  /// Discovery-policy duty cap; 0 = none (see set_discovery_scan_duty).
  double scan_duty_override_ = 0.0;
  std::map<ContextId, radio::AdvertisementId> context_advs_;
};

}  // namespace omni
