// Context-beacon encryption (paper §3.4).
//
// "Beacons for sharing context can be encrypted using symmetric encryption.
// The key to decrypt the beacon could be shared out of band" — this module
// provides that: a symmetric cipher sealing whole packed structs so that
// only devices provisioned with the shared key can read (or even parse)
// context and address beacons.
//
// Construction: XTEA-64 in counter mode with a 64-bit per-message nonce and
// a 4-byte integrity tag. XTEA is a real block cipher and adequate for the
// simulated testbed; a production deployment would swap in AES-GCM behind
// the same interface.
//
// Sealed wire format:  [0xE0][8-byte nonce][4-byte tag][ciphertext...]
// 0xE0 can never be a valid PacketKind, so receivers unambiguously
// distinguish sealed from plain packets.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/types.h"

namespace omni {

/// Marker byte identifying a sealed packet.
inline constexpr std::uint8_t kSealedPacketMarker = 0xE0;
/// Header overhead of a sealed packet (marker + nonce + tag).
inline constexpr std::size_t kSealOverhead = 1 + 8 + 4;

class BeaconCipher {
 public:
  /// Derive a 128-bit key from arbitrary key material (e.g. a passphrase
  /// provisioned out of band).
  explicit BeaconCipher(std::span<const std::uint8_t> key_material);

  /// Encrypt and authenticate `plain` under `nonce`. Nonces must not repeat
  /// for distinct messages under one key; OmniManager uses a counter.
  Bytes seal(std::span<const std::uint8_t> plain, std::uint64_t nonce) const;

  /// Decrypt and verify a sealed packet. nullopt on wrong key, tampering,
  /// or malformed input.
  std::optional<Bytes> open(std::span<const std::uint8_t> sealed) const;

  /// Allocation-reusing variant of open(): decrypts into `out` (resized to
  /// the plaintext length, capacity reused across calls). Returns false on
  /// wrong key, tampering, or malformed input; `out` is unspecified then.
  bool open_into(std::span<const std::uint8_t> sealed, Bytes& out) const;

  /// True if the buffer carries the sealed-packet marker.
  static bool looks_sealed(std::span<const std::uint8_t> wire) {
    return !wire.empty() && wire[0] == kSealedPacketMarker;
  }

 private:
  /// One 64-bit XTEA block encryption.
  std::uint64_t encrypt_block(std::uint64_t block) const;
  /// Keystream byte i under `nonce`.
  void keystream(std::uint64_t nonce, std::size_t length,
                 std::uint8_t* out) const;
  std::uint32_t tag(std::span<const std::uint8_t> plain,
                    std::uint64_t nonce) const;

  std::array<std::uint32_t, 4> key_{};
};

}  // namespace omni
