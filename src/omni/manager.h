// The Omni Manager (paper §3.3) and the Developer API (paper §3.1, Table 1).
//
// One instance runs per device (the paper's intended OS-service design).
// Responsibilities:
//
//   * expose add/update/remove_context, send_data, request_context and
//     request_data to applications;
//   * emit the address_beacon every beacon_interval on the engaged context
//     technologies, carrying this device's low-level addresses;
//   * run the multi-technology engagement algorithm: beacon on the
//     lowest-energy context technology; probe the others every
//     probe_interval; engage a technology when an unknown peer appears
//     there; disengage it once every peer heard there is also reachable on
//     a lower-energy technology;
//   * maintain the peer mapping (omni_address -> technology -> low-level
//     address, with freshness/provenance) and the context mapping
//     (context id -> carrying technology);
//   * select the data technology that minimizes expected delivery time
//     (connection setup + size/throughput), and fail over across
//     technologies until all applicable ones are exhausted before invoking
//     the application's status callback with a failure.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "omni/comm_tech.h"
#include "omni/context_registry.h"
#include "omni/discovery_policy.h"
#include "omni/packed_struct.h"
#include "omni/peer_table.h"
#include "omni/queues.h"
#include "omni/security.h"
#include "omni/status.h"
#include "sim/simulator.h"

namespace omni {

namespace codec {
class ByteWriter;
}
namespace sim {
class World;
using ::omni::codec::ByteWriter;
}

struct ManagerOptions {
  /// Address beacon interval; the paper fixes it at 500 ms.
  Duration beacon_interval = Duration::millis(500);
  /// Engagement maintenance / probe cadence (paper: "e.g., every five
  /// seconds").
  Duration probe_interval = Duration::seconds(5);
  /// How long a peer mapping stays usable without being re-heard.
  Duration peer_ttl = Duration::seconds(10);
  /// Cadence of the owner-local peer-expiry sweep event. Zero = follow
  /// probe_interval (the sweep then fires just before each maintenance tick,
  /// matching the pre-sweep behavior where expiry ran inside it).
  Duration peer_sweep_interval = Duration::zero();
  /// Receiver-side beacon fast path: memoize the last beacon wire frame per
  /// (technology, link-level sender). A repeat whose length and 64-bit
  /// digest match — the steady state, since senders cache their sealed
  /// frame — skips unseal + decode + sighting reconstruction and takes a
  /// refresh-only path through the peer table. The digest is trusted
  /// without a byte compare (collision odds ~2^-64, and a collision is
  /// deterministic — see DESIGN.md "Beacon fast path"); this switch exists
  /// for ablation/debug. Automatically disabled while context_relay_hops >
  /// 0: the relay pipeline must see every frame so expired relays can
  /// re-trigger.
  bool beacon_rx_memo = true;
  /// Ablation switch: disable the multi-technology engagement algorithm
  /// (beacons then go to every context technology, ubiSOAP-style).
  bool enable_engagement = true;

  enum class DataPolicy {
    kExpectedTime,      ///< paper's policy: minimize expected delivery time
    kPreferLowEnergy,   ///< ablation: always pick the lowest-energy tech
    kPreferThroughput,  ///< ablation: always pick the highest-throughput tech
  };
  DataPolicy data_policy = DataPolicy::kExpectedTime;

  /// Symmetric key for context/beacon encryption (paper §3.4); provisioned
  /// out of band. Empty = plaintext beacons. Devices without the key cannot
  /// parse — or even recognise — this device's beacons.
  Bytes context_key;

  /// Multi-hop context sharing (paper §5 future work, "BLE Mesh offers a
  /// promising solution"): re-broadcast received context packs and address
  /// beacons with this many further hops. 0 disables relaying. Relayed
  /// packets exceed legacy BLE advertisements for most payloads, so this
  /// pairs naturally with Bluetooth 5 extended advertising.
  int context_relay_hops = 0;
  /// How long one relayed packet keeps being re-broadcast.
  Duration relay_lifetime = Duration::millis(1500);

  /// Adaptive address-beacon interval (paper §5 / eDiscovery-style): tighten
  /// to min_interval while the neighborhood is changing, back off toward
  /// max_interval (doubling per quiet maintenance tick) when it is static.
  struct AdaptiveBeacon {
    bool enabled = false;
    Duration min_interval = Duration::millis(250);
    Duration max_interval = Duration::seconds(4);
  };
  AdaptiveBeacon adaptive_beacon;

  /// Density-aware discovery scheduling (ROADMAP item 4; subsumes the
  /// AdaptiveBeacon ablation knob above). kFixed — the default — reproduces
  /// the fixed 500 ms cadence bit-for-bit; kAdaptive arms the beacon-interval
  /// controller and the Karowski-Miller listen-duty controller in
  /// maintenance_tick().
  DiscoveryPolicy discovery;

  /// Optional world handle for the discovery controller's region-occupancy
  /// signal (OmniNode wires the hosting device's world). Null = fall back to
  /// live PeerTable occupancy only.
  const sim::World* world = nullptr;

  /// Execution owner of this manager under the parallel engine: the hosting
  /// device's node id pins the manager's queues and timers to that node's
  /// shard (OmniNode sets this). The default keeps everything on the
  /// barrier-serialized global owner — correct for standalone managers
  /// driven directly by tests.
  sim::OwnerId owner = sim::kGlobalOwner;

  /// Self-healing knobs (paper §3.3 "Handling Failures", hardened for the
  /// wild). Defaults are chosen so fault-free behavior is unchanged: op
  /// deadlines only fire when a technology never responds (healthy paths
  /// cancel them first), and backoff/quarantine only engage after failures.
  struct SelfHealing {
    /// Master switch (ablation / A-B comparisons).
    bool enabled = true;
    /// Floor for the per-attempt response deadline.
    Duration min_op_deadline = Duration::seconds(2);
    /// Data-op deadline = max(min_op_deadline,
    ///                        estimate_data_time * deadline_factor + slack).
    double deadline_factor = 4.0;
    Duration deadline_slack = Duration::seconds(1);
    /// Exponential backoff (base * 2^(n-1), capped) for beacon re-arm and
    /// quarantine re-probe, with deterministic seeded jitter.
    Duration backoff_base = Duration::millis(500);
    Duration backoff_max = Duration::seconds(8);
    double backoff_jitter = 0.25;  ///< +/- fraction applied to each delay
    /// Circuit breaker: this many up/down transitions inside flap_window
    /// quarantines the technology (no beaconing, no new ops) for a
    /// backoff-scaled hold before a re-probe.
    int flap_threshold = 4;
    Duration flap_window = Duration::seconds(10);
    /// Hard cap on concurrently pending data ops (table leak bound); ops
    /// beyond it fail immediately with an overload status.
    std::size_t max_pending_ops = 1024;
  };
  SelfHealing self_healing;
};

struct ManagerStats {
  std::uint64_t packets_received = 0;
  /// Sealed packets dropped (no key, wrong key, or tampering).
  std::uint64_t sealed_drops = 0;
  std::uint64_t beacons_received = 0;
  std::uint64_t context_received = 0;
  std::uint64_t data_received = 0;
  std::uint64_t data_sends = 0;
  std::uint64_t data_failovers = 0;
  std::uint64_t context_failovers = 0;
  std::uint64_t engagements = 0;
  std::uint64_t disengagements = 0;
  // Beacon fast path (the Omniscope mirrors these as mgr.* counters; the
  // ManagerStats copies stay live with observability off, so benches can
  // read them without paying for a scope).
  std::uint64_t beacon_encodes = 0;        ///< beacon wire-frame (re)encodes
  std::uint64_t beacon_frames_cached = 0;  ///< beacon ops served from cache
  std::uint64_t beacon_decode_skips = 0;   ///< receptions memo-short-circuited
  std::uint64_t peer_expire_sweeps = 0;    ///< periodic expiry sweeps run
  std::uint64_t relayed_out = 0;  ///< packets this device re-broadcast
  std::uint64_t relayed_in = 0;   ///< relayed packets received
  // Self-healing counters.
  std::uint64_t deadline_failovers = 0;  ///< ops failed over by deadline
  std::uint64_t beacon_rearms = 0;       ///< beacon re-arm retries scheduled
  std::uint64_t quarantines = 0;         ///< flap circuit-breaker trips
  std::uint64_t overload_rejections = 0; ///< sends refused at max_pending_ops
  // Adaptive discovery scheduler.
  std::uint64_t beacons_suppressed = 0;    ///< beacons saved vs the floor rate
  std::uint64_t scan_windows_skipped = 0;  ///< ticks with probe duty lowered
};

class OmniManager : private InlinePacketSink {
 public:
  OmniManager(sim::Simulator& sim, OmniAddress self,
              ManagerOptions options = {});
  ~OmniManager();
  OmniManager(const OmniManager&) = delete;
  OmniManager& operator=(const OmniManager&) = delete;

  /// Register a technology plugin (before start()). The manager does not
  /// own the plugin; it must outlive the manager.
  void add_technology(CommTechnology& tech);

  /// Enable all technologies, begin address beaconing and engagement
  /// maintenance.
  void start();
  void stop();
  bool running() const { return running_; }

  // --- Developer API (paper Table 1) --------------------------------------
  void add_context(const ContextParams& params, Bytes context,
                   StatusCallback callback);
  void update_context(ContextId id, const ContextParams& params,
                      Bytes context, StatusCallback callback);
  void remove_context(ContextId id, StatusCallback callback);
  void send_data(const std::vector<OmniAddress>& destinations, Bytes data,
                 StatusCallback callback);
  /// Register a context receive callback. Multiple registrations are
  /// supported — the paper's intended OS-service deployment "invokes the
  /// receive callbacks provided by each application" (§3.4); every callback
  /// sees every context pack.
  void request_context(ReceiveContextCallback callback) {
    if (callback) on_context_.push_back(std::move(callback));
  }
  /// Register a data receive callback (same multi-registration semantics).
  void request_data(ReceiveDataCallback callback) {
    if (callback) on_data_.push_back(std::move(callback));
  }

  OmniAddress address() const { return self_; }

  // --- Introspection (tests / benches) -------------------------------------
  const PeerTable& peer_table() const { return peers_; }
  const ManagerStats& stats() const { return stats_; }
  bool technology_up(Technology tech) const;
  bool technology_engaged(Technology tech) const;
  /// The beacon info advertised by this device.
  const AddressBeaconInfo& beacon_info() const { return beacon_info_; }
  const ManagerOptions& options() const { return options_; }
  /// Current address-beacon interval (changes under adaptive beaconing).
  Duration current_beacon_interval() const {
    return current_beacon_interval_;
  }
  /// Scan-duty cap pushed by the discovery scheduler (0 = no cap).
  double discovery_scan_duty() const { return discovery_scan_duty_; }
  /// Leak-invariant probes: every op table must drain to empty once every
  /// operation has completed or timed out (and always after stop()).
  std::size_t pending_data_count() const { return pending_data_.size(); }
  std::size_t data_attempt_count() const { return data_attempts_.size(); }
  std::size_t context_attempt_count() const {
    return context_attempts_.size();
  }
  bool technology_quarantined(Technology tech) const;
  bool technology_beaconing(Technology tech) const;

  /// Serialize this manager's canonical deterministic state (the per-manager
  /// record inside a snapshot's kSecManagers section — see
  /// omni/manager_snapshot.h). Counters, generations, self-healing and
  /// discovery-controller state, pending-op tables, and the peer table are
  /// written; rebuilt caches (beacon wire frames, receive memos) are
  /// represented only by the generations that invalidate them. With `deep`
  /// the peer table is embedded entry by entry; without it the same
  /// canonical entry encoding is collapsed to a digest (city-scale size
  /// budget — verification strength is identical).
  void snapshot_state(sim::ByteWriter& w, bool deep) const;

 private:
  struct TechSlot {
    CommTechnology* tech = nullptr;
    // Immutable per-plugin facts, cached so the per-packet slot() scan and
    // engagement check avoid virtual dispatch.
    Technology type = Technology::kBle;
    bool supports_context = false;
    std::unique_ptr<SimQueue<SendRequest>> send_queue;
    LowLevelAddress address;
    bool up = false;
    bool beaconing = false;  ///< an address-beacon context is active here

    // Self-healing state.
    int beacon_failures = 0;        ///< consecutive beacon op failures
    sim::EventHandle beacon_rearm;  ///< pending backoff re-arm timer
    int flaps = 0;                  ///< status transitions inside the window
    TimePoint flap_window_start;
    int quarantine_count = 0;       ///< scales the quarantine hold (backoff)
    TimePoint quarantined_until;    ///< origin() = not quarantined
    sim::EventHandle quarantine_end;
  };

  // Internal context-id spaces: address beacons (one per technology) and
  // relayed packets.
  static constexpr ContextId kRelayContextBase = 0xE0000000;
  static constexpr ContextId kBeaconContextBase = 0xF0000000;
  ContextId beacon_context_id(Technology tech) const {
    return kBeaconContextBase + static_cast<ContextId>(tech);
  }
  bool is_beacon_context(ContextId id) const {
    return id >= kBeaconContextBase;
  }
  bool is_relay_context(ContextId id) const {
    return id >= kRelayContextBase && id < kBeaconContextBase;
  }
  bool is_internal_context(ContextId id) const {
    return id >= kRelayContextBase;
  }

  TechSlot* slot(Technology tech);
  const TechSlot* slot(Technology tech) const;

  std::uint64_t next_request_id() { return next_request_id_++; }

  // Queue consumers.
  void drain_receive_queue();
  void drain_shared_receive_queue();
  void drain_response_queue();
  /// The receive path proper. Takes a *view* of the wire frame: queue-drained
  /// packets pass their recycled buffer, and the zero-copy inline path (see
  /// receive_inline) passes the radio frame in place without ever copying it.
  void handle_packet(Technology tech, const LowLevelAddress& from,
                     std::span<const std::uint8_t> packed);
  /// InlinePacketSink: node-local technologies hand frames straight here when
  /// the delivery already runs in this manager's owner context — exactly the
  /// case where SimQueue::wake() would drain inline synchronously, so the
  /// packet is processed at the identical point in the event sequence, minus
  /// one buffer copy and queue round-trip.
  bool receive_inline(Technology tech, const LowLevelAddress& from,
                      std::span<const std::uint8_t> packed) override;
  void handle_response(TechResponse response);
  void handle_data_response(const TechResponse& response);
  void handle_context_response(const TechResponse& response);

  // Beaconing & engagement.
  void start_beaconing_on(Technology tech);
  void stop_beaconing_on(Technology tech);
  void engage(Technology tech);
  void disengage(Technology tech);
  Technology primary_context_tech() const;
  void maintenance_tick();
  void schedule_maintenance();
  void schedule_peer_sweep();
  /// Periodic-tick bodies, invoked through the callback-slot directory: the
  /// maintenance and peer-sweep timers are {u32 slot} descriptors
  /// (kEventMgrMaintenance / kEventMgrPeerSweep), not `this` closures.
  void peer_sweep_fired();
  static void maintenance_thunk(void* ctx);
  static void peer_sweep_thunk(void* ctx);
  void adapt_beacon_interval();

  // Adaptive discovery scheduler (options_.discovery, kAdaptive mode only;
  // see DESIGN.md "Adaptive discovery"). All methods are no-ops under kFixed.
  /// Per-maintenance-tick controller: ramps the beacon interval toward the
  /// density-tiered ceiling while the neighborhood is stable, and caps the
  /// passive scan duty once it is saturated.
  void discovery_tick();
  /// Event-driven reset: a previously-unknown peer was just inserted, so
  /// re-advertise at the floor immediately (entrant discovery latency stays
  /// bounded by the floor, not the backed-off interval).
  void discovery_snap_to_floor();
  /// Receive-path hook: snaps to the floor when the PeerTable insert counter
  /// moved since the last check (a genuinely new peer, not a refresh).
  void discovery_note_inserts();
  /// Push `interval` (owner-hash jittered) to every beaconing slot.
  void push_beacon_interval(Duration interval);
  /// Neighborhood occupancy signal: region residents in radio range via the
  /// World when wired, else live PeerTable size.
  std::size_t discovery_occupancy();
  /// The application-chosen context advertisement interval, scaled by the
  /// adaptive backoff factor (current interval / floor) once the controller
  /// has backed off — re-broadcasting an unchanged context into a saturated
  /// stable neighborhood is the same redundant load as over-beaconing.
  /// Identity under kFixed and at the floor.
  Duration scaled_context_interval(Duration app_interval) const;

  /// The beacon wire frame, re-encoded (and re-sealed) only when stale: the
  /// cache keys on the beacon-info generation and the context-set
  /// generation, so address rotations and context changes invalidate it and
  /// every other caller reuses the cached bytes.
  const Bytes& beacon_wire();

  // Receiver-side digest memo (see ManagerOptions::beacon_rx_memo). One
  // entry per (technology, link-level sender); open-addressing, never
  // shrunk — bounded by the distinct sender addresses ever heard. A sender
  // interleaves its address beacon with its context beacons on the same
  // link address, so each entry holds one way per kind — a single cached
  // frame per sender would thrash on every alternation.
  //
  // Layout is deliberately one cache line per sender: the receive path is
  // memory-bound (every manager's tables are cold by the time its next
  // packet arrives), so a hit must not touch more cache lines than the
  // decode it replaces. Key, both ways' (digest, length), the sender's omni
  // address, its advertised addresses, and a small inline context payload
  // all pack into exactly 64 bytes — the common hit costs ONE cold line.
  // Context payloads past kMemoInlinePayload bytes live in a parallel spill
  // array touched only on such hits.
  //
  // Both ways share one `source`: a link address interleaves its owner's
  // address beacon with that same owner's context beacons, so the field is
  // the same either way. If a link address ever re-announces under a
  // different omni address, the store clears the other way — correctness is
  // preserved (each way's effects replay only what was decoded alongside
  // its digest), at worst costing the pathological sender its memo.
  //
  // A hit is keyed on (hashed link sender, frame length, 64-bit
  // wire_digest): neither the raw frame bytes nor the link address are
  // kept, because re-verifying them would double the hit path's cache
  // footprint for failure modes with ~2^-64 probability. See DESIGN.md
  // "Beacon fast path" for the collision stance and why a collision is
  // deterministic, not a heisenbug.
  //
  // Each entry also pins the sender's peer-table position (dense index +
  // structure generation, see PeerTable::refresh_pinned): a hit then
  // refreshes the peer's timestamps directly, skipping the bucket probe —
  // the second cold line the slow path pays. A stale pin (peer expired,
  // table compacted) falls back to the full observe and re-pins.
  static constexpr std::size_t kMemoInlinePayload = 4;
  struct alignas(64) BeaconMemoEntry {
    std::uint64_t key = 0;      ///< hashed (tech, link sender); 0 = empty slot
    // Way 0: the sender's address beacon (b_size == 0 -> empty).
    std::uint64_t b_digest = 0;
    // Way 1: the sender's context beacon (c_size == 0 -> empty).
    std::uint64_t c_digest = 0;
    OmniAddress source;         ///< the sender behind this link address
    MeshAddress b_mesh;         ///< advertised mesh mapping (may be zero)
    BleAddress b_ble;           ///< advertised BLE mapping (may be zero)
    std::uint16_t b_size = 0;   ///< address-beacon wire frame length
    std::uint16_t c_size = 0;   ///< context wire frame length
    std::uint16_t c_payload_len = 0;
    std::array<std::uint8_t, kMemoInlinePayload> c_inline{};
    /// Peer-table pin for `source` (shared by both ways, like `source`).
    std::uint32_t peer_idx = 0xffffffffu;  // PeerTable::kNoIndex
    std::uint32_t peer_gen = 0;
  };
  static_assert(sizeof(BeaconMemoEntry) == 64,
                "memo entry must stay a single cache line");
  static constexpr std::size_t kMemoNone = ~std::size_t{0};
  /// Index of `key` in memo_, or kMemoNone.
  std::size_t memo_find(std::uint64_t key) const;
  /// Index for `key`, inserting (and growing the table) as needed.
  std::size_t memo_insert(std::uint64_t key);
  void memo_grow();
  /// Refresh-only receive paths taken on a memo hit (index into memo_;
  /// context_refresh may also read the parallel spill slot).
  void beacon_refresh(Technology tech, const LowLevelAddress& from,
                      BeaconMemoEntry& e);
  void context_refresh(Technology tech, const LowLevelAddress& from,
                       std::size_t idx);

  // Multi-hop relay.
  void maybe_relay(const PackedStruct& packet,
                   std::span<const std::uint8_t> inner_encoded);
  void handle_relayed_packet(const PackedStruct& outer);

  // Context handling.
  std::optional<Technology> pick_context_tech(
      std::size_t packed_size, const std::set<Technology>& exclude) const;
  void dispatch_context_add(ContextRecord& record);
  Bytes packed_context(const ContextRecord& record);

  /// Seal `packed` when a context key is provisioned (paper §3.4).
  Bytes maybe_seal(Bytes packed);

  // Self-healing.
  bool quarantined(const TechSlot& s) const {
    return s.quarantined_until > sim_.now();
  }
  /// Up and not benched by the flap circuit breaker.
  bool usable(const TechSlot& s) const { return s.up && !quarantined(s); }
  /// base * 2^(attempt-1) capped at backoff_max, with deterministic seeded
  /// jitter (stateless hash of the manager identity and a draw counter).
  Duration backoff_delay(int attempt);
  /// Schedule the no-response deadline for an attempt just pushed to `tech`.
  sim::EventHandle arm_deadline(std::uint64_t request_id, Duration budget);
  void on_attempt_deadline(std::uint64_t request_id);
  void note_status_flap(TechSlot& s);
  void schedule_beacon_rearm(TechSlot& s);

  // Data handling.
  struct PendingData {
    std::uint64_t op_id = 0;
    OmniAddress dest;
    Bytes packed;  ///< encoded data packet
    StatusCallback callback;
    std::set<Technology> tried;
    TimePoint started;  ///< enqueue instant (op-latency observability)
  };
  std::optional<Technology> pick_data_tech(const PendingData& op) const;
  void dispatch_data(std::uint64_t op_id);
  void fail_data(std::uint64_t op_id, const std::string& why);

  sim::Simulator& sim_;
  OmniAddress self_;
  ManagerOptions options_;

  std::vector<TechSlot> slots_;
  SimQueue<ReceivedPacket> receive_queue_;
  /// Receptions from shared-medium technologies (WiFi mesh). Those arrive
  /// from barrier-serialized global events, and any response they trigger
  /// goes back to a global-owned send queue — processing them in global
  /// context keeps the whole reception->response chain clamp-free under the
  /// parallel engine (a node-shard detour would quantize the response to the
  /// next epoch boundary, up to one lookahead of artificial latency on an
  /// intra-device software path).
  SimQueue<ReceivedPacket> shared_receive_queue_;
  SimQueue<TechResponse> response_queue_;
  // Reused drain buffers (see drain_receive_queue).
  std::vector<ReceivedPacket> receive_scratch_;
  std::vector<ReceivedPacket> shared_receive_scratch_;
  std::vector<TechResponse> response_scratch_;
  // Reused decode target (see handle_packet).
  PackedStruct decode_scratch_;
  // Reused unseal buffer (handle_packet) and relayed-inner decode target
  // (handle_relayed_packet) — the beacon fast path allocates nothing.
  Bytes unseal_scratch_;
  PackedStruct relay_scratch_;

  AddressBeaconInfo beacon_info_;
  Bytes beacon_packed_;
  /// Generation of beacon_info_: bumped on every mutation (start(), address
  /// rotation). beacon_wire() re-encodes when beacon_packed_ lags it or the
  /// context-set generation moved.
  std::uint64_t beacon_gen_ = 1;
  std::uint64_t beacon_wire_gen_ = 0;           ///< generation encoded
  std::uint64_t beacon_wire_ctx_gen_ = ~0ull;   ///< context gen encoded

  /// Receive memo (power-of-two; see BeaconMemoEntry). memo_spill_ is the
  /// parallel cold store for oversized context payloads. Resolved on/off at
  /// start() into memo_enabled_.
  std::vector<BeaconMemoEntry> memo_;
  std::vector<Bytes> memo_spill_;
  std::size_t beacon_memo_count_ = 0;
  bool memo_enabled_ = false;
  /// Reused payload buffer for context_refresh callbacks (inline bytes are
  /// materialized here, so hits allocate nothing in steady state).
  Bytes memo_payload_scratch_;

  /// One in-flight request against one technology. The deadline fires when
  /// the technology never produces a TechResponse within the budget and
  /// fails the attempt over exactly as an explicit failure would; healthy
  /// responses cancel it first (O(log n), no event residue).
  struct DataAttempt {
    std::uint64_t op_id = 0;
    Technology tech = Technology::kBle;
    sim::EventHandle deadline;
  };
  struct ContextAttempt {
    ContextId id = kInvalidContext;
    Technology tech = Technology::kBle;
    SendOp op = SendOp::kAddContext;
    sim::EventHandle deadline;
  };

  PeerTable peers_;
  ContextRegistry contexts_;
  std::map<std::uint64_t, PendingData> pending_data_;
  /// request id -> data attempt (routing + deadline).
  std::map<std::uint64_t, DataAttempt> data_attempts_;
  /// request id -> context attempt (routing + deadline).
  std::map<std::uint64_t, ContextAttempt> context_attempts_;

  std::vector<ReceiveContextCallback> on_context_;
  std::vector<ReceiveDataCallback> on_data_;

  ManagerStats stats_;
  std::optional<BeaconCipher> cipher_;
  std::uint64_t next_nonce_ = 1;
  bool running_ = false;
  /// Re-entrancy guard for the receive path: handle_packet's scratch members
  /// (decode_scratch_, unseal_scratch_, ...) assume one packet at a time.
  /// Queue drains and the inline sink both set it; receive_inline refuses
  /// (falls back to the queue) while it is held.
  bool in_receive_ = false;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_data_op_id_ = 1;
  sim::EventHandle maintenance_event_;
  /// Owner-local periodic peer-expiry sweep (scheduled before the
  /// maintenance tick at start(), so at shared instants expiry still runs
  /// first — exactly where it sat inside maintenance_tick before).
  sim::EventHandle peer_sweep_event_;
  /// Callback-slot ids naming this manager in maintenance / peer-sweep
  /// descriptors (registered for the manager's lifetime).
  std::uint32_t maintenance_slot_ = 0;
  std::uint32_t peer_sweep_slot_ = 0;
  /// Monotonic draw counter for backoff jitter (deterministic: all draws
  /// happen in this manager's owner context, in program order).
  std::uint64_t backoff_draws_ = 0;

  // Relay state: content-hash -> active relay context id (entries expire
  // after relay_lifetime).
  std::map<std::uint64_t, ContextId> active_relays_;
  ContextId next_relay_id_ = kRelayContextBase;

  // Adaptive beaconing state.
  Duration current_beacon_interval_;
  std::uint64_t last_neighborhood_hash_ = 0;

  // Discovery scheduler state (all inert under DiscoveryPolicy::kFixed).
  /// Dedicated jitter draw counter — separate from backoff_draws_ so arming
  /// the policy never perturbs the self-healing jitter sequence.
  std::uint64_t discovery_draws_ = 0;
  /// PeerTable::inserts() at the last tick (new-peer rate signal).
  std::uint64_t discovery_last_inserts_ = 0;
  /// Scan-duty cap currently pushed to the plugins (0 = no cap).
  double discovery_scan_duty_ = 0.0;
  /// Scratch for World::nodes_near (no allocation in steady state).
  std::vector<NodeId> density_scratch_;
};

}  // namespace omni
