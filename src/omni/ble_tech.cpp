#include "omni/ble_tech.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/omniscope.h"
#include "net/link_frame.h"

namespace omni {

BleTech::BleTech(radio::BleRadio& radio, Options options)
    : radio_(radio), options_(options) {}

double BleTech::effective_scan_duty() const {
  const double base = engaged_ ? 1.0 : options_.probe_scan_duty;
  return scan_duty_override_ > 0.0 ? std::min(scan_duty_override_, base)
                                   : base;
}

EnableResult BleTech::enable(const TechQueues& queues) {
  OMNI_CHECK_MSG(!enabled_, "BleTech already enabled");
  OMNI_CHECK(queues.send != nullptr && queues.receive != nullptr &&
             queues.response != nullptr);
  queues_ = queues;
  enabled_ = true;
  radio_.set_powered(true);
  radio_.set_receive_handler(
      [this](const BleAddress& from, const Bytes& frame) {
        on_radio_receive(from, frame);
      });
  radio_.set_power_handler([this](bool powered) {
    if (!enabled_) return;
    if (!powered) {
      // The radio dropped our advertisements; forget them and tell the
      // manager so it can re-home contexts and beacons.
      context_advs_.clear();
      queues_.response->push(
          TechResponse::status_change(Technology::kBle, false));
    } else {
      radio_.set_scanning(true, effective_scan_duty(),
                          scan_duty_override_ > 0.0);
      queues_.response->push(
          TechResponse::status_change(Technology::kBle, true));
    }
  });
  radio_.set_address_handler([this](const BleAddress& fresh) {
    if (!enabled_) return;
    queues_.response->push(TechResponse::address_change(
        Technology::kBle, LowLevelAddress{fresh}));
  });
  radio_.set_scanning(true, effective_scan_duty(),
                      scan_duty_override_ > 0.0);
  queues_.send->set_consumer([this] { drain_send_queue(); });
  return EnableResult{Technology::kBle, LowLevelAddress{radio_.address()}};
}

void BleTech::disable() {
  if (!enabled_) return;
  // Graceful shutdown: process what is still queued, then stop.
  drain_send_queue();
  queues_.send->clear_consumer();
  for (auto& [id, adv] : context_advs_) radio_.stop_advertising(adv);
  context_advs_.clear();
  radio_.set_scanning(false);
  radio_.set_receive_handler(nullptr);
  radio_.set_power_handler(nullptr);
  enabled_ = false;
}

std::size_t BleTech::max_context_payload() const {
  // One advertisement PDU minus the broadcast frame byte.
  return radio_.max_payload() - kBleBroadcastFrameOverhead;
}

std::size_t BleTech::max_data_payload() const {
  // Advertisement + scan response minus the unicast frame header.
  return 2 * radio_.max_payload() - kBleUnicastFrameOverhead;
}

Duration BleTech::estimate_data_time(std::size_t /*bytes*/,
                                     bool /*needs_refresh*/) const {
  const auto& cal = radio_.calibration();
  return Duration::micros(cal.ble_fast_adv_interval.as_micros() / 2) +
         cal.ble_adv_event;
}

void BleTech::set_engaged(bool engaged) {
  engaged_ = engaged;
  if (enabled_) {
    radio_.set_scanning(true, effective_scan_duty(),
                        scan_duty_override_ > 0.0);
  }
}

void BleTech::set_discovery_scan_duty(double duty) {
  if (duty <= 0.0 || duty > 1.0) duty = 0.0;  // clear the cap
  if (duty == scan_duty_override_) return;
  scan_duty_override_ = duty;
  if (enabled_) {
    radio_.set_scanning(true, effective_scan_duty(),
                        scan_duty_override_ > 0.0);
  }
}

void BleTech::drain_send_queue() {
  while (auto request = queues_.send->try_pop()) {
    process(std::move(*request));
  }
}

void BleTech::process(SendRequest request) {
  switch (request.op) {
    case SendOp::kAddContext: {
      if (context_advs_.count(request.context_id) > 0) {
        respond(request, false, "context id already active on BLE");
        return;
      }
      auto adv = radio_.start_advertising(frame_broadcast(request.packed),
                                          request.interval);
      if (!adv) {
        respond(request, false, adv.error_message());
        return;
      }
      context_advs_[request.context_id] = adv.value();
      respond(request, true);
      return;
    }
    case SendOp::kUpdateContext: {
      auto it = context_advs_.find(request.context_id);
      if (it == context_advs_.end()) {
        respond(request, false, "no such context on BLE");
        return;
      }
      Status s = radio_.update_advertising(
          it->second, frame_broadcast(request.packed), request.interval);
      respond(request, s.is_ok(), s.message());
      return;
    }
    case SendOp::kRemoveContext: {
      auto it = context_advs_.find(request.context_id);
      if (it == context_advs_.end()) {
        respond(request, false, "no such context on BLE");
        return;
      }
      Status s = radio_.stop_advertising(it->second);
      context_advs_.erase(it);
      respond(request, s.is_ok(), s.message());
      return;
    }
    case SendOp::kSendData: {
      if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
          sc != nullptr && sc->recording()) {
        sc->count_on(radio_.node(), sc->core().tech_send[0]);
        sc->instant_on(radio_.node(), obs::Cat::kTechSend,
                       request.request_id, request.packed.size(), 0);
      }
      if (!std::holds_alternative<BleAddress>(request.dest)) {
        respond(request, false, "destination is not a BLE address");
        return;
      }
      Bytes frame =
          frame_unicast_ble(std::get<BleAddress>(request.dest), request.packed);
      // Capture by value: the request must outlive the async send.
      auto req = std::make_shared<SendRequest>(std::move(request));
      Status s = radio_.send_datagram(std::move(frame), [this, req](Status st) {
        respond(*req, st.is_ok(), st.message());
      });
      if (!s.is_ok()) respond(*req, false, s.message());
      return;
    }
  }
}

void BleTech::on_radio_receive(const BleAddress& from, const Bytes& frame) {
  if (!enabled_) return;
  auto packed = unframe_ble_view(frame, radio_.address());
  if (!packed) return;  // malformed or addressed to another device
  // With beacons arriving at every scan interval this path runs more than
  // anything else in a simulation. Radio deliveries run on the receiving
  // node's shard — the manager's own execution context — so in the common
  // case the frame goes straight to the receive path as a view, no copy and
  // no queue round-trip (the sink declines when order would change).
  if (queues_.sink != nullptr &&
      queues_.sink->receive_inline(Technology::kBle, LowLevelAddress{from},
                                   *packed)) {
    return;
  }
  // Fallback: copy the view into a recycled queue slot (reusing drained
  // packets' buffers keeps this allocation-free too).
  queues_.receive->produce([&](ReceivedPacket& pkt) {
    pkt.tech = Technology::kBle;
    pkt.from = LowLevelAddress{from};
    pkt.packed.assign(packed->begin(), packed->end());
  });
}

void BleTech::respond(const SendRequest& request, bool success,
                      std::string failure) {
  if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
      sc != nullptr && sc->recording()) {
    sc->instant_on(radio_.node(), obs::Cat::kTechResponse,
                   request.request_id, success ? 0 : 1, 0);
  }
  queues_.response->push(TechResponse::result(Technology::kBle, request,
                                              success, std::move(failure)));
}

}  // namespace omni
