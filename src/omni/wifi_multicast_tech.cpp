#include "omni/wifi_multicast_tech.h"

#include "common/logging.h"
#include "net/link_frame.h"
#include "obs/omniscope.h"

namespace omni {

WifiMulticastTech::WifiMulticastTech(radio::WifiRadio& radio,
                                     radio::MeshNetwork& mesh,
                                     Options options)
    : radio_(radio), mesh_(mesh), options_(options) {
  sim::Simulator& sim = radio_.simulator();
  probe_slot_ =
      sim.register_callback_slot(this, &WifiMulticastTech::probe_thunk);
  engage_sync_slot_ =
      sim.register_callback_slot(this, &WifiMulticastTech::engage_sync_thunk);
}

WifiMulticastTech::~WifiMulticastTech() {
  probe_event_.cancel();
  maintenance_event_.cancel();
  tick_event_.cancel();
  sim::Simulator& sim = radio_.simulator();
  sim.unregister_callback_slot(engage_sync_slot_);
  sim.unregister_callback_slot(probe_slot_);
}

EnableResult WifiMulticastTech::enable(const TechQueues& queues) {
  OMNI_CHECK_MSG(!enabled_, "WifiMulticastTech already enabled");
  OMNI_CHECK(queues.send != nullptr && queues.receive != nullptr &&
             queues.response != nullptr);
  queues_ = queues;
  enabled_ = true;
  radio_.set_powered(true);
  radio_.add_datagram_handler(
      [this](const MeshAddress& from, const Bytes& payload, bool multicast) {
        if (!multicast || !enabled_) return;
        on_multicast(from, payload);
      });
  radio_.add_power_handler([this](bool powered) {
    if (!enabled_) return;
    if (!powered) {
      joined_ = false;
      tick_event_.cancel();
      contexts_.clear();
      update_periodic_load();
      queues_.response->push(
          TechResponse::status_change(Technology::kWifiMulticast, false));
    } else {
      radio_.join(mesh_, [this](Status s) {
        joined_ = s.is_ok();
        queues_.response->push(TechResponse::status_change(
            Technology::kWifiMulticast, joined_));
      });
    }
  });
  if (radio_.mesh() == &mesh_) {
    joined_ = true;
  } else {
    radio_.join(mesh_, [this](Status s) {
      joined_ = s.is_ok();
      if (!joined_) {
        queues_.response->push(
            TechResponse::status_change(Technology::kWifiMulticast, false));
      }
      std::deque<SendRequest> waiting;
      waiting.swap(waiting_for_join_);
      for (auto& req : waiting) process(std::move(req));
    });
  }
  queues_.send->set_consumer([this] { drain_send_queue(); });
  if (!engaged_) schedule_probe();
  // First rescan at half period, de-phasing it from other periodic work.
  schedule_maintenance_scan(options_.maintenance_scan_period / 2);
  return EnableResult{Technology::kWifiMulticast,
                      LowLevelAddress{radio_.address()}};
}

void WifiMulticastTech::disable() {
  if (!enabled_) return;
  drain_send_queue();
  queues_.send->clear_consumer();
  for (auto& req : waiting_for_join_) respond(req, false, "disabled");
  waiting_for_join_.clear();
  contexts_.clear();
  update_periodic_load();
  tick_event_.cancel();
  probe_event_.cancel();
  maintenance_event_.cancel();
  enabled_ = false;
}

std::size_t WifiMulticastTech::max_context_payload() const {
  return radio_.calibration().wifi_multicast_mtu -
         kBleBroadcastFrameOverhead;
}

Duration WifiMulticastTech::estimate_data_time(std::size_t bytes,
                                               bool needs_refresh) const {
  const auto& cal = radio_.calibration();
  double frag_air = static_cast<double>(cal.wifi_multicast_mtu) * 8.0 /
                    cal.wifi_multicast_base_rate_bps;
  double frag_occ = frag_air + cal.wifi_multicast_overhead.as_seconds();
  double fragments =
      std::max<double>(1.0, static_cast<double>(bytes) /
                                static_cast<double>(cal.wifi_multicast_mtu));
  Duration t = Duration::seconds(fragments * frag_occ);
  if (needs_refresh) {
    t += cal.wifi_scan_duration + cal.wifi_join_duration +
         cal.wifi_resolve_query + cal.wifi_advert_wait;
  }
  return t;
}

void WifiMulticastTech::set_engaged(bool engaged) {
  if (engaged_ == engaged) return;
  engaged_ = engaged;
  if (!enabled_) return;
  // The probe event lives in the barrier-serialized global queue, but the
  // manager may call set_engaged from its node-shard context. The flag flip
  // above is safe (phase-serialized); the probe bookkeeping is deferred to
  // the next barrier and re-checks the flags there. The defer is an
  // engage-sync descriptor — a shippable cross-owner post, unlike the
  // `this`-capturing closure it replaced.
  radio_.simulator().schedule_slot_on(sim::kGlobalOwner, Duration::zero(),
                                      sim::kEventEngageSync,
                                      engage_sync_slot_);
}

void WifiMulticastTech::engage_sync_thunk(void* ctx) {
  static_cast<WifiMulticastTech*>(ctx)->engage_sync_fired();
}

void WifiMulticastTech::engage_sync_fired() {
  if (!enabled_) return;
  if (engaged_) {
    probe_event_.cancel();
  } else if (!probe_event_.pending()) {
    schedule_probe();
  }
}

void WifiMulticastTech::schedule_probe() {
  probe_event_ = radio_.simulator().schedule_slot_on(
      sim::kGlobalOwner, options_.probe_interval, sim::kEventDiscoveryTick,
      probe_slot_);
}

void WifiMulticastTech::probe_thunk(void* ctx) {
  static_cast<WifiMulticastTech*>(ctx)->probe_fired();
}

void WifiMulticastTech::probe_fired() {
  if (!enabled_ || engaged_) return;
  const auto& cal = radio_.calibration();
  // Open a listen window spanning one beacon interval. The radio is in
  // standby either way (frames reach a joined member for free); the probe
  // pays only a short processing burst.
  probe_window_until_ = radio_.simulator().now() + options_.probe_window;
  radio_.meter().charge_for(cal.wifi_probe_listen_burst, cal.wifi_receive_ma);
  schedule_probe();
}

void WifiMulticastTech::schedule_maintenance_scan(Duration delay) {
  if (options_.maintenance_scan_period <= Duration::zero()) return;
  maintenance_event_ = radio_.simulator().after(delay, [this] {
    if (!enabled_) return;
    // Track the changing environment (footnote 12); membership is kept.
    radio_.scan([](std::vector<radio::MeshNetwork*>) {});
    schedule_maintenance_scan(options_.maintenance_scan_period);
  });
}

void WifiMulticastTech::on_multicast(const MeshAddress& from,
                                     const Bytes& frame) {
  if (!engaged_ && radio_.simulator().now() > probe_window_until_) {
    return;  // disengaged and outside a probe window: not listening
  }
  if (!frame.empty() && frame[0] == kFrameAggregate) {
    for (Bytes& packed : unframe_aggregate(frame)) {
      queues_.receive->push(ReceivedPacket{Technology::kWifiMulticast,
                                           LowLevelAddress{from},
                                           std::move(packed)});
    }
    return;
  }
  auto packed = unframe_mesh_view(frame, radio_.address());
  if (!packed) return;
  queues_.receive->produce([&](ReceivedPacket& pkt) {
    pkt.tech = Technology::kWifiMulticast;
    pkt.from = LowLevelAddress{from};
    pkt.packed.assign(packed->begin(), packed->end());
  });
}

void WifiMulticastTech::drain_send_queue() {
  while (auto request = queues_.send->try_pop()) {
    process(std::move(*request));
  }
}

void WifiMulticastTech::process(SendRequest request) {
  if (!joined_) {
    if (radio_.management_busy() || radio_.mesh() == nullptr) {
      waiting_for_join_.push_back(std::move(request));
      return;
    }
    respond(request, false, "not joined to the mesh");
    return;
  }
  switch (request.op) {
    case SendOp::kAddContext: {
      if (contexts_.count(request.context_id) > 0) {
        respond(request, false, "context id already active on multicast");
        return;
      }
      ContextEntry entry;
      entry.packed = request.packed;
      entry.interval = request.interval;
      entry.last_sent = radio_.simulator().now();
      contexts_.emplace(request.context_id, std::move(entry));
      update_periodic_load();
      reschedule_tick();
      respond(request, true);
      return;
    }
    case SendOp::kUpdateContext: {
      auto it = contexts_.find(request.context_id);
      if (it == contexts_.end()) {
        respond(request, false, "no such context on multicast");
        return;
      }
      it->second.packed = request.packed;
      if (it->second.interval != request.interval) {
        it->second.interval = request.interval;
        update_periodic_load();
        reschedule_tick();
      }
      respond(request, true);
      return;
    }
    case SendOp::kRemoveContext: {
      auto it = contexts_.find(request.context_id);
      if (it == contexts_.end()) {
        respond(request, false, "no such context on multicast");
        return;
      }
      contexts_.erase(it);
      update_periodic_load();
      reschedule_tick();
      respond(request, true);
      return;
    }
    case SendOp::kSendData: {
      if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
          sc != nullptr && sc->recording()) {
        sc->count_on(radio_.node(), sc->core().tech_send[2]);
        sc->instant_on(radio_.node(), obs::Cat::kTechSend,
                       request.request_id, request.packed.size(), 2);
      }
      auto req = std::make_shared<SendRequest>(std::move(request));
      if (req->needs_refresh) {
        net::run_discovery_ritual(
            radio_, mesh_, net::RitualOptions{req->refresh_advert_wait},
            [this, req](Status s) {
              if (!s.is_ok()) {
                respond(*req, false,
                        "discovery ritual failed: " + s.message());
                return;
              }
              do_send_data(req);
            });
        return;
      }
      do_send_data(std::move(req));
      return;
    }
  }
}

void WifiMulticastTech::update_periodic_load() {
  if (aggregate_load_ != 0) {
    mesh_.unregister_periodic_multicast(aggregate_load_);
    aggregate_load_ = 0;
  }
  if (contexts_.empty()) return;
  Duration base = Duration::max();
  for (const auto& [id, e] : contexts_) base = std::min(base, e.interval);
  aggregate_load_ = mesh_.register_periodic_multicast(base);
}

void WifiMulticastTech::reschedule_tick() {
  tick_event_.cancel();
  if (contexts_.empty() || !enabled_) return;
  TimePoint next = TimePoint::max();
  for (const auto& [id, e] : contexts_) {
    next = std::min(next, e.last_sent + e.interval);
  }
  tick_event_ = radio_.simulator().at(next, [this] { fire_tick(); });
}

void WifiMulticastTech::fire_tick() {
  if (!enabled_) return;
  TimePoint now = radio_.simulator().now();
  // Everything due on this tick is coalesced into one aggregate datagram —
  // one driver wakeup, one channel occupancy.
  std::vector<Bytes> due;
  for (auto& [id, e] : contexts_) {
    if (now - e.last_sent >= e.interval - Duration::micros(1)) {
      due.push_back(e.packed);
      e.last_sent = now;
    }
  }
  if (!due.empty() && joined_) {
    mesh_.multicast_datagram(radio_, frame_aggregate(due));
  }
  reschedule_tick();
}

void WifiMulticastTech::do_send_data(std::shared_ptr<SendRequest> request) {
  Bytes frame;
  if (std::holds_alternative<MeshAddress>(request->dest)) {
    frame = frame_unicast_mesh(std::get<MeshAddress>(request->dest),
                               request->packed);
  } else {
    frame = frame_broadcast(request->packed);
  }
  std::uint64_t bytes = request->packed.size();
  Status s = mesh_.multicast_bulk(
      radio_, bytes, std::move(frame),
      [this, request](std::vector<radio::WifiRadio*> receivers) {
        // Multicast is unacknowledged; reaching at least one receiver is the
        // best success signal the technology has.
        if (receivers.empty()) {
          respond(*request, false, "no multicast receivers in range");
        } else {
          respond(*request, true);
        }
      });
  if (!s.is_ok()) respond(*request, false, s.message());
}

void WifiMulticastTech::respond(const SendRequest& request, bool success,
                                std::string failure) {
  if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
      sc != nullptr && sc->recording()) {
    sc->instant_on(radio_.node(), obs::Cat::kTechResponse,
                   request.request_id, success ? 0 : 1, 2);
  }
  queues_.response->push(TechResponse::result(Technology::kWifiMulticast,
                                              request, success,
                                              std::move(failure)));
}

}  // namespace omni
