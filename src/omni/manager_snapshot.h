// Assembles the kSecManagers snapshot section from a set of OmniManagers.
//
// The sim layer owns the snapshot container and the engine-state sections
// (events, rng, world, faults); manager state lives up here because only the
// omni layer can see inside an OmniManager. The testbed bridges the two: it
// exposes add_snapshot_source(), and whoever owns the managers (OmniNode
// fleets, baselines, tests) registers capture_managers through it.
//
// Encoding: var manager_count | u8 deep | per-manager records ascending by
// omni address (a canonical order — node construction order is already
// deterministic, but address order survives any future reshuffling of
// container types). Each record is length-prefixed so a diff can skip to the
// divergent manager. `deep` embeds full peer tables (small runs, rich
// omnisnap diffs); shallow collapses each table to a digest of the identical
// canonical bytes (city-scale size budget, same verification strength).
#pragma once

#include <vector>

#include "sim/snapshot.h"

namespace omni {

class OmniManager;

/// Write the kSecManagers section. `managers` may be in any order and may
/// contain nulls (skipped); records are sorted by manager address.
void capture_managers(const std::vector<const OmniManager*>& managers,
                      bool deep, sim::Snapshot& snap);

/// Decoded per-record view for tooling (omnisnap inspect). Returns one
/// (address, record_size) pair per manager, or empty on malformed input.
std::vector<std::pair<std::uint64_t, std::size_t>> list_manager_records(
    const sim::SnapshotSection& sec);

}  // namespace omni
