#include "omni/status.h"

namespace omni {

std::string to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kAddContextSuccess:
      return "ADD_CONTEXT_SUCCESS";
    case StatusCode::kAddContextFailure:
      return "ADD_CONTEXT_FAILURE";
    case StatusCode::kUpdateContextSuccess:
      return "UPDATE_CONTEXT_SUCCESS";
    case StatusCode::kUpdateContextFailure:
      return "UPDATE_CONTEXT_FAILURE";
    case StatusCode::kRemoveContextSuccess:
      return "REMOVE_CONTEXT_SUCCESS";
    case StatusCode::kRemoveContextFailure:
      return "REMOVE_CONTEXT_FAILURE";
    case StatusCode::kSendDataSuccess:
      return "SEND_DATA_SUCCESS";
    case StatusCode::kSendDataFailure:
      return "SEND_DATA_FAILURE";
  }
  return "STATUS_CODE(?)";
}

bool is_success(StatusCode code) {
  switch (code) {
    case StatusCode::kAddContextSuccess:
    case StatusCode::kUpdateContextSuccess:
    case StatusCode::kRemoveContextSuccess:
    case StatusCode::kSendDataSuccess:
      return true;
    default:
      return false;
  }
}

}  // namespace omni
