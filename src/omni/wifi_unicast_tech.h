// WiFi-Mesh unicast TCP technology plugin: Omni's high-throughput data
// carrier (paper §3.2, "Technologies for Distributing Data").
//
// At enable time the radio is powered and peered into the mesh once, giving
// the device a reachable address in standby (what the paper calls having
// "some ip address to be reachable"). Data sends open a fluid TCP flow. If
// the manager flags the peer mapping as multicast-derived (needs_refresh),
// the discovery ritual (scan + join + resolve) runs first — this is the
// multi-second penalty Omni avoids whenever the mapping came from BLE
// address beacons.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "net/discovery_ritual.h"
#include "omni/comm_tech.h"
#include "radio/mesh.h"
#include "radio/wifi_radio.h"

namespace omni {

class WifiUnicastTech final : public CommTechnology {
 public:
  WifiUnicastTech(radio::WifiRadio& radio, radio::MeshNetwork& mesh);

  EnableResult enable(const TechQueues& queues) override;
  void disable() override;

  Technology type() const override { return Technology::kWifiUnicast; }
  bool enabled() const override { return enabled_; }

  bool supports_context() const override { return false; }
  bool supports_data() const override { return true; }
  std::size_t max_context_payload() const override { return 0; }
  std::size_t max_data_payload() const override { return 0; }  // unbounded
  Duration estimate_data_time(std::size_t bytes,
                              bool needs_refresh) const override;

  void set_engaged(bool engaged) override { engaged_ = engaged; }
  bool engaged() const override { return engaged_; }
  /// The mesh's fluid-flow state spans every member node: requests must be
  /// processed barrier-serialized (global owner) under the parallel engine.
  bool uses_shared_medium() const override { return true; }

  bool joined() const { return joined_; }

 private:
  void drain_send_queue();
  void process(SendRequest request);
  void do_send(std::shared_ptr<SendRequest> request);
  void respond(const SendRequest& request, bool success,
               std::string failure = {});

  radio::WifiRadio& radio_;
  radio::MeshNetwork& mesh_;
  TechQueues queues_;
  bool enabled_ = false;
  bool engaged_ = false;
  bool joined_ = false;
  /// Requests arriving before the initial mesh join completes.
  std::deque<SendRequest> waiting_for_join_;
  /// Requests parked inside the discovery ritual (scan/join/resolve). The
  /// ritual holds its callback in simulator events that may outlive a
  /// disable(): each entry is answered terminally at disable() and the
  /// late callback, finding its token gone, becomes a no-op.
  std::map<std::uint64_t, std::shared_ptr<SendRequest>> in_ritual_;
  std::uint64_t next_ritual_token_ = 1;
  /// Liveness token for callbacks that can outlive the plugin itself.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Flows this plugin opened that have not completed. The mesh outlives
  /// the plugin, so disable() must withdraw these flows' completion
  /// callbacks — a flow failing later (radio teardown, membership loss)
  /// would otherwise call back into freed memory.
  std::map<radio::FlowId, std::shared_ptr<SendRequest>> open_flows_;
};

}  // namespace omni
