// WiFi-Aware technology plugin: the paper's anticipated successor to
// multicast as the WiFi-side *context* carrier (§3.2).
//
// Context packs publish as NAN service discovery frames (up to 255 bytes —
// an order of magnitude more than a legacy BLE advertisement, at WiFi
// range); small data rides follow-up datagrams. Crucially, NAN is
// device-level discovery: mappings learned through it are ND-integrated and
// never require the scan/join re-validation ritual — which is exactly why
// the paper wanted it.
#pragma once

#include <map>

#include "omni/comm_tech.h"
#include "radio/nan.h"

namespace omni {

class NanTech final : public CommTechnology {
 public:
  struct Options {
    /// Window attendance while disengaged (probe-listening): attend one DW
    /// in this many.
    std::uint32_t probe_attendance = 10;
  };

  explicit NanTech(radio::NanRadio& radio) : NanTech(radio, Options{}) {}
  NanTech(radio::NanRadio& radio, Options options);

  EnableResult enable(const TechQueues& queues) override;
  void disable() override;

  Technology type() const override { return Technology::kWifiAware; }
  bool enabled() const override { return enabled_; }

  bool supports_context() const override { return true; }
  bool supports_data() const override { return true; }
  std::size_t max_context_payload() const override;
  std::size_t max_data_payload() const override;
  Duration estimate_data_time(std::size_t bytes,
                              bool needs_refresh) const override;

  void set_engaged(bool engaged) override;
  bool engaged() const override { return engaged_; }

 private:
  void drain_send_queue();
  void process(SendRequest request);
  void on_receive(const NanAddress& from, const Bytes& frame);
  void respond(const SendRequest& request, bool success,
               std::string failure = {});

  radio::NanRadio& radio_;
  Options options_;
  TechQueues queues_;
  bool enabled_ = false;
  bool engaged_ = false;
  std::map<ContextId, radio::NanRadio::PublishId> context_publishes_;
};

}  // namespace omni
