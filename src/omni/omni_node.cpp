#include "omni/omni_node.h"

namespace omni {

OmniNode::OmniNode(net::Device& device, radio::MeshNetwork& mesh,
                   OmniNodeOptions options)
    : device_(device), options_(options) {
  // Pin the manager's timers and node-local queues to the hosting node's
  // shard so independent devices execute in parallel under the engine.
  options_.manager.owner = device_.node();
  // Discovery scheduler density signal (only consulted under kAdaptive).
  options_.manager.world = &device_.world();
  manager_ = std::make_unique<OmniManager>(device_.meter().simulator(),
                                           device_.omni_address(),
                                           options_.manager);
  if (options_.ble) {
    ble_tech_ = std::make_unique<BleTech>(device_.ble(), options_.ble_options);
    manager_->add_technology(*ble_tech_);
  }
  if (options_.wifi_aware) {
    nan_tech_ = std::make_unique<NanTech>(device_.nan());
    manager_->add_technology(*nan_tech_);
  }
  if (options_.wifi_multicast) {
    multicast_tech_ = std::make_unique<WifiMulticastTech>(
        device_.wifi(), mesh, options_.multicast_options);
    manager_->add_technology(*multicast_tech_);
  }
  if (options_.wifi_unicast) {
    unicast_tech_ =
        std::make_unique<WifiUnicastTech>(device_.wifi(), mesh);
    manager_->add_technology(*unicast_tech_);
  }
}

void OmniNode::start() {
  if (options_.wifi_standby) device_.wifi().set_powered(true);
  manager_->start();
}

void OmniNode::stop() { manager_->stop(); }

}  // namespace omni
