#include "omni/manager.h"

#include "obs/omniscope.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <type_traits>
#include <variant>

#include "common/hash.h"
#include "common/logging.h"
#include "net/link_frame.h"
#include "sim/snapshot.h"
#include "sim/world.h"

namespace omni {

namespace {
// Fetch the attached scope if it is recording. Manager metrics and records
// are attributed to the manager's execution owner (its hosting node).
inline obs::Omniscope* scope_of(sim::Simulator& sim) {
  obs::Omniscope* sc = OMNI_SCOPE(sim);
  return (sc != nullptr && sc->recording()) ? sc : nullptr;
}
}  // namespace


namespace {
constexpr const char* kTag = "omni.manager";

/// splitmix64 finalizer: stateless deterministic jitter for backoff delays
/// (no simulator RNG draw, so healing never perturbs existing streams).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Memo-table key for a (technology, link-level sender) pair. Collisions
/// across variant alternatives are harmless — slots are confirmed with an
/// exact (tech, from) compare before use — so the hash only needs spread,
/// not injectivity. Never returns 0 (the empty-slot sentinel).
std::uint64_t memo_key(Technology tech, const LowLevelAddress& from) {
  // Hot: called once per delivered beacon/context frame. Branch on the
  // variant index directly (BLE overwhelmingly dominates) and load the six
  // BLE octets with one memcpy instead of a byte-fold loop.
  std::uint64_t raw;
  if (const BleAddress* b = std::get_if<BleAddress>(&from)) {
    std::uint64_t v = 0;
    std::memcpy(&v, b->octets.data(), b->octets.size());
    raw = v;
  } else if (const MeshAddress* m = std::get_if<MeshAddress>(&from)) {
    raw = m->value;
  } else if (const NanAddress* n = std::get_if<NanAddress>(&from)) {
    raw = n->value;
  } else {
    raw = 0;
  }
  std::uint64_t key =
      splitmix64(raw ^ (static_cast<std::uint64_t>(tech) + 1) * 0x100000001b3ull);
  return key == 0 ? 1 : key;
}
}  // namespace

OmniManager::OmniManager(sim::Simulator& sim, OmniAddress self,
                         ManagerOptions options)
    : sim_(sim),
      self_(self),
      options_(options),
      receive_queue_(sim),
      shared_receive_queue_(sim),
      response_queue_(sim) {
  OMNI_CHECK_MSG(self_.is_valid(), "manager needs a valid omni_address");
  // The manager's protocol state is single-context: drain its queues on the
  // owning node's shard (or the global phase for standalone managers).
  // Shared-medium receptions stay global (see shared_receive_queue_) —
  // mutation from both contexts is safe because shard windows and the
  // global phase never overlap.
  receive_queue_.set_owner(options_.owner);
  shared_receive_queue_.set_owner(sim::kGlobalOwner);
  response_queue_.set_owner(options_.owner);
  current_beacon_interval_ = options_.adaptive_beacon.enabled
                                 ? options_.adaptive_beacon.min_interval
                                 : options_.beacon_interval;
  if (options_.discovery.mode == DiscoveryPolicy::Mode::kAdaptive) {
    // The discovery scheduler starts at its floor (paper-faithful cadence)
    // and only backs off once the neighborhood proves dense and stable.
    current_beacon_interval_ = options_.discovery.floor;
  }
  if (!options_.context_key.empty()) {
    cipher_.emplace(std::span<const std::uint8_t>(options_.context_key));
    // Derive a device-unique nonce space so two devices sharing a key never
    // collide.
    next_nonce_ = self_.value << 20;
  }
  maintenance_slot_ =
      sim_.register_callback_slot(this, &OmniManager::maintenance_thunk);
  peer_sweep_slot_ =
      sim_.register_callback_slot(this, &OmniManager::peer_sweep_thunk);
}

Bytes OmniManager::maybe_seal(Bytes packed) {
  if (!cipher_) return packed;
  return cipher_->seal(packed, next_nonce_++);
}

OmniManager::~OmniManager() {
  if (running_) stop();
  sim_.unregister_callback_slot(peer_sweep_slot_);
  sim_.unregister_callback_slot(maintenance_slot_);
}

void OmniManager::add_technology(CommTechnology& tech) {
  OMNI_CHECK_MSG(!running_, "add_technology before start()");
  for (const auto& s : slots_) {
    OMNI_CHECK_MSG(s.tech->type() != tech.type(),
                   "duplicate technology registration");
  }
  TechSlot slot;
  slot.tech = &tech;
  slot.type = tech.type();
  slot.supports_context = tech.supports_context();
  slot.send_queue = std::make_unique<SimQueue<SendRequest>>(sim_);
  // Plugins whose send path drives shared infrastructure (the WiFi mesh)
  // must process requests barrier-serialized; node-local radios drain on
  // the owner's shard.
  slot.send_queue->set_owner(tech.uses_shared_medium() ? sim::kGlobalOwner
                                                       : options_.owner);
  slots_.push_back(std::move(slot));
}

OmniManager::TechSlot* OmniManager::slot(Technology tech) {
  for (auto& s : slots_) {
    if (s.type == tech) return &s;
  }
  return nullptr;
}

const OmniManager::TechSlot* OmniManager::slot(Technology tech) const {
  for (const auto& s : slots_) {
    if (s.type == tech) return &s;
  }
  return nullptr;
}

bool OmniManager::technology_up(Technology tech) const {
  const TechSlot* s = slot(tech);
  return s != nullptr && s->up;
}

bool OmniManager::technology_engaged(Technology tech) const {
  const TechSlot* s = slot(tech);
  return s != nullptr && s->up && s->tech->engaged();
}

bool OmniManager::technology_quarantined(Technology tech) const {
  const TechSlot* s = slot(tech);
  return s != nullptr && quarantined(*s);
}

bool OmniManager::technology_beaconing(Technology tech) const {
  const TechSlot* s = slot(tech);
  return s != nullptr && s->beaconing;
}

// --- Self-healing ------------------------------------------------------------

Duration OmniManager::backoff_delay(int attempt) {
  const auto& sh = options_.self_healing;
  // Base scales with the live beacon cadence: when the discovery scheduler
  // has backed the interval off past backoff_base, retrying faster than we
  // advertise is wasted work. At the defaults (500 ms base, 500 ms fixed
  // interval) this is exactly the historical backoff_base.
  Duration d = std::max(sh.backoff_base, current_beacon_interval_);
  for (int i = 1; i < attempt && d < sh.backoff_max; ++i) d = d + d;
  if (d > sh.backoff_max) d = sh.backoff_max;
  if (sh.backoff_jitter > 0) {
    std::uint64_t h = mix64(self_.value ^ mix64(++backoff_draws_));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    d = d * (1.0 + sh.backoff_jitter * (2.0 * u - 1.0));
  }
  return d;
}

sim::EventHandle OmniManager::arm_deadline(std::uint64_t request_id,
                                           Duration budget) {
  return sim_.after_on(options_.owner, budget, [this, request_id] {
    on_attempt_deadline(request_id);
  });
}

void OmniManager::on_attempt_deadline(std::uint64_t request_id) {
  // The attempt outlived its budget with no TechResponse (silently stalled
  // technology): fail it over exactly as an explicit failure would (paper
  // §3.3). A late real response finds the request id gone and is ignored.
  if (auto it = data_attempts_.find(request_id); it != data_attempts_.end()) {
    ++stats_.deadline_failovers;
    if (obs::Omniscope* sc = scope_of(sim_)) {
      sc->count_on(options_.owner, sc->core().deadline_failovers);
      sc->instant_on(options_.owner, obs::Cat::kDeadline, request_id, 0,
                     static_cast<std::uint8_t>(it->second.tech));
    }
    TechResponse r;
    r.request_id = request_id;
    r.op = SendOp::kSendData;
    r.tech = it->second.tech;
    r.success = false;
    r.failure_reason = "no response within deadline";
    handle_data_response(r);
    return;
  }
  auto it = context_attempts_.find(request_id);
  if (it == context_attempts_.end()) return;
  ++stats_.deadline_failovers;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->count_on(options_.owner, sc->core().deadline_failovers);
    sc->instant_on(options_.owner, obs::Cat::kDeadline, request_id, 0,
                   static_cast<std::uint8_t>(it->second.tech));
  }
  TechResponse r;
  r.request_id = request_id;
  r.op = it->second.op;
  r.tech = it->second.tech;
  r.context_id = it->second.id;
  r.success = false;
  r.failure_reason = "no response within deadline";
  handle_context_response(r);
}

void OmniManager::note_status_flap(TechSlot& s) {
  const auto& sh = options_.self_healing;
  if (!sh.enabled || !running_) return;
  TimePoint now = sim_.now();
  if (s.flaps == 0 || now - s.flap_window_start > sh.flap_window) {
    s.flap_window_start = now;
    s.flaps = 0;
  }
  ++s.flaps;
  if (s.flaps < sh.flap_threshold || quarantined(s)) return;
  // Circuit breaker: the radio is flapping faster than engagement can
  // usefully follow. Bench it for a backoff-scaled hold, then re-probe.
  ++stats_.quarantines;
  ++s.quarantine_count;
  s.flaps = 0;
  Duration hold = backoff_delay(s.quarantine_count);
  s.quarantined_until = now + hold;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->count_on(options_.owner, sc->core().quarantines);
    sc->instant_on(options_.owner, obs::Cat::kQuarantine,
                   static_cast<std::uint64_t>(hold.as_micros()), 0,
                   static_cast<std::uint8_t>(s.type));
  }
  OMNI_DEBUG(now, kTag, "quarantining flapping %s for %s",
             to_string(s.type).c_str(), hold.to_string().c_str());
  if (s.up) {
    stop_beaconing_on(s.type);
  } else {
    s.beaconing = false;  // the carrier is gone; nothing to withdraw
  }
  if (s.tech->engaged()) s.tech->set_engaged(false);
  Technology tech = s.type;
  s.quarantine_end.cancel();
  s.quarantine_end = sim_.after_on(options_.owner, hold, [this, tech] {
    TechSlot* qs = slot(tech);
    if (qs == nullptr || !running_) return;
    qs->quarantined_until = TimePoint::origin();
    qs->flaps = 0;
    if (!qs->up) return;
    // Re-probe: restore the role the technology would hold after a normal
    // recovery (primary carrier, or beaconing everywhere sans engagement).
    Technology primary = primary_context_tech();
    if (qs->supports_context &&
        (!options_.enable_engagement || tech == primary)) {
      qs->tech->set_engaged(true);
      start_beaconing_on(tech);
    }
  });
}

void OmniManager::schedule_beacon_rearm(TechSlot& s) {
  const auto& sh = options_.self_healing;
  if (!sh.enabled || !running_ || s.beacon_rearm.pending()) return;
  ++stats_.beacon_rearms;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->instant_on(options_.owner, obs::Cat::kRetry, s.beacon_failures, 0,
                   static_cast<std::uint8_t>(s.type));
  }
  Technology tech = s.type;
  s.beacon_rearm =
      sim_.after_on(options_.owner, backoff_delay(s.beacon_failures),
                    [this, tech] {
                      TechSlot* rs = slot(tech);
                      if (rs == nullptr || !running_ || !usable(*rs)) return;
                      if (rs->beaconing || !rs->tech->engaged()) return;
                      start_beaconing_on(tech);
                    });
}

void OmniManager::start() {
  OMNI_CHECK_MSG(!running_, "manager already started");
  OMNI_CHECK_MSG(!slots_.empty(), "no technologies registered");
  running_ = true;

  receive_queue_.set_consumer([this] { drain_receive_queue(); });
  shared_receive_queue_.set_consumer([this] { drain_shared_receive_queue(); });
  response_queue_.set_consumer([this] { drain_response_queue(); });

  // Enable every technology and collect low-level addresses for the beacon.
  for (auto& s : slots_) {
    TechQueues queues{s.send_queue.get(),
                      s.tech->uses_shared_medium() ? &shared_receive_queue_
                                                   : &receive_queue_,
                      &response_queue_,
                      // Shared-medium receptions must stay barrier-serialized
                      // through the global queue; node-local radios may hand
                      // frames straight to the receive path (zero-copy) when
                      // the delivery already runs on this manager's shard.
                      s.tech->uses_shared_medium()
                          ? nullptr
                          : static_cast<InlinePacketSink*>(this)};
    EnableResult result = s.tech->enable(queues);
    s.address = result.address;
    s.up = true;
    if (std::holds_alternative<BleAddress>(result.address)) {
      beacon_info_.ble = std::get<BleAddress>(result.address);
    } else if (std::holds_alternative<MeshAddress>(result.address)) {
      beacon_info_.mesh = std::get<MeshAddress>(result.address);
    }
  }
  // The wire frame is encoded (and sealed) lazily by beacon_wire(); bumping
  // the info generation here makes the first use after a (re)start re-encode
  // against the freshly collected addresses.
  ++beacon_gen_;

  // Receive-side beacon memoization only runs with the relay pipeline off:
  // relays must see every frame so an expired relay can re-trigger from a
  // byte-identical rebroadcast.
  memo_enabled_ = options_.beacon_rx_memo && options_.context_relay_hops == 0;
  memo_.clear();
  memo_spill_.clear();
  beacon_memo_count_ = 0;

  // Engage the lowest-energy context technology; the rest probe-listen
  // unless engagement is disabled, in which case everything beacons
  // (ubiSOAP-style, used by the ablation bench).
  Technology primary = primary_context_tech();
  for (auto& s : slots_) {
    if (!s.tech->supports_context()) {
      s.tech->set_engaged(false);
      continue;
    }
    bool engage_now =
        !options_.enable_engagement || s.tech->type() == primary;
    s.tech->set_engaged(engage_now);
    if (engage_now) start_beaconing_on(s.tech->type());
  }

  // Sweep before maintenance: both land on the same instants (k x interval),
  // and scheduling the sweep first gives it the smaller sequence number, so
  // peer expiry still precedes adapt_beacon_interval exactly as it did when
  // it lived inside maintenance_tick.
  schedule_peer_sweep();
  schedule_maintenance();
}

void OmniManager::stop() {
  if (!running_) return;
  running_ = false;
  maintenance_event_.cancel();
  peer_sweep_event_.cancel();
  memo_enabled_ = false;
  memo_.clear();
  memo_spill_.clear();
  beacon_memo_count_ = 0;
  // Drain the op tables (leak invariant: nothing survives a stop). In-flight
  // attempts are abandoned — their deadlines are cancelled and their pending
  // ops fail asynchronously, like every other failure path.
  for (auto& [rid, attempt] : data_attempts_) attempt.deadline.cancel();
  data_attempts_.clear();
  for (auto& [rid, attempt] : context_attempts_) attempt.deadline.cancel();
  context_attempts_.clear();
  for (auto& [op_id, op] : pending_data_) {
    StatusCallback cb = op.callback;
    OmniAddress dest = op.dest;
    sim_.after(Duration::zero(), [cb, dest] {
      ResponseInfo info;
      info.destination = dest;
      info.failure_description = "manager stopped";
      if (cb) cb(StatusCode::kSendDataFailure, info);
    });
  }
  pending_data_.clear();
  for (auto& s : slots_) {
    if (s.up) s.tech->disable();
    s.up = false;
    s.beaconing = false;
    s.beacon_rearm.cancel();
    s.quarantine_end.cancel();
    s.beacon_failures = 0;
    s.flaps = 0;
    s.quarantined_until = TimePoint::origin();
  }
  receive_queue_.clear_consumer();
  shared_receive_queue_.clear_consumer();
  response_queue_.clear_consumer();
}

Technology OmniManager::primary_context_tech() const {
  Technology best = Technology::kBle;
  int best_rank = INT32_MAX;
  for (const auto& s : slots_) {
    if (!s.tech->supports_context()) continue;
    if (running_ && !usable(s)) continue;
    int rank = static_cast<int>(s.tech->type());
    if (rank < best_rank) {
      best_rank = rank;
      best = s.tech->type();
    }
  }
  return best;
}

// --- Beaconing & engagement --------------------------------------------------

const Bytes& OmniManager::beacon_wire() {
  // Sender-side frame cache: re-encode (and re-seal) only when the beacon
  // content could have changed — beacon_info_ mutated (start, address
  // rotation) or the context set moved. The context generation is a
  // conservative key: the address beacon does not embed contexts today, so a
  // context change costs one spurious re-encode; keeping it in the key
  // matches the documented invalidation rule (beacon info, context set, or
  // seal key — the last is fixed at construction). Sealing consumes a fresh
  // nonce only on re-encode, so repeated hand-outs of the cached frame are
  // byte-identical — exactly what lets receivers memoize on the raw bytes.
  if (beacon_wire_gen_ != beacon_gen_ ||
      beacon_wire_ctx_gen_ != contexts_.generation()) {
    beacon_packed_ =
        maybe_seal(PackedStruct::address_beacon(self_, beacon_info_).encode());
    beacon_wire_gen_ = beacon_gen_;
    beacon_wire_ctx_gen_ = contexts_.generation();
    ++stats_.beacon_encodes;
    if (obs::Omniscope* sc = scope_of(sim_)) {
      sc->count_on(options_.owner, sc->core().beacon_encodes);
    }
  } else {
    ++stats_.beacon_frames_cached;
    if (obs::Omniscope* sc = scope_of(sim_)) {
      sc->count_on(options_.owner, sc->core().beacon_frames_cached);
    }
  }
  return beacon_packed_;
}

void OmniManager::start_beaconing_on(Technology tech) {
  TechSlot* s = slot(tech);
  if (s == nullptr || !s->up || s->beaconing) return;
  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kAddContext;
  req.context_id = beacon_context_id(tech);
  req.interval = current_beacon_interval_;
  req.packed = beacon_wire();
  s->send_queue->push(std::move(req));
  s->beaconing = true;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->instant_on(options_.owner, obs::Cat::kBeaconOn, 0, 0,
                   static_cast<std::uint8_t>(tech));
  }
}

void OmniManager::stop_beaconing_on(Technology tech) {
  TechSlot* s = slot(tech);
  if (s == nullptr || !s->beaconing) return;
  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kRemoveContext;
  req.context_id = beacon_context_id(tech);
  s->send_queue->push(std::move(req));
  s->beaconing = false;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->instant_on(options_.owner, obs::Cat::kBeaconOff, 0, 0,
                   static_cast<std::uint8_t>(tech));
  }
}

void OmniManager::engage(Technology tech) {
  TechSlot* s = slot(tech);
  if (s == nullptr || !usable(*s) || !s->tech->supports_context()) return;
  if (s->tech->engaged()) return;
  OMNI_DEBUG(sim_.now(), kTag, "engaging %s", to_string(tech).c_str());
  ++stats_.engagements;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->count_on(options_.owner, sc->core().engagements);
    sc->instant_on(options_.owner, obs::Cat::kEngage, 0, 0,
                   static_cast<std::uint8_t>(tech));
  }
  s->tech->set_engaged(true);
  start_beaconing_on(tech);
  // Application contexts that could not be placed before may fit now; they
  // stay where they are otherwise (re-homing happens on failure).
}

void OmniManager::disengage(Technology tech) {
  if (tech == primary_context_tech()) return;  // primary never disengages
  TechSlot* s = slot(tech);
  if (s == nullptr || !s->tech->engaged()) return;
  OMNI_DEBUG(sim_.now(), kTag, "disengaging %s", to_string(tech).c_str());
  ++stats_.disengagements;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->instant_on(options_.owner, obs::Cat::kDisengage, 0, 0,
                   static_cast<std::uint8_t>(tech));
  }
  stop_beaconing_on(tech);
  s->tech->set_engaged(false);
}

void OmniManager::schedule_maintenance() {
  // Pinned to the manager's owner: start() runs in setup/global context, but
  // the tick must live on the owning node's shard with the rest of the
  // manager's state. Scheduled as a {u32 slot} descriptor, so the recurring
  // tick costs 4 inline payload bytes per schedule instead of a closure.
  maintenance_event_ =
      sim_.schedule_slot_on(options_.owner, options_.probe_interval,
                            sim::kEventMgrMaintenance, maintenance_slot_);
}

void OmniManager::maintenance_thunk(void* ctx) {
  auto* mgr = static_cast<OmniManager*>(ctx);
  mgr->maintenance_tick();
  if (mgr->running_) mgr->schedule_maintenance();
}

void OmniManager::adapt_beacon_interval() {
  if (!options_.adaptive_beacon.enabled) return;
  // The DiscoveryPolicy controller subsumes this legacy ablation knob; if
  // both are armed the newer controller owns the interval.
  if (options_.discovery.mode == DiscoveryPolicy::Mode::kAdaptive) return;
  // Hash the neighborhood: the set of known peers and the technologies they
  // were heard on. A change means churn -> beacon aggressively; stability
  // means the interval can back off (halving the idle beacon energy per
  // quiet tick, the eDiscovery idea).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (OmniAddress peer : peers_.peers()) {
    h ^= peer.value;
    h *= 0x00000100000001B3ull;
  }
  Duration target;
  if (h != last_neighborhood_hash_) {
    target = options_.adaptive_beacon.min_interval;
  } else {
    target = std::min(options_.adaptive_beacon.max_interval,
                      current_beacon_interval_ * 2.0);
  }
  last_neighborhood_hash_ = h;
  if (target == current_beacon_interval_) return;
  current_beacon_interval_ = target;
  for (auto& s : slots_) {
    if (!s.up || !s.beaconing) continue;
    SendRequest req;
    req.request_id = next_request_id();
    req.op = SendOp::kUpdateContext;
    req.context_id = beacon_context_id(s.tech->type());
    req.interval = current_beacon_interval_;
    req.packed = beacon_wire();
    s.send_queue->push(std::move(req));
  }
}

// --- Adaptive discovery scheduler (DiscoveryPolicy::kAdaptive) ---------------
//
// Every input is owner-local and deterministic: the PeerTable insert counter,
// the World's static neighbor cache (queried from this node's own shard
// context), and an owner-hashed jitter stream. No simulator RNG draw, no
// cross-shard read — results are bit-identical at any --threads.

std::size_t OmniManager::discovery_occupancy() {
  if (options_.world != nullptr && options_.owner != sim::kGlobalOwner) {
    // Region occupancy: residents within radio range, whether or not they
    // beacon with our key. This sees crowd density the PeerTable cannot.
    options_.world->nodes_near(static_cast<NodeId>(options_.owner),
                               options_.discovery.density_range_m,
                               density_scratch_);
    // nodes_near includes the querying node itself; occupancy counts
    // *neighbors*, so an isolated pair must read 1, not 2.
    std::size_t region = density_scratch_.size();
    if (region > 0) --region;
    return std::max(region, peers_.size());
  }
  return peers_.size();
}

Duration OmniManager::scaled_context_interval(Duration app_interval) const {
  if (options_.discovery.mode != DiscoveryPolicy::Mode::kAdaptive) {
    return app_interval;
  }
  const std::int64_t floor_us = options_.discovery.floor.as_micros();
  const std::int64_t cur_us = current_beacon_interval_.as_micros();
  if (floor_us <= 0 || cur_us <= floor_us) return app_interval;
  return app_interval * (static_cast<double>(cur_us) /
                         static_cast<double>(floor_us));
}

void OmniManager::push_beacon_interval(Duration interval) {
  current_beacon_interval_ = interval;
  // Owner-hashed deterministic jitter on the *advertised* interval:
  // desynchronizes neighbors that would otherwise back off in lockstep,
  // without touching any simulator RNG stream. The unjittered value stays in
  // current_beacon_interval_ so controller decisions (and tests) compare
  // against exact tier values.
  //
  // The jittered value is then quantized back onto the floor lattice
  // (nearest multiple of the floor, never below it). Neighbors that started
  // together and back off by doubling keep beaconing at shared instants, so
  // the medium's per-window delivery batching survives the backoff — an
  // un-quantized interval would spread receptions over distinct windows and
  // *raise* the event count while lowering the beacon count.
  const double jitter = options_.discovery.jitter;
  Duration adv = interval;
  if (jitter > 0.0) {
    const std::uint64_t h = mix64(self_.value ^ mix64(++discovery_draws_));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    adv = interval * (1.0 + jitter * (2.0 * u - 1.0));
  }
  const std::int64_t lattice_us = options_.discovery.floor.as_micros();
  if (lattice_us > 0) {
    std::int64_t q_us =
        (adv.as_micros() + lattice_us / 2) / lattice_us * lattice_us;
    if (q_us < lattice_us) q_us = lattice_us;
    adv = Duration::micros(q_us);
  }
  for (auto& s : slots_) {
    if (!s.up || !s.beaconing) continue;
    SendRequest req;
    req.request_id = next_request_id();
    req.op = SendOp::kUpdateContext;
    req.context_id = beacon_context_id(s.type);
    req.interval = adv;
    req.packed = beacon_wire();
    s.send_queue->push(std::move(req));
  }
  // Re-pace the application contexts by the same backoff factor: their
  // receivers are the very peers whose saturation drove the interval up, and
  // a new-peer snap restores the app-chosen cadence instantly. The paper
  // leaves adaptive context cadence as future work (ContextParams::interval);
  // the discovery controller supplies the density signal it was missing.
  // These updates carry no attempt bookkeeping — a failed re-pace (e.g. a
  // context whose add is still in flight) is a silent no-op and the next
  // interval change retries.
  for (auto& s : slots_) {
    if (!s.up) continue;
    for (ContextId id : contexts_.on_tech(s.type)) {
      if (is_internal_context(id)) continue;
      ContextRecord* rec = contexts_.find(id);
      if (rec == nullptr || !rec->active) continue;
      SendRequest req;
      req.request_id = next_request_id();
      req.op = SendOp::kUpdateContext;
      req.context_id = id;
      req.interval = scaled_context_interval(rec->params.interval);
      req.packed = packed_context(*rec);
      s.send_queue->push(std::move(req));
    }
  }
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->observe_on(options_.owner, sc->core().beacon_interval_ms,
                   static_cast<double>(interval.as_millis()));
  }
}

void OmniManager::discovery_snap_to_floor() {
  const DiscoveryPolicy& p = options_.discovery;
  if (current_beacon_interval_ > p.floor) {
    push_beacon_interval(p.floor);
  }
  if (discovery_scan_duty_ != 0.0) {
    discovery_scan_duty_ = 0.0;
    for (auto& s : slots_) s.tech->set_discovery_scan_duty(0.0);
  }
}

void OmniManager::discovery_note_inserts() {
  if (options_.discovery.mode != DiscoveryPolicy::Mode::kAdaptive) return;
  const std::uint64_t ins = peers_.inserts();
  if (ins == discovery_last_inserts_) return;
  // A genuinely new peer appeared (refreshes don't move the insert counter):
  // re-advertise at the floor right away so the entrant's discovery latency
  // is bounded by the floor, not by the backed-off interval, and restore the
  // full listen duty. The consumed delta also marks this window as churned,
  // so the next tick ramps from the floor instead of holding the ceiling.
  discovery_last_inserts_ = ins;
  discovery_snap_to_floor();
}

void OmniManager::discovery_tick() {
  const DiscoveryPolicy& p = options_.discovery;
  if (p.mode != DiscoveryPolicy::Mode::kAdaptive) return;
  // New-peer rate since the last look. The receive path normally consumes
  // inserts as they happen (discovery_note_inserts), so a nonzero delta here
  // only catches churn on paths that bypassed it.
  const std::uint64_t ins = peers_.inserts();
  const bool churned = ins != discovery_last_inserts_;
  discovery_last_inserts_ = ins;

  // Density-tiered ceiling: a dense neighborhood has redundant beacon
  // coverage and tolerates the slowest cadence; a sparse-but-nonempty one
  // backs off conservatively; an isolated node holds the floor so a first
  // encounter is never slower than the paper's fixed schedule.
  const std::size_t occupancy = discovery_occupancy();
  Duration allowed = p.floor;
  if (occupancy >= p.dense_peers) {
    allowed = p.ceiling;
  } else if (occupancy >= p.sparse_peers) {
    allowed = p.sparse_ceiling;
  }
  Duration target = churned
                        ? p.floor
                        : std::min(allowed, current_beacon_interval_ * p.ramp);
  if (target < p.floor) target = p.floor;
  if (target != current_beacon_interval_) push_beacon_interval(target);

  // Beacons saved versus the floor cadence over the window just ending.
  if (current_beacon_interval_ > p.floor) {
    const double saved = options_.probe_interval / p.floor -
                         options_.probe_interval / current_beacon_interval_;
    const auto n = static_cast<std::uint64_t>(saved > 0.0 ? saved + 0.5 : 0.0);
    if (n > 0) {
      stats_.beacons_suppressed += n;
      if (obs::Omniscope* sc = scope_of(sim_)) {
        sc->count_on(options_.owner, sc->core().beacons_suppressed, n);
      }
    }
  }

  // Karowski-Miller listen scheduling: once the neighborhood is saturated
  // (dense) and stable (no churn), a full-duty passive scan mostly re-hears
  // peers it already knows. Cap the duty so expected distinct coverage per
  // maintenance window stays ~dense_peers sightings; the cap only scales the
  // capture probability of periodic discovery traffic — reliable data bursts
  // bypass the capture trial entirely (see BleMedium::broadcast).
  double duty = 0.0;
  if (!churned && occupancy >= p.dense_peers && occupancy > 0) {
    duty = static_cast<double>(p.dense_peers) / static_cast<double>(occupancy);
    duty = std::clamp(duty, p.min_scan_duty, 1.0);
    if (duty >= 1.0) duty = 0.0;  // full duty == no cap
  }
  if (duty != discovery_scan_duty_) {
    discovery_scan_duty_ = duty;
    for (auto& s : slots_) s.tech->set_discovery_scan_duty(duty);
  }
  if (duty > 0.0) {
    ++stats_.scan_windows_skipped;
    if (obs::Omniscope* sc = scope_of(sim_)) {
      sc->count_on(options_.owner, sc->core().scan_windows_skipped);
    }
  }
}

void OmniManager::schedule_peer_sweep() {
  // Amortized, owner-local peer expiry (no per-reception scans): the sweep
  // self-reschedules before doing its work, so at every shared instant its
  // sequence number stays below the maintenance tick's — inductively
  // preserving the expire-then-adapt order the old combined tick had.
  Duration interval = options_.peer_sweep_interval > Duration::zero()
                          ? options_.peer_sweep_interval
                          : options_.probe_interval;
  peer_sweep_event_ = sim_.schedule_slot_on(
      options_.owner, interval, sim::kEventMgrPeerSweep, peer_sweep_slot_);
}

void OmniManager::peer_sweep_thunk(void* ctx) {
  static_cast<OmniManager*>(ctx)->peer_sweep_fired();
}

void OmniManager::peer_sweep_fired() {
  if (!running_) return;
  schedule_peer_sweep();
  // Under the adaptive policy the horizon stretches with each peer's
  // observed beacon interval so that a backed-off beaconer gets the
  // same missed-beacon budget (ttl / floor tries) the fixed baseline
  // grants a floor-rate one — scaling wall-clock alone leaves the
  // sweep racing capture losses around every ramp transition.
  const std::int64_t floor_us =
      std::max<std::int64_t>(1, options_.discovery.floor.as_micros());
  const double hint_scale =
      options_.discovery.mode == DiscoveryPolicy::Mode::kAdaptive
          ? static_cast<double>(options_.peer_ttl.as_micros()) /
                static_cast<double>(floor_us)
          : 0.0;
  peers_.expire(sim_.now(), options_.peer_ttl, hint_scale);
  ++stats_.peer_expire_sweeps;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->count_on(options_.owner, sc->core().peer_expire_sweeps);
  }
}

void OmniManager::maintenance_tick() {
  discovery_tick();
  adapt_beacon_interval();
  if (!options_.enable_engagement) return;
  // Disengage any engaged non-primary context technology on which every
  // recently-heard peer is also reachable via a lower-energy technology.
  Technology primary = primary_context_tech();
  for (auto& s : slots_) {
    Technology tech = s.tech->type();
    if (!s.up || !s.tech->supports_context() || tech == primary) continue;
    if (!s.tech->engaged()) continue;
    auto peers_here = peers_.peers_on(tech, sim_.now(), options_.peer_ttl);
    bool all_covered = true;
    for (OmniAddress peer : peers_here) {
      if (!peers_.reachable_on_lower_energy(peer, tech, sim_.now(),
                                            options_.peer_ttl)) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) disengage(tech);
  }
}

// --- Receive path ------------------------------------------------------------

void OmniManager::drain_receive_queue() {
  // Batch drain: one queue swap per tick instead of one pop per packet
  // (and, for the concurrent deployment queue, one lock per tick). The
  // outer loop catches packets enqueued while this batch was processed;
  // the scratch buffer ping-pongs with the queue's, so steady-state
  // draining allocates nothing.
  in_receive_ = true;
  while (!receive_queue_.empty()) {
    std::size_t n = receive_queue_.drain_into(receive_scratch_);
    for (std::size_t i = 0; i < n; ++i) {
      const ReceivedPacket& pkt = receive_scratch_[i];
      handle_packet(pkt.tech, pkt.from, pkt.packed);
    }
  }
  in_receive_ = false;
  // Deliberately no clear(): the processed packets swap back into the queue
  // as recycled slots, whose payload buffers the technologies refill in
  // place — the receive path allocates nothing in steady state.
}

void OmniManager::drain_shared_receive_queue() {
  // Same batch-drain contract as drain_receive_queue, but running in global
  // context (see shared_receive_queue_). handle_packet tolerates both
  // contexts; its scratch members are safe because windows and the global
  // phase are mutually exclusive in time.
  in_receive_ = true;
  while (!shared_receive_queue_.empty()) {
    std::size_t n = shared_receive_queue_.drain_into(shared_receive_scratch_);
    for (std::size_t i = 0; i < n; ++i) {
      const ReceivedPacket& pkt = shared_receive_scratch_[i];
      handle_packet(pkt.tech, pkt.from, pkt.packed);
    }
  }
  in_receive_ = false;
}

bool OmniManager::receive_inline(Technology tech, const LowLevelAddress& from,
                                 std::span<const std::uint8_t> packed) {
  // Mirror SimQueue::wake()'s inline-drain condition exactly (pinned,
  // non-global owner, producing context == owner): the fast path fires only
  // when the produce() path would have run the consumer synchronously right
  // here, so taking it changes nothing about processing order. A non-empty
  // queue means an earlier cross-context push is still waiting on its
  // deferred wakeup — jumping ahead of it would break FIFO, so fall back.
  if (!running_ || in_receive_ || !receive_queue_.empty() ||
      options_.owner == sim::kGlobalOwner ||
      sim_.current_owner() != options_.owner) {
    return false;
  }
  in_receive_ = true;
  handle_packet(tech, from, packed);
  in_receive_ = false;
  return true;
}

std::size_t OmniManager::memo_find(std::uint64_t key) const {
  // Linear probe; memo_key is avalanche-mixed, so `key & mask` is a uniform
  // home bucket and at load factor <= 3/4 the common probe reads exactly one
  // 64-byte entry — one cold cache line for the whole hit. The table never
  // deletes (ways are overwritten in place when a sender's frame changes),
  // so no tombstone handling.
  const std::size_t mask = memo_.size() - 1;
  for (std::size_t i = key & mask;; i = (i + 1) & mask) {
    const std::uint64_t k = memo_[i].key;
    if (k == key) return i;
    if (k == 0) return kMemoNone;
  }
}

std::size_t OmniManager::memo_insert(std::uint64_t key) {
  if (memo_.empty()) {
    memo_.assign(32, BeaconMemoEntry{});
    memo_spill_.assign(32, Bytes{});
  } else if ((beacon_memo_count_ + 1) * 4 > memo_.size() * 3) {
    memo_grow();
  }
  const std::size_t mask = memo_.size() - 1;
  for (std::size_t i = key & mask;; i = (i + 1) & mask) {
    if (memo_[i].key == key) return i;
    if (memo_[i].key == 0) {
      memo_[i] = BeaconMemoEntry{};
      memo_[i].key = key;
      ++beacon_memo_count_;
      return i;
    }
  }
}

void OmniManager::memo_grow() {
  std::vector<BeaconMemoEntry> old = std::move(memo_);
  std::vector<Bytes> old_spill = std::move(memo_spill_);
  memo_.assign(old.size() * 2, BeaconMemoEntry{});
  memo_spill_.assign(old.size() * 2, Bytes{});
  const std::size_t mask = memo_.size() - 1;
  for (std::size_t j = 0; j < old.size(); ++j) {
    if (old[j].key == 0) continue;
    std::size_t i = old[j].key & mask;
    while (memo_[i].key != 0) i = (i + 1) & mask;
    memo_[i] = old[j];
    memo_spill_[i] = std::move(old_spill[j]);
  }
}

void OmniManager::beacon_refresh(Technology tech, const LowLevelAddress& from,
                                 BeaconMemoEntry& e) {
  // A byte-identical repeat of a beacon we already decoded from this
  // (technology, link address): replay the recorded effects instead of
  // unsealing and decoding. Effect order mirrors the slow path exactly —
  // packet counter, engagement trigger (which reads the peer table *before*
  // the direct sighting lands, same as the deferred observe below), beacon
  // counters, then the batched observe_all over a sighting batch rebuilt
  // from the memoized addresses by the same rules the decoder applies. The
  // refresh draws no RNG and schedules nothing the slow path would not
  // (engage() is the same code either way), so determinism is preserved by
  // the slow path's own argument.
  peers_.prefetch_pinned(e.peer_idx);  // overlap with the work below
  ++stats_.packets_received;
  TimePoint now = sim_.now();
  if (options_.enable_engagement &&
      (tech == Technology::kBle ||
       !peers_.reachable_on_lower_energy(e.source, tech, now,
                                         options_.peer_ttl))) {
    TechSlot* s = slot(tech);
    if (s != nullptr && s->up && s->supports_context && !s->tech->engaged()) {
      engage(tech);
    }
  }
  ++stats_.beacons_received;
  ++stats_.beacon_decode_skips;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->mark_frame_on(options_.owner, sc->core().beacon_rx,
                      obs::Cat::kBeaconRx, e.source.value);
    sc->count_on(options_.owner, sc->core().beacon_decode_skips);
  }
  // Same construction as the slow path's kAddressBeacon arm (keep in sync).
  const bool refresh_needed = tech == Technology::kWifiMulticast;
  std::array<Sighting, 4> sightings;
  std::size_t n = 0;
  sightings[n++] = Sighting{tech, from, refresh_needed};
  if (!e.b_ble.is_zero() &&
      !(tech == Technology::kBle &&
        std::holds_alternative<BleAddress>(from) &&
        std::get<BleAddress>(from) == e.b_ble)) {
    sightings[n++] = Sighting{Technology::kBle, LowLevelAddress{e.b_ble},
                              /*requires_refresh=*/false};
  }
  if (!e.b_mesh.is_zero()) {
    sightings[n++] = Sighting{Technology::kWifiUnicast,
                              LowLevelAddress{e.b_mesh}, refresh_needed};
    sightings[n++] = Sighting{Technology::kWifiMulticast,
                              LowLevelAddress{e.b_mesh}, refresh_needed};
  }
  // Refresh through the entry's peer-table pin when it is still valid —
  // identical writes to observe_all, minus the bucket probe. Stale pin:
  // full observe, then re-pin.
  if (!peers_.refresh_pinned(e.peer_idx, e.peer_gen, e.source,
                             std::span(sightings.data(), n), now)) {
    peers_.observe_all(e.source, std::span(sightings.data(), n), now);
    e.peer_idx = peers_.index_of(e.source);
    e.peer_gen = peers_.generation();
    // The stale-pin fallback can re-insert an expired peer.
    discovery_note_inserts();
  }
}

void OmniManager::context_refresh(Technology tech, const LowLevelAddress& from,
                                  std::size_t idx) {
  BeaconMemoEntry& e = memo_[idx];
  // Byte-identical repeat of a context beacon: replay the slow path's
  // effects in its exact order — packet counter, direct sighting (recorded
  // *before* the engagement trigger for non-address-beacon kinds), the
  // trigger itself, context counters, then the application callbacks with
  // the cached decoded payload. Same determinism argument as
  // beacon_refresh.
  peers_.prefetch_pinned(e.peer_idx);  // overlap with the sighting setup
  ++stats_.packets_received;
  TimePoint now = sim_.now();
  const bool refresh_needed = tech == Technology::kWifiMulticast;
  const Sighting direct{tech, from, refresh_needed};
  if (!peers_.refresh_pinned(e.peer_idx, e.peer_gen, e.source,
                             std::span(&direct, 1), now)) {
    peers_.observe(e.source, tech, from, now, refresh_needed);
    e.peer_idx = peers_.index_of(e.source);
    e.peer_gen = peers_.generation();
    // The stale-pin fallback can re-insert an expired peer.
    discovery_note_inserts();
  }
  if (options_.enable_engagement &&
      (tech == Technology::kBle ||
       !peers_.reachable_on_lower_energy(e.source, tech, now,
                                         options_.peer_ttl))) {
    TechSlot* s = slot(tech);
    if (s != nullptr && s->up && s->supports_context && !s->tech->engaged()) {
      engage(tech);
    }
  }
  ++stats_.context_received;
  ++stats_.beacon_decode_skips;
  const Bytes* payload;
  if (e.c_payload_len <= kMemoInlinePayload) {
    memo_payload_scratch_.assign(e.c_inline.data(),
                                 e.c_inline.data() + e.c_payload_len);
    payload = &memo_payload_scratch_;
  } else {
    payload = &memo_spill_[idx];
  }
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->mark_frame_on(options_.owner, sc->core().context_rx,
                      obs::Cat::kContextRx, e.source.value,
                      payload->size());
    sc->count_on(options_.owner, sc->core().beacon_decode_skips);
  }
  for (const auto& cb : on_context_) cb(e.source, *payload);
}

void OmniManager::handle_packet(Technology tech, const LowLevelAddress& from,
                                std::span<const std::uint8_t> packed) {
  // Computed at most once per packet; the memo store below reuses it.
  std::uint64_t incoming_digest = 0;
  if (memo_enabled_) {
    // Beacon fast path: a cached frame from this exact (tech, link sender)
    // whose length and 64-bit digest match skips decryption, decode, and
    // sighting construction — the decoded effects are replayed from the
    // memo. The digest is trusted (no byte-verify); see DESIGN.md "Beacon
    // fast path" for the collision stance.
    std::size_t idx = kMemoNone;
    if (!memo_.empty()) {
      const std::uint64_t key = memo_key(tech, from);
      // Start the entry's line — cold by the time this manager's next
      // packet arrives — on its way, overlapped with the digest pass over
      // the already-hot frame bytes.
      __builtin_prefetch(&memo_[key & (memo_.size() - 1)]);
      incoming_digest = wire_digest(packed);
      idx = memo_find(key);
    } else {
      incoming_digest = wire_digest(packed);
    }
    if (idx != kMemoNone) {
      BeaconMemoEntry& e = memo_[idx];
      const std::size_t len = packed.size();
      if (e.b_size == len && e.b_digest == incoming_digest) {
        beacon_refresh(tech, from, e);
        return;
      }
      if (e.c_size == len && e.c_digest == incoming_digest) {
        context_refresh(tech, from, idx);
        return;
      }
    }
  }
  std::span<const std::uint8_t> wire = packed;
  if (BeaconCipher::looks_sealed(wire)) {
    // Encrypted beacon (paper §3.4): without the out-of-band key the packet
    // is opaque — the device effectively does not exist to us. Decrypt into
    // the reused unseal buffer (handle_packet never runs re-entrantly), so
    // the sealed-beacon fast path allocates nothing in steady state.
    if (!cipher_ || !cipher_->open_into(wire, unseal_scratch_)) {
      ++stats_.sealed_drops;
      return;
    }
    wire = unseal_scratch_;
  }
  // Decode into a reused scratch struct so the payload buffer survives
  // across packets (handle_packet never runs re-entrantly: packets only
  // arrive through the queue this drains).
  Status decoded = PackedStruct::decode_into(wire, decode_scratch_);
  if (!decoded.is_ok()) {
    OMNI_WARN(sim_.now(), kTag, "dropping undecodable packet on %s: %s",
              to_string(tech).c_str(), decoded.message().c_str());
    return;
  }
  const PackedStruct& p = decode_scratch_;
  if (p.source == self_) return;  // our own broadcast echoed back
  ++stats_.packets_received;

  if (p.kind == PacketKind::kRelayed) {
    // The link-level sender is the relayer, not `source`: no direct
    // mapping may be recorded.
    handle_relayed_packet(p);
    return;
  }

  TimePoint now = sim_.now();
  // Direct mapping: the packet physically arrived from this address on this
  // technology. Multicast-derived mappings need re-validation before data
  // transfer; ND-integrated (BLE) and connection-proven (unicast) ones do
  // not. For an address beacon the direct mapping joins the batched
  // observe_all below — one table probe for the whole sighting. Deferring
  // it past the engagement trigger is safe: the trigger consults only
  // strictly lower-energy mappings, which a same-technology observation
  // never adds.
  bool refresh_needed = tech == Technology::kWifiMulticast;
  if (p.kind != PacketKind::kAddressBeacon) {
    peers_.observe(p.source, tech, from, now, refresh_needed);
  }

  // Engagement trigger: an unknown peer (no lower-energy reachability)
  // appeared on a non-engaged context technology. BLE is the lowest energy
  // rank, so for BLE packets the reachability probe is statically false.
  if (options_.enable_engagement &&
      (tech == Technology::kBle ||
       !peers_.reachable_on_lower_energy(p.source, tech, now,
                                         options_.peer_ttl))) {
    TechSlot* s = slot(tech);
    if (s != nullptr && s->up && s->supports_context &&
        !s->tech->engaged()) {
      engage(tech);
    }
  }

  // Multi-hop context sharing: eligible packets are re-broadcast with a
  // decremented hop budget.
  if (options_.context_relay_hops > 0 &&
      (p.kind == PacketKind::kContext ||
       p.kind == PacketKind::kAddressBeacon)) {
    maybe_relay(p, wire);
  }

  switch (p.kind) {
    case PacketKind::kAddressBeacon: {
      ++stats_.beacons_received;
      if (obs::Omniscope* sc = scope_of(sim_)) {
        sc->mark_frame_on(options_.owner, sc->core().beacon_rx,
                          obs::Cat::kBeaconRx, p.source.value);
      }
      // The beacon carries the peer's full address map: record the direct
      // mapping plus reachability for every technology it names, in one
      // batched table probe. Mappings delivered over integrated low-level
      // ND (BLE) are immediately usable; those delivered over
      // application-level multicast still need the re-validation ritual.
      // The BLE self-mapping duplicate — a beacon heard over BLE from the
      // very address it advertises — is covered by the direct sighting.
      std::array<Sighting, 4> sightings;
      std::size_t n = 0;
      sightings[n++] = Sighting{tech, from, refresh_needed};
      if (!p.beacon.ble.is_zero() &&
          !(tech == Technology::kBle &&
            std::holds_alternative<BleAddress>(from) &&
            std::get<BleAddress>(from) == p.beacon.ble)) {
        sightings[n++] = Sighting{Technology::kBle,
                                  LowLevelAddress{p.beacon.ble},
                                  /*requires_refresh=*/false};
      }
      if (!p.beacon.mesh.is_zero()) {
        sightings[n++] = Sighting{Technology::kWifiUnicast,
                                  LowLevelAddress{p.beacon.mesh},
                                  refresh_needed};
        sightings[n++] = Sighting{Technology::kWifiMulticast,
                                  LowLevelAddress{p.beacon.mesh},
                                  refresh_needed};
      }
      peers_.observe_all(p.source, std::span(sightings.data(), n), now);
      if (memo_enabled_ && packed.size() <= 0xffff) {
        // Memoize (length, digest) of the raw frame as it arrived (sealed
        // or not) plus the advertised addresses, so a byte-identical repeat
        // takes beacon_refresh without another decrypt/decode. The entry's
        // source is shared with the context way: a link address announcing
        // a *different* omni address drops the stale context way.
        BeaconMemoEntry& e = memo_[memo_insert(memo_key(tech, from))];
        if (e.c_size != 0 && e.source != p.source) e.c_size = 0;
        e.b_digest = incoming_digest;
        e.b_size = static_cast<std::uint16_t>(packed.size());
        e.source = p.source;
        e.b_ble = p.beacon.ble;
        e.b_mesh = p.beacon.mesh;
        e.peer_idx = peers_.index_of(p.source);
        e.peer_gen = peers_.generation();
      }
      break;
    }
    case PacketKind::kContext:
      ++stats_.context_received;
      if (obs::Omniscope* sc = scope_of(sim_)) {
        sc->mark_frame_on(options_.owner, sc->core().context_rx,
                          obs::Cat::kContextRx, p.source.value,
                          p.payload.size());
      }
      for (const auto& cb : on_context_) cb(p.source, p.payload);
      if (memo_enabled_ && packed.size() <= 0xffff &&
          p.payload.size() <= 0xffff) {
        // Context beacons repeat byte-identically every interval just like
        // address beacons; cache (length, digest) plus the decoded payload
        // so the repeats replay the callbacks without another decode. Same
        // shared-source rule as the beacon way, mirrored.
        std::size_t idx = memo_insert(memo_key(tech, from));
        BeaconMemoEntry& e = memo_[idx];
        if (e.b_size != 0 && e.source != p.source) e.b_size = 0;
        e.c_digest = incoming_digest;
        e.c_size = static_cast<std::uint16_t>(packed.size());
        e.c_payload_len = static_cast<std::uint16_t>(p.payload.size());
        if (p.payload.size() <= kMemoInlinePayload) {
          std::copy(p.payload.begin(), p.payload.end(), e.c_inline.begin());
        } else {
          memo_spill_[idx] = p.payload;
        }
        e.source = p.source;
        e.peer_idx = peers_.index_of(p.source);
        e.peer_gen = peers_.generation();
      }
      break;
    case PacketKind::kData:
      ++stats_.data_received;
      if (obs::Omniscope* sc = scope_of(sim_)) {
        sc->mark_on(options_.owner, sc->core().data_rx,
                    obs::Cat::kDataRx, p.source.value, p.payload.size());
      }
      for (const auto& cb : on_data_) cb(p.source, p.payload);
      break;
    case PacketKind::kRelayed:
      break;  // handled above
  }
  discovery_note_inserts();
}

void OmniManager::handle_relayed_packet(const PackedStruct& outer) {
  ++stats_.relayed_in;
  // Separate scratch from decode_scratch_: `outer` aliases that buffer.
  Status decoded = PackedStruct::decode_into(outer.payload, relay_scratch_);
  if (!decoded.is_ok()) return;
  const PackedStruct& p = relay_scratch_;
  if (p.source == self_ || p.source != outer.source) return;

  TimePoint now = sim_.now();
  switch (p.kind) {
    case PacketKind::kAddressBeacon:
      // Multi-hop knowledge: the origin's mesh address may well be usable
      // (WiFi range exceeds BLE range), but it is unverified, so it
      // requires the re-validation ritual before data transfer. The BLE
      // mapping is NOT recorded: two BLE hops away is out of range by
      // construction.
      if (!p.beacon.mesh.is_zero()) {
        peers_.observe(p.source, Technology::kWifiUnicast,
                       LowLevelAddress{p.beacon.mesh}, now, true);
        peers_.observe(p.source, Technology::kWifiMulticast,
                       LowLevelAddress{p.beacon.mesh}, now, true);
      }
      break;
    case PacketKind::kContext:
      ++stats_.context_received;
      if (obs::Omniscope* sc = scope_of(sim_)) {
        sc->mark_frame_on(options_.owner, sc->core().context_rx,
                          obs::Cat::kContextRx, p.source.value,
                          p.payload.size());
      }
      for (const auto& cb : on_context_) cb(p.source, p.payload);
      break;
    default:
      return;
  }

  discovery_note_inserts();
  // Forward further if the hop budget allows.
  if (outer.hops_remaining > 0 && options_.context_relay_hops > 0) {
    PackedStruct rewrapped = PackedStruct::relayed(
        p.source, outer.payload,
        static_cast<std::uint8_t>(outer.hops_remaining - 1));
    maybe_relay(rewrapped, outer.payload);
  }
}

void OmniManager::maybe_relay(const PackedStruct& packet,
                              std::span<const std::uint8_t> inner_encoded) {
  // Content-addressed dedup: one active relay per distinct packet.
  std::uint64_t key = fnv1a64(inner_encoded);
  if (active_relays_.count(key) > 0) return;

  std::uint8_t hops;
  if (packet.kind == PacketKind::kRelayed) {
    hops = packet.hops_remaining;  // already decremented by the caller
  } else {
    hops = static_cast<std::uint8_t>(options_.context_relay_hops - 1);
  }
  Bytes packed = maybe_seal(
      PackedStruct::relayed(packet.source,
                            Bytes(inner_encoded.begin(), inner_encoded.end()),
                            hops)
          .encode());
  auto tech = pick_context_tech(packed.size(), {});
  if (!tech) return;  // nothing can carry it (e.g. legacy BLE)

  ContextId rid = next_relay_id_++;
  if (next_relay_id_ >= kBeaconContextBase) next_relay_id_ = kRelayContextBase;
  active_relays_[key] = rid;
  ++stats_.relayed_out;

  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kAddContext;
  req.context_id = rid;
  req.interval = current_beacon_interval_;
  req.packed = std::move(packed);
  slot(*tech)->send_queue->push(std::move(req));

  // Expire the relay after its lifetime.
  Technology carrier = *tech;
  sim_.after(options_.relay_lifetime, [this, key, rid, carrier] {
    active_relays_.erase(key);
    TechSlot* s = slot(carrier);
    if (s == nullptr || !s->up) return;
    SendRequest remove_req;
    remove_req.request_id = next_request_id();
    remove_req.op = SendOp::kRemoveContext;
    remove_req.context_id = rid;
    s->send_queue->push(std::move(remove_req));
  });
}

// --- Response path -----------------------------------------------------------

void OmniManager::drain_response_queue() {
  // Batch drain; see drain_receive_queue for rationale.
  while (!response_queue_.empty()) {
    std::size_t n = response_queue_.drain_into(response_scratch_);
    for (std::size_t i = 0; i < n; ++i) {
      handle_response(std::move(response_scratch_[i]));
    }
    // Unlike received packets, responses carry callbacks and shared send
    // state: destroy them promptly instead of recycling the slots.
    response_scratch_.clear();
  }
}

void OmniManager::handle_response(TechResponse response) {
  if (response.kind == TechResponse::Kind::kAddressChange) {
    // The technology's low-level address rotated (e.g. BLE privacy). The
    // address beacon must advertise the fresh mapping immediately, or peers
    // would keep contacting a stale address.
    TechSlot* s = slot(response.tech);
    if (s == nullptr) return;
    s->address = response.new_address;
    if (std::holds_alternative<BleAddress>(response.new_address)) {
      beacon_info_.ble = std::get<BleAddress>(response.new_address);
    } else if (std::holds_alternative<MeshAddress>(response.new_address)) {
      beacon_info_.mesh = std::get<MeshAddress>(response.new_address);
    }
    ++beacon_gen_;  // beacon_wire() re-encodes against the fresh mapping
    for (auto& bs : slots_) {
      if (!bs.up || !bs.beaconing) continue;
      SendRequest req;
      req.request_id = next_request_id();
      req.op = SendOp::kUpdateContext;
      req.context_id = beacon_context_id(bs.tech->type());
      req.interval = current_beacon_interval_;
      req.packed = beacon_wire();
      bs.send_queue->push(std::move(req));
    }
    return;
  }

  if (response.kind == TechResponse::Kind::kTechStatus) {
    TechSlot* s = slot(response.tech);
    if (s == nullptr) return;
    bool was_up = s->up;
    s->up = response.up;
    if (was_up != response.up) note_status_flap(*s);
    if (!was_up && response.up) {
      // Technology recovered: if it should carry beacons (primary, or
      // engagement disabled), restart them — unless the flap circuit
      // breaker benched it; then the quarantine-end re-probe takes over.
      if (quarantined(*s)) return;
      Technology primary = primary_context_tech();
      if (s->tech->supports_context() &&
          (!options_.enable_engagement || s->tech->type() == primary)) {
        s->tech->set_engaged(true);
        start_beaconing_on(s->tech->type());
      }
      return;
    }
    if (was_up && !response.up) {
      s->beaconing = false;
      // Re-home application contexts that were riding the lost technology.
      for (ContextId id : contexts_.on_tech(response.tech)) {
        ContextRecord* rec = contexts_.find(id);
        if (rec == nullptr) continue;
        rec->tech.reset();
        rec->active = false;
        rec->tried.clear();
        rec->tried.insert(response.tech);
        ++stats_.context_failovers;
        dispatch_context_add(*rec);
      }
      // If the primary beacon carrier died, promote the next one.
      Technology primary = primary_context_tech();
      if (TechSlot* p = slot(primary); p != nullptr && p->up) {
        if (!p->tech->engaged()) engage(primary);
      }
    }
    return;
  }

  if (response.op == SendOp::kSendData) {
    handle_data_response(response);
  } else {
    handle_context_response(response);
  }
}

void OmniManager::handle_data_response(const TechResponse& response) {
  auto it = data_attempts_.find(response.request_id);
  if (it == data_attempts_.end()) return;
  std::uint64_t op_id = it->second.op_id;
  it->second.deadline.cancel();
  data_attempts_.erase(it);

  auto op_it = pending_data_.find(op_id);
  if (op_it == pending_data_.end()) return;
  PendingData& op = op_it->second;

  if (response.success) {
    peers_.mark_fresh(op.dest, response.tech);
    if (obs::Omniscope* sc = scope_of(sim_)) {
      sc->count_on(options_.owner, sc->core().data_ok);
      sc->observe_on(options_.owner, sc->core().data_latency_ms,
                     (sim_.now() - op.started).as_seconds() * 1e3);
      sc->async_end_on(options_.owner, obs::Cat::kOpData, op_id, 0,
                       static_cast<std::uint8_t>(response.tech));
    }
    StatusCallback cb = op.callback;
    ResponseInfo info;
    info.destination = op.dest;
    pending_data_.erase(op_it);
    if (cb) cb(StatusCode::kSendDataSuccess, info);
    return;
  }

  // Failure: retry on the next applicable technology; only when all are
  // exhausted does the application hear about it (paper §3.1, §3.3).
  OMNI_DEBUG(sim_.now(), kTag, "data to %s failed on %s: %s",
             op.dest.to_string().c_str(), to_string(response.tech).c_str(),
             response.failure_reason.c_str());
  ++stats_.data_failovers;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->count_on(options_.owner, sc->core().data_failovers);
    sc->instant_on(options_.owner, obs::Cat::kFailover, op_id, 0,
                   static_cast<std::uint8_t>(response.tech));
  }
  dispatch_data(op_id);
}

void OmniManager::handle_context_response(const TechResponse& response) {
  if (is_beacon_context(response.context_id)) {
    TechSlot* s = slot(response.tech);
    if (response.success) {
      // A beacon op landed: the carrier is healthy again.
      if (s != nullptr && response.op == SendOp::kAddContext) {
        s->beacon_failures = 0;
      }
      return;
    }
    OMNI_WARN(sim_.now(), kTag, "address beacon op failed on %s: %s",
              to_string(response.tech).c_str(),
              response.failure_reason.c_str());
    if (s != nullptr) {
      s->beaconing = false;
      // Self-heal: re-arm the address beacon after a backoff instead of
      // silently going dark until a tech status transition (which may
      // never come for a transient send failure).
      if (response.op != SendOp::kRemoveContext) {
        ++s->beacon_failures;
        schedule_beacon_rearm(*s);
      }
    }
    return;
  }

  auto it = context_attempts_.find(response.request_id);
  if (it == context_attempts_.end()) return;
  ContextId id = it->second.id;
  it->second.deadline.cancel();
  context_attempts_.erase(it);

  ContextRecord* rec = contexts_.find(id);
  ResponseInfo info;
  info.context_id = id;

  switch (response.op) {
    case SendOp::kAddContext: {
      if (rec == nullptr) return;  // removed while in flight
      if (response.success) {
        rec->active = true;
        rec->tried.clear();
        if (rec->callback) {
          rec->callback(StatusCode::kAddContextSuccess, info);
        }
        return;
      }
      ++stats_.context_failovers;
      rec->tech.reset();
      rec->active = false;
      dispatch_context_add(*rec);
      return;
    }
    case SendOp::kUpdateContext: {
      if (rec == nullptr) return;
      if (response.success) {
        if (rec->callback) {
          rec->callback(StatusCode::kUpdateContextSuccess, info);
        }
        return;
      }
      // Re-home the context: remove locally, re-add elsewhere.
      ++stats_.context_failovers;
      rec->tech.reset();
      rec->active = false;
      rec->tried.clear();
      rec->tried.insert(response.tech);
      dispatch_context_add(*rec);
      return;
    }
    case SendOp::kRemoveContext: {
      info.failure_description = response.failure_reason;
      StatusCallback cb = rec != nullptr ? rec->callback : response.callback;
      contexts_.remove(id);
      if (cb) {
        cb(response.success ? StatusCode::kRemoveContextSuccess
                            : StatusCode::kRemoveContextFailure,
           info);
      }
      return;
    }
    case SendOp::kSendData:
      return;  // unreachable; handled elsewhere
  }
}

// --- Context operations -------------------------------------------------------

Bytes OmniManager::packed_context(const ContextRecord& record) {
  return maybe_seal(PackedStruct::context(self_, record.content).encode());
}

std::optional<Technology> OmniManager::pick_context_tech(
    std::size_t packed_size, const std::set<Technology>& exclude) const {
  // Lowest-energy first (the Technology enum is ordered by energy cost),
  // requiring the payload to fit.
  std::optional<Technology> best;
  for (const auto& s : slots_) {
    if (!usable(s) || !s.tech->supports_context()) continue;
    Technology t = s.tech->type();
    if (exclude.count(t) > 0) continue;
    if (s.tech->max_context_payload() < packed_size) continue;
    if (!best || static_cast<int>(t) < static_cast<int>(*best)) best = t;
  }
  return best;
}

void OmniManager::dispatch_context_add(ContextRecord& record) {
  Bytes packed = packed_context(record);
  auto tech = pick_context_tech(packed.size(), record.tried);
  if (!tech) {
    ResponseInfo info;
    info.context_id = record.id;
    info.failure_description =
        "no applicable context technology (payload too large or all failed)";
    StatusCallback cb = record.callback;
    contexts_.remove(record.id);
    if (cb) cb(StatusCode::kAddContextFailure, info);
    return;
  }
  record.tech = *tech;
  record.tried.insert(*tech);

  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kAddContext;
  req.context_id = record.id;
  req.interval = scaled_context_interval(record.params.interval);
  req.packed = std::move(packed);
  req.callback = record.callback;
  ContextAttempt attempt;
  attempt.id = record.id;
  attempt.tech = *tech;
  attempt.op = SendOp::kAddContext;
  if (options_.self_healing.enabled) {
    attempt.deadline =
        arm_deadline(req.request_id, options_.self_healing.min_op_deadline);
  }
  context_attempts_[req.request_id] = std::move(attempt);
  slot(*tech)->send_queue->push(std::move(req));
}

void OmniManager::add_context(const ContextParams& params, Bytes context,
                              StatusCallback callback) {
  if (!running_) {
    sim_.after(Duration::zero(), [callback] {
      ResponseInfo info;
      info.failure_description = "manager not running";
      if (callback) callback(StatusCode::kAddContextFailure, info);
    });
    return;
  }
  if (params.interval <= Duration::zero()) {
    sim_.after(Duration::zero(), [callback] {
      ResponseInfo info;
      info.failure_description = "context interval must be positive";
      if (callback) callback(StatusCode::kAddContextFailure, info);
    });
    return;
  }
  ContextId id = contexts_.add(params, std::move(context), callback);
  dispatch_context_add(*contexts_.find(id));
}

void OmniManager::update_context(ContextId id, const ContextParams& params,
                                 Bytes context, StatusCallback callback) {
  if (!running_) {
    sim_.after(Duration::zero(), [callback, id] {
      ResponseInfo info;
      info.context_id = id;
      info.failure_description = "manager not running";
      if (callback) callback(StatusCode::kUpdateContextFailure, info);
    });
    return;
  }
  ContextRecord* rec = contexts_.find(id);
  if (rec == nullptr || is_beacon_context(id)) {
    sim_.after(Duration::zero(), [callback, id] {
      ResponseInfo info;
      info.context_id = id;
      info.failure_description = "unknown context id";
      if (callback) callback(StatusCode::kUpdateContextFailure, info);
    });
    return;
  }
  rec->params = params;
  rec->content = std::move(context);
  if (callback) rec->callback = std::move(callback);
  // In-place content rewrite: the registry cannot see it, so bump the
  // generation by hand (cached wire frames key on it; see beacon_wire()).
  contexts_.bump_generation();

  Bytes packed = packed_context(*rec);
  if (!rec->tech || !rec->active) {
    // Not currently placed: (re)dispatch as an add.
    rec->tried.clear();
    dispatch_context_add(*rec);
    return;
  }
  TechSlot* s = slot(*rec->tech);
  if (s == nullptr || !s->up ||
      s->tech->max_context_payload() < packed.size()) {
    // Needs re-homing (e.g., payload grew beyond the carrier's limit).
    if (s != nullptr && s->up) {
      SendRequest remove_req;
      remove_req.request_id = next_request_id();
      remove_req.op = SendOp::kRemoveContext;
      remove_req.context_id = id;
      s->send_queue->push(std::move(remove_req));
    }
    rec->tech.reset();
    rec->active = false;
    rec->tried.clear();
    dispatch_context_add(*rec);
    return;
  }

  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kUpdateContext;
  req.context_id = id;
  req.interval = scaled_context_interval(rec->params.interval);
  req.packed = std::move(packed);
  req.callback = rec->callback;
  ContextAttempt attempt;
  attempt.id = id;
  attempt.tech = *rec->tech;
  attempt.op = SendOp::kUpdateContext;
  if (options_.self_healing.enabled) {
    attempt.deadline =
        arm_deadline(req.request_id, options_.self_healing.min_op_deadline);
  }
  context_attempts_[req.request_id] = std::move(attempt);
  s->send_queue->push(std::move(req));
}

void OmniManager::remove_context(ContextId id, StatusCallback callback) {
  if (!running_) {
    // Shutdown path: transmissions are already withdrawn with the
    // technologies; just forget the record.
    contexts_.remove(id);
    sim_.after(Duration::zero(), [callback, id] {
      ResponseInfo info;
      info.context_id = id;
      if (callback) callback(StatusCode::kRemoveContextSuccess, info);
    });
    return;
  }
  ContextRecord* rec = contexts_.find(id);
  if (rec == nullptr || is_beacon_context(id)) {
    sim_.after(Duration::zero(), [callback, id] {
      ResponseInfo info;
      info.context_id = id;
      info.failure_description = "unknown context id";
      if (callback) callback(StatusCode::kRemoveContextFailure, info);
    });
    return;
  }
  if (callback) rec->callback = std::move(callback);
  if (!rec->tech || !rec->active) {
    StatusCallback cb = rec->callback;
    contexts_.remove(id);
    sim_.after(Duration::zero(), [cb, id] {
      ResponseInfo info;
      info.context_id = id;
      if (cb) cb(StatusCode::kRemoveContextSuccess, info);
    });
    return;
  }
  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kRemoveContext;
  req.context_id = id;
  req.callback = rec->callback;
  ContextAttempt attempt;
  attempt.id = id;
  attempt.tech = *rec->tech;
  attempt.op = SendOp::kRemoveContext;
  if (options_.self_healing.enabled) {
    attempt.deadline =
        arm_deadline(req.request_id, options_.self_healing.min_op_deadline);
  }
  context_attempts_[req.request_id] = std::move(attempt);
  slot(*rec->tech)->send_queue->push(std::move(req));
}

// --- Data operations ----------------------------------------------------------

std::optional<Technology> OmniManager::pick_data_tech(
    const PendingData& op) const {
  const PeerEntry* peer = peers_.find(op.dest);
  if (peer == nullptr) return std::nullopt;

  std::optional<Technology> best;
  Duration best_time = Duration::max();
  int best_rank = 0;
  for (const auto& s : slots_) {
    if (!usable(s) || !s.tech->supports_data()) continue;
    Technology t = s.tech->type();
    if (op.tried.count(t) > 0) continue;
    auto info_it = peer->techs.find(t);
    if (info_it == peer->techs.end()) continue;
    std::size_t cap = s.tech->max_data_payload();
    if (cap != 0 && op.packed.size() > cap) continue;

    switch (options_.data_policy) {
      case ManagerOptions::DataPolicy::kExpectedTime: {
        Duration est = s.tech->estimate_data_time(
            op.packed.size(), info_it->second.requires_refresh);
        if (!best || est < best_time) {
          best = t;
          best_time = est;
        }
        break;
      }
      case ManagerOptions::DataPolicy::kPreferLowEnergy:
        if (!best || static_cast<int>(t) < best_rank) {
          best = t;
          best_rank = static_cast<int>(t);
        }
        break;
      case ManagerOptions::DataPolicy::kPreferThroughput:
        if (!best || static_cast<int>(t) > best_rank) {
          best = t;
          best_rank = static_cast<int>(t);
        }
        break;
    }
    if (best == t && options_.data_policy !=
                         ManagerOptions::DataPolicy::kExpectedTime) {
      best_rank = static_cast<int>(t);
    }
  }
  return best;
}

void OmniManager::dispatch_data(std::uint64_t op_id) {
  auto it = pending_data_.find(op_id);
  if (it == pending_data_.end()) return;
  PendingData& op = it->second;

  auto tech = pick_data_tech(op);
  if (!tech) {
    fail_data(op_id, "all applicable technologies exhausted");
    return;
  }
  op.tried.insert(*tech);
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->instant_on(options_.owner, obs::Cat::kTechSelect, op_id, 0,
                   static_cast<std::uint8_t>(*tech));
  }

  const PeerEntry* peer = peers_.find(op.dest);
  const PeerTechInfo& info = peer->techs.at(*tech);

  SendRequest req;
  req.request_id = next_request_id();
  req.op = SendOp::kSendData;
  req.packed = op.packed;
  req.dest = info.address;
  req.dest_omni = op.dest;
  req.needs_refresh = info.requires_refresh;
  if (req.needs_refresh) {
    // If the peer was heard recently on an ND-integrated technology (BLE),
    // only the network needs re-validating; otherwise the peer's next
    // periodic advertisement must be awaited as well.
    auto ble_it = peer->techs.find(Technology::kBle);
    bool heard_on_ble =
        ble_it != peer->techs.end() &&
        sim_.now() - ble_it->second.last_seen <= options_.peer_ttl;
    req.refresh_advert_wait = !heard_on_ble;
  }
  req.callback = op.callback;
  DataAttempt attempt;
  attempt.op_id = op_id;
  attempt.tech = *tech;
  if (options_.self_healing.enabled) {
    const auto& sh = options_.self_healing;
    // Budget scaled to the expected transfer time (connection setup plus
    // size/throughput), floored so tiny transfers get a sane minimum.
    Duration est = slot(*tech)->tech->estimate_data_time(
        op.packed.size(), info.requires_refresh);
    Duration budget =
        std::max(sh.min_op_deadline, est * sh.deadline_factor +
                                         sh.deadline_slack);
    attempt.deadline = arm_deadline(req.request_id, budget);
  }
  data_attempts_[req.request_id] = std::move(attempt);
  slot(*tech)->send_queue->push(std::move(req));
}

void OmniManager::fail_data(std::uint64_t op_id, const std::string& why) {
  auto it = pending_data_.find(op_id);
  if (it == pending_data_.end()) return;
  if (obs::Omniscope* sc = scope_of(sim_)) {
    sc->count_on(options_.owner, sc->core().data_failed);
    sc->async_end_on(options_.owner, obs::Cat::kOpData, op_id, 1);
  }
  StatusCallback cb = it->second.callback;
  ResponseInfo info;
  info.destination = it->second.dest;
  info.failure_description = why;
  pending_data_.erase(it);
  if (cb) cb(StatusCode::kSendDataFailure, info);
}

void OmniManager::send_data(const std::vector<OmniAddress>& destinations,
                            Bytes data, StatusCallback callback) {
  if (!running_) {
    for (OmniAddress dest : destinations) {
      sim_.after(Duration::zero(), [callback, dest] {
        ResponseInfo info;
        info.destination = dest;
        info.failure_description = "manager not running";
        if (callback) callback(StatusCode::kSendDataFailure, info);
      });
    }
    return;
  }
  Bytes packed = PackedStruct::data(self_, std::move(data)).encode();
  for (OmniAddress dest : destinations) {
    if (options_.self_healing.enabled &&
        pending_data_.size() >= options_.self_healing.max_pending_ops) {
      // Overload shed: bound the pending table rather than letting a dead
      // network grow it without limit.
      ++stats_.overload_rejections;
      sim_.after(Duration::zero(), [callback, dest] {
        ResponseInfo info;
        info.destination = dest;
        info.failure_description = "manager overloaded: pending data table full";
        if (callback) callback(StatusCode::kSendDataFailure, info);
      });
      continue;
    }
    ++stats_.data_sends;
    std::uint64_t op_id = next_data_op_id_++;
    PendingData op;
    op.op_id = op_id;
    op.dest = dest;
    op.packed = packed;
    op.callback = callback;
    op.started = sim_.now();
    if (obs::Omniscope* sc = scope_of(sim_)) {
      sc->count_on(options_.owner, sc->core().data_ops);
      sc->async_begin_on(options_.owner, obs::Cat::kOpData, op_id,
                         packed.size());
    }
    pending_data_.emplace(op_id, std::move(op));

    if (peers_.find(dest) == nullptr) {
      // Keep failure reporting asynchronous like every other path.
      sim_.after(Duration::zero(), [this, op_id] {
        fail_data(op_id, "unknown peer (never discovered)");
      });
      continue;
    }
    dispatch_data(op_id);
  }
}

// --- Snapshot capture --------------------------------------------------------

namespace {

/// Canonical LowLevelAddress encoding: variant index, then the alternative's
/// natural layout (nothing | 6 octets | u64 | u64).
void encode_lladdr(sim::ByteWriter& w, const LowLevelAddress& a) {
  w.u8(static_cast<std::uint8_t>(a.index()));
  if (const auto* b = std::get_if<BleAddress>(&a)) {
    for (std::uint8_t octet : b->octets) w.u8(octet);
  } else if (const auto* m = std::get_if<MeshAddress>(&a)) {
    w.u64(m->value);
  } else if (const auto* n = std::get_if<NanAddress>(&a)) {
    w.u64(n->value);
  }
}

/// Canonical peer-table encoding: peers ascending by omni address, each
/// entry's technology mappings in enum order. Independent of bucket layout
/// and insertion history, so two runs that discovered the same neighborhood
/// encode identical bytes.
void encode_peer_table(sim::ByteWriter& w, const PeerTable& peers) {
  const std::vector<OmniAddress> ids = peers.peers();  // sorted
  w.var(ids.size());
  for (OmniAddress p : ids) {
    const PeerEntry* e = peers.find(p);
    w.u64(p.value);
    w.svar(e->last_seen.as_micros());
    w.svar(e->interval_hint.as_micros());
    w.var(e->techs.size());
    for (const auto& [tech, info] : e->techs) {
      w.u8(static_cast<std::uint8_t>(tech));
      encode_lladdr(w, info.address);
      w.svar(info.last_seen.as_micros());
      w.u8(info.requires_refresh ? 1 : 0);
    }
  }
}

}  // namespace

void OmniManager::snapshot_state(sim::ByteWriter& w, bool deep) const {
  w.u64(self_.value);
  w.var(static_cast<std::uint64_t>(options_.owner));
  w.u8(running_ ? 1 : 0);

  // Cache-invalidating generations. The beacon wire frame and the receive
  // memo are rebuilt on resume; the generations prove the rebuilt run has
  // (in)validated its caches the same number of times.
  w.var(beacon_gen_);
  w.var(beacon_wire_gen_);
  w.u64(beacon_wire_ctx_gen_);

  // Monotonic id/draw counters — each one pins a whole derived sequence
  // (request ids, op ids, nonces, relay context ids, jitter draws).
  w.var(next_request_id_);
  w.var(next_data_op_id_);
  w.var(next_nonce_);
  w.var(next_relay_id_ - kRelayContextBase);
  w.var(backoff_draws_);
  w.var(discovery_draws_);
  w.var(discovery_last_inserts_);
  w.u64(last_neighborhood_hash_);
  w.svar(current_beacon_interval_.as_micros());
  w.f64(discovery_scan_duty_);

  // Full ManagerStats, declaration order.
  for (std::uint64_t v :
       {stats_.packets_received, stats_.sealed_drops, stats_.beacons_received,
        stats_.context_received, stats_.data_received, stats_.data_sends,
        stats_.data_failovers, stats_.context_failovers, stats_.engagements,
        stats_.disengagements, stats_.beacon_encodes,
        stats_.beacon_frames_cached, stats_.beacon_decode_skips,
        stats_.peer_expire_sweeps, stats_.relayed_out, stats_.relayed_in,
        stats_.deadline_failovers, stats_.beacon_rearms, stats_.quarantines,
        stats_.overload_rejections, stats_.beacons_suppressed,
        stats_.scan_windows_skipped}) {
    w.var(v);
  }

  // Technology slots in registration order (deterministic: the sequence of
  // add_technology calls). Pending re-arm / quarantine-end timers appear in
  // the events section; here only their armed-ness is recorded.
  w.var(slots_.size());
  for (const TechSlot& s : slots_) {
    w.u8(static_cast<std::uint8_t>(s.type));
    const std::uint8_t flags =
        (s.up ? 1u : 0u) | (s.beaconing ? 2u : 0u) |
        (s.beacon_rearm.pending() ? 4u : 0u) |
        (s.quarantine_end.pending() ? 8u : 0u);
    w.u8(flags);
    encode_lladdr(w, s.address);
    w.svar(s.beacon_failures);
    w.svar(s.flaps);
    w.svar(s.flap_window_start.as_micros());
    w.svar(s.quarantine_count);
    w.svar(s.quarantined_until.as_micros());
  }

  // Pending data ops (std::map: ascending op id). Payload bytes collapse to
  // length + digest — enough to prove equality, cheap at any fan-out.
  w.var(pending_data_.size());
  for (const auto& [id, op] : pending_data_) {
    w.var(id);
    w.u64(op.dest.value);
    w.var(op.packed.size());
    w.u64(fnv1a64(std::span<const std::uint8_t>(op.packed)));
    w.svar(op.started.as_micros());
    std::uint8_t tried = 0;
    for (Technology t : op.tried) {
      tried |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(t));
    }
    w.u8(tried);
  }

  // In-flight attempts (ascending request id).
  w.var(data_attempts_.size());
  for (const auto& [rid, a] : data_attempts_) {
    w.var(rid);
    w.var(a.op_id);
    w.u8(static_cast<std::uint8_t>(a.tech));
    w.u8(a.deadline.pending() ? 1 : 0);
  }
  w.var(context_attempts_.size());
  for (const auto& [rid, a] : context_attempts_) {
    w.var(rid);
    w.var(a.id);
    w.u8(static_cast<std::uint8_t>(a.tech));
    w.u8(static_cast<std::uint8_t>(a.op));
    w.u8(a.deadline.pending() ? 1 : 0);
  }

  // Context registry: generation plus the sorted id set (record contents are
  // application inputs, replayed identically by construction).
  w.var(contexts_.size());
  w.var(contexts_.generation());
  for (ContextId id : contexts_.ids()) w.var(id);

  // Active relays (std::map: ascending content hash).
  w.var(active_relays_.size());
  for (const auto& [hash, cid] : active_relays_) {
    w.u64(hash);
    w.var(cid - kRelayContextBase);
  }

  // Peer table: canonical encoding, embedded (deep) or digested (size
  // budget). The digest covers the identical bytes, so verification strength
  // is the same either way; only diff granularity differs.
  w.var(peers_.size());
  w.var(peers_.inserts());
  sim::ByteWriter pt;
  encode_peer_table(pt, peers_);
  w.u8(deep ? 1 : 0);
  if (deep) {
    w.str(std::string_view(reinterpret_cast<const char*>(pt.bytes().data()),
                           pt.bytes().size()));
  } else {
    w.u64(fnv1a64(std::span<const std::uint8_t>(pt.bytes())));
  }
}

}  // namespace omni
