// OmniNode: a device running the Omni middleware.
//
// Bundles a simulated Device with the selected technology plugins and an
// OmniManager; this is the top-level object examples and experiments
// instantiate per device.
#pragma once

#include <memory>
#include <vector>

#include "net/device.h"
#include "omni/ble_tech.h"
#include "omni/manager.h"
#include "omni/nan_tech.h"
#include "omni/wifi_multicast_tech.h"
#include "omni/wifi_unicast_tech.h"
#include "radio/mesh.h"

namespace omni {

struct OmniNodeOptions {
  /// Which technology plugins to instantiate. The paper's configurations:
  /// BLE-context rows run {ble, wifi_unicast}; WiFi-context rows run
  /// {wifi_multicast, wifi_unicast}; full deployments run all three.
  /// wifi_aware adds the paper's anticipated NAN context carrier.
  bool ble = true;
  bool wifi_unicast = true;
  bool wifi_multicast = false;
  bool wifi_aware = false;

  /// Keep the WiFi radio powered (standby draw) even when no WiFi technology
  /// is registered — matching the paper's measurement convention, where the
  /// WiFi radio stays on unless the configuration turns it off outright.
  bool wifi_standby = true;

  ManagerOptions manager;
  BleTech::Options ble_options;
  WifiMulticastTech::Options multicast_options;
};

class OmniNode {
 public:
  OmniNode(net::Device& device, radio::MeshNetwork& mesh,
           OmniNodeOptions options = {});
  OmniNode(const OmniNode&) = delete;
  OmniNode& operator=(const OmniNode&) = delete;

  /// Enable all technologies and start the manager.
  void start();
  void stop();

  OmniManager& manager() { return *manager_; }
  net::Device& device() { return device_; }
  OmniAddress address() const { return device_.omni_address(); }

  BleTech* ble_tech() { return ble_tech_.get(); }
  WifiUnicastTech* wifi_unicast_tech() { return unicast_tech_.get(); }
  WifiMulticastTech* wifi_multicast_tech() { return multicast_tech_.get(); }
  NanTech* nan_tech() { return nan_tech_.get(); }

 private:
  net::Device& device_;
  OmniNodeOptions options_;
  std::unique_ptr<BleTech> ble_tech_;
  std::unique_ptr<NanTech> nan_tech_;
  std::unique_ptr<WifiUnicastTech> unicast_tech_;
  std::unique_ptr<WifiMulticastTech> multicast_tech_;
  std::unique_ptr<OmniManager> manager_;
};

}  // namespace omni
