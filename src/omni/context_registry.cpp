#include "omni/context_registry.h"

#include <algorithm>

namespace omni {

namespace {
// Binary search for the slot holding (or that would hold) `id`.
auto lower_bound_id(auto& records, ContextId id) {
  return std::lower_bound(
      records.begin(), records.end(), id,
      [](const ContextRecord& rec, ContextId key) { return rec.id < key; });
}
}  // namespace

ContextId ContextRegistry::add(ContextParams params, Bytes content,
                               StatusCallback callback) {
  ContextId id = next_id_++;
  ContextRecord rec;
  rec.id = id;
  rec.params = params;
  rec.content = std::move(content);
  rec.callback = std::move(callback);
  // Ids are monotonic, so appending keeps records_ sorted.
  records_.push_back(std::move(rec));
  ++generation_;
  return id;
}

ContextRecord* ContextRegistry::find(ContextId id) {
  auto it = lower_bound_id(records_, id);
  return it == records_.end() || it->id != id ? nullptr : &*it;
}

const ContextRecord* ContextRegistry::find(ContextId id) const {
  auto it = lower_bound_id(records_, id);
  return it == records_.end() || it->id != id ? nullptr : &*it;
}

bool ContextRegistry::remove(ContextId id) {
  auto it = lower_bound_id(records_, id);
  if (it == records_.end() || it->id != id) return false;
  records_.erase(it);
  ++generation_;
  return true;
}

std::vector<ContextId> ContextRegistry::ids() const {
  std::vector<ContextId> out;
  out.reserve(records_.size());
  for (const auto& rec : records_) out.push_back(rec.id);
  return out;
}

std::vector<ContextId> ContextRegistry::on_tech(Technology tech) const {
  std::vector<ContextId> out;
  for (const auto& rec : records_) {
    if (rec.tech == tech) out.push_back(rec.id);
  }
  return out;
}

}  // namespace omni
