#include "omni/context_registry.h"

namespace omni {

ContextId ContextRegistry::add(ContextParams params, Bytes content,
                               StatusCallback callback) {
  ContextId id = next_id_++;
  ContextRecord rec;
  rec.id = id;
  rec.params = params;
  rec.content = std::move(content);
  rec.callback = std::move(callback);
  records_.emplace(id, std::move(rec));
  return id;
}

ContextRecord* ContextRegistry::find(ContextId id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const ContextRecord* ContextRegistry::find(ContextId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

bool ContextRegistry::remove(ContextId id) { return records_.erase(id) > 0; }

std::vector<ContextId> ContextRegistry::ids() const {
  std::vector<ContextId> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

std::vector<ContextId> ContextRegistry::on_tech(Technology tech) const {
  std::vector<ContextId> out;
  for (const auto& [id, rec] : records_) {
    if (rec.tech == tech) out.push_back(id);
  }
  return out;
}

}  // namespace omni
