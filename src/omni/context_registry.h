// The Omni Manager's context mapping (paper §3.3): every active context
// transmission, its parameters, and which technology currently carries it —
// so update/remove requests can be forwarded to the right technology and
// transmissions can be re-homed when a technology fails.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "omni/status.h"

namespace omni {

struct ContextParams {
  /// Transmission frequency (paper: the application specifies it; adaptive
  /// protocols are future work).
  Duration interval = Duration::millis(500);
};

struct ContextRecord {
  ContextId id = kInvalidContext;
  ContextParams params;
  Bytes content;
  StatusCallback callback;
  /// Technology currently carrying this context (nullopt while unassigned,
  /// e.g. mid-failover).
  std::optional<Technology> tech;
  /// True once the carrying technology has acknowledged the transmission.
  bool active = false;
  /// Technologies already attempted for the in-flight operation (failover
  /// bookkeeping; cleared when an attempt succeeds).
  std::set<Technology> tried;
};

/// Registry backing store: a flat vector kept sorted by id. Ids are handed
/// out monotonically, so add() is an O(1) push_back that preserves the sort;
/// find() is a binary search over contiguous memory (a handful of cache
/// lines for realistic registry sizes, vs. a pointer chase per node with
/// std::map). Pointers returned by find() are invalidated by add() and
/// remove() — callers must not hold them across mutations.
class ContextRegistry {
 public:
  /// Reserve an id and store the record.
  ContextId add(ContextParams params, Bytes content, StatusCallback callback);

  ContextRecord* find(ContextId id);
  const ContextRecord* find(ContextId id) const;
  bool remove(ContextId id);

  std::vector<ContextId> ids() const;
  /// Contexts currently assigned to `tech`.
  std::vector<ContextId> on_tech(Technology tech) const;

  std::size_t size() const { return records_.size(); }

  /// Monotonic mutation counter: bumped by add()/remove() and — via
  /// bump_generation() — whenever a caller rewrites a record's content in
  /// place (the manager's update_context does). Cached wire frames key on it
  /// so a context-set change conservatively invalidates them (see
  /// OmniManager::beacon_wire).
  std::uint64_t generation() const { return generation_; }
  void bump_generation() { ++generation_; }

 private:
  std::vector<ContextRecord> records_;  // sorted by ContextRecord::id
  ContextId next_id_ = 1;
  std::uint64_t generation_ = 0;
};

}  // namespace omni
