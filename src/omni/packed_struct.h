// The omni_packed_struct (paper §3.3).
//
// Wire format, tightly packed to fit lightweight beacons:
//   byte 0        — packet kind (address beacon / context / data)
//   bytes 1..8    — the sender's 64-bit omni_address (big-endian)
//   remainder     — payload:
//       address beacon: 8 bytes WiFi-Mesh address + 6 bytes BLE address
//                       (the paper's "14 additional bytes")
//       context/data:   application bytes, opaque to Omni
//
// An address beacon therefore encodes to exactly 23 bytes — comfortably
// inside a legacy 31-byte BLE advertisement.
#pragma once

#include <cstdint>
#include <span>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "common/types.h"

namespace omni {

enum class PacketKind : std::uint8_t {
  kAddressBeacon = 0,
  kContext = 1,
  kData = 2,
  /// A context or address beacon re-broadcast by an intermediate device
  /// (the paper's §5 multi-hop context sharing). `source` remains the
  /// ORIGINAL origin; one extra byte carries the remaining hop budget and
  /// the payload is the original encoded packet.
  kRelayed = 3,
};

std::string to_string(PacketKind kind);

/// Per-technology reachability information carried by an address beacon.
struct AddressBeaconInfo {
  MeshAddress mesh;  ///< zero if the device has no WiFi-Mesh interface
  BleAddress ble;    ///< zero if the device has no BLE interface

  bool operator==(const AddressBeaconInfo&) const = default;
};

struct PackedStruct {
  PacketKind kind = PacketKind::kContext;
  OmniAddress source;
  AddressBeaconInfo beacon;  ///< meaningful only for kAddressBeacon
  Bytes payload;  ///< kContext/kData: app bytes; kRelayed: inner packet
  std::uint8_t hops_remaining = 0;  ///< meaningful only for kRelayed

  static PackedStruct address_beacon(OmniAddress source,
                                     AddressBeaconInfo info);
  static PackedStruct context(OmniAddress source, Bytes payload);
  static PackedStruct data(OmniAddress source, Bytes payload);
  /// Wrap an encoded packet for relay with `hops` further hops allowed.
  static PackedStruct relayed(OmniAddress original_source, Bytes inner,
                              std::uint8_t hops);

  /// Serialized size without encoding.
  std::size_t encoded_size() const;

  Bytes encode() const;
  static Result<PackedStruct> decode(std::span<const std::uint8_t> wire);
  /// decode() into a caller-owned struct: `out.payload` is assign()ed, so a
  /// struct reused across packets keeps its buffer and decoding allocates
  /// nothing in steady state. On error `out` is unspecified.
  static Status decode_into(std::span<const std::uint8_t> wire,
                            PackedStruct& out);

  bool operator==(const PackedStruct&) const = default;
};

/// Fixed header size: kind byte + omni_address.
inline constexpr std::size_t kPackedHeaderSize = 9;
/// Payload size of an address beacon (mesh + BLE addresses).
inline constexpr std::size_t kAddressBeaconPayloadSize = 14;

}  // namespace omni
