// Developer-facing status codes and callbacks (paper Table 2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"

namespace omni {

/// Identifier the manager assigns to an active context transmission; the
/// application uses it with update_context / remove_context.
using ContextId = std::uint32_t;
inline constexpr ContextId kInvalidContext = 0;

/// Table 2 of the paper.
enum class StatusCode : std::uint8_t {
  kAddContextSuccess,
  kAddContextFailure,
  kUpdateContextSuccess,
  kUpdateContextFailure,
  kRemoveContextSuccess,
  kRemoveContextFailure,
  kSendDataSuccess,
  kSendDataFailure,
};

std::string to_string(StatusCode code);
bool is_success(StatusCode code);

/// Table 2's Response_Info column: which fields are meaningful depends on
/// the code (context id for context ops, destination for data ops, failure
/// description for failures).
struct ResponseInfo {
  ContextId context_id = kInvalidContext;
  OmniAddress destination;
  std::string failure_description;
};

/// status_callback(code, response_info) — paper §3.1.
using StatusCallback =
    std::function<void(StatusCode code, const ResponseInfo& info)>;

/// receive_context_callback(source, context) — paper Table 1.
using ReceiveContextCallback =
    std::function<void(const OmniAddress& source, const Bytes& context)>;

/// receive_data_callback(source, data) — paper Table 1.
using ReceiveDataCallback =
    std::function<void(const OmniAddress& source, const Bytes& data)>;

}  // namespace omni
