// Simulation-integrated queues for the Communication Technology API.
//
// Under simulation, producers and consumers are both driven by the event
// loop, so "concurrent access" (paper §3.2) is modelled by deferring the
// consumer's wakeup to a fresh event at the same virtual instant: a push
// never re-entrantly invokes the consumer, exactly like a real queue between
// threads. The thread-safe ConcurrentQueue in common/ provides the same
// interface for real-time deployments.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace omni {

template <typename T>
class SimQueue {
 public:
  explicit SimQueue(sim::Simulator& sim) : sim_(&sim) {}
  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  void push(T item) {
    if (count_ < items_.size()) {
      items_[count_] = std::move(item);
    } else {
      items_.push_back(std::move(item));
    }
    ++count_;
    wake();
  }

  /// Append a slot and let `fill` write it in place. A slot recycled from an
  /// earlier drained batch keeps its heap buffers (a packet's payload vector,
  /// say), so a producer that fills via assign() allocates nothing in steady
  /// state.
  template <typename Fill>
  void produce(Fill&& fill) {
    if (count_ == items_.size()) items_.emplace_back();
    fill(items_[count_]);
    ++count_;
    wake();
  }

  std::optional<T> try_pop() {
    if (count_ == 0) return std::nullopt;
    T out = std::move(items_.front());
    items_.erase(items_.begin());
    --count_;
    return out;
  }

  /// Swap out the entire backlog (mirrors ConcurrentQueue::drain so
  /// consumers written against one queue type work against the other).
  std::vector<T> drain() {
    std::vector<T> out;
    out.swap(items_);
    out.resize(count_);  // drop recycled slots past the live prefix
    count_ = 0;
    return out;
  }

  /// drain() into a reused buffer: the backlog is exchanged with `out` and
  /// the number of live items — a prefix of `out` — is returned. Elements
  /// past that prefix are dead slots from earlier batches; a caller that
  /// leaves them in place (no clear()) hands their buffers back to
  /// produce()/push() at the next exchange, so steady-state draining
  /// allocates nothing.
  std::size_t drain_into(std::vector<T>& out) {
    std::swap(items_, out);
    std::size_t live = count_;
    count_ = 0;
    return live;
  }

  /// Register the consumer's wakeup. After every push, the consumer runs in
  /// its own event (coalesced: one wakeup per batch of same-instant pushes).
  void set_consumer(std::function<void()> fn) {
    consumer_ = std::move(fn);
    if (count_ > 0) wake();
  }

  void clear_consumer() { consumer_ = nullptr; }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  void wake() {
    if (!consumer_ || wake_pending_) return;
    wake_pending_ = true;
    sim_->after(Duration::zero(), [this] {
      wake_pending_ = false;
      if (consumer_) consumer_();
    });
  }

  sim::Simulator* sim_;
  // Vector, not deque: consumers batch-drain, so FIFO pop-front is rare
  // (short send queues only) while push/drain are hot. The live backlog is
  // items_[0, count_); later elements are recycled slots whose buffers
  // produce() reuses (see drain_into).
  std::vector<T> items_;
  std::size_t count_ = 0;
  std::function<void()> consumer_;
  bool wake_pending_ = false;
};

}  // namespace omni
