// Simulation-integrated queues for the Communication Technology API.
//
// Under simulation, producers and consumers are both driven by the event
// loop, so "concurrent access" (paper §3.2) is modelled by waking the
// consumer at the same virtual instant as the push. When the producing event
// already executes under the queue's pinned owner, the consumer is invoked
// directly (guarded against recursion) — same virtual instant, no event
// overhead, and the owner's events are serial so nothing can interleave.
// Pushes from any other context defer the wakeup to a fresh event under the
// owner. The thread-safe ConcurrentQueue in common/ provides the same
// interface for real-time deployments.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/time.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace omni {

template <typename T>
class SimQueue {
 public:
  explicit SimQueue(sim::Simulator& sim)
      : sim_(&sim),
        drain_slot_(sim.register_callback_slot(this, &SimQueue::drain_thunk)) {}
  ~SimQueue() { sim_->unregister_callback_slot(drain_slot_); }
  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  void push(T item) {
    if (count_ < items_.size()) {
      items_[count_] = std::move(item);
    } else {
      items_.push_back(std::move(item));
    }
    ++count_;
    wake();
  }

  /// Append a slot and let `fill` write it in place. A slot recycled from an
  /// earlier drained batch keeps its heap buffers (a packet's payload vector,
  /// say), so a producer that fills via assign() allocates nothing in steady
  /// state.
  template <typename Fill>
  void produce(Fill&& fill) {
    if (count_ == items_.size()) items_.emplace_back();
    fill(items_[count_]);
    ++count_;
    wake();
  }

  std::optional<T> try_pop() {
    if (count_ == 0) return std::nullopt;
    T out = std::move(items_.front());
    items_.erase(items_.begin());
    --count_;
    return out;
  }

  /// Swap out the entire backlog (mirrors ConcurrentQueue::drain so
  /// consumers written against one queue type work against the other).
  std::vector<T> drain() {
    std::vector<T> out;
    out.swap(items_);
    out.resize(count_);  // drop recycled slots past the live prefix
    count_ = 0;
    return out;
  }

  /// drain() into a reused buffer: the backlog is exchanged with `out` and
  /// the number of live items — a prefix of `out` — is returned. Elements
  /// past that prefix are dead slots from earlier batches; a caller that
  /// leaves them in place (no clear()) hands their buffers back to
  /// produce()/push() at the next exchange, so steady-state draining
  /// allocates nothing.
  std::size_t drain_into(std::vector<T>& out) {
    std::swap(items_, out);
    std::size_t live = count_;
    count_ = 0;
    return live;
  }

  /// Register the consumer's wakeup. After every push, the consumer runs in
  /// its own event (coalesced: one wakeup per batch of same-instant pushes).
  void set_consumer(std::function<void()> fn) {
    consumer_ = std::move(fn);
    if (count_ > 0) wake();
  }

  void clear_consumer() { consumer_ = nullptr; }

  /// Pin the consumer to an owner: wakeups are scheduled under `owner`
  /// regardless of the producing context, so the parallel engine always
  /// drains this queue on the owner's shard (or, for kGlobalOwner, in the
  /// barrier-serialized global phase). Unpinned queues inherit the producing
  /// event's owner — correct only when every producer already runs there.
  void set_owner(sim::OwnerId owner) {
    owner_ = owner;
    pinned_ = true;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  void wake() {
    if (!consumer_) return;
    // Already inside this queue's consumer: its drain loop picks the new
    // item up; if it returns without doing so, the tail check below re-arms.
    if (draining_) return;
    if (wake_pending_) return;
    // Same-owner fast path: the producing event already runs under this
    // queue's owner (never taken for global-pinned queues — their producers,
    // e.g. the mesh delivery sweep, must not re-enter shared subsystems).
    // Whether a push takes this path depends only on event ownership, never
    // on the thread count, so event sequences stay bit-identical.
    if (pinned_ && owner_ != sim::kGlobalOwner &&
        sim_->current_owner() == owner_) {
      draining_ = true;
      consumer_();
      draining_ = false;
      if (count_ > 0) deferred_wake();  // consumer returned with a backlog
      return;
    }
    deferred_wake();
  }

  /// The wakeup is a queue-drain descriptor naming this queue's callback
  /// slot, not a `this`-capturing closure: same owner, delay, and scheduling
  /// order as the closure it replaced (so event sequences are untouched),
  /// but the slab stores 4 payload bytes and — crucially for dist/ — a
  /// cross-owner wake (a node-shard producer waking a global-pinned tech
  /// queue, or vice versa) is a serializable post that partitioned workers
  /// can ship instead of a closure they can only replicate.
  void deferred_wake() {
    wake_pending_ = true;
    sim::OwnerId owner = pinned_ ? owner_ : sim_->current_owner();
    sim_->schedule_slot_on(owner, Duration::zero(), sim::kEventQueueDrain,
                           drain_slot_);
  }

  static void drain_thunk(void* ctx) {
    auto* q = static_cast<SimQueue*>(ctx);
    q->wake_pending_ = false;
    if (q->consumer_) q->consumer_();
  }

  sim::Simulator* sim_;
  std::uint32_t drain_slot_;  ///< callback-slot id for queue-drain descriptors
  // Vector, not deque: consumers batch-drain, so FIFO pop-front is rare
  // (short send queues only) while push/drain are hot. The live backlog is
  // items_[0, count_); later elements are recycled slots whose buffers
  // produce() reuses (see drain_into).
  std::vector<T> items_;
  std::size_t count_ = 0;
  std::function<void()> consumer_;
  sim::OwnerId owner_ = sim::kGlobalOwner;
  bool pinned_ = false;
  bool wake_pending_ = false;
  bool draining_ = false;
};

}  // namespace omni
