// Simulation-integrated queues for the Communication Technology API.
//
// Under simulation, producers and consumers are both driven by the event
// loop, so "concurrent access" (paper §3.2) is modelled by deferring the
// consumer's wakeup to a fresh event at the same virtual instant: a push
// never re-entrantly invokes the consumer, exactly like a real queue between
// threads. The thread-safe ConcurrentQueue in common/ provides the same
// interface for real-time deployments.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "common/time.h"
#include "sim/simulator.h"

namespace omni {

template <typename T>
class SimQueue {
 public:
  explicit SimQueue(sim::Simulator& sim) : sim_(&sim) {}
  SimQueue(const SimQueue&) = delete;
  SimQueue& operator=(const SimQueue&) = delete;

  void push(T item) {
    items_.push_back(std::move(item));
    wake();
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Register the consumer's wakeup. After every push, the consumer runs in
  /// its own event (coalesced: one wakeup per batch of same-instant pushes).
  void set_consumer(std::function<void()> fn) {
    consumer_ = std::move(fn);
    if (!items_.empty()) wake();
  }

  void clear_consumer() { consumer_ = nullptr; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  void wake() {
    if (!consumer_ || wake_pending_) return;
    wake_pending_ = true;
    sim_->after(Duration::zero(), [this] {
      wake_pending_ = false;
      if (consumer_) consumer_();
    });
  }

  sim::Simulator* sim_;
  std::deque<T> items_;
  std::function<void()> consumer_;
  bool wake_pending_ = false;
};

}  // namespace omni
