#include "omni/peer_table.h"

#include <algorithm>

#include "common/hash.h"

namespace omni {

namespace {

constexpr std::size_t kMinBuckets = 16;

// Ceiling on the learned inter-arrival hint: twice the adaptive policy's
// default interval ceiling. Without it, one sighting after a long absence
// (peer out of range, radio blackout) would teach an enormous "interval" and
// make the entry near-immortal in expire().
constexpr Duration kMaxIntervalHint = Duration::seconds(16);

// Fold one observed sighting gap into the entry's inter-arrival hint. Jumps
// up immediately (a peer that backed off should get the longer horizon right
// away) and smooths down (one fast duplicate — e.g. a probe response between
// beacons — shouldn't collapse the horizon).
void update_interval_hint(PeerEntry& entry, TimePoint now) {
  const Duration gap = now - entry.last_seen;
  if (gap <= Duration::zero()) return;
  Duration hint = entry.interval_hint;
  if (hint.is_zero() || gap >= hint) {
    hint = gap;
  } else {
    hint = (hint + gap) / 2;
  }
  entry.interval_hint = std::min(hint, kMaxIntervalHint);
}

void record(PeerEntry& entry, Technology tech, LowLevelAddress low,
            TimePoint now, bool requires_refresh) {
  auto it = entry.techs.find(tech);
  if (it == entry.techs.end()) {
    entry.techs.emplace(tech,
                        PeerTechInfo{std::move(low), now, requires_refresh});
    return;
  }
  it->second.address = std::move(low);
  it->second.last_seen = now;
  // Freshness only upgrades.
  if (!requires_refresh) it->second.requires_refresh = false;
}

}  // namespace

std::size_t PeerTable::home(std::uint64_t key) const {
  return splitmix64(key) & (buckets_.size() - 1);
}

const PeerEntry* PeerTable::lookup(std::uint64_t key) const {
  // key 0 is the empty-bucket sentinel (the invalid omni address).
  if (key == 0 || buckets_.empty()) return nullptr;
  const std::size_t mask = buckets_.size() - 1;
  for (std::size_t i = home(key);; i = (i + 1) & mask) {
    const Bucket& b = buckets_[i];
    if (b.key == key) return &entries_[b.idx];
    if (b.key == 0) return nullptr;
  }
}

void PeerTable::grow() {
  const std::size_t cap =
      buckets_.empty() ? kMinBuckets : buckets_.size() * 2;
  buckets_.assign(cap, Bucket{});
  const std::size_t mask = cap - 1;
  for (std::uint32_t idx = 0; idx < entries_.size(); ++idx) {
    std::size_t i = home(entries_[idx].address.value);
    while (buckets_[i].key != 0) i = (i + 1) & mask;
    buckets_[i] = Bucket{entries_[idx].address.value, idx};
  }
}

PeerEntry& PeerTable::get_or_insert(OmniAddress peer) {
  // Grow at 3/4 load so probe runs stay short. Growing up front keeps the
  // insert below free of a mid-probe rehash.
  if ((entries_.size() + 1) * 4 > buckets_.size() * 3) grow();
  const std::size_t mask = buckets_.size() - 1;
  std::size_t i = home(peer.value);
  while (buckets_[i].key != 0) {
    if (buckets_[i].key == peer.value) return entries_[buckets_[i].idx];
    i = (i + 1) & mask;
  }
  buckets_[i] = Bucket{peer.value, static_cast<std::uint32_t>(entries_.size())};
  ++inserts_;
  PeerEntry& entry = entries_.emplace_back();
  entry.address = peer;
  return entry;
}

void PeerTable::erase_entry(std::uint32_t idx) {
  ++generation_;  // dense indices shift below; outstanding pins go stale
  const std::size_t mask = buckets_.size() - 1;
  // Find the victim's bucket.
  std::size_t i = home(entries_[idx].address.value);
  while (buckets_[i].key != entries_[idx].address.value) i = (i + 1) & mask;
  // Backshift deletion: pull forward any probe-chain successor whose home
  // slot lies outside the cyclic gap, so linear probing never needs
  // tombstones.
  std::size_t gap = i;
  for (std::size_t j = (gap + 1) & mask; buckets_[j].key != 0;
       j = (j + 1) & mask) {
    const std::size_t h = home(buckets_[j].key);
    const bool in_gap_chain =
        gap <= j ? (h > gap && h <= j) : (h > gap || h <= j);
    if (in_gap_chain) continue;  // j still reachable from its home via gap+1..
    buckets_[gap] = buckets_[j];
    gap = j;
  }
  buckets_[gap] = Bucket{};
  // Dense swap-pop; re-point the moved entry's bucket at its new index.
  const std::uint32_t last = static_cast<std::uint32_t>(entries_.size() - 1);
  if (idx != last) {
    entries_[idx] = std::move(entries_[last]);
    std::size_t m = home(entries_[idx].address.value);
    while (buckets_[m].key != entries_[idx].address.value) m = (m + 1) & mask;
    buckets_[m].idx = idx;
  }
  entries_.pop_back();
}

void PeerTable::observe(OmniAddress peer, Technology tech, LowLevelAddress low,
                        TimePoint now, bool requires_refresh) {
  if (!peer.is_valid() || is_unset(low)) return;
  const std::uint64_t before = inserts_;
  PeerEntry& entry = get_or_insert(peer);
  if (inserts_ == before) update_interval_hint(entry, now);
  entry.last_seen = now;
  record(entry, tech, std::move(low), now, requires_refresh);
}

void PeerTable::observe_all(OmniAddress peer,
                            std::span<const Sighting> sightings,
                            TimePoint now) {
  if (!peer.is_valid()) return;
  PeerEntry* entry = nullptr;
  for (const Sighting& s : sightings) {
    if (is_unset(s.low)) continue;
    if (entry == nullptr) {
      const std::uint64_t before = inserts_;
      entry = &get_or_insert(peer);
      if (inserts_ == before) update_interval_hint(*entry, now);
      entry->last_seen = now;
    }
    record(*entry, s.tech, s.low, now, s.requires_refresh);
  }
}

std::uint32_t PeerTable::index_of(OmniAddress peer) const {
  if (!peer.is_valid()) return kNoIndex;
  const PeerEntry* e = lookup(peer.value);
  if (e == nullptr) return kNoIndex;
  return static_cast<std::uint32_t>(e - entries_.data());
}

bool PeerTable::refresh_pinned(std::uint32_t idx, std::uint32_t gen,
                               OmniAddress peer,
                               std::span<const Sighting> sightings,
                               TimePoint now) {
  if (gen != generation_ || idx >= entries_.size()) return false;
  PeerEntry& entry = entries_[idx];
  if (entry.address != peer) return false;
  // Apply as we go; record() writes the same values, so if a missing
  // mapping forces the observe_all fallback the partial writes are simply
  // overwritten with themselves.
  bool any = false;
  for (const Sighting& s : sightings) {
    if (is_unset(s.low)) continue;
    auto it = entry.techs.find(s.tech);
    if (it == entry.techs.end()) return false;  // re-insert needs full path
    it->second.address = s.low;
    it->second.last_seen = now;
    if (!s.requires_refresh) it->second.requires_refresh = false;
    any = true;
  }
  if (any) {
    update_interval_hint(entry, now);
    entry.last_seen = now;
  }
  return true;
}

void PeerTable::mark_fresh(OmniAddress peer, Technology tech) {
  PeerEntry* entry = lookup(peer.value);
  if (entry == nullptr) return;
  auto tit = entry->techs.find(tech);
  if (tit != entry->techs.end()) tit->second.requires_refresh = false;
}

const PeerEntry* PeerTable::find(OmniAddress peer) const {
  if (!peer.is_valid()) return nullptr;
  return lookup(peer.value);
}

std::optional<OmniAddress> PeerTable::find_by_low_level(
    Technology tech, const LowLevelAddress& low) const {
  // Lowest matching address wins, mirroring the ordered-map era when the
  // first hit in ascending key order was returned.
  std::optional<OmniAddress> best;
  for (const PeerEntry& entry : entries_) {
    auto it = entry.techs.find(tech);
    if (it != entry.techs.end() && it->second.address == low &&
        (!best || entry.address < *best)) {
      best = entry.address;
    }
  }
  return best;
}

std::vector<OmniAddress> PeerTable::peers() const {
  std::vector<OmniAddress> out;
  out.reserve(entries_.size());
  for (const PeerEntry& entry : entries_) out.push_back(entry.address);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<OmniAddress> PeerTable::peers_on(Technology tech, TimePoint now,
                                             Duration ttl) const {
  std::vector<OmniAddress> out;
  for (const PeerEntry& entry : entries_) {
    auto it = entry.techs.find(tech);
    if (it != entry.techs.end() && now - it->second.last_seen <= ttl) {
      out.push_back(entry.address);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PeerTable::reachable_on_lower_energy(OmniAddress peer, Technology tech,
                                          TimePoint now, Duration ttl) const {
  const PeerEntry* entry = find(peer);
  if (entry == nullptr) return false;
  for (const auto& [t, info] : entry->techs) {
    if (static_cast<int>(t) < static_cast<int>(tech) &&
        now - info.last_seen <= ttl) {
      return true;
    }
  }
  return false;
}

std::size_t PeerTable::expire(TimePoint now, Duration ttl,
                              double hint_ttl_scale) {
  std::size_t removed = 0;
  for (std::uint32_t i = 0; i < entries_.size();) {
    // When asked, scale the horizon by the observed beacon interval: a peer
    // heard every 8 s must not be dropped by a ttl tuned for 500 ms
    // beaconers. The manager passes ttl/floor (the fixed baseline's count of
    // missed-beacon tries) only under the adaptive discovery policy, so a
    // backed-off peer gets the same loss budget as a floor-rate one and
    // fixed-cadence deployments keep the exact plain-ttl sweep.
    const Duration eff =
        hint_ttl_scale > 0.0
            ? std::max(ttl, entries_[i].interval_hint * hint_ttl_scale)
            : ttl;
    TechMap& techs = entries_[i].techs;
    for (auto tit = techs.begin(); tit != techs.end();) {
      if (now - tit->second.last_seen > eff) {
        tit = techs.erase(tit);
      } else {
        ++tit;
      }
    }
    if (techs.empty()) {
      erase_entry(i);  // swap-pop: re-examine the entry now at i
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

}  // namespace omni
