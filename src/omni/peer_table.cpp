#include "omni/peer_table.h"

#include <algorithm>

namespace omni {

namespace {

void record(PeerEntry& entry, Technology tech, LowLevelAddress low,
            TimePoint now, bool requires_refresh) {
  auto it = entry.techs.find(tech);
  if (it == entry.techs.end()) {
    entry.techs.emplace(tech,
                        PeerTechInfo{std::move(low), now, requires_refresh});
    return;
  }
  it->second.address = std::move(low);
  it->second.last_seen = now;
  // Freshness only upgrades.
  if (!requires_refresh) it->second.requires_refresh = false;
}

}  // namespace

void PeerTable::observe(OmniAddress peer, Technology tech, LowLevelAddress low,
                        TimePoint now, bool requires_refresh) {
  if (!peer.is_valid() || is_unset(low)) return;
  PeerEntry& entry = peers_[peer];
  entry.address = peer;
  entry.last_seen = now;
  record(entry, tech, std::move(low), now, requires_refresh);
}

void PeerTable::observe_all(OmniAddress peer,
                            std::span<const Sighting> sightings,
                            TimePoint now) {
  if (!peer.is_valid()) return;
  PeerEntry* entry = nullptr;
  for (const Sighting& s : sightings) {
    if (is_unset(s.low)) continue;
    if (entry == nullptr) {
      entry = &peers_[peer];
      entry->address = peer;
      entry->last_seen = now;
    }
    record(*entry, s.tech, s.low, now, s.requires_refresh);
  }
}

void PeerTable::mark_fresh(OmniAddress peer, Technology tech) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  auto tit = it->second.techs.find(tech);
  if (tit != it->second.techs.end()) tit->second.requires_refresh = false;
}

const PeerEntry* PeerTable::find(OmniAddress peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : &it->second;
}

std::optional<OmniAddress> PeerTable::find_by_low_level(
    Technology tech, const LowLevelAddress& low) const {
  // Lowest matching address wins, mirroring the ordered-map era when the
  // first hit in ascending key order was returned.
  std::optional<OmniAddress> best;
  for (const auto& [addr, entry] : peers_) {
    auto it = entry.techs.find(tech);
    if (it != entry.techs.end() && it->second.address == low &&
        (!best || addr < *best)) {
      best = addr;
    }
  }
  return best;
}

std::vector<OmniAddress> PeerTable::peers() const {
  std::vector<OmniAddress> out;
  out.reserve(peers_.size());
  for (const auto& [addr, entry] : peers_) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<OmniAddress> PeerTable::peers_on(Technology tech, TimePoint now,
                                             Duration ttl) const {
  std::vector<OmniAddress> out;
  for (const auto& [addr, entry] : peers_) {
    auto it = entry.techs.find(tech);
    if (it != entry.techs.end() && now - it->second.last_seen <= ttl) {
      out.push_back(addr);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PeerTable::reachable_on_lower_energy(OmniAddress peer, Technology tech,
                                          TimePoint now, Duration ttl) const {
  const PeerEntry* entry = find(peer);
  if (entry == nullptr) return false;
  for (const auto& [t, info] : entry->techs) {
    if (static_cast<int>(t) < static_cast<int>(tech) &&
        now - info.last_seen <= ttl) {
      return true;
    }
  }
  return false;
}

std::size_t PeerTable::expire(TimePoint now, Duration ttl) {
  std::size_t removed = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    auto& techs = it->second.techs;
    for (auto tit = techs.begin(); tit != techs.end();) {
      if (now - tit->second.last_seen > ttl) {
        tit = techs.erase(tit);
      } else {
        ++tit;
      }
    }
    if (techs.empty()) {
      it = peers_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace omni
