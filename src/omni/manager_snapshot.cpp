#include "omni/manager_snapshot.h"

#include <algorithm>
#include <string_view>

#include "omni/manager.h"

namespace omni {

void capture_managers(const std::vector<const OmniManager*>& managers,
                      bool deep, sim::Snapshot& snap) {
  std::vector<const OmniManager*> sorted;
  sorted.reserve(managers.size());
  for (const OmniManager* m : managers) {
    if (m != nullptr) sorted.push_back(m);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const OmniManager* a, const OmniManager* b) {
              return a->address().value < b->address().value;
            });

  sim::ByteWriter w;
  w.var(sorted.size());
  w.u8(deep ? 1 : 0);
  sim::ByteWriter rec;
  for (const OmniManager* m : sorted) {
    m->snapshot_state(rec, deep);
    std::vector<std::uint8_t> bytes = rec.take();
    w.str(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()));
  }
  snap.section(sim::kSecManagers).bytes = w.take();
}

std::vector<std::pair<std::uint64_t, std::size_t>> list_manager_records(
    const sim::SnapshotSection& sec) {
  std::vector<std::pair<std::uint64_t, std::size_t>> out;
  sim::ByteReader r(sec.bytes);
  const std::uint64_t count = r.var();
  r.u8();  // deep flag
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    const std::string record = r.str();
    sim::ByteReader rr(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(record.data()), record.size()));
    out.emplace_back(rr.u64(), record.size());
    if (!rr.ok()) break;
  }
  if (!r.ok()) out.clear();
  return out;
}

}  // namespace omni
