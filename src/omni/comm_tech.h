// The Communication Technology API (paper §3.2).
//
// A D2D technology plugin integrates with Omni through three queues:
//
//   * its own send_queue   — requests from the Omni Manager (context add /
//                            update / remove, data sends);
//   * the shared receive_queue — every omni_packed_struct any technology
//                            receives, tagged with the technology type and
//                            the low-level source address;
//   * the shared response_queue — per-request success/failure (carrying the
//                            forwarded status callback and the original
//                            request, so the manager can fail over to
//                            another technology) and technology status
//                            changes.
//
// A plugin implements enable() / disable() plus the static capability and
// estimation queries the manager's technology selector uses. One extension
// to the paper's minimal contract: set_engaged() lets the manager drive the
// multi-technology engagement algorithm of §3.3 (a disengaged context
// technology only probe-listens at a low duty cycle).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>

#include "common/time.h"
#include "common/types.h"
#include "omni/queues.h"
#include "omni/status.h"

namespace omni {

/// Technology-specific addressing: which concrete interface a peer is
/// reachable on.
using LowLevelAddress =
    std::variant<std::monostate, BleAddress, MeshAddress, NanAddress>;

std::string to_string(const LowLevelAddress& addr);
inline bool is_unset(const LowLevelAddress& addr) {
  return std::holds_alternative<std::monostate>(addr);
}

enum class SendOp : std::uint8_t {
  kAddContext,
  kUpdateContext,
  kRemoveContext,
  kSendData,
};

std::string to_string(SendOp op);

/// A request placed on one technology's send_queue by the Omni Manager.
struct SendRequest {
  std::uint64_t request_id = 0;
  SendOp op = SendOp::kSendData;

  // Context operations.
  ContextId context_id = kInvalidContext;
  Duration interval;  ///< transmission frequency for add/update

  /// Encoded omni_packed_struct (empty for remove_context).
  Bytes packed;

  // Data operations.
  LowLevelAddress dest;
  OmniAddress dest_omni;
  /// The peer mapping came from application-level multicast, so the
  /// technology must re-validate the network (discovery ritual) first.
  bool needs_refresh = false;
  /// The service was never heard on a low-energy ND-integrated technology
  /// either, so re-validation must also wait out the peer's next periodic
  /// advertisement (the full ~3.2 s path of paper §4.2).
  bool refresh_advert_wait = false;

  /// Forwarded to the response, as the paper specifies.
  StatusCallback callback;
};

/// A message on the shared response_queue.
struct TechResponse {
  enum class Kind : std::uint8_t {
    kRequestResult,
    kTechStatus,
    /// Paper §3.2: "a response is also generated when the status of the D2D
    /// technology itself changes, for example, when the radio is turned off
    /// or the address changes."
    kAddressChange,
  };

  Kind kind = Kind::kRequestResult;
  Technology tech = Technology::kBle;

  // --- kRequestResult fields.
  std::uint64_t request_id = 0;
  SendOp op = SendOp::kSendData;
  bool success = false;
  std::string failure_reason;
  ContextId context_id = kInvalidContext;
  OmniAddress dest_omni;
  StatusCallback callback;
  /// On failure the technology echoes back the whole request (parameters and
  /// payload) so the manager can re-issue it on an alternative technology —
  /// paper §3.2, "The Response Queue".
  std::shared_ptr<SendRequest> original;

  // --- kTechStatus fields.
  bool up = false;

  // --- kAddressChange fields.
  LowLevelAddress new_address;

  static TechResponse result(Technology tech, const SendRequest& req,
                             bool success, std::string failure = {});
  static TechResponse status_change(Technology tech, bool up);
  static TechResponse address_change(Technology tech,
                                     LowLevelAddress new_address);
};

/// A received transmission placed on the shared receive_queue.
struct ReceivedPacket {
  Technology tech = Technology::kBle;
  LowLevelAddress from;
  Bytes packed;  ///< encoded omni_packed_struct
};

/// Zero-copy receive fast path. When a technology's delivery callback
/// already executes in the receiving manager's owner context — the common
/// case for node-local radios, whose queue wakeup would drain inline at the
/// same instant anyway — it may hand the unframed link payload straight to
/// the sink, skipping the copy into a queue slot. receive_inline returns
/// false when the synchronous path is unavailable (wrong execution context,
/// re-entrancy, an undrained backlog whose FIFO order must be preserved);
/// the caller must then fall back to queues.receive->produce(). Taking the
/// fast path never changes processing *order*: it is used exactly when the
/// produce() path would have invoked the consumer synchronously.
class InlinePacketSink {
 public:
  virtual ~InlinePacketSink() = default;
  virtual bool receive_inline(Technology tech, const LowLevelAddress& from,
                              std::span<const std::uint8_t> packed) = 0;
};

struct TechQueues {
  SimQueue<SendRequest>* send = nullptr;          ///< this technology's own
  SimQueue<ReceivedPacket>* receive = nullptr;    ///< shared
  SimQueue<TechResponse>* response = nullptr;     ///< shared
  /// Optional zero-copy receive sink (null for shared-medium technologies,
  /// whose receptions must stay barrier-serialized through the queue).
  InlinePacketSink* sink = nullptr;
};

struct EnableResult {
  Technology type;
  LowLevelAddress address;
};

class CommTechnology {
 public:
  virtual ~CommTechnology() = default;

  /// Bind the queues and activate the technology. Returns its type and the
  /// low-level address at which this device is reachable.
  virtual EnableResult enable(const TechQueues& queues) = 0;

  /// Gracefully shut down: process remaining send-queue requests, push the
  /// requisite responses, then stop.
  virtual void disable() = 0;

  virtual Technology type() const = 0;
  virtual bool enabled() const = 0;

  // --- Capabilities (used by the manager's selector).
  virtual bool supports_context() const = 0;
  virtual bool supports_data() const = 0;
  /// Largest encoded packed struct a periodic context transmission can carry.
  virtual std::size_t max_context_payload() const = 0;
  /// Largest encoded packed struct a data send can carry (0 = unbounded).
  virtual std::size_t max_data_payload() const = 0;
  /// Expected time to deliver `bytes` of data to a known peer.
  virtual Duration estimate_data_time(std::size_t bytes,
                                      bool needs_refresh) const = 0;

  /// Engagement control (paper §3.3): an engaged context technology listens
  /// continuously and carries beacons; a disengaged one probe-listens
  /// periodically. Data-only technologies may ignore this.
  virtual void set_engaged(bool engaged) = 0;
  virtual bool engaged() const = 0;

  /// True when the plugin transmits through shared infrastructure (e.g. a
  /// WiFi mesh) whose state spans many nodes. Under the parallel engine the
  /// manager keeps such a plugin's send queue on the barrier-serialized
  /// global owner; node-local media (BLE, NAN) run on the hosting node's
  /// shard.
  virtual bool uses_shared_medium() const { return false; }

  /// Discovery-policy hook (Karowski-Miller optimized passive scanning): cap
  /// the passive listen duty cycle at `duty` while the manager judges the
  /// neighborhood saturated and stable. 0 (or out-of-range) clears the
  /// override and restores the plugin's own duty (full listen when engaged,
  /// its probe duty otherwise). Only periodic-discovery traffic is subject
  /// to the capture trial this duty scales; reliable data bursts are not.
  /// Plugins without a duty-cycled scanner may ignore it.
  virtual void set_discovery_scan_duty(double /*duty*/) {}
};

}  // namespace omni
