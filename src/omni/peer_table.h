// The Omni Manager's peer mapping (paper §3.3).
//
// Maps each neighbor's omni_address to the technologies it is reachable on,
// with the concrete low-level address per technology, when it was last heard
// there, and the mapping's provenance: mappings learned through integrated
// low-level neighbor discovery (BLE address beacons) or proven by a direct
// exchange are "fresh"; mappings learned only through application-level
// multicast require re-validation before data transfer.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "omni/comm_tech.h"

namespace omni {

struct PeerTechInfo {
  LowLevelAddress address;
  TimePoint last_seen;
  bool requires_refresh = false;
};

struct PeerEntry {
  OmniAddress address;
  std::map<Technology, PeerTechInfo> techs;
  TimePoint last_seen;

  bool reachable_on(Technology tech) const {
    return techs.find(tech) != techs.end();
  }
};

class PeerTable {
 public:
  /// Record that `peer` was heard on `tech` at `low`. Freshness only ever
  /// upgrades (a multicast sighting does not mark a ND-derived mapping
  /// stale again, matching the paper: every message refreshes the mapping).
  void observe(OmniAddress peer, Technology tech, LowLevelAddress low,
               TimePoint now, bool requires_refresh);

  /// Mark a mapping validated (e.g., after a successful data exchange).
  void mark_fresh(OmniAddress peer, Technology tech);

  const PeerEntry* find(OmniAddress peer) const;

  /// Reverse lookup: which peer owns this low-level address on `tech`?
  std::optional<OmniAddress> find_by_low_level(
      Technology tech, const LowLevelAddress& low) const;

  std::vector<OmniAddress> peers() const;
  /// Peers whose mapping on `tech` is younger than `ttl`.
  std::vector<OmniAddress> peers_on(Technology tech, TimePoint now,
                                    Duration ttl) const;

  /// True if `peer` was heard recently on any technology with a strictly
  /// lower energy rank than `tech` (drives disengagement, paper §3.3).
  bool reachable_on_lower_energy(OmniAddress peer, Technology tech,
                                 TimePoint now, Duration ttl) const;

  /// Drop per-technology mappings older than `ttl`, and peers with no
  /// mapping left. Returns the number of peers removed.
  std::size_t expire(TimePoint now, Duration ttl);

  std::size_t size() const { return peers_.size(); }
  bool empty() const { return peers_.empty(); }

 private:
  std::map<OmniAddress, PeerEntry> peers_;
};

}  // namespace omni
