// The Omni Manager's peer mapping (paper §3.3).
//
// Maps each neighbor's omni_address to the technologies it is reachable on,
// with the concrete low-level address per technology, when it was last heard
// there, and the mapping's provenance: mappings learned through integrated
// low-level neighbor discovery (BLE address beacons) or proven by a direct
// exchange are "fresh"; mappings learned only through application-level
// multicast require re-validation before data transfer.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "omni/comm_tech.h"

namespace omni {

struct PeerTechInfo {
  LowLevelAddress address;
  TimePoint last_seen;
  bool requires_refresh = false;
};

/// Fixed-capacity map from Technology to PeerTechInfo, API-compatible with
/// the std::map it replaces for the operations the code uses. The receive
/// hot path touches a peer's mapping on every packet; with only four
/// technologies, a presence-bitmask over an inline array beats a red-black
/// tree and keeps the whole mapping on two cache lines.
class TechMap {
 public:
  using value_type = std::pair<Technology, PeerTechInfo>;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const TechMap, TechMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;

    Ref operator*() const { return map_->slots_[i_]; }
    auto* operator->() const { return &map_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter&) const = default;

   private:
    friend class TechMap;
    Iter(Map* map, std::size_t i) : map_(map), i_(i) { skip(); }
    void skip() {
      while (i_ < kSlots && !(map_->mask_ & (1u << i_))) ++i_;
    }

    Map* map_;
    std::size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  TechMap() {
    for (std::size_t i = 0; i < kSlots; ++i) {
      slots_[i].first = static_cast<Technology>(i);
    }
  }

  // Iteration visits technologies in enum (energy-rank) order, matching the
  // ordered map this replaces — peers_on/expire/report output is unchanged.
  iterator begin() { return {this, 0}; }
  iterator end() { return {this, kSlots}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, kSlots}; }

  iterator find(Technology t) {
    return has(t) ? iterator{this, idx(t)} : end();
  }
  const_iterator find(Technology t) const {
    return has(t) ? const_iterator{this, idx(t)} : end();
  }

  PeerTechInfo& at(Technology t) {
    OMNI_ASSERTF(has(t), "TechMap::at on absent technology %u",
                 static_cast<unsigned>(t));
    return slots_[idx(t)].second;
  }
  const PeerTechInfo& at(Technology t) const {
    OMNI_ASSERTF(has(t), "TechMap::at on absent technology %u",
                 static_cast<unsigned>(t));
    return slots_[idx(t)].second;
  }

  /// Insert if absent (std::map semantics: no overwrite of an existing
  /// entry). Returns the entry and whether it was inserted.
  std::pair<iterator, bool> emplace(Technology t, PeerTechInfo info) {
    if (has(t)) return {iterator{this, idx(t)}, false};
    mask_ |= static_cast<std::uint8_t>(1u << idx(t));
    slots_[idx(t)].second = std::move(info);
    return {iterator{this, idx(t)}, true};
  }

  iterator erase(iterator it) {
    mask_ &= static_cast<std::uint8_t>(~(1u << it.i_));
    slots_[it.i_].second = PeerTechInfo{};
    return ++it;
  }

  bool empty() const { return mask_ == 0; }
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kSlots; ++i) n += (mask_ >> i) & 1u;
    return n;
  }

 private:
  static constexpr std::size_t kSlots = kAllTechnologies.size();
  static std::size_t idx(Technology t) { return static_cast<std::size_t>(t); }
  bool has(Technology t) const { return (mask_ >> idx(t)) & 1u; }

  std::array<value_type, kSlots> slots_{};
  std::uint8_t mask_ = 0;
};

struct PeerEntry {
  OmniAddress address;
  TechMap techs;
  TimePoint last_seen;
  /// Observed beacon inter-arrival (EWMA-ish: jumps up, smooths down; zero
  /// until the second sighting). Under adaptive discovery a sparse-region
  /// peer may advertise every several seconds; the expiry sweep scales its
  /// staleness horizon by this hint so long-interval peers aren't falsely
  /// expired.
  Duration interval_hint;

  bool reachable_on(Technology tech) const {
    return techs.find(tech) != techs.end();
  }
};

/// One technology mapping carried by a sighting (see PeerTable::observe_all).
struct Sighting {
  Technology tech;
  LowLevelAddress low;
  bool requires_refresh = false;
};

/// Flat open-addressing peer table.
///
/// Layout: a power-of-two bucket array of {key, dense index} pairs probed
/// linearly (the keys sit contiguously, so a probe sequence is a streamed
/// cache-line scan, not a pointer chase), over a dense entry array holding
/// the flat PeerEntry records (the four-slot TechMap is inline, so one entry
/// spans two cache lines). Compared to the unordered_map it replaces:
///
///   * observe/observe_all — every beacon reception lands here — touch one
///     bucket run plus one dense entry, with zero allocation in steady state
///     (growth is geometric and amortized);
///   * the scan-shaped queries (peers_on, find_by_low_level, expire, the
///     disengagement check) walk the dense array linearly instead of
///     chasing one heap node per peer.
///
/// Determinism: the dense array is in insertion order (deterministic under
/// the PR 2 engine contract) and every multi-peer accessor sorts or
/// min-selects by omni address, so observable output is independent of hash
/// layout. Deletion uses bucket backshift + dense swap-pop, both
/// order-insensitive for the sorted accessors.
///
/// Pointers returned by find() are invalidated by observe/expire — callers
/// must not hold them across mutations (same contract as ContextRegistry).
class PeerTable {
 public:
  /// Record that `peer` was heard on `tech` at `low`. Freshness only ever
  /// upgrades (a multicast sighting does not mark a ND-derived mapping
  /// stale again, matching the paper: every message refreshes the mapping).
  void observe(OmniAddress peer, Technology tech, LowLevelAddress low,
               TimePoint now, bool requires_refresh);

  /// Record several technology mappings from one sighting of `peer` (an
  /// address beacon names every technology the peer is reachable on) with a
  /// single table probe. Unset addresses are skipped.
  void observe_all(OmniAddress peer, std::span<const Sighting> sightings,
                   TimePoint now);

  /// Mark a mapping validated (e.g., after a successful data exchange).
  void mark_fresh(OmniAddress peer, Technology tech);

  const PeerEntry* find(OmniAddress peer) const;

  /// Reverse lookup: which peer owns this low-level address on `tech`?
  std::optional<OmniAddress> find_by_low_level(
      Technology tech, const LowLevelAddress& low) const;

  std::vector<OmniAddress> peers() const;
  /// Peers whose mapping on `tech` is younger than `ttl`.
  std::vector<OmniAddress> peers_on(Technology tech, TimePoint now,
                                    Duration ttl) const;

  /// True if `peer` was heard recently on any technology with a strictly
  /// lower energy rank than `tech` (drives disengagement, paper §3.3).
  bool reachable_on_lower_energy(OmniAddress peer, Technology tech,
                                 TimePoint now, Duration ttl) const;

  /// Drop per-technology mappings older than `ttl`, and peers with no
  /// mapping left. With `hint_ttl_scale` > 0, a peer whose observed beacon
  /// interval (interval_hint) is long gets a proportionally longer horizon —
  /// max(ttl, hint * scale) — so adaptive long-interval beaconers survive
  /// the sweep. The manager passes ttl/floor (= the fixed baseline's tally
  /// of missed-beacon tries, 20 at the defaults), preserving the paper's
  /// loss tolerance rather than its wall-clock horizon; 0 (the default)
  /// keeps the exact plain-ttl semantics. Returns the number of peers
  /// removed.
  std::size_t expire(TimePoint now, Duration ttl, double hint_ttl_scale = 0.0);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Monotonic count of peers ever inserted (never decremented by expiry).
  /// The discovery scheduler diffs this across maintenance ticks to detect
  /// genuinely-new neighbors without scanning the table.
  std::uint64_t inserts() const { return inserts_; }

  // --- Pinned refresh (the beacon memo's probe-free path).
  //
  // A repeat sighting of a known peer re-records mappings that are already
  // in the table; the only state that changes is timestamps, addresses and
  // freshness bits inside one dense entry. A caller that sees the same peer
  // over and over (the receive memo) can pin (dense index, generation) once
  // and refresh through the pin, skipping the bucket probe — the dominant
  // extra cache line — on every subsequent hit.

  /// Structure generation: bumped whenever dense indices shift (entry
  /// removal). Inserts append and bucket growth only rehashes the probe
  /// array, so neither invalidates outstanding pins.
  std::uint32_t generation() const { return generation_; }

  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
  /// Dense index of `peer`, or kNoIndex if absent.
  std::uint32_t index_of(OmniAddress peer) const;

  /// Start the pinned entry's cache lines (refresh_pinned's write targets)
  /// on their way so the load overlaps the caller's preceding work. Safe on
  /// any index value; purely a hint.
  void prefetch_pinned(std::uint32_t idx) const {
    if (idx < entries_.size()) {
      const char* p = reinterpret_cast<const char*>(&entries_[idx]);
      __builtin_prefetch(p);
      __builtin_prefetch(p + 64);
      __builtin_prefetch(p + 128);
    }
  }

  /// Probe-free equivalent of observe_all for a pinned entry. Returns false
  /// without completing when the pin is stale (generation moved, the slot
  /// was reused by another peer) or any sighting's mapping is absent (its
  /// re-insert needs the full path); the caller must then fall back to
  /// observe_all — the writes already applied are exactly what observe_all
  /// re-applies, so a mid-way bail-out leaves no divergent state.
  bool refresh_pinned(std::uint32_t idx, std::uint32_t gen, OmniAddress peer,
                      std::span<const Sighting> sightings, TimePoint now);

 private:
  /// One probe slot. key == 0 means empty: the zero omni address is
  /// reserved-invalid (observe rejects it), so no sentinel bit is needed.
  struct Bucket {
    std::uint64_t key = 0;
    std::uint32_t idx = 0;
  };

  std::size_t home(std::uint64_t key) const;
  const PeerEntry* lookup(std::uint64_t key) const;
  PeerEntry* lookup(std::uint64_t key) {
    return const_cast<PeerEntry*>(std::as_const(*this).lookup(key));
  }
  /// The entry for `peer`, inserted (with buckets grown as needed) if absent.
  PeerEntry& get_or_insert(OmniAddress peer);
  void grow();
  /// Remove entries_[idx]: backshift-delete its bucket, swap-pop the dense
  /// array, and re-point the moved entry's bucket.
  void erase_entry(std::uint32_t idx);

  std::vector<Bucket> buckets_;   // power-of-two capacity, linear probing
  std::vector<PeerEntry> entries_;  // dense, insertion-ordered
  std::uint32_t generation_ = 0;  // see generation()
  std::uint64_t inserts_ = 0;     // see inserts()
};

}  // namespace omni
