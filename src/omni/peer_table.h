// The Omni Manager's peer mapping (paper §3.3).
//
// Maps each neighbor's omni_address to the technologies it is reachable on,
// with the concrete low-level address per technology, when it was last heard
// there, and the mapping's provenance: mappings learned through integrated
// low-level neighbor discovery (BLE address beacons) or proven by a direct
// exchange are "fresh"; mappings learned only through application-level
// multicast require re-validation before data transfer.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "omni/comm_tech.h"

namespace omni {

struct PeerTechInfo {
  LowLevelAddress address;
  TimePoint last_seen;
  bool requires_refresh = false;
};

/// Fixed-capacity map from Technology to PeerTechInfo, API-compatible with
/// the std::map it replaces for the operations the code uses. The receive
/// hot path touches a peer's mapping on every packet; with only four
/// technologies, a presence-bitmask over an inline array beats a red-black
/// tree and keeps the whole mapping on two cache lines.
class TechMap {
 public:
  using value_type = std::pair<Technology, PeerTechInfo>;

  template <bool Const>
  class Iter {
   public:
    using Map = std::conditional_t<Const, const TechMap, TechMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;

    Ref operator*() const { return map_->slots_[i_]; }
    auto* operator->() const { return &map_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter&) const = default;

   private:
    friend class TechMap;
    Iter(Map* map, std::size_t i) : map_(map), i_(i) { skip(); }
    void skip() {
      while (i_ < kSlots && !(map_->mask_ & (1u << i_))) ++i_;
    }

    Map* map_;
    std::size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  TechMap() {
    for (std::size_t i = 0; i < kSlots; ++i) {
      slots_[i].first = static_cast<Technology>(i);
    }
  }

  // Iteration visits technologies in enum (energy-rank) order, matching the
  // ordered map this replaces — peers_on/expire/report output is unchanged.
  iterator begin() { return {this, 0}; }
  iterator end() { return {this, kSlots}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, kSlots}; }

  iterator find(Technology t) {
    return has(t) ? iterator{this, idx(t)} : end();
  }
  const_iterator find(Technology t) const {
    return has(t) ? const_iterator{this, idx(t)} : end();
  }

  PeerTechInfo& at(Technology t) {
    OMNI_CHECK_MSG(has(t), "TechMap::at on absent technology");
    return slots_[idx(t)].second;
  }
  const PeerTechInfo& at(Technology t) const {
    OMNI_CHECK_MSG(has(t), "TechMap::at on absent technology");
    return slots_[idx(t)].second;
  }

  /// Insert if absent (std::map semantics: no overwrite of an existing
  /// entry). Returns the entry and whether it was inserted.
  std::pair<iterator, bool> emplace(Technology t, PeerTechInfo info) {
    if (has(t)) return {iterator{this, idx(t)}, false};
    mask_ |= static_cast<std::uint8_t>(1u << idx(t));
    slots_[idx(t)].second = std::move(info);
    return {iterator{this, idx(t)}, true};
  }

  iterator erase(iterator it) {
    mask_ &= static_cast<std::uint8_t>(~(1u << it.i_));
    slots_[it.i_].second = PeerTechInfo{};
    return ++it;
  }

  bool empty() const { return mask_ == 0; }
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kSlots; ++i) n += (mask_ >> i) & 1u;
    return n;
  }

 private:
  static constexpr std::size_t kSlots = kAllTechnologies.size();
  static std::size_t idx(Technology t) { return static_cast<std::size_t>(t); }
  bool has(Technology t) const { return (mask_ >> idx(t)) & 1u; }

  std::array<value_type, kSlots> slots_{};
  std::uint8_t mask_ = 0;
};

struct PeerEntry {
  OmniAddress address;
  TechMap techs;
  TimePoint last_seen;

  bool reachable_on(Technology tech) const {
    return techs.find(tech) != techs.end();
  }
};

/// One technology mapping carried by a sighting (see PeerTable::observe_all).
struct Sighting {
  Technology tech;
  LowLevelAddress low;
  bool requires_refresh = false;
};

class PeerTable {
 public:
  /// Record that `peer` was heard on `tech` at `low`. Freshness only ever
  /// upgrades (a multicast sighting does not mark a ND-derived mapping
  /// stale again, matching the paper: every message refreshes the mapping).
  void observe(OmniAddress peer, Technology tech, LowLevelAddress low,
               TimePoint now, bool requires_refresh);

  /// Record several technology mappings from one sighting of `peer` (an
  /// address beacon names every technology the peer is reachable on) with a
  /// single table probe. Unset addresses are skipped.
  void observe_all(OmniAddress peer, std::span<const Sighting> sightings,
                   TimePoint now);

  /// Mark a mapping validated (e.g., after a successful data exchange).
  void mark_fresh(OmniAddress peer, Technology tech);

  const PeerEntry* find(OmniAddress peer) const;

  /// Reverse lookup: which peer owns this low-level address on `tech`?
  std::optional<OmniAddress> find_by_low_level(
      Technology tech, const LowLevelAddress& low) const;

  std::vector<OmniAddress> peers() const;
  /// Peers whose mapping on `tech` is younger than `ttl`.
  std::vector<OmniAddress> peers_on(Technology tech, TimePoint now,
                                    Duration ttl) const;

  /// True if `peer` was heard recently on any technology with a strictly
  /// lower energy rank than `tech` (drives disengagement, paper §3.3).
  bool reachable_on_lower_energy(OmniAddress peer, Technology tech,
                                 TimePoint now, Duration ttl) const;

  /// Drop per-technology mappings older than `ttl`, and peers with no
  /// mapping left. Returns the number of peers removed.
  std::size_t expire(TimePoint now, Duration ttl);

  std::size_t size() const { return peers_.size(); }
  bool empty() const { return peers_.empty(); }

 private:
  // Hashed for O(1) observe on the receive hot path. Every accessor that
  // exposes multiple peers sorts (or minimizes) by address, so observable
  // ordering matches the ordered map this replaces.
  std::unordered_map<OmniAddress, PeerEntry> peers_;
};

}  // namespace omni
