#include "omni/service.h"

#include <memory>

#include "common/byte_buffer.h"

namespace omni {

namespace {
constexpr std::uint8_t kServiceMagic = 0x53;  // 'S'
constexpr std::uint8_t kServiceVersion = 1;
}  // namespace

std::size_t ServiceDescriptor::encoded_size() const {
  std::size_t size = 2 + 2 + 1 + name.size();
  for (const auto& [key, value] : attributes) size += 2 + value.size();
  return size;
}

Bytes ServiceDescriptor::encode() const {
  OMNI_CHECK_MSG(name.size() <= 255, "service name too long");
  ByteWriter w(encoded_size());
  w.u8(kServiceMagic);
  w.u8(kServiceVersion);
  w.u16(service_type);
  w.u8(static_cast<std::uint8_t>(name.size()));
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
  for (const auto& [key, value] : attributes) {
    OMNI_CHECK_MSG(value.size() <= 255, "service attribute too long");
    w.u8(key);
    w.u8(static_cast<std::uint8_t>(value.size()));
    w.raw(value);
  }
  return std::move(w).take();
}

bool ServiceDescriptor::looks_like_service(
    std::span<const std::uint8_t> wire) {
  return wire.size() >= 2 && wire[0] == kServiceMagic &&
         wire[1] == kServiceVersion;
}

Result<ServiceDescriptor> ServiceDescriptor::decode(
    std::span<const std::uint8_t> wire) {
  if (!looks_like_service(wire)) {
    return Result<ServiceDescriptor>::error("not a service descriptor");
  }
  ByteReader r(wire.subspan(2));
  ServiceDescriptor d;
  auto type = r.u16();
  if (!type) return Result<ServiceDescriptor>::error("truncated type");
  d.service_type = type.value();
  auto name_len = r.u8();
  if (!name_len) return Result<ServiceDescriptor>::error("truncated name");
  auto name = r.raw(name_len.value());
  if (!name) return Result<ServiceDescriptor>::error("truncated name body");
  d.name.assign(name.value().begin(), name.value().end());
  while (!r.exhausted()) {
    auto key = r.u8();
    auto len = r.u8();
    if (!key || !len) {
      return Result<ServiceDescriptor>::error("truncated attribute header");
    }
    auto value = r.raw(len.value());
    if (!value) {
      return Result<ServiceDescriptor>::error("truncated attribute body");
    }
    d.attributes[key.value()] = std::move(value).value();
  }
  return d;
}

bool ServiceFilter::matches(const ServiceDescriptor& descriptor) const {
  if (service_type && descriptor.service_type != *service_type) return false;
  if (name_prefix &&
      descriptor.name.compare(0, name_prefix->size(), *name_prefix) != 0) {
    return false;
  }
  return true;
}

// --- ServicePublisher ---------------------------------------------------------

void ServicePublisher::publish(const ServiceDescriptor& descriptor,
                               Duration interval, StatusCallback callback) {
  ContextParams params;
  params.interval = interval;
  Bytes payload = descriptor.encode();
  if (context_ != kInvalidContext) {
    manager_.update_context(context_, params, std::move(payload),
                            std::move(callback));
    return;
  }
  if (pending_) {
    queued_ = {descriptor, interval};
    return;
  }
  pending_ = true;
  manager_.add_context(
      params, std::move(payload),
      [this, callback](StatusCode code, const ResponseInfo& info) {
        pending_ = false;
        if (code == StatusCode::kAddContextSuccess) {
          context_ = info.context_id;
          if (queued_) {
            auto [descriptor, interval] = std::move(*queued_);
            queued_.reset();
            publish(descriptor, interval, nullptr);
          }
        }
        if (callback) callback(code, info);
      });
}

void ServicePublisher::withdraw() {
  if (context_ == kInvalidContext) return;
  manager_.remove_context(context_, nullptr);
  context_ = kInvalidContext;
}

// --- ServiceBrowser -----------------------------------------------------------

ServiceBrowser::ServiceBrowser(OmniManager& manager, sim::Simulator& sim,
                               Duration ttl)
    : manager_(manager), sim_(sim), ttl_(ttl) {
  // The manager's callback list cannot be unregistered from, so guard the
  // capture with a liveness token owned by... this object's lifetime. A
  // destroyed browser leaves an inert callback behind.
  auto alive = std::make_shared<ServiceBrowser*>(this);
  alive_token_ = alive;
  manager_.request_context(
      [alive](const OmniAddress& source, const Bytes& payload) {
        if (*alive != nullptr) (*alive)->handle_context(source, payload);
      });
  sweep_event_ = sim_.after(ttl_ / 2, [this] { sweep(); });
}

ServiceBrowser::~ServiceBrowser() {
  if (auto token = alive_token_.lock()) *token = nullptr;
  sweep_event_.cancel();
}

void ServiceBrowser::handle_context(const OmniAddress& source,
                                    const Bytes& payload) {
  auto decoded = ServiceDescriptor::decode(payload);
  if (!decoded) return;  // some other application's context
  const ServiceDescriptor& d = decoded.value();
  auto key = std::make_pair(source, d.service_type);
  auto it = directory_.find(key);
  bool is_new = it == directory_.end();
  Entry entry{source, d, sim_.now()};
  directory_[key] = entry;
  if (is_new && filter_.matches(d) && on_found_) on_found_(entry);
}

void ServiceBrowser::sweep() {
  TimePoint now = sim_.now();
  for (auto it = directory_.begin(); it != directory_.end();) {
    if (now - it->second.last_seen > ttl_) {
      Entry lost = it->second;
      it = directory_.erase(it);
      if (filter_.matches(lost.descriptor) && on_lost_) on_lost_(lost);
    } else {
      ++it;
    }
  }
  sweep_event_ = sim_.after(ttl_ / 2, [this] { sweep(); });
}

std::vector<ServiceBrowser::Entry> ServiceBrowser::services() const {
  std::vector<Entry> out;
  for (const auto& [key, entry] : directory_) {
    if (filter_.matches(entry.descriptor)) out.push_back(entry);
  }
  return out;
}

std::vector<OmniAddress> ServiceBrowser::providers_of(
    std::uint16_t service_type) const {
  std::vector<OmniAddress> out;
  for (const auto& [key, entry] : directory_) {
    if (key.second == service_type) out.push_back(key.first);
  }
  return out;
}

}  // namespace omni
