#include "omni/nan_tech.h"

#include "net/link_frame.h"
#include "obs/omniscope.h"

namespace omni {

namespace {
/// Link framing overhead on NAN: the broadcast byte for contexts, the
/// unicast header is unnecessary (follow-ups are natively addressed).
constexpr std::size_t kNanFrameOverhead = 1;
}  // namespace

NanTech::NanTech(radio::NanRadio& radio, Options options)
    : radio_(radio), options_(options) {}

EnableResult NanTech::enable(const TechQueues& queues) {
  OMNI_CHECK_MSG(!enabled_, "NanTech already enabled");
  OMNI_CHECK(queues.send != nullptr && queues.receive != nullptr &&
             queues.response != nullptr);
  queues_ = queues;
  enabled_ = true;
  radio_.set_enabled(true);
  radio_.set_attendance(engaged_ ? 1 : options_.probe_attendance);
  radio_.set_receive_handler(
      [this](const NanAddress& from, const Bytes& frame) {
        on_receive(from, frame);
      });
  queues_.send->set_consumer([this] { drain_send_queue(); });
  return EnableResult{Technology::kWifiAware,
                      LowLevelAddress{radio_.address()}};
}

void NanTech::disable() {
  if (!enabled_) return;
  drain_send_queue();
  queues_.send->clear_consumer();
  for (auto& [id, pub] : context_publishes_) radio_.stop_publish(pub);
  context_publishes_.clear();
  radio_.set_receive_handler(nullptr);
  radio_.set_enabled(false);
  enabled_ = false;
}

std::size_t NanTech::max_context_payload() const {
  return radio_.calibration().nan_max_payload - kNanFrameOverhead;
}

std::size_t NanTech::max_data_payload() const {
  return radio_.calibration().nan_max_followup - kNanFrameOverhead;
}

Duration NanTech::estimate_data_time(std::size_t /*bytes*/,
                                     bool /*needs_refresh*/) const {
  // A follow-up goes out in the next discovery window: half a period on
  // average, plus the window itself.
  const auto& cal = radio_.calibration();
  return Duration::micros(cal.nan_dw_period.as_micros() / 2) +
         cal.nan_dw_duration;
}

void NanTech::set_engaged(bool engaged) {
  engaged_ = engaged;
  if (enabled_) {
    radio_.set_attendance(engaged_ ? 1 : options_.probe_attendance);
  }
}

void NanTech::drain_send_queue() {
  while (auto request = queues_.send->try_pop()) {
    process(std::move(*request));
  }
}

void NanTech::process(SendRequest request) {
  switch (request.op) {
    case SendOp::kAddContext: {
      if (context_publishes_.count(request.context_id) > 0) {
        respond(request, false, "context id already active on WiFi-Aware");
        return;
      }
      // NAN publishes ride the DW schedule, not a per-context timer: the
      // requested interval is honoured at DW granularity (a 500 ms interval
      // maps to every window).
      auto pub = radio_.publish(frame_broadcast(request.packed));
      if (!pub) {
        respond(request, false, pub.error_message());
        return;
      }
      context_publishes_[request.context_id] = pub.value();
      respond(request, true);
      return;
    }
    case SendOp::kUpdateContext: {
      auto it = context_publishes_.find(request.context_id);
      if (it == context_publishes_.end()) {
        respond(request, false, "no such context on WiFi-Aware");
        return;
      }
      Status s =
          radio_.update_publish(it->second, frame_broadcast(request.packed));
      respond(request, s.is_ok(), s.message());
      return;
    }
    case SendOp::kRemoveContext: {
      auto it = context_publishes_.find(request.context_id);
      if (it == context_publishes_.end()) {
        respond(request, false, "no such context on WiFi-Aware");
        return;
      }
      Status s = radio_.stop_publish(it->second);
      context_publishes_.erase(it);
      respond(request, s.is_ok(), s.message());
      return;
    }
    case SendOp::kSendData: {
      if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
          sc != nullptr && sc->recording()) {
        sc->count_on(radio_.node(), sc->core().tech_send[1]);
        sc->instant_on(radio_.node(), obs::Cat::kTechSend,
                       request.request_id, request.packed.size(), 1);
      }
      if (!std::holds_alternative<NanAddress>(request.dest)) {
        respond(request, false, "destination is not a NAN address");
        return;
      }
      NanAddress dest = std::get<NanAddress>(request.dest);
      auto req = std::make_shared<SendRequest>(std::move(request));
      Status s = radio_.send_followup(
          dest, frame_broadcast_data(req->packed), [this, req](Status st) {
            respond(*req, st.is_ok(), st.message());
          });
      if (!s.is_ok()) respond(*req, false, s.message());
      return;
    }
  }
}

void NanTech::on_receive(const NanAddress& from, const Bytes& frame) {
  if (!enabled_ || frame.empty()) return;
  if (frame[0] != kFrameBroadcast && frame[0] != kFrameBroadcastData) return;
  // Same zero-copy fast path as BLE: deliveries already run on the
  // receiving node's shard, so hand the payload view straight to the
  // manager when the queue would have drained inline anyway.
  std::span<const std::uint8_t> packed(frame.data() + 1, frame.size() - 1);
  if (queues_.sink != nullptr &&
      queues_.sink->receive_inline(Technology::kWifiAware,
                                   LowLevelAddress{from}, packed)) {
    return;
  }
  queues_.receive->produce([&](ReceivedPacket& pkt) {
    pkt.tech = Technology::kWifiAware;
    pkt.from = LowLevelAddress{from};
    pkt.packed.assign(frame.begin() + 1, frame.end());
  });
}

void NanTech::respond(const SendRequest& request, bool success,
                      std::string failure) {
  if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
      sc != nullptr && sc->recording()) {
    sc->instant_on(radio_.node(), obs::Cat::kTechResponse,
                   request.request_id, success ? 0 : 1, 1);
  }
  queues_.response->push(TechResponse::result(Technology::kWifiAware,
                                              request, success,
                                              std::move(failure)));
}

}  // namespace omni
