#include "omni/packed_struct.h"

namespace omni {

std::string to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kAddressBeacon:
      return "address_beacon";
    case PacketKind::kContext:
      return "context";
    case PacketKind::kData:
      return "data";
    case PacketKind::kRelayed:
      return "relayed";
  }
  return "packet_kind(?)";
}

PackedStruct PackedStruct::address_beacon(OmniAddress source,
                                          AddressBeaconInfo info) {
  PackedStruct p;
  p.kind = PacketKind::kAddressBeacon;
  p.source = source;
  p.beacon = info;
  return p;
}

PackedStruct PackedStruct::context(OmniAddress source, Bytes payload) {
  PackedStruct p;
  p.kind = PacketKind::kContext;
  p.source = source;
  p.payload = std::move(payload);
  return p;
}

PackedStruct PackedStruct::data(OmniAddress source, Bytes payload) {
  PackedStruct p;
  p.kind = PacketKind::kData;
  p.source = source;
  p.payload = std::move(payload);
  return p;
}

PackedStruct PackedStruct::relayed(OmniAddress original_source, Bytes inner,
                                   std::uint8_t hops) {
  PackedStruct p;
  p.kind = PacketKind::kRelayed;
  p.source = original_source;
  p.payload = std::move(inner);
  p.hops_remaining = hops;
  return p;
}

std::size_t PackedStruct::encoded_size() const {
  if (kind == PacketKind::kAddressBeacon) {
    return kPackedHeaderSize + kAddressBeaconPayloadSize;
  }
  if (kind == PacketKind::kRelayed) {
    return kPackedHeaderSize + 1 + payload.size();
  }
  return kPackedHeaderSize + payload.size();
}

Bytes PackedStruct::encode() const {
  ByteWriter w(encoded_size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(source.value);
  if (kind == PacketKind::kAddressBeacon) {
    w.u64(beacon.mesh.value);
    w.raw(std::span<const std::uint8_t>(beacon.ble.octets));
  } else if (kind == PacketKind::kRelayed) {
    w.u8(hops_remaining);
    w.raw(payload);
  } else {
    w.raw(payload);
  }
  return std::move(w).take();
}

Result<PackedStruct> PackedStruct::decode(
    std::span<const std::uint8_t> wire) {
  PackedStruct p;
  Status s = decode_into(wire, p);
  if (!s.is_ok()) return Result<PackedStruct>::error(s.message());
  return p;
}

Status PackedStruct::decode_into(std::span<const std::uint8_t> wire,
                                 PackedStruct& out) {
  ByteReader r(wire);
  auto kind_byte = r.u8();
  if (!kind_byte) return Status::error("empty packet");
  if (kind_byte.value() > static_cast<std::uint8_t>(PacketKind::kRelayed)) {
    return Status::error("unknown packet kind");
  }
  out.kind = static_cast<PacketKind>(kind_byte.value());
  out.beacon = AddressBeaconInfo{};
  out.hops_remaining = 0;
  out.payload.clear();
  auto source = r.u64();
  if (!source) return Status::error("truncated omni_address");
  out.source = OmniAddress{source.value()};
  if (!out.source.is_valid()) {
    return Status::error("invalid (zero) omni_address");
  }
  if (out.kind == PacketKind::kAddressBeacon) {
    auto mesh = r.u64();
    if (!mesh) return Status::error("truncated mesh address");
    out.beacon.mesh = MeshAddress{mesh.value()};
    if (!r.raw_into(out.beacon.ble.octets)) {
      return Status::error("truncated BLE address");
    }
    if (!r.exhausted()) {
      return Status::error("trailing bytes after beacon");
    }
    return Status::ok();
  }
  if (out.kind == PacketKind::kRelayed) {
    auto hops = r.u8();
    if (!hops) return Status::error("truncated hop budget");
    out.hops_remaining = hops.value();
  }
  std::span<const std::uint8_t> rest = wire.last(r.remaining());
  out.payload.assign(rest.begin(), rest.end());
  return Status::ok();
}

}  // namespace omni
