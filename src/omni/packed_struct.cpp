#include "omni/packed_struct.h"

namespace omni {

std::string to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kAddressBeacon:
      return "address_beacon";
    case PacketKind::kContext:
      return "context";
    case PacketKind::kData:
      return "data";
    case PacketKind::kRelayed:
      return "relayed";
  }
  return "packet_kind(?)";
}

PackedStruct PackedStruct::address_beacon(OmniAddress source,
                                          AddressBeaconInfo info) {
  PackedStruct p;
  p.kind = PacketKind::kAddressBeacon;
  p.source = source;
  p.beacon = info;
  return p;
}

PackedStruct PackedStruct::context(OmniAddress source, Bytes payload) {
  PackedStruct p;
  p.kind = PacketKind::kContext;
  p.source = source;
  p.payload = std::move(payload);
  return p;
}

PackedStruct PackedStruct::data(OmniAddress source, Bytes payload) {
  PackedStruct p;
  p.kind = PacketKind::kData;
  p.source = source;
  p.payload = std::move(payload);
  return p;
}

PackedStruct PackedStruct::relayed(OmniAddress original_source, Bytes inner,
                                   std::uint8_t hops) {
  PackedStruct p;
  p.kind = PacketKind::kRelayed;
  p.source = original_source;
  p.payload = std::move(inner);
  p.hops_remaining = hops;
  return p;
}

std::size_t PackedStruct::encoded_size() const {
  if (kind == PacketKind::kAddressBeacon) {
    return kPackedHeaderSize + kAddressBeaconPayloadSize;
  }
  if (kind == PacketKind::kRelayed) {
    return kPackedHeaderSize + 1 + payload.size();
  }
  return kPackedHeaderSize + payload.size();
}

Bytes PackedStruct::encode() const {
  ByteWriter w(encoded_size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(source.value);
  if (kind == PacketKind::kAddressBeacon) {
    w.u64(beacon.mesh.value);
    w.raw(std::span<const std::uint8_t>(beacon.ble.octets));
  } else if (kind == PacketKind::kRelayed) {
    w.u8(hops_remaining);
    w.raw(payload);
  } else {
    w.raw(payload);
  }
  return std::move(w).take();
}

Result<PackedStruct> PackedStruct::decode(
    std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  auto kind_byte = r.u8();
  if (!kind_byte) return Result<PackedStruct>::error("empty packet");
  if (kind_byte.value() > static_cast<std::uint8_t>(PacketKind::kRelayed)) {
    return Result<PackedStruct>::error("unknown packet kind");
  }
  PackedStruct p;
  p.kind = static_cast<PacketKind>(kind_byte.value());
  auto source = r.u64();
  if (!source) return Result<PackedStruct>::error("truncated omni_address");
  p.source = OmniAddress{source.value()};
  if (!p.source.is_valid()) {
    return Result<PackedStruct>::error("invalid (zero) omni_address");
  }
  if (p.kind == PacketKind::kAddressBeacon) {
    auto mesh = r.u64();
    if (!mesh) return Result<PackedStruct>::error("truncated mesh address");
    p.beacon.mesh = MeshAddress{mesh.value()};
    auto ble = r.raw(6);
    if (!ble) return Result<PackedStruct>::error("truncated BLE address");
    for (int i = 0; i < 6; ++i) p.beacon.ble.octets[i] = ble.value()[i];
    if (!r.exhausted()) {
      return Result<PackedStruct>::error("trailing bytes after beacon");
    }
    return p;
  }
  if (p.kind == PacketKind::kRelayed) {
    auto hops = r.u8();
    if (!hops) return Result<PackedStruct>::error("truncated hop budget");
    p.hops_remaining = hops.value();
  }
  auto rest = r.raw(r.remaining());
  p.payload = std::move(rest).value();
  return p;
}

}  // namespace omni
