// Typed service discovery on top of Omni context.
//
// The paper takes a broad view of "service discovery" — wireless printers,
// social profiles, smart-city beacons (§1) — and leaves the context payload
// format to applications. This layer provides the obvious shared
// convention: a compact, TLV-encoded ServiceDescriptor that fits a legacy
// BLE advertisement, a publisher that manages the context transmission, and
// a browser that maintains a live directory of discovered services with
// filtering and found/lost callbacks.
//
// Wire format (designed to fit the 21-byte BLE context budget):
//   [0x53 'S'][u8 version=1][u16 service_type][u8 name_len][name...]
//   ([u8 attr_key][u8 attr_len][attr...])*
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "omni/manager.h"

namespace omni {

/// Well-known service types used by the examples (applications may define
/// their own 16-bit space).
namespace service_types {
inline constexpr std::uint16_t kPrinter = 0x0001;
inline constexpr std::uint16_t kMediaStream = 0x0002;
inline constexpr std::uint16_t kVisualization = 0x0003;
inline constexpr std::uint16_t kProfileExchange = 0x0004;
inline constexpr std::uint16_t kSensor = 0x0005;
}  // namespace service_types

struct ServiceDescriptor {
  std::uint16_t service_type = 0;
  std::string name;                              ///< short, human-readable
  std::map<std::uint8_t, Bytes> attributes;      ///< small TLV attributes

  Bytes encode() const;
  static Result<ServiceDescriptor> decode(std::span<const std::uint8_t> wire);
  /// True if `wire` carries the service-descriptor magic.
  static bool looks_like_service(std::span<const std::uint8_t> wire);

  std::size_t encoded_size() const;
  bool operator==(const ServiceDescriptor&) const = default;
};

/// Predicate over descriptors: all set fields must match.
struct ServiceFilter {
  std::optional<std::uint16_t> service_type;
  std::optional<std::string> name_prefix;

  bool matches(const ServiceDescriptor& descriptor) const;
};

/// Publishes one service descriptor as periodic Omni context.
class ServicePublisher {
 public:
  explicit ServicePublisher(OmniManager& manager) : manager_(manager) {}
  ~ServicePublisher() { withdraw(); }
  ServicePublisher(const ServicePublisher&) = delete;
  ServicePublisher& operator=(const ServicePublisher&) = delete;

  /// Begin (or replace) the advertisement.
  void publish(const ServiceDescriptor& descriptor,
               Duration interval = Duration::millis(500),
               StatusCallback callback = nullptr);
  void withdraw();
  bool published() const { return context_ != kInvalidContext; }

 private:
  OmniManager& manager_;
  ContextId context_ = kInvalidContext;
  bool pending_ = false;
  std::optional<std::pair<ServiceDescriptor, Duration>> queued_;
};

/// Maintains a live directory of services heard in context packs.
class ServiceBrowser {
 public:
  struct Entry {
    OmniAddress provider;
    ServiceDescriptor descriptor;
    TimePoint last_seen;
  };
  using FoundFn = std::function<void(const Entry&)>;
  using LostFn = std::function<void(const Entry&)>;

  /// `ttl`: a service unseen for this long is reported lost and dropped.
  ServiceBrowser(OmniManager& manager, sim::Simulator& sim,
                 Duration ttl = Duration::seconds(10));
  ~ServiceBrowser();
  ServiceBrowser(const ServiceBrowser&) = delete;
  ServiceBrowser& operator=(const ServiceBrowser&) = delete;

  void set_filter(ServiceFilter filter) { filter_ = std::move(filter); }
  void on_found(FoundFn fn) { on_found_ = std::move(fn); }
  void on_lost(LostFn fn) { on_lost_ = std::move(fn); }

  /// Current directory (filtered).
  std::vector<Entry> services() const;
  /// Providers of a given service type.
  std::vector<OmniAddress> providers_of(std::uint16_t service_type) const;

 private:
  void handle_context(const OmniAddress& source, const Bytes& payload);
  void sweep();

  OmniManager& manager_;
  sim::Simulator& sim_;
  Duration ttl_;
  ServiceFilter filter_;
  FoundFn on_found_;
  LostFn on_lost_;
  // Keyed by (provider, service_type): a provider may offer several.
  std::map<std::pair<OmniAddress, std::uint16_t>, Entry> directory_;
  sim::EventHandle sweep_event_;
  /// Liveness token shared with the manager-registered callback; nulled on
  /// destruction so the (unremovable) callback goes inert.
  std::weak_ptr<ServiceBrowser*> alive_token_;
};

}  // namespace omni
