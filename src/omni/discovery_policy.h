// Discovery scheduling policy (ROADMAP item 4, Karowski & Miller).
//
// The paper's baseline discovery loop beacons every 500 ms and listens with a
// fixed probe duty regardless of how crowded the neighborhood is. At city
// scale the dense tiles then spend most of their event budget rediscovering
// peers they already know. DiscoveryPolicy describes the alternative: a
// per-node density-aware controller that backs the beacon interval off
// between a floor (the paper-faithful 500 ms default) and a ceiling when the
// neighborhood is saturated and stable, and shortens passive scan windows in
// the same regime (Karowski-Miller optimized passive listening: when N
// stable neighbors all beacon at you, a 1/N listen duty still hears the
// aggregate at the same expected rate).
//
// Determinism contract: every input to the controller is a deterministic
// local signal (PeerTable occupancy, new-peer inserts since the last
// maintenance tick, region occupancy via sim::World), and the only random
// element is owner-hashed counter-indexed jitter — so runs stay bit-identical
// at any --threads. `kFixed` must reproduce the pre-policy behavior exactly
// (no extra RNG draws, no extra events); everything adaptive is gated on
// `mode == kAdaptive`.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.h"

namespace omni {

/// Knobs for the per-node adaptive discovery scheduler (OmniManager's
/// beacon-interval controller plus the passive listen-duty controller).
struct DiscoveryPolicy {
  enum class Mode : std::uint8_t {
    kFixed = 0,     ///< paper-faithful fixed cadence (default; byte-identical
                    ///< to the pre-policy build)
    kAdaptive = 1,  ///< density-aware backoff + optimized listen schedule
  };

  Mode mode = Mode::kFixed;

  /// Lower bound for the adaptive beacon interval. Also the interval a node
  /// snaps back to whenever a previously-unknown peer appears, so entrant
  /// discovery latency stays bounded by the floor. Must remain >= the
  /// engine's conservative lookahead (BleMedium::min_latency(), 10 ms).
  Duration floor = Duration::millis(500);

  /// Upper bound once the neighborhood is dense (>= dense_peers) and stable.
  Duration ceiling = Duration::seconds(8);

  /// Ceiling for the middle regime (>= sparse_peers but < dense_peers).
  Duration sparse_ceiling = Duration::seconds(2);

  /// Multiplier applied per quiet maintenance tick while ramping up.
  double ramp = 2.0;

  /// Neighborhood occupancy (live peers, or region residents when the World
  /// is wired) at which the full ceiling applies.
  std::size_t dense_peers = 8;

  /// Occupancy at which any backoff is allowed at all; below this the
  /// interval stays pinned to the floor.
  std::size_t sparse_peers = 2;

  /// Fractional deterministic jitter applied to the advertised interval
  /// (owner-hashed, counter-indexed), de-phasing co-located beaconers.
  /// Off by default: the simulated capture model has no collisions, so
  /// de-phasing buys nothing, while phase-locked lattice intervals let the
  /// BLE medium batch same-instant deliveries into one sweep per receiver
  /// (the dominant event-count saving at city scale). Turn it on to model
  /// real-world anti-collision spreading; results stay bit-identical at any
  /// --threads either way.
  double jitter = 0.0;

  /// Floor for the probe-scan duty when the listen controller shortens scan
  /// windows in a saturated, stable neighborhood.
  double min_scan_duty = 0.05;

  /// Radius used for the World region-occupancy signal (defaults to the BLE
  /// calibrated range).
  double density_range_m = 40.0;
};

}  // namespace omni
