// WiFi-Mesh UDP-multicast technology plugin (paper §3.2: provided "as a
// proof of concept since it is one of the primary technologies used by state
// of the art solutions for address sharing and service discovery").
//
// Context packs are sent as periodic multicast datagrams; data goes out as
// fragmented bulk multicast at the 802.11 base rate. Each periodic context
// registers its airtime load with the mesh so concurrent TCP flows feel the
// impediment the paper measures in Table 5.
//
// Engagement semantics: engaged, all multicast receptions are forwarded to
// the manager; disengaged, the plugin probe-listens — a window of one beacon
// interval every probe period, charged at WiFi-receive draw — which is how
// the Omni Manager "listens on each of the other available context D2D
// technologies" (paper §3.3) without paying for continuous multicast
// reception.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "net/discovery_ritual.h"
#include "omni/comm_tech.h"
#include "radio/mesh.h"
#include "radio/wifi_radio.h"
#include "sim/event_queue.h"

namespace omni {

class WifiMulticastTech final : public CommTechnology {
 public:
  struct Options {
    /// Probe cadence while disengaged.
    Duration probe_interval = Duration::seconds(5);
    /// Probe listen window (>= one beacon interval, so a probing device
    /// reliably hears periodic beacons).
    Duration probe_window = Duration::millis(600);
    /// Periodic maintenance rescan (footnote 12: the environment cannot be
    /// assumed static). Zero disables.
    Duration maintenance_scan_period = Duration::seconds(60);
  };

  WifiMulticastTech(radio::WifiRadio& radio, radio::MeshNetwork& mesh)
      : WifiMulticastTech(radio, mesh, Options{}) {}
  WifiMulticastTech(radio::WifiRadio& radio, radio::MeshNetwork& mesh,
                    Options options);
  ~WifiMulticastTech() override;

  EnableResult enable(const TechQueues& queues) override;
  void disable() override;

  Technology type() const override { return Technology::kWifiMulticast; }
  bool enabled() const override { return enabled_; }

  bool supports_context() const override { return true; }
  bool supports_data() const override { return true; }
  std::size_t max_context_payload() const override;
  std::size_t max_data_payload() const override { return 0; }  // unbounded
  Duration estimate_data_time(std::size_t bytes,
                              bool needs_refresh) const override;

  void set_engaged(bool engaged) override;
  bool engaged() const override { return engaged_; }
  /// Multicast airtime accounting lives in the shared mesh: requests must be
  /// processed barrier-serialized (global owner) under the parallel engine.
  bool uses_shared_medium() const override { return true; }

  bool joined() const { return joined_; }

 private:
  // Periodic contexts are coalesced: every tick, all transmissions that are
  // due go out as ONE aggregate multicast datagram (beacon aggregation —
  // address beacons and service contexts share a single 500 ms stream, as on
  // the paper's prototype).
  struct ContextEntry {
    Bytes packed;
    Duration interval;
    TimePoint last_sent;
  };

  void drain_send_queue();
  void process(SendRequest request);
  void reschedule_tick();
  void fire_tick();
  void update_periodic_load();
  void do_send_data(std::shared_ptr<SendRequest> request);
  void schedule_probe();
  void schedule_maintenance_scan(Duration delay);
  /// Descriptor-dispatched bodies: the disengaged probe tick and the
  /// engagement-flag sync are {u32 slot} descriptors (kEventDiscoveryTick /
  /// kEventEngageSync) — cross-owner node→global posts that partitioned
  /// workers can ship as data, where the closures they replaced could not.
  void probe_fired();
  void engage_sync_fired();
  static void probe_thunk(void* ctx);
  static void engage_sync_thunk(void* ctx);
  void on_multicast(const MeshAddress& from, const Bytes& frame);
  void respond(const SendRequest& request, bool success,
               std::string failure = {});

  radio::WifiRadio& radio_;
  radio::MeshNetwork& mesh_;
  Options options_;
  TechQueues queues_;
  bool enabled_ = false;
  bool engaged_ = false;
  bool joined_ = false;
  std::map<ContextId, ContextEntry> contexts_;
  std::deque<SendRequest> waiting_for_join_;
  TimePoint probe_window_until_ = TimePoint::origin();
  sim::EventHandle tick_event_;
  radio::PeriodicLoadId aggregate_load_ = 0;
  sim::EventHandle probe_event_;
  sim::EventHandle maintenance_event_;
  /// Callback-slot ids for the probe tick / engage sync descriptors.
  std::uint32_t probe_slot_ = 0;
  std::uint32_t engage_sync_slot_ = 0;
};

}  // namespace omni
