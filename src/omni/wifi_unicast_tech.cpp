#include "omni/wifi_unicast_tech.h"

#include "common/logging.h"
#include "obs/omniscope.h"

namespace omni {

WifiUnicastTech::WifiUnicastTech(radio::WifiRadio& radio,
                                 radio::MeshNetwork& mesh)
    : radio_(radio), mesh_(mesh) {}

EnableResult WifiUnicastTech::enable(const TechQueues& queues) {
  OMNI_CHECK_MSG(!enabled_, "WifiUnicastTech already enabled");
  OMNI_CHECK(queues.send != nullptr && queues.receive != nullptr &&
             queues.response != nullptr);
  queues_ = queues;
  enabled_ = true;
  radio_.set_powered(true);
  radio_.add_datagram_handler(
      [this](const MeshAddress& from, const Bytes& payload, bool multicast) {
        if (multicast || !enabled_) return;
        queues_.receive->produce([&](ReceivedPacket& pkt) {
          pkt.tech = Technology::kWifiUnicast;
          pkt.from = LowLevelAddress{from};
          pkt.packed.assign(payload.begin(), payload.end());
        });
      });
  radio_.add_power_handler([this](bool powered) {
    if (!enabled_) return;
    if (!powered) {
      joined_ = false;
      queues_.response->push(
          TechResponse::status_change(Technology::kWifiUnicast, false));
    } else {
      radio_.join(mesh_, [this](Status s) {
        joined_ = s.is_ok();
        queues_.response->push(TechResponse::status_change(
            Technology::kWifiUnicast, joined_));
      });
    }
  });
  if (radio_.mesh() == &mesh_) {
    joined_ = true;
  } else {
    radio_.join(mesh_, [this](Status s) {
      joined_ = s.is_ok();
      if (!joined_) {
        queues_.response->push(
            TechResponse::status_change(Technology::kWifiUnicast, false));
      }
      // Flush sends that queued up during the join.
      std::deque<SendRequest> waiting;
      waiting.swap(waiting_for_join_);
      for (auto& req : waiting) process(std::move(req));
    });
  }
  queues_.send->set_consumer([this] { drain_send_queue(); });
  return EnableResult{Technology::kWifiUnicast,
                      LowLevelAddress{radio_.address()}};
}

void WifiUnicastTech::disable() {
  if (!enabled_) return;
  drain_send_queue();
  queues_.send->clear_consumer();
  for (auto& req : waiting_for_join_) {
    respond(req, false, "technology disabled");
  }
  waiting_for_join_.clear();
  // Requests parked in the discovery ritual get a terminal response now; a
  // ritual callback firing later finds its token gone and does nothing.
  auto rituals = std::move(in_ritual_);
  in_ritual_.clear();
  for (auto& [token, req] : rituals) {
    respond(*req, false, "technology disabled");
  }
  // Withdraw in-flight flows (see open_flows_): cancel first so the mesh
  // drops its callback, then fail the request on the response queue.
  auto flows = std::move(open_flows_);
  open_flows_.clear();
  for (auto& [id, req] : flows) {
    mesh_.cancel_flow(id);
    respond(*req, false, "technology disabled");
  }
  enabled_ = false;
}

Duration WifiUnicastTech::estimate_data_time(std::size_t bytes,
                                             bool needs_refresh) const {
  const auto& cal = radio_.calibration();
  Duration t = cal.wifi_rtt * 3.0 + cal.tcp_setup_overhead +
               Duration::seconds(static_cast<double>(bytes) /
                                 cal.wifi_capacity_Bps);
  if (needs_refresh) {
    t += cal.wifi_scan_duration + cal.wifi_join_duration +
         cal.wifi_resolve_query;
  }
  return t;
}

void WifiUnicastTech::drain_send_queue() {
  while (auto request = queues_.send->try_pop()) {
    process(std::move(*request));
  }
}

void WifiUnicastTech::process(SendRequest request) {
  if (request.op != SendOp::kSendData) {
    respond(request, false, "WiFi unicast carries data only");
    return;
  }
  if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
      sc != nullptr && sc->recording()) {
    sc->count_on(radio_.node(), sc->core().tech_send[3]);
    sc->instant_on(radio_.node(), obs::Cat::kTechSend,
                   request.request_id, request.packed.size(), 3);
  }
  if (!std::holds_alternative<MeshAddress>(request.dest)) {
    respond(request, false, "destination is not a mesh address");
    return;
  }
  if (!joined_) {
    if (radio_.management_busy() || radio_.mesh() == nullptr) {
      // Initial join still in flight: hold the request.
      waiting_for_join_.push_back(std::move(request));
      return;
    }
    respond(request, false, "not joined to the mesh");
    return;
  }
  auto req = std::make_shared<SendRequest>(std::move(request));
  if (req->needs_refresh) {
    const std::uint64_t token = next_ritual_token_++;
    in_ritual_.emplace(token, req);
    net::run_discovery_ritual(
        radio_, mesh_, net::RitualOptions{req->refresh_advert_wait},
        [this, token, alive = std::weak_ptr<bool>(alive_)](Status s) {
          if (alive.expired()) return;  // plugin destroyed mid-ritual
          auto it = in_ritual_.find(token);
          if (it == in_ritual_.end()) return;  // answered at disable()
          auto req = std::move(it->second);
          in_ritual_.erase(it);
          if (!s.is_ok()) {
            respond(*req, false, "discovery ritual failed: " + s.message());
            return;
          }
          do_send(std::move(req));
        });
    return;
  }
  do_send(std::move(req));
}

void WifiUnicastTech::do_send(std::shared_ptr<SendRequest> request) {
  const MeshAddress dest = std::get<MeshAddress>(request->dest);
  auto req = request;
  // The flow id is only known after open_flow returns, but the completion
  // callback needs it to deregister itself; route it through a shared slot.
  auto id_slot = std::make_shared<radio::FlowId>(0);
  auto flow = mesh_.open_flow(
      radio_, dest, req->packed.size(),
      [this, req, id_slot](Status s) {
        open_flows_.erase(*id_slot);
        respond(*req, s.is_ok(), s.message());
      },
      /*progress=*/nullptr, /*payload=*/req->packed);
  if (!flow) {
    respond(*request, false, flow.error_message());
    return;
  }
  *id_slot = flow.value();
  open_flows_.emplace(flow.value(), std::move(req));
}

void WifiUnicastTech::respond(const SendRequest& request, bool success,
                              std::string failure) {
  if (obs::Omniscope* sc = OMNI_SCOPE(radio_.simulator());
      sc != nullptr && sc->recording()) {
    sc->instant_on(radio_.node(), obs::Cat::kTechResponse,
                   request.request_id, success ? 0 : 1, 3);
  }
  queues_.response->push(TechResponse::result(Technology::kWifiUnicast,
                                              request, success,
                                              std::move(failure)));
}

}  // namespace omni
