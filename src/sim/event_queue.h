// Pending-event set for the discrete-event simulator.
//
// Events fire in (time, sequence) order so that two events scheduled for the
// same instant run in scheduling order — this makes simulations fully
// deterministic.
//
// Implementation: a slab of event slots (free-list reuse, no per-event heap
// allocation beyond what the callback itself captures) indexed by a 4-ary
// min-heap. Heap entries carry their (time, sequence) key inline, so sift
// comparisons read contiguous heap memory instead of chasing slab cache
// lines. Every slot carries its heap position, so
// cancellation is a true O(log n) heap removal — cancelled events leave the
// queue immediately instead of piling up as dead entries until popped, which
// keeps memory bounded by the number of *live* events even under workloads
// that cancel millions of periodic timers (address-beacon reschedules).
//
// Handles are (slot index, generation) pairs: generations are globally
// unique per scheduled event, so a stale handle can never cancel an
// unrelated event that happens to reuse its slot. Handles weigh two words
// and involve no shared_ptr/atomics; they must not be used after the
// EventQueue that issued them is destroyed (in this codebase the Simulator —
// and thus its queue — always outlives the components holding handles).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <vector>

#include "common/time.h"
#include "sim/event_desc.h"

namespace omni::sim {

using EventFn = std::function<void()>;

/// Logical owner of scheduled work. Node-local events (radio fires, queue
/// drains, per-device timers) carry their node id; work that touches shared
/// subsystems (mesh, mobility, scenario instructions) carries kGlobalOwner
/// and is executed serially at epoch barriers by the parallel engine.
using OwnerId = std::uint32_t;
inline constexpr OwnerId kGlobalOwner = 0xffffffffu;

class EventQueue;

/// Handle to a scheduled event, usable to cancel it. Default-constructed
/// handles are inert. Copying shares the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from running if it has not run yet.
  void cancel();

  /// True if this handle refers to an event that has neither run nor been
  /// cancelled yet.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint64_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Add an event firing at `at`; later insertions at the same time fire
  /// later. Returns a handle usable for cancellation. `owner` rides along
  /// and is reported by pop() so the simulator can restore the event's
  /// execution context (per-owner RNG stream, shard clock).
  EventHandle schedule(TimePoint at, EventFn fn, OwnerId owner = kGlobalOwner);

  /// Add an event firing at the current instant `now` (a zero-delay wakeup).
  /// Same ordering contract as schedule(now, fn), but the event lands in a
  /// FIFO instead of the heap: the bulk of a large simulation's events are
  /// same-instant queue wakeups, and appending to a ring costs O(1) with no
  /// sifting. Correct only when `now` never decreases between calls (true
  /// for a simulator clock): every pending heap event at time `now` was
  /// scheduled earlier — before the clock reached `now` — so draining the
  /// heap's `now` entries before the FIFO preserves global (time, sequence)
  /// order.
  EventHandle schedule_now(TimePoint now, EventFn fn,
                           OwnerId owner = kGlobalOwner);

  /// Descriptor twin of schedule(): same ordering contract and handle
  /// semantics, but the event is a typed EventDesc — `psize` payload bytes
  /// (≤ kEventPayloadMax) copied inline into the slot, no closure, no heap.
  /// `kind` must be a real descriptor kind (not kEventClosure). The caller
  /// (the Simulator's dispatch registry) interprets kind/payload on pop.
  EventHandle schedule_desc(TimePoint at, EventKind kind,
                            const unsigned char* payload, std::uint8_t psize,
                            OwnerId owner = kGlobalOwner);

  /// Descriptor twin of schedule_now() (zero-delay FIFO path).
  EventHandle schedule_desc_now(TimePoint now, EventKind kind,
                                const unsigned char* payload,
                                std::uint8_t psize,
                                OwnerId owner = kGlobalOwner);

  bool empty() const { return heap_.empty() && fifo_live_ == 0; }
  std::size_t size() const { return heap_.size() + fifo_live_; }

  /// True if a zero-delay event is pending. It fires at the current instant:
  /// after heap events already due at that instant, before anything later.
  bool has_immediate() const { return fifo_live_ > 0; }

  /// High-water mark of pending (live) events over the queue's lifetime.
  std::size_t peak_size() const { return peak_live_; }

  /// Slots currently held by the slab (capacity bound; tests assert this
  /// stays near the live high-water mark rather than growing with the
  /// schedule/cancel churn count).
  std::size_t slab_capacity() const { return slots_.size(); }

  /// Bytes one slab slot occupies. Closures and descriptors share the same
  /// inline body overlay, so this is the whole per-event slab footprint of
  /// either flavor — the bench reports it as bytes/event alongside any
  /// heap bytes a capturing closure adds on top.
  static constexpr std::size_t slot_footprint() { return sizeof(Slot); }

  /// Earliest pending *heap* event time; TimePoint::max() if the heap is
  /// empty. Zero-delay events are not represented here — they are due at the
  /// caller's current instant whenever has_immediate() is true.
  TimePoint next_time() const {
    return heap_.empty() ? TimePoint::max() : heap_[0].at;
  }

  /// Pop and return the earliest pending event; the caller runs it. Must not
  /// be called when empty(). `now` is the caller's clock: heap events due at
  /// or before `now` fire ahead of queued zero-delay events (they carry
  /// smaller sequence numbers — see schedule_now).
  struct Popped {
    TimePoint at;
    OwnerId owner;
    EventKind kind = kEventClosure;
    std::uint8_t psize = 0;
    EventFn fn;                               ///< live iff kind == kEventClosure
    unsigned char payload[kEventPayloadMax];  ///< valid iff kind != kEventClosure
  };
  Popped pop(TimePoint now);

  /// Visit every live pending event as
  /// f(at, generation, owner, immediate, kind, psize, payload): heap entries
  /// in storage order, then live zero-delay FIFO entries in fire order.
  /// `payload` points at the slot's inline bytes (null for closures); copy it
  /// if it must outlive the visit. Generations totally order same-owner
  /// events under (at, generation) — snapshot capture sorts on that key and
  /// then discards the (engine-internal, thread-count-dependent) generation
  /// values.
  template <typename Fn>
  void for_each_pending(Fn&& f) const {
    auto visit = [&](const Slot& s, std::uint64_t generation, TimePoint at,
                     bool immediate) {
      f(at, generation, s.owner, immediate, s.kind, s.psize,
        s.kind == kEventClosure ? nullptr : s.body);
    };
    for (const HeapEntry& e : heap_) {
      visit(slots_[e.slot], e.generation, e.at, /*immediate=*/false);
    }
    for (std::size_t i = fifo_head_; i < fifo_.size(); ++i) {
      const FifoEntry& e = fifo_[i];
      if (!slot_live(e.slot, e.generation)) continue;  // cancelled
      visit(slots_[e.slot], e.generation, slots_[e.slot].at,
            /*immediate=*/true);
    }
  }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kArity = 4;
  static constexpr std::uint32_t kNone = 0xffffffffu;
  /// heap_index marker for slots queued in the zero-delay FIFO.
  static constexpr std::uint32_t kInFifo = 0xfffffffeu;
  /// Slab sizes below this never trigger compaction (churn on tiny slabs is
  /// cheap; compaction would just thrash).
  static constexpr std::size_t kCompactMin = 64;

  /// The event's inline storage budget: big enough for one EventFn *or* a
  /// full descriptor payload, overlaid in one buffer so descriptors ride for
  /// free. Closure lifecycle is manual: `body` holds a constructed EventFn
  /// iff the slot is live (generation != 0) and kind == kEventClosure;
  /// otherwise it is raw payload bytes (or garbage while free).
  struct Slot {
    static constexpr std::size_t kBodyBytes =
        sizeof(EventFn) > kEventPayloadMax ? sizeof(EventFn)
                                           : kEventPayloadMax;

    TimePoint at;
    std::uint64_t generation = 0;  ///< 0 = free; doubles as the fire sequence
    alignas(EventFn) unsigned char body[kBodyBytes];
    OwnerId owner = kGlobalOwner;
    std::uint32_t heap_index = kNone;  ///< kNone while free
    std::uint32_t next_free = kNone;
    EventKind kind = kEventClosure;
    std::uint8_t psize = 0;

    Slot() = default;
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    // The slab vector relocates slots on growth/shrink_to_fit; a noexcept
    // move keeps that a memcpy plus (for closures) one EventFn move.
    Slot(Slot&& o) noexcept
        : at(o.at), generation(o.generation), owner(o.owner),
          heap_index(o.heap_index), next_free(o.next_free), kind(o.kind),
          psize(o.psize) {
      if (generation != 0 && kind == kEventClosure) {
        new (body) EventFn(std::move(o.fn_ref()));
        o.fn_ref().~EventFn();
        o.generation = 0;
      } else {
        std::memcpy(body, o.body, kEventPayloadMax);
      }
    }
    Slot& operator=(Slot&&) = delete;
    ~Slot() {
      if (generation != 0 && kind == kEventClosure) fn_ref().~EventFn();
    }

    EventFn& fn_ref() {
      return *std::launder(reinterpret_cast<EventFn*>(body));
    }
  };

  /// One heap element: the slot's ordering key, duplicated here so sifts
  /// never touch the slab.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t generation;
    std::uint32_t slot;
  };

  /// Heap order: (at, generation) ascending — generation is assigned in
  /// schedule order, preserving deterministic same-instant FIFO.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.generation < b.generation;
  }

  void place(std::size_t i, const HeapEntry& e) {
    heap_[i] = e;
    slots_[e.slot].heap_index = static_cast<std::uint32_t>(i);
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void remove_heap_at(std::size_t i);
  Popped pop_heap();
  Popped pop_fifo(TimePoint now);
  static Popped take_payload(Slot& s, TimePoint at);

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  void maybe_compact();

  bool slot_live(std::uint32_t slot, std::uint64_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }
  void cancel_slot(std::uint32_t slot, std::uint64_t generation);

  /// One zero-delay FIFO entry: the slot plus its generation, so entries
  /// whose event was cancelled (slot freed or reused) are skipped on pop.
  struct FifoEntry {
    std::uint64_t generation;
    std::uint32_t slot;
  };

  std::vector<Slot> slots_;       // slab; free slots linked via next_free
  std::vector<HeapEntry> heap_;  // 4-ary min-heap of live events
  std::vector<FifoEntry> fifo_;  // zero-delay events, fire order; ring-style
  std::size_t fifo_head_ = 0;    // first unpopped fifo_ entry
  std::size_t fifo_live_ = 0;    // non-cancelled events in fifo_
  std::uint32_t free_head_ = kNone;
  std::size_t free_count_ = 0;
  std::uint64_t next_generation_ = 1;  // 0 is the "free slot" marker
  std::size_t peak_live_ = 0;
};

}  // namespace omni::sim
