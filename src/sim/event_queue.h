// Pending-event set for the discrete-event simulator.
//
// Events fire in (time, sequence) order so that two events scheduled for the
// same instant run in scheduling order — this makes simulations fully
// deterministic. Cancellation is O(1) lazy: a cancelled event stays in the
// heap but is skipped when popped; the live count is maintained eagerly so
// empty()/size() are always exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace omni::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event, usable to cancel it. Default-constructed
/// handles are inert. Copying shares the same underlying event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from running if it has not run yet.
  void cancel();

  /// True if this handle refers to an event that has neither run nor been
  /// cancelled yet.
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool done = false;         // ran or cancelled
    std::size_t* live = nullptr;  // owner's live counter (null once done)
  };
  explicit EventHandle(std::weak_ptr<State> state) : state_(std::move(state)) {}
  std::weak_ptr<State> state_;
};

class EventQueue {
 public:
  /// Add an event firing at `at`; later insertions at the same time fire
  /// later. Returns a handle usable for cancellation.
  EventHandle schedule(TimePoint at, EventFn fn);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Earliest pending (non-cancelled) event time; TimePoint::max() if empty.
  TimePoint next_time();

  /// Pop and return the earliest pending event; the caller runs it. Must not
  /// be called when empty().
  struct Popped {
    TimePoint at;
    EventFn fn;
  };
  Popped pop();

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_done();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;  // events neither run nor cancelled
};

}  // namespace omni::sim
