// Deterministic fault injection for the simulated radio media.
//
// A FaultPlan is a declarative schedule of adverse conditions — per-link
// packet loss/corruption, delivery-latency spikes, radio blackout and flap
// windows, node crash+restart churn, and geometric partitions — that the
// media (BleMedium, MeshNetwork, NanSystem) consult on every delivery and
// that Testbed turns into barrier-serialized global power events.
//
// Determinism contract (parallel engine):
//  - Passive faults (loss, corruption, latency, partitions) are pure
//    functions of (plan seed, src, dst, virtual time, per-sender salt)
//    computed with a stateless splitmix64-style mix. They consume no
//    simulator RNG, so an armed-but-empty plan leaves every existing RNG
//    stream — and therefore the golden traces — untouched, and fault draws
//    are independent of shard interleaving: bit-identical at any --threads.
//  - Active faults (blackouts, flaps, crash/restart) are actuated as
//    global-owner events (Testbed::schedule_faults), which the engine
//    already serializes between conservative windows.
//  - Latency spikes only ever ADD delay, so the engine's lookahead bound
//    (min BLE latency) stays sound.
//
// Queries are const and lock-free; injection counters are relaxed atomics
// (sums are order-independent, so totals are deterministic too).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/world.h"

namespace omni::sim {

/// Which radio medium a fault entry applies to.
enum class FaultRadio : std::uint8_t { kAll = 0, kBle, kWifi, kNan };

class FaultPlan {
 public:
  /// Wildcard node filter: matches every node.
  static constexpr NodeId kAnyNode = kInvalidNode;

  /// Probabilistic degradation of frames from `src` to `dst` (directional;
  /// add the mirrored entry for a symmetric fault).
  struct LinkFault {
    TimePoint start;
    TimePoint end = TimePoint::max();
    FaultRadio radio = FaultRadio::kAll;
    NodeId src = kAnyNode;
    NodeId dst = kAnyNode;
    double loss = 0.0;     ///< P(frame silently dropped)
    double corrupt = 0.0;  ///< P(frame delivered with flipped bytes)
    /// Added to the medium's own delivery latency for every matching frame.
    /// Broadcast media apply it per frame, so only src-filtered (dst ==
    /// kAnyNode) entries can delay BLE/NAN; unicast honors dst filters too.
    Duration extra_latency = Duration::zero();
  };

  /// A radio outage window, actuated by Testbed as real power toggles.
  struct Blackout {
    NodeId node = kInvalidNode;
    FaultRadio radio = FaultRadio::kAll;
    TimePoint start;
    TimePoint end;
    /// Zero: one solid outage over [start, end). Positive: the radio flaps —
    /// off for the first `off_fraction` of every `period`, then back on.
    Duration period = Duration::zero();
    double off_fraction = 1.0;
  };

  /// Whole-node crash (every radio powers off) with optional restart.
  struct Crash {
    NodeId node = kInvalidNode;
    TimePoint at;
    /// origin() (the default) means the node never comes back.
    TimePoint restart;
    /// Model the reboot assigning fresh link-layer addresses (BLE private
    /// address rotation): peers must re-learn the node, same omni address.
    bool rotate_addresses = true;
  };

  /// Geometric partition: while active, nodes on opposite sides of the line
  /// a*x + b*y = c cannot hear each other on any medium.
  struct Partition {
    TimePoint start;
    TimePoint end = TimePoint::max();
    double a = 1.0;
    double b = 0.0;
    double c = 0.0;
  };

  /// Aggregate injection counts (what the plan actually did to traffic).
  struct Stats {
    std::uint64_t drops = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t delays = 0;
    std::uint64_t partition_drops = 0;
  };

  explicit FaultPlan(std::uint64_t seed = 0x0f4a17) : seed_(seed) {}

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  std::uint64_t seed() const { return seed_; }

  void add_link_fault(const LinkFault& f) { link_faults_.push_back(f); }
  void add_blackout(const Blackout& b) { blackouts_.push_back(b); }
  void add_crash(const Crash& c) { crashes_.push_back(c); }
  void add_partition(const Partition& p) { partitions_.push_back(p); }

  bool empty() const {
    return link_faults_.empty() && blackouts_.empty() && crashes_.empty() &&
           partitions_.empty();
  }

  /// Active entries, consumed by Testbed::schedule_faults.
  const std::vector<Blackout>& blackouts() const { return blackouts_; }
  const std::vector<Crash>& crashes() const { return crashes_; }

  /// Passive entries (read by Testbed::export_options for trace annotation).
  const std::vector<LinkFault>& link_faults() const { return link_faults_; }
  const std::vector<Partition>& partitions() const { return partitions_; }

  // --- Delivery-time queries (const, callable concurrently from shards) ---

  /// Should this frame be silently dropped? `salt` must be unique per
  /// (sender, frame) — media keep per-sender monotonic counters.
  bool dropped(NodeId src, NodeId dst, FaultRadio radio, TimePoint at,
               std::uint64_t salt) const;

  /// Should this frame arrive with flipped bytes?
  bool corrupted(NodeId src, NodeId dst, FaultRadio radio, TimePoint at,
                 std::uint64_t salt) const;

  /// Total extra delivery latency for a matching frame (sums every matching
  /// spike entry). Pass dst = kAnyNode on broadcast media.
  Duration extra_latency(NodeId src, NodeId dst, FaultRadio radio,
                         TimePoint at) const;

  /// True if positions `a` and `b` are separated by an active partition.
  bool partitioned(Vec2 a, Vec2 b, TimePoint at) const;

  /// True when some partition window covers `at`. Media evaluate this once
  /// per fan-out and gate the per-candidate partitioned() geometry behind
  /// it, so a partition-free plan (loss/latency-only faults) costs no
  /// line-side tests — and no position() interpolations — per candidate.
  bool partition_active(TimePoint at) const;

  /// Deterministically flip bytes in `frame` (decoders must reject it).
  static void corrupt_in_place(Bytes& frame, std::uint64_t salt);

  // --- Injection accounting (relaxed atomics; order-independent sums) ---

  void note_drop() const { drops_.fetch_add(1, std::memory_order_relaxed); }
  void note_corruption() const {
    corruptions_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_delay() const { delays_.fetch_add(1, std::memory_order_relaxed); }
  void note_partition_drop() const {
    partition_drops_.fetch_add(1, std::memory_order_relaxed);
  }
  Stats stats() const {
    return Stats{drops_.load(std::memory_order_relaxed),
                 corruptions_.load(std::memory_order_relaxed),
                 delays_.load(std::memory_order_relaxed),
                 partition_drops_.load(std::memory_order_relaxed)};
  }

 private:
  /// splitmix64 finalizer: the stateless mixing core of every draw.
  static std::uint64_t mix(std::uint64_t x);
  /// Uniform [0,1) draw for one (stream, link, instant, frame) tuple.
  double draw(std::uint64_t stream, NodeId src, NodeId dst, TimePoint at,
              std::uint64_t salt) const;
  static bool matches(const LinkFault& f, NodeId src, NodeId dst,
                      FaultRadio radio, TimePoint at);

  std::uint64_t seed_;
  std::vector<LinkFault> link_faults_;
  std::vector<Blackout> blackouts_;
  std::vector<Crash> crashes_;
  std::vector<Partition> partitions_;

  mutable std::atomic<std::uint64_t> drops_{0};
  mutable std::atomic<std::uint64_t> corruptions_{0};
  mutable std::atomic<std::uint64_t> delays_{0};
  mutable std::atomic<std::uint64_t> partition_drops_{0};
};

}  // namespace omni::sim
