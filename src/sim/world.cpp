#include "sim/world.h"

#include <algorithm>
#include <cmath>

namespace omni::sim {

double Vec2::norm() const { return std::sqrt(x * x + y * y); }

std::int64_t World::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_m_));
}

NodeId World::add_node(std::string name, Vec2 position) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), position, position, sim_.now(),
                        sim_.now(), {}});
  rebucket(id);
  ++topo_epoch_;
  // Every node is an event owner: give it its RNG stream and mailbox lane.
  sim_.ensure_owner(id);
  return id;
}

const World::Node& World::node(NodeId id) const {
  OMNI_CHECK_MSG(id < nodes_.size(), "unknown node id");
  return nodes_[id];
}

World::Node& World::node(NodeId id) {
  OMNI_CHECK_MSG(id < nodes_.size(), "unknown node id");
  return nodes_[id];
}

const std::string& World::name(NodeId id) const { return node(id).name; }

Vec2 World::position(NodeId id) const {
  const Node& n = node(id);
  if (n.arrive == n.depart) return n.to;
  TimePoint now = sim_.now();
  if (now >= n.arrive) return n.to;
  double total = (n.arrive - n.depart).as_seconds();
  double done = (now - n.depart).as_seconds();
  double f = total > 0 ? done / total : 1.0;
  return n.from + (n.to - n.from) * f;
}

void World::set_position(NodeId id, Vec2 position) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  Node& n = node(id);
  n.from = n.to = position;
  n.depart = n.arrive = sim_.now();
  rebucket(id);
  ++topo_epoch_;
}

void World::move_to(NodeId id, Vec2 target, double speed_mps) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  OMNI_CHECK_MSG(speed_mps > 0, "move_to requires positive speed");
  Node& n = node(id);
  Vec2 start = position(id);
  double dist = Vec2::distance(start, target);
  n.from = start;
  n.to = target;
  n.depart = sim_.now();
  n.arrive = sim_.now() + Duration::seconds(dist / speed_mps);
  rebucket(id);
  ++topo_epoch_;
  if (n.arrive > moving_until_) moving_until_ = n.arrive;
}

double World::distance(NodeId a, NodeId b) const {
  return Vec2::distance(position(a), position(b));
}

void World::unbucket(NodeId id) {
  Node& n = nodes_[id];
  for (std::uint64_t key : n.cells) {
    auto it = grid_.find(key);
    if (it == grid_.end()) continue;
    auto& bucket = it->second;
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (bucket.empty()) grid_.erase(it);
  }
  n.cells.clear();
}

void World::rebucket(NodeId id) {
  unbucket(id);
  Node& n = nodes_[id];
  std::int64_t cx0 = cell_coord(std::min(n.from.x, n.to.x));
  std::int64_t cx1 = cell_coord(std::max(n.from.x, n.to.x));
  std::int64_t cy0 = cell_coord(std::min(n.from.y, n.to.y));
  std::int64_t cy1 = cell_coord(std::max(n.from.y, n.to.y));
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      std::uint64_t key = cell_key(cx, cy);
      grid_[key].push_back(id);
      n.cells.push_back(key);
    }
  }
}

void World::set_grid_cell_size(double meters) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  OMNI_CHECK_MSG(meters > 0, "grid cell size must be positive");
  if (meters == cell_m_) return;
  cell_m_ = meters;
  grid_.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    nodes_[id].cells.clear();
    rebucket(id);
  }
  ++topo_epoch_;
}

void World::nodes_in_disc(Vec2 center, double range,
                          std::vector<NodeId>& out) const {
  out.clear();
  if (range < 0) return;
  // Squared-distance filter: one multiply per candidate instead of a sqrt.
  double range_sq = range * range;
  auto within = [&](NodeId id) {
    Vec2 d = position(id) - center;
    return d.x * d.x + d.y * d.y <= range_sq;
  };
  std::int64_t cx0 = cell_coord(center.x - range);
  std::int64_t cx1 = cell_coord(center.x + range);
  std::int64_t cy0 = cell_coord(center.y - range);
  std::int64_t cy1 = cell_coord(center.y + range);
  // Very large query discs degenerate to a full scan: cheaper than probing
  // more cells than there are nodes.
  std::uint64_t cells = static_cast<std::uint64_t>(cx1 - cx0 + 1) *
                        static_cast<std::uint64_t>(cy1 - cy0 + 1);
  if (cells >= nodes_.size()) {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (within(id)) out.push_back(id);
    }
    return;
  }
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      auto it = grid_.find(cell_key(cx, cy));
      if (it == grid_.end()) continue;
      for (NodeId id : it->second) {
        if (within(id)) out.push_back(id);
      }
    }
  }
  // A moving node is listed in every cell its segment overlaps; sort and
  // drop duplicates so callers see each node once, ascending by id.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void World::nodes_near(NodeId of, double range,
                       std::vector<NodeId>& out) const {
  // The per-node cache below is written through a const method. That is safe
  // under the parallel engine only because each node's cache has a single
  // writer: shard events may consult *their own* node's cache (radio fan-out
  // is always queried from the transmitting node), and everything else runs
  // barrier-serialized. Enforce the contract rather than document it.
  OMNI_CHECK_MSG(sim_.owns_context(of),
                 "nodes_near: concurrent contexts may only query their own "
                 "node's neighbor cache");
  const Node& n = node(of);
  if (sim_.now() < moving_until_) {
    // Some motion segment may still be in flight: positions interpolate, so
    // cached neighbor sets can silently rot. Query the grid directly.
    nodes_in_disc(position(of), range, out);
    return;
  }
  if (n.cache_epoch != topo_epoch_ || n.cache_range != range) {
    // World static: every node sits at its segment endpoint (`to`), so the
    // result stays valid until the next topology change.
    nodes_in_disc(n.to, range, n.cache_ids);
    n.cache_epoch = topo_epoch_;
    n.cache_range = range;
  }
  out.assign(n.cache_ids.begin(), n.cache_ids.end());
}

std::vector<NodeId> World::neighbors(NodeId of, double range) const {
  std::vector<NodeId> out;
  nodes_in_disc(position(of), range, out);
  out.erase(std::remove(out.begin(), out.end(), of), out.end());
  return out;
}

}  // namespace omni::sim
