#include "sim/world.h"

#include <cmath>

namespace omni::sim {

double Vec2::norm() const { return std::sqrt(x * x + y * y); }

NodeId World::add_node(std::string name, Vec2 position) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), position, position, sim_.now(),
                        sim_.now()});
  return id;
}

const World::Node& World::node(NodeId id) const {
  OMNI_CHECK_MSG(id < nodes_.size(), "unknown node id");
  return nodes_[id];
}

World::Node& World::node(NodeId id) {
  OMNI_CHECK_MSG(id < nodes_.size(), "unknown node id");
  return nodes_[id];
}

const std::string& World::name(NodeId id) const { return node(id).name; }

Vec2 World::position(NodeId id) const {
  const Node& n = node(id);
  TimePoint now = sim_.now();
  if (now >= n.arrive || n.arrive == n.depart) return n.to;
  double total = (n.arrive - n.depart).as_seconds();
  double done = (now - n.depart).as_seconds();
  double f = total > 0 ? done / total : 1.0;
  return n.from + (n.to - n.from) * f;
}

void World::set_position(NodeId id, Vec2 position) {
  Node& n = node(id);
  n.from = n.to = position;
  n.depart = n.arrive = sim_.now();
}

void World::move_to(NodeId id, Vec2 target, double speed_mps) {
  OMNI_CHECK_MSG(speed_mps > 0, "move_to requires positive speed");
  Node& n = node(id);
  Vec2 start = position(id);
  double dist = Vec2::distance(start, target);
  n.from = start;
  n.to = target;
  n.depart = sim_.now();
  n.arrive = sim_.now() + Duration::seconds(dist / speed_mps);
}

double World::distance(NodeId a, NodeId b) const {
  return Vec2::distance(position(a), position(b));
}

std::vector<NodeId> World::neighbors(NodeId of, double range) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (id != of && in_range(of, id, range)) out.push_back(id);
  }
  return out;
}

}  // namespace omni::sim
