#include "sim/world.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace omni::sim {

double Vec2::norm() const { return std::sqrt(x * x + y * y); }

std::int64_t World::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_m_));
}

std::int64_t World::region_coord(std::int64_t cell) const {
  if (region_cells_ == 0) return 0;  // degenerate: one unbounded region
  std::int64_t k = static_cast<std::int64_t>(region_cells_);
  // Floor division for negative cell coordinates.
  return cell >= 0 ? cell / k : -((-cell + k - 1) / k);
}

std::uint64_t World::mix_key(std::uint64_t k) {
  // splitmix64 finalizer: cell keys pack two coordinates, so low bits alone
  // would collide across rows.
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
  return k ^ (k >> 31);
}

std::uint32_t World::region_index_at(std::int64_t rx, std::int64_t ry) {
  std::uint64_t key = pack_key(rx, ry);
  auto it = region_index_.find(key);
  if (it != region_index_.end()) return it->second;
  std::uint32_t index = static_cast<std::uint32_t>(regions_.size());
  regions_.emplace_back();
  regions_.back().rx = rx;
  regions_.back().ry = ry;
  region_index_.emplace(key, index);
  return index;
}

const World::Region* World::find_region(std::int64_t rx,
                                        std::int64_t ry) const {
  auto it = region_index_.find(pack_key(rx, ry));
  return it == region_index_.end() ? nullptr : &regions_[it->second];
}

// --- Region-local cell table -------------------------------------------------

std::uint32_t World::cell_head(const Region& r, std::uint64_t key) {
  if (r.cells.empty()) return kNil;
  std::size_t mask = r.cells.size() - 1;
  for (std::size_t i = mix_key(key) & mask;; i = (i + 1) & mask) {
    const Region::CellSlot& s = r.cells[i];
    if (s.head == kNil) return kNil;
    if (s.head != kTomb && s.key == key) return s.head;
  }
}

std::uint32_t World::link_alloc(Region& r, NodeId id, std::uint32_t next) {
  if (r.free_link != kNil) {
    std::uint32_t li = r.free_link;
    r.free_link = r.links[li].next;
    r.links[li] = Region::Link{id, next};
    return li;
  }
  r.links.push_back(Region::Link{id, next});
  return static_cast<std::uint32_t>(r.links.size() - 1);
}

void World::cell_grow(Region& r) {
  // Rehash at the larger of 8 slots and 2x the live count; dropping
  // tombstones alone is often enough after heavy churn.
  std::size_t cap = 8;
  while (cap < static_cast<std::size_t>(r.cell_used) * 2) cap <<= 1;
  std::vector<Region::CellSlot> old = std::move(r.cells);
  r.cells.assign(cap, Region::CellSlot{});
  r.cell_tombs = 0;
  std::size_t mask = cap - 1;
  for (const Region::CellSlot& s : old) {
    if (s.head == kNil || s.head == kTomb) continue;
    std::size_t i = mix_key(s.key) & mask;
    while (r.cells[i].head != kNil) i = (i + 1) & mask;
    r.cells[i] = s;
  }
}

void World::cell_insert(Region& r, std::uint64_t key, NodeId id) {
  if (r.cells.empty() ||
      (static_cast<std::size_t>(r.cell_used + r.cell_tombs) + 1) * 4 >
          r.cells.size() * 3) {
    cell_grow(r);
  }
  std::size_t mask = r.cells.size() - 1;
  std::size_t tomb = SIZE_MAX;
  std::size_t i = mix_key(key) & mask;
  for (;; i = (i + 1) & mask) {
    Region::CellSlot& s = r.cells[i];
    if (s.head == kNil) break;
    if (s.head == kTomb) {
      if (tomb == SIZE_MAX) tomb = i;
    } else if (s.key == key) {
      s.head = link_alloc(r, id, s.head);
      return;
    }
  }
  if (tomb != SIZE_MAX) {
    i = tomb;
    --r.cell_tombs;
  }
  Region::CellSlot& s = r.cells[i];
  s.key = key;
  s.head = link_alloc(r, id, kNil);
  ++r.cell_used;
}

void World::cell_remove(Region& r, std::uint64_t key, NodeId id) {
  std::size_t mask = r.cells.size() - 1;
  for (std::size_t i = mix_key(key) & mask;; i = (i + 1) & mask) {
    Region::CellSlot& s = r.cells[i];
    OMNI_ASSERTF(s.head != kNil, "grid cell missing on unbucket (node %u)",
                 static_cast<unsigned>(id));
    if (s.head == kTomb || s.key != key) continue;
    std::uint32_t* p = &s.head;
    while (*p != kNil && r.links[*p].id != id) p = &r.links[*p].next;
    OMNI_ASSERTF(*p != kNil, "node %u missing from its grid cell",
                 static_cast<unsigned>(id));
    std::uint32_t li = *p;
    *p = r.links[li].next;
    r.links[li].next = r.free_link;
    r.free_link = li;
    if (s.head == kNil) {
      s.head = kTomb;
      --r.cell_used;
      ++r.cell_tombs;
    }
    return;
  }
}

// --- Admission ---------------------------------------------------------------

NodeId World::admit(std::string_view name, Vec2 position, bool full_stack) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  NodeId id = static_cast<NodeId>(node_ref_.size());
  name_arena_.append(name);
  name_off_.push_back(static_cast<std::uint32_t>(name_arena_.size()));
  std::uint32_t ri = region_index_at(region_coord(cell_coord(position.x)),
                                     region_coord(cell_coord(position.y)));
  Region& r = regions_[ri];
  node_ref_.push_back(
      NodeRef{ri, static_cast<std::uint32_t>(r.ids.size())});
  r.ids.push_back(id);
  r.from.push_back(position);
  r.to.push_back(position);
  r.depart.push_back(sim_.now());
  r.arrive.push_back(sim_.now());
  ++r.epoch;
  if (full_stack) {
    cache_index_.push_back(static_cast<std::uint32_t>(caches_.size()));
    caches_.emplace_back();
  } else {
    cache_index_.push_back(kNil);
  }
  bucket(id);
  ++topo_epoch_;
  ++structural_epoch_;
  if (full_stack) {
    // Full-stack nodes own events: RNG stream, mailbox lane, and a shard
    // pinned to the home region so neighborhood traffic stays shard-local.
    sim_.ensure_owner(id);
    sim_.place_owner(id, ri);
  }
  return id;
}

NodeId World::add_node(std::string_view name, Vec2 position) {
  return admit(name, position, /*full_stack=*/true);
}

NodeId World::add_crowd_node(std::string_view name, Vec2 position) {
  return admit(name, position, /*full_stack=*/false);
}

std::string_view World::name(NodeId id) const {
  OMNI_CHECK_MSG(id < node_ref_.size(), "unknown node id");
  return std::string_view(name_arena_).substr(
      name_off_[id], name_off_[id + 1] - name_off_[id]);
}

std::uint32_t World::region_of(NodeId id) const {
  OMNI_ASSERTF(id < node_ref_.size(), "unknown node id %u",
               static_cast<unsigned>(id));
  return node_ref_[id].region;
}

// --- Motion ------------------------------------------------------------------

Vec2 World::position(NodeId id) const {
  OMNI_ASSERTF(id < node_ref_.size(), "unknown node id %u",
               static_cast<unsigned>(id));
  const NodeRef ref = node_ref_[id];
  const Region& r = regions_[ref.region];
  Vec2 to = r.to[ref.slot];
  TimePoint depart = r.depart[ref.slot];
  TimePoint arrive = r.arrive[ref.slot];
  if (arrive == depart) return to;
  TimePoint now = sim_.now();
  if (now >= arrive) return to;
  double total = (arrive - depart).as_seconds();
  double done = (now - depart).as_seconds();
  double f = total > 0 ? done / total : 1.0;
  Vec2 from = r.from[ref.slot];
  return from + (to - from) * f;
}

void World::set_position(NodeId id, Vec2 position) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  OMNI_CHECK_MSG(id < node_ref_.size(), "unknown node id");
  unbucket(id);
  std::int64_t rx = region_coord(cell_coord(position.x));
  std::int64_t ry = region_coord(cell_coord(position.y));
  NodeRef ref = node_ref_[id];
  if (regions_[ref.region].rx != rx || regions_[ref.region].ry != ry) {
    migrate(id, rx, ry);
    ref = node_ref_[id];
  }
  Region& r = regions_[ref.region];
  r.from[ref.slot] = r.to[ref.slot] = position;
  r.depart[ref.slot] = r.arrive[ref.slot] = sim_.now();
  ++r.epoch;
  bucket(id);
  ++topo_epoch_;
}

void World::move_to(NodeId id, Vec2 target, double speed_mps) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  OMNI_CHECK_MSG(speed_mps > 0, "move_to requires positive speed");
  OMNI_CHECK_MSG(id < node_ref_.size(), "unknown node id");
  Vec2 start = position(id);
  unbucket(id);
  // Residency follows the segment endpoint: the hot row lands in the region
  // the node is walking into, so it is already home when it arrives.
  std::int64_t rx = region_coord(cell_coord(target.x));
  std::int64_t ry = region_coord(cell_coord(target.y));
  NodeRef ref = node_ref_[id];
  if (regions_[ref.region].rx != rx || regions_[ref.region].ry != ry) {
    migrate(id, rx, ry);
    ref = node_ref_[id];
  }
  Region& r = regions_[ref.region];
  double dist = Vec2::distance(start, target);
  r.from[ref.slot] = start;
  r.to[ref.slot] = target;
  r.depart[ref.slot] = sim_.now();
  r.arrive[ref.slot] = sim_.now() + Duration::seconds(dist / speed_mps);
  ++r.epoch;
  if (r.arrive[ref.slot] > moving_until_) moving_until_ = r.arrive[ref.slot];
  bucket(id);
  ++topo_epoch_;
}

double World::distance(NodeId a, NodeId b) const {
  return Vec2::distance(position(a), position(b));
}

void World::migrate(NodeId id, std::int64_t rx, std::int64_t ry) {
  NodeRef ref = node_ref_[id];
  // Handoff record: the motion row leaves the source SoA...
  Region& src = regions_[ref.region];
  Vec2 from = src.from[ref.slot];
  Vec2 to = src.to[ref.slot];
  TimePoint depart = src.depart[ref.slot];
  TimePoint arrive = src.arrive[ref.slot];
  std::uint32_t last = static_cast<std::uint32_t>(src.ids.size() - 1);
  if (ref.slot != last) {
    NodeId moved = src.ids[last];
    src.ids[ref.slot] = moved;
    src.from[ref.slot] = src.from[last];
    src.to[ref.slot] = src.to[last];
    src.depart[ref.slot] = src.depart[last];
    src.arrive[ref.slot] = src.arrive[last];
    node_ref_[moved].slot = ref.slot;
  }
  src.ids.pop_back();
  src.from.pop_back();
  src.to.pop_back();
  src.depart.pop_back();
  src.arrive.pop_back();
  ++src.epoch;
  // ...and is appended to the destination's (which may not exist yet; the
  // lookup can reallocate regions_, so `src` is dead past this point).
  std::uint32_t di = region_index_at(rx, ry);
  Region& dst = regions_[di];
  node_ref_[id] = NodeRef{di, static_cast<std::uint32_t>(dst.ids.size())};
  dst.ids.push_back(id);
  dst.from.push_back(from);
  dst.to.push_back(to);
  dst.depart.push_back(depart);
  dst.arrive.push_back(arrive);
  ++dst.epoch;
  ++migrations_;
}

// --- Grid maintenance --------------------------------------------------------

void World::bucket(NodeId id) {
  const NodeRef ref = node_ref_[id];
  // Copy the segment out first: region_index_at below may reallocate
  // regions_ when a listing touches a tile with no residents yet.
  Vec2 a = regions_[ref.region].from[ref.slot];
  Vec2 b = regions_[ref.region].to[ref.slot];
  std::int64_t cx0 = cell_coord(std::min(a.x, b.x));
  std::int64_t cx1 = cell_coord(std::max(a.x, b.x));
  std::int64_t cy0 = cell_coord(std::min(a.y, b.y));
  std::int64_t cy1 = cell_coord(std::max(a.y, b.y));
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      Region& r = regions_[region_index_at(region_coord(cx), region_coord(cy))];
      cell_insert(r, pack_key(cx, cy), id);
      ++r.epoch;
    }
  }
}

void World::unbucket(NodeId id) {
  // The listed cell set is a pure function of the current segment, so it is
  // recomputed instead of stored per node; every mutator unbuckets before
  // touching the segment.
  const NodeRef ref = node_ref_[id];
  Vec2 a = regions_[ref.region].from[ref.slot];
  Vec2 b = regions_[ref.region].to[ref.slot];
  std::int64_t cx0 = cell_coord(std::min(a.x, b.x));
  std::int64_t cx1 = cell_coord(std::max(a.x, b.x));
  std::int64_t cy0 = cell_coord(std::min(a.y, b.y));
  std::int64_t cy1 = cell_coord(std::max(a.y, b.y));
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      auto it = region_index_.find(pack_key(region_coord(cx), region_coord(cy)));
      OMNI_CHECK_MSG(it != region_index_.end(), "listed region missing");
      Region& r = regions_[it->second];
      cell_remove(r, pack_key(cx, cy), id);
      ++r.epoch;
    }
  }
}

void World::repartition() {
  std::size_t n = node_ref_.size();
  std::vector<Vec2> from(n), to(n);
  std::vector<TimePoint> depart(n), arrive(n);
  for (NodeId id = 0; id < n; ++id) {
    const NodeRef ref = node_ref_[id];
    const Region& r = regions_[ref.region];
    from[id] = r.from[ref.slot];
    to[id] = r.to[ref.slot];
    depart[id] = r.depart[ref.slot];
    arrive[id] = r.arrive[ref.slot];
  }
  regions_.clear();
  region_index_.clear();
  for (NodeId id = 0; id < n; ++id) {
    std::uint32_t ri = region_index_at(region_coord(cell_coord(to[id].x)),
                                       region_coord(cell_coord(to[id].y)));
    Region& r = regions_[ri];
    node_ref_[id] = NodeRef{ri, static_cast<std::uint32_t>(r.ids.size())};
    r.ids.push_back(id);
    r.from.push_back(from[id]);
    r.to.push_back(to[id]);
    r.depart.push_back(depart[id]);
    r.arrive.push_back(arrive[id]);
  }
  for (NodeId id = 0; id < n; ++id) bucket(id);
  ++topo_epoch_;
  ++structural_epoch_;
}

void World::set_grid_cell_size(double meters) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  OMNI_CHECK_MSG(meters > 0, "grid cell size must be positive");
  if (meters == cell_m_) return;
  cell_m_ = meters;
  repartition();
}

void World::set_region_cells(std::uint32_t cells) {
  OMNI_CHECK_MSG(sim_.owns_context(kGlobalOwner),
                 "world mutation must be barrier-serialized (global events)");
  if (cells == region_cells_) return;
  region_cells_ = cells;
  repartition();
}

// --- Queries -----------------------------------------------------------------

void World::nodes_in_disc(Vec2 center, double range,
                          std::vector<NodeId>& out) const {
  out.clear();
  if (range < 0) return;
  // Squared-distance filter: one multiply per candidate instead of a sqrt.
  double range_sq = range * range;
  auto within = [&](NodeId id) {
    Vec2 d = position(id) - center;
    return d.x * d.x + d.y * d.y <= range_sq;
  };
  std::int64_t cx0 = cell_coord(center.x - range);
  std::int64_t cx1 = cell_coord(center.x + range);
  std::int64_t cy0 = cell_coord(center.y - range);
  std::int64_t cy1 = cell_coord(center.y + range);
  // Very large query discs degenerate to a full scan: cheaper than probing
  // more cells than there are nodes.
  std::uint64_t cells = static_cast<std::uint64_t>(cx1 - cx0 + 1) *
                        static_cast<std::uint64_t>(cy1 - cy0 + 1);
  if (cells >= node_ref_.size()) {
    for (NodeId id = 0; id < node_ref_.size(); ++id) {
      if (within(id)) out.push_back(id);
    }
    return;
  }
  // Walk the overlapped region tiles; within each, probe only the cells of
  // the query rectangle clipped to that tile.
  std::int64_t k = static_cast<std::int64_t>(region_cells_);
  std::int64_t rx0 = region_coord(cx0), rx1 = region_coord(cx1);
  std::int64_t ry0 = region_coord(cy0), ry1 = region_coord(cy1);
  for (std::int64_t ry = ry0; ry <= ry1; ++ry) {
    for (std::int64_t rx = rx0; rx <= rx1; ++rx) {
      const Region* r = find_region(rx, ry);
      if (r == nullptr || r->cells.empty()) continue;
      std::int64_t bx0 = cx0, bx1 = cx1, by0 = cy0, by1 = cy1;
      if (region_cells_ != 0) {
        bx0 = std::max(bx0, rx * k);
        bx1 = std::min(bx1, rx * k + k - 1);
        by0 = std::max(by0, ry * k);
        by1 = std::min(by1, ry * k + k - 1);
      }
      for (std::int64_t cy = by0; cy <= by1; ++cy) {
        for (std::int64_t cx = bx0; cx <= bx1; ++cx) {
          for (std::uint32_t li = cell_head(*r, pack_key(cx, cy)); li != kNil;
               li = r->links[li].next) {
            NodeId id = r->links[li].id;
            if (within(id)) out.push_back(id);
          }
        }
      }
    }
  }
  // A moving node is listed in every cell its segment overlaps; sort and
  // drop duplicates so callers see each node once, ascending by id.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

std::uint64_t World::neighborhood_epoch(Vec2 center, double range) const {
  if (range < 0) return structural_epoch_;
  std::int64_t cx0 = cell_coord(center.x - range);
  std::int64_t cx1 = cell_coord(center.x + range);
  std::int64_t cy0 = cell_coord(center.y - range);
  std::int64_t cy1 = cell_coord(center.y + range);
  std::uint64_t cells = static_cast<std::uint64_t>(cx1 - cx0 + 1) *
                        static_cast<std::uint64_t>(cy1 - cy0 + 1);
  std::int64_t rx0 = region_coord(cx0), rx1 = region_coord(cx1);
  std::int64_t ry0 = region_coord(cy0), ry1 = region_coord(cy1);
  std::uint64_t tiles = static_cast<std::uint64_t>(rx1 - rx0 + 1) *
                        static_cast<std::uint64_t>(ry1 - ry0 + 1);
  // Full-scan regime (disc covers the world) or a pathologically wide disc:
  // fall back to the coarse global epoch — over-invalidation is always
  // correct, unbounded tile walks are not.
  if (cells >= node_ref_.size() || tiles > 256) {
    return structural_epoch_ + topo_epoch_;
  }
  // Each region's epoch only ever grows, so the sum over a fixed tile set is
  // strictly monotonic; a tile gaining its first resident bumps its epoch
  // above the 0 an absent tile contributes. Callers additionally compare the
  // disc center, which pins the tile set itself.
  std::uint64_t e = structural_epoch_;
  for (std::int64_t ry = ry0; ry <= ry1; ++ry) {
    for (std::int64_t rx = rx0; rx <= rx1; ++rx) {
      const Region* r = find_region(rx, ry);
      if (r != nullptr) e += r->epoch;
    }
  }
  return e;
}

void World::nodes_near(NodeId of, double range,
                       std::vector<NodeId>& out) const {
  // The per-node cache below is written through a const method. That is safe
  // under the parallel engine only because each node's cache has a single
  // writer: shard events may consult *their own* node's cache (radio fan-out
  // is always queried from the transmitting node), and everything else runs
  // barrier-serialized. Enforce the contract rather than document it.
  OMNI_ASSERTF(sim_.owns_context(of),
               "nodes_near(%u): concurrent contexts may only query their own "
               "node's neighbor cache",
               static_cast<unsigned>(of));
  OMNI_ASSERTF(of < node_ref_.size(), "unknown node id %u",
               static_cast<unsigned>(of));
  if (sim_.now() < moving_until_) {
    // Some motion segment may still be in flight: positions interpolate, so
    // cached neighbor sets can silently rot. Query the grid directly.
    nodes_in_disc(position(of), range, out);
    return;
  }
  // World static: every node sits at its segment endpoint (`to`).
  const NodeRef ref = node_ref_[of];
  Vec2 home = regions_[ref.region].to[ref.slot];
  std::uint32_t ci = cache_index_[of];
  if (ci == kNil) {
    // Crowd nodes carry no cache slot (they own no events, so nothing beacons
    // from them periodically anyway).
    nodes_in_disc(home, range, out);
    return;
  }
  NearCache& cache = caches_[ci];
  std::uint64_t nb = neighborhood_epoch(home, range);
  if (cache.nb_epoch != nb || cache.range != range ||
      !(cache.center == home)) {
    nodes_in_disc(home, range, cache.ids);
    cache.nb_epoch = nb;
    cache.range = range;
    cache.center = home;
  }
  out.assign(cache.ids.begin(), cache.ids.end());
}

void World::neighbors(NodeId of, double range,
                      std::vector<NodeId>& out) const {
  nodes_in_disc(position(of), range, out);
  out.erase(std::remove(out.begin(), out.end(), of), out.end());
}

std::vector<NodeId> World::neighbors(NodeId of, double range) const {
  std::vector<NodeId> out;
  neighbors(of, range, out);
  return out;
}

// --- Snapshot ----------------------------------------------------------------

void World::snapshot_rows(std::vector<SnapshotRow>& out) const {
  out.clear();
  out.reserve(node_ref_.size());
  for (NodeId id = 0; id < node_ref_.size(); ++id) {
    const NodeRef& ref = node_ref_[id];
    const Region& r = regions_[ref.region];
    out.push_back(SnapshotRow{id, cache_index_[id] != kNil, r.from[ref.slot],
                              r.to[ref.slot], r.depart[ref.slot],
                              r.arrive[ref.slot]});
  }
}

// --- Telemetry ---------------------------------------------------------------

World::MemoryStats World::memory_stats() const {
  MemoryStats m;
  for (const Region& r : regions_) {
    m.hot_bytes += r.ids.capacity() * sizeof(NodeId) +
                   (r.from.capacity() + r.to.capacity()) * sizeof(Vec2) +
                   (r.depart.capacity() + r.arrive.capacity()) *
                       sizeof(TimePoint);
    m.grid_bytes += r.cells.capacity() * sizeof(Region::CellSlot) +
                    r.links.capacity() * sizeof(Region::Link);
  }
  m.name_bytes = name_arena_.capacity() +
                 name_off_.capacity() * sizeof(std::uint32_t);
  for (const NearCache& c : caches_) {
    m.cache_bytes += sizeof(NearCache) + c.ids.capacity() * sizeof(NodeId);
  }
  m.cache_bytes += caches_.capacity() * sizeof(NearCache) -
                   caches_.size() * sizeof(NearCache);
  m.directory_bytes = node_ref_.capacity() * sizeof(NodeRef) +
                      cache_index_.capacity() * sizeof(std::uint32_t) +
                      regions_.capacity() * sizeof(Region) +
                      region_index_.size() *
                          (sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                           2 * sizeof(void*));
  return m;
}

}  // namespace omni::sim
