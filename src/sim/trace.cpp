#include "sim/trace.h"

#include <ostream>

namespace omni::sim {
namespace {

// RFC 4180 field quoting: a field containing a comma, quote, or newline is
// wrapped in double quotes, with embedded quotes doubled. Plain fields pass
// through untouched so existing numeric columns stay byte-stable.
void write_field(std::ostream& os, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

std::size_t TraceRecorder::count(const std::string& category) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

std::vector<TraceEvent> TraceRecorder::in_category(
    const std::string& category) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) out.push_back(e);
  }
  return out;
}

TimePoint TraceRecorder::first_time(const std::string& category,
                                    const std::string& label) const {
  for (const auto& e : events_) {
    if (e.category == category && (label.empty() || e.label == label)) {
      return e.at;
    }
  }
  return TimePoint::max();
}

TimePoint TraceRecorder::last_time(const std::string& category,
                                   const std::string& label) const {
  TimePoint out = TimePoint::max();
  for (const auto& e : events_) {
    if (e.category == category && (label.empty() || e.label == label)) {
      out = e.at;
    }
  }
  return out;
}

double TraceRecorder::sum(const std::string& category) const {
  double total = 0;
  for (const auto& e : events_) {
    if (e.category == category) total += e.value;
  }
  return total;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_s,category,label,value\n";
  for (const auto& e : events_) {
    os << e.at.as_seconds() << ',';
    write_field(os, e.category);
    os << ',';
    write_field(os, e.label);
    os << ',' << e.value << '\n';
  }
}

}  // namespace omni::sim
