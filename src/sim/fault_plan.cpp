#include "sim/fault_plan.h"

namespace omni::sim {

std::uint64_t FaultPlan::mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double FaultPlan::draw(std::uint64_t stream, NodeId src, NodeId dst,
                       TimePoint at, std::uint64_t salt) const {
  std::uint64_t h = mix(seed_ ^ stream);
  h = mix(h ^ ((static_cast<std::uint64_t>(src) << 32) |
               static_cast<std::uint64_t>(dst)));
  h = mix(h ^ static_cast<std::uint64_t>(at.as_micros()));
  h = mix(h ^ salt);
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultPlan::matches(const LinkFault& f, NodeId src, NodeId dst,
                        FaultRadio radio, TimePoint at) {
  if (at < f.start || at >= f.end) return false;
  if (f.radio != FaultRadio::kAll && f.radio != radio) return false;
  if (f.src != kAnyNode && f.src != src) return false;
  if (f.dst != kAnyNode && f.dst != dst) return false;
  return true;
}

bool FaultPlan::dropped(NodeId src, NodeId dst, FaultRadio radio, TimePoint at,
                        std::uint64_t salt) const {
  // Independent loss processes compose: survive each matching entry.
  for (std::size_t i = 0; i < link_faults_.size(); ++i) {
    const LinkFault& f = link_faults_[i];
    if (f.loss <= 0.0 || !matches(f, src, dst, radio, at)) continue;
    if (f.loss >= 1.0) return true;
    // Stream 1 = loss draws; fold in the entry index so two overlapping
    // entries sample independently.
    if (draw(1 + (i << 8), src, dst, at, salt) < f.loss) return true;
  }
  return false;
}

bool FaultPlan::corrupted(NodeId src, NodeId dst, FaultRadio radio,
                          TimePoint at, std::uint64_t salt) const {
  for (std::size_t i = 0; i < link_faults_.size(); ++i) {
    const LinkFault& f = link_faults_[i];
    if (f.corrupt <= 0.0 || !matches(f, src, dst, radio, at)) continue;
    if (f.corrupt >= 1.0) return true;
    // Stream 2 = corruption draws.
    if (draw(2 + (i << 8), src, dst, at, salt) < f.corrupt) return true;
  }
  return false;
}

Duration FaultPlan::extra_latency(NodeId src, NodeId dst, FaultRadio radio,
                                  TimePoint at) const {
  Duration total = Duration::zero();
  for (const LinkFault& f : link_faults_) {
    if (f.extra_latency <= Duration::zero()) continue;
    if (!matches(f, src, dst, radio, at)) continue;
    total += f.extra_latency;
  }
  return total;
}

bool FaultPlan::partition_active(TimePoint at) const {
  for (const Partition& p : partitions_) {
    if (at >= p.start && at < p.end) return true;
  }
  return false;
}

bool FaultPlan::partitioned(Vec2 a, Vec2 b, TimePoint at) const {
  for (const Partition& p : partitions_) {
    if (at < p.start || at >= p.end) continue;
    double sa = p.a * a.x + p.b * a.y - p.c;
    double sb = p.a * b.x + p.b * b.y - p.c;
    // Opposite (strict) sides of the boundary line cannot hear each other;
    // a node exactly on the line hears both sides.
    if ((sa < 0 && sb > 0) || (sa > 0 && sb < 0)) return true;
  }
  return false;
}

void FaultPlan::corrupt_in_place(Bytes& frame, std::uint64_t salt) {
  if (frame.empty()) return;
  // Flip a salt-chosen byte plus the first byte: packet decoders key on the
  // leading type/version octets, so the frame reliably fails to parse
  // rather than aliasing into a different valid packet.
  std::uint64_t h = mix(salt ^ 0xc0412u);
  frame[h % frame.size()] ^= static_cast<std::uint8_t>(0x80u | (h >> 56));
  frame[0] ^= 0xa5u;
}

}  // namespace omni::sim
