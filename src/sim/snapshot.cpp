#include "sim/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/assert.h"
#include "common/hash.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::sim {

// --- Section table -----------------------------------------------------------

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecManifest: return "manifest";
    case kSecEvents: return "events";
    case kSecRng: return "rng";
    case kSecWorld: return "world";
    case kSecFaults: return "faults";
    case kSecManagers: return "managers";
    case kSecMetrics: return "metrics";
    default: {
      static thread_local char buf[16];
      std::snprintf(buf, sizeof(buf), "sec%u", id);
      return buf;
    }
  }
}

SnapshotSection& Snapshot::section(std::uint32_t id) {
  auto it = std::lower_bound(
      sections.begin(), sections.end(), id,
      [](const SnapshotSection& s, std::uint32_t key) { return s.id < key; });
  if (it != sections.end() && it->id == id) return *it;
  return *sections.insert(it, SnapshotSection{id, {}});
}

const SnapshotSection* Snapshot::find(std::uint32_t id) const {
  for (const SnapshotSection& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

// --- Byte codec --------------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::var(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svar(std::int64_t v) {
  var((static_cast<std::uint64_t>(v) << 1) ^
      static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  var(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p;
  return take(1, &p) ? *p : 0;
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::var() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t* p;
    if (!take(1, &p)) return 0;
    v |= static_cast<std::uint64_t>(*p & 0x7f) << shift;
    if ((*p & 0x80) == 0) return v;
  }
  ok_ = false;  // varint longer than 10 bytes: malformed
  return 0;
}

std::int64_t ByteReader::svar() {
  std::uint64_t z = var();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string ByteReader::str() {
  std::uint64_t n = var();
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

// --- Manifest ----------------------------------------------------------------

void write_manifest(const SnapshotManifest& m, Snapshot& snap) {
  ByteWriter w;
  w.u64(m.seed);
  w.svar(m.at.as_micros());
  w.var(m.threads);
  w.var(m.executed_events);
  w.var(m.node_count);
  w.var(m.device_count);
  w.str(m.label);
  w.u64(m.scenario_hash);
  w.str(m.scenario_text);
  snap.section(kSecManifest).bytes = w.take();
}

Result<SnapshotManifest> read_manifest(const Snapshot& snap) {
  const SnapshotSection* s = snap.find(kSecManifest);
  if (s == nullptr) {
    return Result<SnapshotManifest>::error("snapshot has no manifest section");
  }
  ByteReader r(s->bytes);
  SnapshotManifest m;
  m.seed = r.u64();
  m.at = TimePoint::from_micros(r.svar());
  m.threads = static_cast<std::uint32_t>(r.var());
  m.executed_events = r.var();
  m.node_count = r.var();
  m.device_count = r.var();
  m.label = r.str();
  m.scenario_hash = r.u64();
  m.scenario_text = r.str();
  if (!r.done()) {
    return Result<SnapshotManifest>::error("manifest section is malformed");
  }
  return m;
}

// --- State capture -----------------------------------------------------------

void capture_events(const Simulator& sim, TimePoint at, Snapshot& snap) {
  std::vector<Simulator::PendingEvent> pending;
  sim.snapshot_pending(pending);
  // Canonical order: owner-major, then fire order within the owner. Each
  // owner's events live in exactly one queue, so its generations — though
  // thread-count-dependent in *value* — give the exact thread-invariant fire
  // order when sorted under (at, generation). Generations are then dropped.
  std::sort(pending.begin(), pending.end(),
            [](const Simulator::PendingEvent& a,
               const Simulator::PendingEvent& b) {
              if (a.owner != b.owner) return a.owner < b.owner;
              if (a.at != b.at) return a.at < b.at;
              return a.generation < b.generation;
            });
  ByteWriter w;
  w.var(pending.size());
  std::size_t i = 0;
  while (i < pending.size()) {
    const OwnerId owner = pending[i].owner;
    std::size_t j = i;
    while (j < pending.size() && pending[j].owner == owner) ++j;
    w.var(owner);
    w.var(j - i);
    for (; i < j; ++i) {
      const std::int64_t rel = (pending[i].at - at).as_micros();
      OMNI_ASSERTF(rel >= 0, "pending event predates capture instant (owner %u)",
                   owner);
      w.var((static_cast<std::uint64_t>(rel) << 1) |
            (pending[i].immediate ? 1u : 0u));
    }
  }
  snap.section(kSecEvents).bytes = w.take();
}

void capture_rng(const Simulator& sim, Snapshot& snap) {
  std::vector<std::pair<OwnerId, std::uint64_t>> digests;
  sim.snapshot_rng_digests(digests);
  const std::vector<std::uint64_t>& seqs = sim.owner_seqs();
  ByteWriter w;
  w.var(digests.size());
  for (const auto& [owner, digest] : digests) {
    w.var(owner);
    w.u64(digest);
    w.var(owner < seqs.size() ? seqs[owner] : 0);
  }
  snap.section(kSecRng).bytes = w.take();
}

void capture_world(const World& world, Snapshot& snap) {
  std::vector<World::SnapshotRow> rows;
  world.snapshot_rows(rows);
  ByteWriter w;
  w.var(rows.size());
  for (const World::SnapshotRow& row : rows) {
    // Rows arrive ascending by id with no holes, so the id itself is implied
    // by position. A "static" row (never moved, or teleported: depart ==
    // arrive and from == to) compresses to flags + one position — the
    // representation that keeps a crowd node well under its 64 B budget.
    const bool is_static = row.from == row.to && row.depart == row.arrive;
    w.u8(static_cast<std::uint8_t>((row.full_stack ? 1 : 0) |
                                   (is_static ? 2 : 0)));
    w.f64(row.to.x);
    w.f64(row.to.y);
    if (!is_static) {
      w.f64(row.from.x);
      w.f64(row.from.y);
      w.svar(row.depart.as_micros());
      w.svar(row.arrive.as_micros());
    }
  }
  snap.section(kSecWorld).bytes = w.take();
}

void capture_faults(const FaultPlan& plan, Snapshot& snap) {
  ByteWriter w;
  w.u64(plan.seed());
  w.var(plan.link_faults().size());
  for (const auto& f : plan.link_faults()) {
    w.svar(f.start.as_micros());
    w.svar(f.end == TimePoint::max() ? -1 : f.end.as_micros());
    w.u8(static_cast<std::uint8_t>(f.radio));
    w.var(f.src);
    w.var(f.dst);
    w.f64(f.loss);
    w.f64(f.corrupt);
    w.svar(f.extra_latency.as_micros());
  }
  w.var(plan.blackouts().size());
  for (const auto& b : plan.blackouts()) {
    w.var(b.node);
    w.u8(static_cast<std::uint8_t>(b.radio));
    w.svar(b.start.as_micros());
    w.svar(b.end == TimePoint::max() ? -1 : b.end.as_micros());
    w.svar(b.period.as_micros());
    w.f64(b.off_fraction);
  }
  w.var(plan.crashes().size());
  for (const auto& c : plan.crashes()) {
    w.var(c.node);
    w.svar(c.at.as_micros());
    w.svar(c.restart.as_micros());
    w.u8(c.rotate_addresses ? 1 : 0);
  }
  w.var(plan.partitions().size());
  for (const auto& p : plan.partitions()) {
    w.svar(p.start.as_micros());
    w.svar(p.end == TimePoint::max() ? -1 : p.end.as_micros());
    w.f64(p.a);
    w.f64(p.b);
    w.f64(p.c);
  }
  const FaultPlan::Stats st = plan.stats();
  w.var(st.drops);
  w.var(st.corruptions);
  w.var(st.delays);
  w.var(st.partition_drops);
  snap.section(kSecFaults).bytes = w.take();
}

// --- Serialization / file I/O ------------------------------------------------

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap) {
  ByteWriter w;
  w.u8(kSnapshotMagic[0]);
  w.u8(kSnapshotMagic[1]);
  w.u8(kSnapshotMagic[2]);
  w.u8(kSnapshotMagic[3]);
  w.u32(snap.version);
  w.u32(static_cast<std::uint32_t>(snap.sections.size()));
  for (const SnapshotSection& s : snap.sections) {
    w.u32(s.id);
    w.u64(s.bytes.size());
    w.u64(fnv1a64(s.bytes));
  }
  // Trailer guards the header + table themselves (a bit-flip in a size or
  // checksum field must be detected too, not misattributed to a payload).
  const std::uint64_t head_sum = fnv1a64(w.bytes());
  std::vector<std::uint8_t> out = w.take();
  for (const SnapshotSection& s : snap.sections) {
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  ByteWriter tail;
  tail.u64(head_sum);
  const std::vector<std::uint8_t>& t = tail.bytes();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

Result<Snapshot> parse_snapshot(std::span<const std::uint8_t> data) {
  using R = Result<Snapshot>;
  if (data.size() < 12) return R::error("snapshot truncated: no header");
  if (std::memcmp(data.data(), kSnapshotMagic, 4) != 0) {
    return R::error("not a snapshot file (bad magic)");
  }
  ByteReader r(data);
  r.u32();  // magic, verified above
  Snapshot snap;
  snap.version = r.u32();
  if (snap.version != kSnapshotVersion) {
    return R::error("unsupported snapshot version " +
                    std::to_string(snap.version) + " (expected " +
                    std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint32_t count = r.u32();
  // Bound the table before trusting it: each entry is 20 bytes.
  if (!r.ok() || r.remaining() < static_cast<std::size_t>(count) * 20) {
    return R::error("snapshot truncated: section table cut short");
  }
  struct Entry {
    std::uint32_t id;
    std::uint64_t size;
    std::uint64_t checksum;
  };
  std::vector<Entry> table;
  table.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.id = r.u32();
    e.size = r.u64();
    e.checksum = r.u64();
    table.push_back(e);
  }
  const std::size_t head_bytes = 12 + static_cast<std::size_t>(count) * 20;
  const std::uint64_t head_sum =
      fnv1a64(std::span<const std::uint8_t>(data.data(), head_bytes));
  std::uint32_t prev_id = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Entry& e = table[i];
    if (i > 0 && e.id <= prev_id) {
      return R::error("snapshot corrupt: section table ids not ascending");
    }
    prev_id = e.id;
    if (e.size > r.remaining()) {
      return R::error(std::string("snapshot truncated: section '") +
                      section_name(e.id) + "' extends past end of file");
    }
    SnapshotSection s;
    s.id = e.id;
    s.bytes.resize(static_cast<std::size_t>(e.size));
    for (std::size_t b = 0; b < s.bytes.size(); ++b) s.bytes[b] = r.u8();
    if (fnv1a64(s.bytes) != e.checksum) {
      return R::error(std::string("snapshot corrupt: checksum mismatch in "
                                  "section '") +
                      section_name(e.id) + "'");
    }
    snap.sections.push_back(std::move(s));
  }
  if (r.remaining() < 8) {
    return R::error("snapshot truncated: missing trailer checksum");
  }
  if (r.u64() != head_sum) {
    return R::error("snapshot corrupt: header/table checksum mismatch");
  }
  if (!r.done()) {
    return R::error("snapshot corrupt: trailing bytes after trailer");
  }
  return snap;
}

Status write_snapshot_file(const std::string& path, const Snapshot& snap) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::error("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    return Status::error("short write to '" + path + "'");
  }
  return Status::ok();
}

Result<Snapshot> read_snapshot_file(const std::string& path) {
  using R = Result<Snapshot>;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return R::error("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  Result<Snapshot> parsed = parse_snapshot(bytes);
  if (!parsed) {
    return R::error("'" + path + "': " + parsed.error_message());
  }
  return parsed;
}

// --- Verify / diff -----------------------------------------------------------

std::uint64_t snapshot_digest(const Snapshot& snap) {
  return fnv1a64(serialize_snapshot(snap));
}

std::string diff_snapshots(const Snapshot& a, const Snapshot& b,
                           bool skip_manifest) {
  std::string out;
  auto note = [&out](const std::string& line) {
    if (!out.empty()) out += "; ";
    out += line;
  };
  std::size_t ia = 0, ib = 0;
  while (ia < a.sections.size() || ib < b.sections.size()) {
    const SnapshotSection* sa =
        ia < a.sections.size() ? &a.sections[ia] : nullptr;
    const SnapshotSection* sb =
        ib < b.sections.size() ? &b.sections[ib] : nullptr;
    if (sb == nullptr || (sa != nullptr && sa->id < sb->id)) {
      note(std::string("section '") + section_name(sa->id) +
           "' only in first");
      ++ia;
      continue;
    }
    if (sa == nullptr || sb->id < sa->id) {
      note(std::string("section '") + section_name(sb->id) +
           "' only in second");
      ++ib;
      continue;
    }
    ++ia;
    ++ib;
    if (skip_manifest && sa->id == kSecManifest) continue;
    if (sa->bytes == sb->bytes) continue;
    std::size_t off = 0;
    const std::size_t lim = std::min(sa->bytes.size(), sb->bytes.size());
    while (off < lim && sa->bytes[off] == sb->bytes[off]) ++off;
    note(std::string("section '") + section_name(sa->id) + "' diverges (" +
         std::to_string(sa->bytes.size()) + " vs " +
         std::to_string(sb->bytes.size()) + " bytes, first difference at +" +
         std::to_string(off) + ")");
  }
  return out;
}

std::string describe_snapshot(const Snapshot& snap) {
  std::string out;
  char line[256];
  Result<SnapshotManifest> mr = read_manifest(snap);
  if (mr) {
    const SnapshotManifest& m = mr.value();
    std::snprintf(line, sizeof(line),
                  "manifest: seed=%llu t=%.6fs threads=%u executed=%llu "
                  "nodes=%llu devices=%llu label='%s' scenario_hash=%016llx\n",
                  static_cast<unsigned long long>(m.seed),
                  static_cast<double>(m.at.as_micros()) / 1e6, m.threads,
                  static_cast<unsigned long long>(m.executed_events),
                  static_cast<unsigned long long>(m.node_count),
                  static_cast<unsigned long long>(m.device_count),
                  m.label.c_str(),
                  static_cast<unsigned long long>(m.scenario_hash));
    out += line;
  } else {
    out += "manifest: " + mr.error_message() + "\n";
  }
  for (const SnapshotSection& s : snap.sections) {
    std::string detail;
    ByteReader r(s.bytes);
    switch (s.id) {
      case kSecEvents: {
        const std::uint64_t n = r.var();
        std::uint64_t owners = 0, seen = 0;
        while (r.ok() && seen < n) {
          r.var();  // owner
          const std::uint64_t cnt = r.var();
          for (std::uint64_t i = 0; r.ok() && i < cnt; ++i) r.var();
          seen += cnt;
          ++owners;
        }
        if (r.ok()) {
          detail = std::to_string(n) + " pending events across " +
                   std::to_string(owners) + " owners";
        }
        break;
      }
      case kSecRng:
        detail = std::to_string(r.var()) + " owner streams";
        break;
      case kSecWorld:
        detail = std::to_string(r.var()) + " nodes";
        break;
      case kSecManagers:
        detail = std::to_string(r.var()) + " managers";
        break;
      default:
        break;
    }
    std::snprintf(line, sizeof(line), "%-10s %8zu bytes  fnv=%016llx%s%s\n",
                  section_name(s.id), s.bytes.size(),
                  static_cast<unsigned long long>(fnv1a64(s.bytes)),
                  detail.empty() ? "" : "  ", detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace omni::sim
