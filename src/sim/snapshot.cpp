#include "sim/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/assert.h"
#include "common/hash.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::sim {

// --- Section table -----------------------------------------------------------

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecManifest: return "manifest";
    case kSecEvents: return "events";
    case kSecRng: return "rng";
    case kSecWorld: return "world";
    case kSecFaults: return "faults";
    case kSecManagers: return "managers";
    case kSecMetrics: return "metrics";
    case kSecEventDescs: return "event-descs";
    default: {
      static thread_local char buf[16];
      std::snprintf(buf, sizeof(buf), "sec%u", id);
      return buf;
    }
  }
}

const codec::ContainerSpec& snapshot_spec() {
  static const codec::ContainerSpec spec = {
      {kSnapshotMagic[0], kSnapshotMagic[1], kSnapshotMagic[2],
       kSnapshotMagic[3]},
      kSnapshotVersion,
      "snapshot",
      &section_name,
  };
  return spec;
}

// --- Manifest ----------------------------------------------------------------

void write_manifest(const SnapshotManifest& m, Snapshot& snap) {
  ByteWriter w;
  w.u64(m.seed);
  w.svar(m.at.as_micros());
  w.var(m.threads);
  w.var(m.executed_events);
  w.var(m.node_count);
  w.var(m.device_count);
  w.str(m.label);
  w.u64(m.scenario_hash);
  w.str(m.scenario_text);
  snap.section(kSecManifest).bytes = w.take();
}

Result<SnapshotManifest> read_manifest(const Snapshot& snap) {
  const SnapshotSection* s = snap.find(kSecManifest);
  if (s == nullptr) {
    return Result<SnapshotManifest>::error("snapshot has no manifest section");
  }
  ByteReader r(s->bytes);
  SnapshotManifest m;
  m.seed = r.u64();
  m.at = TimePoint::from_micros(r.svar());
  m.threads = static_cast<std::uint32_t>(r.var());
  m.executed_events = r.var();
  m.node_count = r.var();
  m.device_count = r.var();
  m.label = r.str();
  m.scenario_hash = r.u64();
  m.scenario_text = r.str();
  if (!r.done()) {
    return Result<SnapshotManifest>::error("manifest section is malformed");
  }
  return m;
}

// --- State capture -----------------------------------------------------------

void capture_events(const Simulator& sim, TimePoint at, Snapshot& snap) {
  std::vector<Simulator::PendingEvent> pending;
  sim.snapshot_pending(pending);
  // Canonical order: owner-major, then fire order within the owner. Each
  // owner's events live in exactly one queue, so its generations — though
  // thread-count-dependent in *value* — give the exact thread-invariant fire
  // order when sorted under (at, generation). Generations are then dropped.
  std::sort(pending.begin(), pending.end(),
            [](const Simulator::PendingEvent& a,
               const Simulator::PendingEvent& b) {
              if (a.owner != b.owner) return a.owner < b.owner;
              if (a.at != b.at) return a.at < b.at;
              return a.generation < b.generation;
            });
  ByteWriter w;
  w.var(pending.size());
  std::size_t i = 0;
  while (i < pending.size()) {
    const OwnerId owner = pending[i].owner;
    std::size_t j = i;
    while (j < pending.size() && pending[j].owner == owner) ++j;
    w.var(owner);
    w.var(j - i);
    for (; i < j; ++i) {
      const std::int64_t rel = (pending[i].at - at).as_micros();
      OMNI_ASSERTF(rel >= 0, "pending event predates capture instant (owner %u)",
                   owner);
      w.var((static_cast<std::uint64_t>(rel) << 1) |
            (pending[i].immediate ? 1u : 0u));
    }
  }
  snap.section(kSecEvents).bytes = w.take();
  // Companion section, index-aligned with the kSecEvents order: each pending
  // event's descriptor body. Closures write a bare kind 0; descriptors write
  // kind + payload, so replica verification proves not just *when* events
  // fire but *what* the typed ones will do. Additive — kSecEvents bytes are
  // untouched and old readers skip unknown section ids.
  ByteWriter dw;
  dw.var(pending.size());
  for (const Simulator::PendingEvent& e : pending) {
    if (e.kind == kEventClosure) {
      dw.var(kEventClosure);
    } else {
      encode_event_desc(dw, e.kind, e.psize, e.payload);
    }
  }
  snap.section(kSecEventDescs).bytes = dw.take();
}

void capture_rng(const Simulator& sim, Snapshot& snap) {
  std::vector<std::pair<OwnerId, std::uint64_t>> digests;
  sim.snapshot_rng_digests(digests);
  const std::vector<std::uint64_t>& seqs = sim.owner_seqs();
  ByteWriter w;
  w.var(digests.size());
  for (const auto& [owner, digest] : digests) {
    w.var(owner);
    w.u64(digest);
    w.var(owner < seqs.size() ? seqs[owner] : 0);
  }
  snap.section(kSecRng).bytes = w.take();
}

void capture_world(const World& world, Snapshot& snap) {
  std::vector<World::SnapshotRow> rows;
  world.snapshot_rows(rows);
  ByteWriter w;
  w.var(rows.size());
  for (const World::SnapshotRow& row : rows) {
    // Rows arrive ascending by id with no holes, so the id itself is implied
    // by position. A "static" row (never moved, or teleported: depart ==
    // arrive and from == to) compresses to flags + one position — the
    // representation that keeps a crowd node well under its 64 B budget.
    const bool is_static = row.from == row.to && row.depart == row.arrive;
    w.u8(static_cast<std::uint8_t>((row.full_stack ? 1 : 0) |
                                   (is_static ? 2 : 0)));
    w.f64(row.to.x);
    w.f64(row.to.y);
    if (!is_static) {
      w.f64(row.from.x);
      w.f64(row.from.y);
      w.svar(row.depart.as_micros());
      w.svar(row.arrive.as_micros());
    }
  }
  snap.section(kSecWorld).bytes = w.take();
}

void capture_faults(const FaultPlan& plan, Snapshot& snap) {
  ByteWriter w;
  w.u64(plan.seed());
  w.var(plan.link_faults().size());
  for (const auto& f : plan.link_faults()) {
    w.svar(f.start.as_micros());
    w.svar(f.end == TimePoint::max() ? -1 : f.end.as_micros());
    w.u8(static_cast<std::uint8_t>(f.radio));
    w.var(f.src);
    w.var(f.dst);
    w.f64(f.loss);
    w.f64(f.corrupt);
    w.svar(f.extra_latency.as_micros());
  }
  w.var(plan.blackouts().size());
  for (const auto& b : plan.blackouts()) {
    w.var(b.node);
    w.u8(static_cast<std::uint8_t>(b.radio));
    w.svar(b.start.as_micros());
    w.svar(b.end == TimePoint::max() ? -1 : b.end.as_micros());
    w.svar(b.period.as_micros());
    w.f64(b.off_fraction);
  }
  w.var(plan.crashes().size());
  for (const auto& c : plan.crashes()) {
    w.var(c.node);
    w.svar(c.at.as_micros());
    w.svar(c.restart.as_micros());
    w.u8(c.rotate_addresses ? 1 : 0);
  }
  w.var(plan.partitions().size());
  for (const auto& p : plan.partitions()) {
    w.svar(p.start.as_micros());
    w.svar(p.end == TimePoint::max() ? -1 : p.end.as_micros());
    w.f64(p.a);
    w.f64(p.b);
    w.f64(p.c);
  }
  const FaultPlan::Stats st = plan.stats();
  w.var(st.drops);
  w.var(st.corruptions);
  w.var(st.delays);
  w.var(st.partition_drops);
  snap.section(kSecFaults).bytes = w.take();
}

// --- Serialization / file I/O ------------------------------------------------

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap) {
  return codec::serialize_container(snap, snapshot_spec());
}

Result<Snapshot> parse_snapshot(std::span<const std::uint8_t> data) {
  return codec::parse_container(data, snapshot_spec());
}

Status write_snapshot_file(const std::string& path, const Snapshot& snap) {
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::error("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    return Status::error("short write to '" + path + "'");
  }
  return Status::ok();
}

Result<Snapshot> read_snapshot_file(const std::string& path) {
  using R = Result<Snapshot>;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return R::error("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  Result<Snapshot> parsed = parse_snapshot(bytes);
  if (!parsed) {
    return R::error("'" + path + "': " + parsed.error_message());
  }
  return parsed;
}

// --- Verify / diff -----------------------------------------------------------

std::uint64_t snapshot_digest(const Snapshot& snap) {
  return codec::container_digest(snap, snapshot_spec());
}

std::string diff_snapshots(const Snapshot& a, const Snapshot& b,
                           bool skip_manifest) {
  return codec::diff_containers(a, b, snapshot_spec(),
                         skip_manifest ? kSecManifest : 0);
}

std::string describe_snapshot(const Snapshot& snap) {
  std::string out;
  char line[256];
  Result<SnapshotManifest> mr = read_manifest(snap);
  if (mr) {
    const SnapshotManifest& m = mr.value();
    std::snprintf(line, sizeof(line),
                  "manifest: seed=%llu t=%.6fs threads=%u executed=%llu "
                  "nodes=%llu devices=%llu label='%s' scenario_hash=%016llx\n",
                  static_cast<unsigned long long>(m.seed),
                  static_cast<double>(m.at.as_micros()) / 1e6, m.threads,
                  static_cast<unsigned long long>(m.executed_events),
                  static_cast<unsigned long long>(m.node_count),
                  static_cast<unsigned long long>(m.device_count),
                  m.label.c_str(),
                  static_cast<unsigned long long>(m.scenario_hash));
    out += line;
  } else {
    out += "manifest: " + mr.error_message() + "\n";
  }
  for (const SnapshotSection& s : snap.sections) {
    std::string detail;
    ByteReader r(s.bytes);
    switch (s.id) {
      case kSecEvents: {
        const std::uint64_t n = r.var();
        std::uint64_t owners = 0, seen = 0;
        while (r.ok() && seen < n) {
          r.var();  // owner
          const std::uint64_t cnt = r.var();
          for (std::uint64_t i = 0; r.ok() && i < cnt; ++i) r.var();
          seen += cnt;
          ++owners;
        }
        if (r.ok()) {
          detail = std::to_string(n) + " pending events across " +
                   std::to_string(owners) + " owners";
        }
        break;
      }
      case kSecEventDescs: {
        const std::uint64_t n = r.var();
        std::uint64_t descs = 0;
        for (std::uint64_t i = 0; r.ok() && i < n; ++i) {
          const std::uint64_t kind = r.var();
          if (kind == kEventClosure) continue;
          const std::uint64_t psize = r.var();
          for (std::uint64_t b = 0; r.ok() && b < psize; ++b) r.u8();
          ++descs;
        }
        if (r.ok()) {
          detail = std::to_string(descs) + " of " + std::to_string(n) +
                   " pending events typed";
        }
        break;
      }
      case kSecRng:
        detail = std::to_string(r.var()) + " owner streams";
        break;
      case kSecWorld:
        detail = std::to_string(r.var()) + " nodes";
        break;
      case kSecManagers:
        detail = std::to_string(r.var()) + " managers";
        break;
      default:
        break;
    }
    std::snprintf(line, sizeof(line), "%-10s %8zu bytes  fnv=%016llx%s%s\n",
                  section_name(s.id), s.bytes.size(),
                  static_cast<unsigned long long>(fnv1a64(s.bytes)),
                  detail.empty() ? "" : "  ", detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace omni::sim
