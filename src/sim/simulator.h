// The discrete-event simulator: a virtual clock plus an event loop.
//
// Everything in the library that needs time — radio models, the Omni manager,
// applications — takes a Simulator& and schedules callbacks on it. Virtual
// time only advances between events, so a full multi-minute experiment runs
// in milliseconds of wall time and is reproducible given a seed.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace omni::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` from now. Zero (or negative) delays run
  /// after currently queued same-time events, never re-entrantly; they take
  /// the queue's O(1) zero-delay path instead of the heap.
  EventHandle after(Duration delay, EventFn fn) {
    if (delay <= Duration::zero()) {
      return events_.schedule_now(now_, std::move(fn));
    }
    return events_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time (clamped to now).
  EventHandle at(TimePoint when, EventFn fn) {
    if (when <= now_) return events_.schedule_now(now_, std::move(fn));
    return events_.schedule(when, std::move(fn));
  }

  /// Run events until the queue empties or `deadline` is reached. The clock
  /// finishes exactly at min(deadline, last event time >= deadline). Returns
  /// the number of events executed.
  std::uint64_t run_until(TimePoint deadline);

  /// Run until the event queue is empty.
  std::uint64_t run();

  /// Run for a span of virtual time from the current instant.
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Request that the current run() stops after the executing event returns.
  void stop() { stop_requested_ = true; }

  bool idle() const { return events_.empty(); }
  std::size_t pending_events() const { return events_.size(); }
  /// High-water mark of simultaneously pending events (heap size bound).
  std::size_t peak_pending_events() const { return events_.peak_size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  TimePoint now_ = TimePoint::origin();
  EventQueue events_;
  Rng rng_;
  bool stop_requested_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace omni::sim
