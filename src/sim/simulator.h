// The discrete-event simulator: a virtual clock plus a sharded event engine.
//
// Everything in the library that needs time — radio models, the Omni manager,
// applications — takes a Simulator& and schedules callbacks on it. Virtual
// time only advances between events, so a full multi-minute experiment runs
// in milliseconds of wall time and is reproducible given a seed.
//
// Parallel execution model (conservative, deterministic):
//
// Every event carries an OwnerId — a node id for node-local work (radio
// fires, queue drains, per-device timers) or kGlobalOwner for work touching
// shared subsystems (mesh, mobility, scenario instructions). Node owners are
// sharded across `threads` worker shards (shard = owner % threads), each with
// its own EventQueue; global events live in a separate queue executed
// serially by the driving thread.
//
// The run loop alternates two phases:
//   * Global phase: while the earliest pending work is global, pop and run
//     one global event at a time — exactly the classic sequential loop.
//   * Window phase: when the earliest pending work is shard-local at time T,
//     open a window [T, W) with W = min(T + lookahead, next global event,
//     deadline⁺) and let every shard execute its own events inside the
//     window concurrently.
//
// Lookahead is sound because every sharded medium has a strictly positive
// minimum cross-node latency (BLE: one advertising event): an event executing
// at t can only affect another owner at ≥ t + min_latency ≥ W, so shards
// never need each other's state inside a window. Cross-owner schedules made
// during a window go into per-shard-pair mailboxes as (time, src_owner, seq)
// records, clamped to ≥ W, and are merged into the destination queues at the
// window barrier in canonical (time, src_owner, seq) order. Merge order —
// and therefore event sequence numbers, RNG consumption, and every simulated
// outcome — depends only on simulated times and owner ids, never on thread
// scheduling, so results are bit-identical for any thread count (threads=1
// runs the same windowed loop with the single shard executed inline).
//
// Each owner also draws from its own RNG stream (seeded from the simulation
// seed and the owner id), so random sequences are independent of how owners'
// events interleave across shards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace omni::obs {
class Omniscope;
}

namespace omni::sim {

/// The metadata of one cross-owner mailbox post, as merged at a window
/// barrier: everything about the post except its closure. This is exactly
/// what the distributed engine puts on the wire — the canonical
/// (time, src_owner, seq) merge order is a pure function of these tuples,
/// so two replicas that observe equal record streams provably merged their
/// mailboxes identically.
///
/// Posts made through schedule_desc_on additionally carry the descriptor
/// itself (kind + payload): such a post is *complete* as data — a partitioned
/// worker receiving the record can reconstruct and execute the event without
/// having run the posting owner. Closure posts keep kind == kEventClosure and
/// an empty payload; they can be verified but not shipped.
struct PostRecord {
  TimePoint at;        ///< firing time (already clamped to >= window end)
  OwnerId src;         ///< posting owner
  std::uint64_t seq;   ///< src's mailbox sequence counter at post time
  OwnerId dst;         ///< destination owner (kGlobalOwner for global work)
  EventKind kind = kEventClosure;  ///< descriptor kind; 0 = opaque closure
  std::uint8_t psize = 0;
  unsigned char payload[kEventPayloadMax] = {};

  friend bool operator==(const PostRecord&, const PostRecord&) = default;
};

/// Observer/controller seam for the distributed engine (dist/): the run
/// loop reports every conservative window as an explicit round. Both hooks
/// run on the driving thread outside any parallel window; returning false
/// requests a stop (equivalent to Simulator::stop()). The default engine
/// pays one null-pointer test per window when no driver is installed.
class DistDriver {
 public:
  virtual ~DistDriver() = default;

  /// A window [t, w) is about to execute as round `round` (the cumulative
  /// windows_run() value at open time).
  virtual bool window_open(std::uint64_t round, TimePoint t, TimePoint w) = 0;

  /// Round `round` finished: mailboxes merged, barrier hooks run. `posts`
  /// holds every cross-owner record of the window in canonical
  /// (time, src_owner, seq) order.
  virtual bool window_close(std::uint64_t round,
                            std::span<const PostRecord> posts) = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1, unsigned threads = 1);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Number of shards node-owned events are distributed over (1 = all events
  /// execute on the driving thread).
  unsigned threads() const { return static_cast<unsigned>(nshards_); }

  /// Conservative lookahead: the smallest cross-owner latency any sharded
  /// medium can produce (Testbed sets this from BleMedium::min_latency()).
  /// Parallel windows span [t, t + lookahead).
  void set_lookahead(Duration lookahead);
  Duration lookahead() const { return lookahead_; }

  /// Current virtual time. Inside a node-owned event this is the exact event
  /// time on the owning shard's clock; elsewhere it is the global clock.
  TimePoint now() const;

  /// Deterministic random stream of the current execution context: each
  /// owner draws from its own stream, the global context from the legacy
  /// seed stream.
  Rng& rng();

  /// Register `owner` so it has an RNG stream and a mailbox sequence
  /// counter. Must be called outside parallel windows (setup, or global
  /// events); World::add_node does this for every full-stack node.
  void ensure_owner(OwnerId owner);

  /// Pin every future event of `owner` to shard `hint % threads()`. World
  /// passes the node's home-region index at admission, so nodes that share a
  /// spatial region share a shard and their interactions stay shard-local.
  /// Owners never placed keep the legacy `owner % threads()` mapping.
  ///
  /// Must run outside parallel windows and before the owner's first event is
  /// scheduled: re-homing an owner with pending events would split its FIFO
  /// across queues. Placement cannot change simulated results — cross-owner
  /// schedules go through the canonically ordered mailbox merge whenever the
  /// owners differ (same shard or not), and every owner draws from its own
  /// RNG stream — so this is a pure locality/balance knob.
  void place_owner(OwnerId owner, std::uint64_t hint);

  /// Schedule `fn` to run `delay` from now under the *current* owner (the
  /// global owner outside events). Zero (or negative) delays run after
  /// currently queued same-time events, never re-entrantly; they take the
  /// queue's O(1) zero-delay path instead of the heap.
  EventHandle after(Duration delay, EventFn fn) {
    return after_on(current_owner(), delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute virtual time (clamped to now) under the
  /// current owner.
  EventHandle at(TimePoint when, EventFn fn) {
    return after_on(current_owner(), when - now(), std::move(fn));
  }

  /// Schedule `fn` under a specific owner. From the owner's own events (or
  /// from any context when no parallel window is executing) this is a plain
  /// schedule and returns a cancellable handle. From a *different* owner's
  /// events during a window it becomes a mailbox post: the firing time is
  /// clamped to the window end, the event is merged at the barrier in
  /// canonical (time, src_owner, seq) order, and the returned handle is
  /// inert (cross-owner posts cannot be cancelled).
  EventHandle after_on(OwnerId owner, Duration delay, EventFn fn);

  /// Schedule barrier-serialized work: after_on(kGlobalOwner, ...). Use for
  /// anything touching shared state (mesh, world mutation, multi-node scans).
  EventHandle after_global(Duration delay, EventFn fn) {
    return after_on(kGlobalOwner, delay, std::move(fn));
  }

  /// after_on with an absolute firing time (clamped to now). Barrier hooks
  /// use this to schedule work computed from recorded event times.
  EventHandle at_on(OwnerId owner, TimePoint when, EventFn fn) {
    return after_on(owner, when - now(), std::move(fn));
  }

  // --- Typed descriptor events (sim/event_desc.h) ---------------------------

  /// Descriptor twin of after_on: identical owner/clamping/mailbox semantics
  /// and the same scheduling-order guarantees (both draw from one generation
  /// counter per queue), but the event is `psize` payload bytes tagged with
  /// `kind` instead of a closure — no capture allocation on schedule, direct
  /// kind-dispatch on pop, and cross-owner posts travel as data (the
  /// distributed engine can ship them between processes, which opaque
  /// closures categorically cannot).
  EventHandle schedule_desc_on(OwnerId owner, Duration delay, EventKind kind,
                               const unsigned char* payload,
                               std::uint8_t psize);

  /// schedule_desc_on with an absolute firing time (clamped to now).
  EventHandle schedule_desc_at_on(OwnerId owner, TimePoint when,
                                  EventKind kind,
                                  const unsigned char* payload,
                                  std::uint8_t psize) {
    return schedule_desc_on(owner, when - now(), kind, payload, psize);
  }

  /// Convenience for the common slot-call descriptor shape: a {u32 slot}
  /// payload naming a callback-slot registered below.
  EventHandle schedule_slot_on(OwnerId owner, Duration delay, EventKind kind,
                               std::uint32_t slot) {
    unsigned char payload[sizeof slot];
    std::memcpy(payload, &slot, sizeof slot);
    return schedule_desc_on(owner, delay, kind, payload, sizeof slot);
  }

  /// Handler invoked when a descriptor event of its kind fires; runs in the
  /// event's execution context exactly like a closure body would.
  using DescHandlerFn = void (*)(void* ctx, Simulator& sim,
                                 const EventDesc& desc);

  /// Install the handler for `kind` (one per kind per simulator; installing
  /// again replaces — components that own a kind register in their
  /// constructor). Slot-call kinds (queue-drain, maintenance, peer-sweep,
  /// mobility-hop, scenario-timer, discovery-tick, engage-sync) are
  /// pre-registered to invoke the callback-slot directory and need no
  /// handler. Register from a quiescent context.
  void register_desc_handler(EventKind kind, void* ctx, DescHandlerFn fn);

  /// Register a callback slot: a stable small integer naming (ctx, fn) so
  /// recurring per-component events can be descriptors ({u32 slot} payload)
  /// instead of `this`-capturing closures. Ids are assigned in registration
  /// order with free-list reuse — deterministic, and therefore equal across
  /// replicas of one scenario, which is what lets a slot id in a shipped
  /// descriptor resolve to the same component in another process.
  std::uint32_t register_callback_slot(void* ctx, void (*fn)(void* ctx));

  /// Release a slot id for reuse. A descriptor still pending for the slot
  /// becomes a no-op (or invokes the slot's next registrant — deterministic
  /// either way, and strictly safer than the dangling `this` a closure
  /// would have captured).
  void unregister_callback_slot(std::uint32_t slot);

  /// Invoke a registered callback slot immediately (the built-in slot-kind
  /// handler; exposed for tests).
  void invoke_callback_slot(std::uint32_t slot);

  /// Register a hook that runs on the driving thread at every window
  /// barrier, after cross-owner mailboxes have been merged. No window is
  /// executing when it runs, so the hook may schedule onto any owner (media
  /// use this to flush deliveries recorded during the window into batched
  /// events). The hook's owner must outlive every run of this simulator.
  void add_barrier_hook(std::function<void()> hook) {
    barrier_hooks_.push_back(std::move(hook));
  }

  /// Index of the shard the calling thread is executing a window for, or
  /// threads() when no window is executing in this context (setup, global
  /// events, barrier hooks). Media use this to pick a per-shard scratch lane.
  std::size_t current_shard_index() const {
    const ExecCtx& c = tls_ctx_;
    if (c.sim == this && c.shard != nullptr) {
      return static_cast<std::size_t>(c.shard - shards_.data());
    }
    return nshards_;
  }

  /// Everything an instrumentation site needs about the calling context —
  /// execution lane, event owner, and virtual time — resolved with a single
  /// thread-local read. Equivalent to {current_shard_index(),
  /// current_owner(), now()} but ~3x cheaper, which matters on per-frame
  /// hot paths (obs::Omniscope::mark and friends).
  struct ObsCtx {
    std::size_t lane;
    OwnerId owner;
    TimePoint now;
  };
  ObsCtx obs_ctx() const {
    const ExecCtx& c = tls_ctx_;
    if (c.sim == this) {
      if (c.shard != nullptr) {
        return ObsCtx{static_cast<std::size_t>(c.shard - shards_.data()),
                      c.owner, c.shard->now};
      }
      return ObsCtx{nshards_, c.owner, now_};
    }
    return ObsCtx{nshards_, kGlobalOwner, now_};
  }

  /// Run events until all queues empty or `deadline` is reached. The clock
  /// finishes exactly at min(deadline, last event time >= deadline). Events
  /// scheduled exactly at `deadline` run. Returns the number of events
  /// executed.
  std::uint64_t run_until(TimePoint deadline);

  /// Run until every event queue is empty.
  std::uint64_t run();

  /// Run for a span of virtual time from the current instant.
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Request that the current run stops. From a global event the loop stops
  /// before the next event (classic behavior); from a node-owned event the
  /// stop takes effect at the enclosing window barrier.
  void stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  bool idle() const;
  std::size_t pending_events() const;
  /// High-water mark of simultaneously pending events, summed per queue.
  std::size_t peak_pending_events() const;
  std::uint64_t executed_events() const { return executed_; }

  /// Parallel-engine telemetry: windows opened, events run in the serial
  /// global phase, and cross-owner mailbox posts merged at barriers. The
  /// ratio of global events and posts to total events bounds the achievable
  /// parallel speedup (Amdahl); the bench reports all three.
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t global_events_run() const { return global_events_; }
  std::uint64_t mailbox_posts() const { return mailbox_posts_; }
  /// Subset of mailbox_posts() whose source and destination shards differ —
  /// the traffic that actually crosses a shard boundary. With region-based
  /// placement this measures cross-region coupling; unlike mailbox_posts()
  /// (placement-independent by construction) it depends on the owner→shard
  /// map, so it is telemetry, never an input to simulated behavior.
  std::uint64_t cross_shard_mailbox_posts() const {
    return cross_shard_posts_;
  }

  /// Partitioned-run accounting (dist/ --mode=partitioned): attribute every
  /// node-owned event popped from a shard queue to the worker owning its
  /// OwnerId (owner % nworkers, matching dist::owner_worker). Counters are
  /// telemetry only — execution is unchanged — but they are exact: summed
  /// over a fleet whose workers cover every residue class once,
  /// owned_node_events() totals to node_events_run() of a 1-process run.
  /// nworkers = 0 (the default) disables the per-pop test entirely.
  void set_partition_accounting(std::uint32_t worker, std::uint32_t nworkers);
  /// Node-owned events this process owned under the partition (0 when
  /// accounting is off).
  std::uint64_t owned_node_events() const { return owned_events_; }
  /// All node-owned (shard-queue) events executed: executed minus global.
  std::uint64_t node_events_run() const { return executed_ - global_events_; }

  /// Owner of the currently executing event (kGlobalOwner outside events).
  OwnerId current_owner() const;

  // --- Snapshot introspection (sim/snapshot.h; quiescent contexts only) -----

  /// The simulation seed every owner stream derives from.
  std::uint64_t seed() const { return seed_; }

  /// One live pending event. `generation` is the owning queue's internal
  /// sequence — thread-count-dependent in value, but (at, generation) gives
  /// the exact fire order among one owner's events, which is what snapshot
  /// capture canonicalizes on.
  struct PendingEvent {
    TimePoint at;
    std::uint64_t generation;
    OwnerId owner;
    bool immediate;  ///< queued on a zero-delay FIFO, not the heap
    EventKind kind = kEventClosure;  ///< descriptor kind; 0 = closure
    std::uint8_t psize = 0;
    unsigned char payload[kEventPayloadMax] = {};
  };

  /// Append every live pending event across the global queue and all shards.
  /// Must run outside parallel windows (setup, global events, barrier
  /// hooks); snapshot capture points are global events, where shard FIFOs
  /// are provably drained and all mailboxes merged.
  void snapshot_pending(std::vector<PendingEvent>& out) const;

  /// Per-owner RNG stream digests — fnv1a64 over the serialized mt19937_64
  /// state — ascending by owner, the global stream last as kGlobalOwner.
  /// Digests (rather than the ~2.5 KB raw states) are what snapshots store:
  /// under replay-anchored resume they only need to *verify* streams, and
  /// they keep a 10k-owner snapshot within its size budget.
  void snapshot_rng_digests(
      std::vector<std::pair<OwnerId, std::uint64_t>>& out) const;

  /// Per-owner mailbox post counters (index = owner id). Part of the
  /// deterministic state: they order cross-owner posts in the canonical
  /// mailbox merge.
  const std::vector<std::uint64_t>& owner_seqs() const { return owner_seq_; }

  /// Observability scope attached to this simulator, or nullptr (the
  /// default). The simulator never calls into the scope — the pointer only
  /// gives instrumented components a place to publish records without a
  /// sim -> obs dependency. Set by obs::Omniscope::attach().
  void set_scope(obs::Omniscope* scope) { scope_ = scope; }
  obs::Omniscope* scope() const { return scope_; }

  /// True when the calling context may touch mutable state belonging to
  /// `owner`: either no parallel window is executing (setup / global phase),
  /// or the current event is owned by `owner` itself. World uses this to
  /// police its per-node caches.
  bool owns_context(OwnerId owner) const;

  /// Install (or clear, with nullptr) the distributed-engine driver. The
  /// driver must outlive every run; install it from a quiescent context.
  /// With a driver installed the run loop additionally records the
  /// PostRecord stream of every window — behavior is otherwise unchanged,
  /// and a run with no driver is byte-identical to one before the seam
  /// existed.
  void set_dist_driver(DistDriver* driver) { dist_driver_ = driver; }
  DistDriver* dist_driver() const { return dist_driver_; }

 private:
  /// A cross-owner schedule captured during a window, merged at the barrier.
  /// Either a closure (kind == kEventClosure, fn live) or a descriptor
  /// (kind != 0, payload live) — never both.
  struct Post {
    TimePoint at;
    OwnerId src;
    std::uint64_t seq;
    OwnerId dst;
    EventFn fn;
    EventKind kind = kEventClosure;
    std::uint8_t psize = 0;
    unsigned char payload[kEventPayloadMax] = {};
  };

  struct alignas(64) Shard {
    EventQueue q;
    TimePoint now = TimePoint::origin();  ///< last executed event time
    std::uint64_t executed = 0;           ///< events run in the open window
    std::uint64_t owned = 0;  ///< partition-owned subset of `executed`
    /// Outgoing posts, one mailbox per destination shard; back() = global.
    std::vector<std::vector<Post>> out;
  };

  /// Which simulator/owner/shard the calling thread is executing for.
  struct ExecCtx {
    const Simulator* sim = nullptr;
    OwnerId owner = kGlobalOwner;
    Shard* shard = nullptr;
  };
  static thread_local ExecCtx tls_ctx_;

  static std::uint64_t derive_owner_seed(std::uint64_t seed, OwnerId owner);

  std::uint64_t run_loop(TimePoint deadline, bool advance_clock);
  void run_shard_window(Shard& sh, TimePoint window_end);
  void dispatch_desc(const EventQueue::Popped& popped);
  static void slot_kind_handler(void* ctx, Simulator& sim,
                                const EventDesc& desc);
  std::uint64_t run_windows(TimePoint window_end);
  void merge_mailboxes();
  void ensure_workers();
  void worker_main(std::size_t shard_index);

  std::size_t shard_index_for(OwnerId owner) const {
    return owner < owner_shard_.size()
               ? owner_shard_[owner]
               : static_cast<std::size_t>(owner % nshards_);
  }
  Shard& shard_for(OwnerId owner) { return shards_[shard_index_for(owner)]; }

  const std::uint64_t seed_;
  const std::size_t nshards_;
  obs::Omniscope* scope_ = nullptr;
  TimePoint now_ = TimePoint::origin();
  Duration lookahead_ = Duration::millis(10);
  EventQueue global_q_;
  std::vector<Shard> shards_;
  Rng rng_;                          ///< global-context stream (legacy)
  /// Per-owner streams, indexed by owner. Slots are lazily allocated by
  /// ensure_owner so sparse owner ids (a few devices among 100k crowd
  /// nodes) cost 8 bytes per hole, not a 2.5 KB mt19937_64 state each;
  /// seeds derive purely from (seed_, owner) so laziness can't change any
  /// stream.
  std::vector<std::unique_ptr<Rng>> owner_rngs_;
  std::vector<std::uint64_t> owner_seq_;  ///< per-owner mailbox post counters
  std::vector<std::uint32_t> owner_shard_;  ///< place_owner pins; see above
  std::vector<Post> merge_scratch_;
  std::vector<std::function<void()>> barrier_hooks_;
  DistDriver* dist_driver_ = nullptr;
  std::vector<PostRecord> window_posts_;  ///< driver-visible records/window
  std::uint64_t executed_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t global_events_ = 0;
  std::uint64_t mailbox_posts_ = 0;
  std::uint64_t cross_shard_posts_ = 0;

  /// kind → handler; slot kinds pre-registered in the constructor.
  struct DescHandler {
    void* ctx = nullptr;
    DescHandlerFn fn = nullptr;
  };
  DescHandler desc_handlers_[kEventKindCount];

  /// Callback-slot directory (register_callback_slot). Free entries link
  /// through `next_free` for deterministic id reuse.
  struct CallbackSlot {
    void* ctx = nullptr;
    void (*fn)(void*) = nullptr;
    std::uint32_t next_free = 0xffffffffu;
  };
  std::vector<CallbackSlot> callback_slots_;
  std::uint32_t callback_free_head_ = 0xffffffffu;

  std::uint32_t partition_worker_ = 0;
  std::uint32_t partition_nworkers_ = 0;  ///< 0 = accounting off
  std::uint64_t owned_events_ = 0;

  // Worker pool (lazily started on the first multi-shard window). Workers
  // sleep on epoch_; the driver publishes window_end_, arms running_workers_,
  // then bumps epoch_. Each worker runs its shard's window and decrements
  // running_workers_; the driver waits for it to hit zero (the barrier).
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> running_workers_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> stop_requested_{false};
  TimePoint window_end_ = TimePoint::origin();  ///< valid inside a window
};

}  // namespace omni::sim
