// Versioned binary snapshots of a deterministic run (".osnap" files).
//
// A snapshot freezes the complete *logical* state of a simulation at one
// global-quiescent instant T: the pending-event set of every owner, per-owner
// RNG stream digests and mailbox sequence counters, the world's motion rows,
// the fault plan and its injection counters, plus sections contributed by
// upper layers (OmniManager state, metrics) through the testbed. Together
// with the manifest (seed, capture time, scenario fingerprint) that state
// identifies the run bit-for-bit.
//
// What is serialized vs rebuilt — the central design decision: events hold
// opaque std::function closures, so a snapshot cannot *materialize* them in
// a fresh process. Resume is therefore **replay-anchored**: the caller
// rebuilds the run from the manifest (same seed, same scenario), re-executes
// to T, and the engine byte-verifies every recomputed section against the
// file before continuing. Anything derivable from that replay — radio-medium
// fan-out caches, nodes_near caches, beacon frame caches, observability
// rings — is deliberately *not* serialized: it is rebuilt by construction.
// The serialized sections are the oracle that proves the rebuilt world is
// the same world.
//
// Canonical encoding: every section is byte-identical regardless of the
// capturing run's --threads value. Pending events are grouped per owner and
// ordered by (time, fire order) — never by engine-internal generation
// values, which are per-queue and thread-count-dependent. This makes
// checkpoint files themselves a cross-thread determinism oracle, and lets a
// run checkpointed at 8 threads resume at 1 (or vice versa).
//
// File layout: the shared sectioned container of common/codec.h with magic
// "OSNP" (docs/FORMATS.md is the normative byte-level spec). Loading is
// hardened: truncation, bad magic, unknown versions, and bit-flips anywhere
// (table or payload) fail with a diagnostic naming the damaged section —
// never UB. Versioning policy: the version bumps on any incompatible layout
// change; readers reject versions they don't know (sections are
// self-contained, so additive sections need no bump).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/result.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace omni::sim {

class Simulator;
class World;
class FaultPlan;

inline constexpr char kSnapshotMagic[4] = {'O', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Well-known section ids. Ids are stable across versions; unknown ids are
/// preserved by parse/serialize round trips (forward compatibility for
/// additive sections).
enum SectionId : std::uint32_t {
  kSecManifest = 1,  ///< seed, capture time, scenario fingerprint
  kSecEvents = 2,    ///< canonical per-owner pending-event lists
  kSecRng = 3,       ///< per-owner RNG digests + mailbox seq counters
  kSecWorld = 4,     ///< motion rows (full-stack + crowd)
  kSecFaults = 5,    ///< fault plan config + injection counters
  kSecManagers = 6,   ///< OmniManager state (written by the omni layer)
  kSecMetrics = 7,    ///< canonical metrics-registry dump
  kSecEventDescs = 8, ///< descriptor bodies of pending events (kind+payload)
};

/// Human name for a section id ("events", "world", ...; "sec<id>" for
/// unknown ids — the returned pointer for those is a static scratch).
const char* section_name(std::uint32_t id);

// The codec and container machinery live in common/codec.h now (the wire
// frames of the distributed engine share them); these aliases keep the
// historical sim-layer spellings working.
using ::omni::codec::ByteReader;
using ::omni::codec::ByteWriter;
using SnapshotSection = ::omni::codec::Section;
using Snapshot = ::omni::codec::SectionContainer;

/// The ContainerSpec instance describing `.osnap` files (magic, version,
/// section names); parse/serialize_snapshot wrap the generic container
/// functions with it.
const ::omni::codec::ContainerSpec& snapshot_spec();

// SectionContainer's default version must stay in lockstep with the
// snapshot version, because capture paths rely on `Snapshot{}` already
// carrying the version they serialize under.
static_assert(kSnapshotVersion == 1,
              "bump SectionContainer's default version alongside this");

// --- Manifest ----------------------------------------------------------------

struct SnapshotManifest {
  std::uint64_t seed = 0;
  TimePoint at;                    ///< capture instant
  std::uint32_t threads = 0;       ///< capturing run (informational only —
                                   ///< excluded from resume verification)
  std::uint64_t executed_events = 0;
  std::uint64_t node_count = 0;
  std::uint64_t device_count = 0;
  std::string label;
  /// fnv1a64 of the driving scenario source, 0 when not scenario-driven.
  std::uint64_t scenario_hash = 0;
  /// Optionally embedded scenario source (small runs), so a snapshot alone
  /// is enough to rebuild the run it anchors.
  std::string scenario_text;
};

void write_manifest(const SnapshotManifest& m, Snapshot& snap);
Result<SnapshotManifest> read_manifest(const Snapshot& snap);

// --- State capture (sim layer; quiescent/global contexts only) ---------------

/// Pending events of every owner, canonically ordered. `at` is the capture
/// instant (all pending events fire at or after it).
void capture_events(const Simulator& sim, TimePoint at, Snapshot& snap);

/// Per-owner RNG stream digests + mailbox sequence counters, plus the
/// global stream (reported as kGlobalOwner).
void capture_rng(const Simulator& sim, Snapshot& snap);

/// Motion rows for every node, ascending by id, static rows compressed.
void capture_world(const World& world, Snapshot& snap);

/// Fault plan declarations + injection counters.
void capture_faults(const FaultPlan& plan, Snapshot& snap);

// --- Serialization / file I/O ------------------------------------------------

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap);
/// Full hardening: magic, version, table bounds, per-section and trailer
/// checksums. Error messages name the damaged piece.
Result<Snapshot> parse_snapshot(std::span<const std::uint8_t> data);

Status write_snapshot_file(const std::string& path, const Snapshot& snap);
Result<Snapshot> read_snapshot_file(const std::string& path);

// --- Verify / diff -----------------------------------------------------------

/// fnv1a64 over the canonical serialization — one number identifying the
/// whole state.
std::uint64_t snapshot_digest(const Snapshot& snap);

/// "" when the snapshots carry byte-identical sections; otherwise a
/// diagnostic naming every divergent/missing section and the first
/// differing byte offset. `skip_manifest` ignores kSecManifest (resume
/// verification: the manifest legitimately differs in thread count).
std::string diff_snapshots(const Snapshot& a, const Snapshot& b,
                           bool skip_manifest = false);

/// One-line-per-section human summary (omnisnap inspect): decodes the
/// manifest and per-section entry counts where the layout is known.
std::string describe_snapshot(const Snapshot& snap);

}  // namespace omni::sim
