// Versioned binary snapshots of a deterministic run (".osnap" files).
//
// A snapshot freezes the complete *logical* state of a simulation at one
// global-quiescent instant T: the pending-event set of every owner, per-owner
// RNG stream digests and mailbox sequence counters, the world's motion rows,
// the fault plan and its injection counters, plus sections contributed by
// upper layers (OmniManager state, metrics) through the testbed. Together
// with the manifest (seed, capture time, scenario fingerprint) that state
// identifies the run bit-for-bit.
//
// What is serialized vs rebuilt — the central design decision: events hold
// opaque std::function closures, so a snapshot cannot *materialize* them in
// a fresh process. Resume is therefore **replay-anchored**: the caller
// rebuilds the run from the manifest (same seed, same scenario), re-executes
// to T, and the engine byte-verifies every recomputed section against the
// file before continuing. Anything derivable from that replay — radio-medium
// fan-out caches, nodes_near caches, beacon frame caches, observability
// rings — is deliberately *not* serialized: it is rebuilt by construction.
// The serialized sections are the oracle that proves the rebuilt world is
// the same world.
//
// Canonical encoding: every section is byte-identical regardless of the
// capturing run's --threads value. Pending events are grouped per owner and
// ordered by (time, fire order) — never by engine-internal generation
// values, which are per-queue and thread-count-dependent. This makes
// checkpoint files themselves a cross-thread determinism oracle, and lets a
// run checkpointed at 8 threads resume at 1 (or vice versa).
//
// File layout (little-endian):
//   magic "OSNP" | u32 version | u32 section_count
//   section table: { u32 id, u64 size, u64 fnv1a64(payload) } * count
//   payloads, in table order
//   u64 fnv1a64(header + table)
// Loading is hardened: truncation, bad magic, unknown versions, and
// bit-flips anywhere (table or payload) fail with a diagnostic naming the
// damaged section — never UB. Versioning policy: the version bumps on any
// incompatible layout change; readers reject versions they don't know
// (sections are self-contained, so additive sections need no bump).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace omni::sim {

class Simulator;
class World;
class FaultPlan;

inline constexpr char kSnapshotMagic[4] = {'O', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Well-known section ids. Ids are stable across versions; unknown ids are
/// preserved by parse/serialize round trips (forward compatibility for
/// additive sections).
enum SectionId : std::uint32_t {
  kSecManifest = 1,  ///< seed, capture time, scenario fingerprint
  kSecEvents = 2,    ///< canonical per-owner pending-event lists
  kSecRng = 3,       ///< per-owner RNG digests + mailbox seq counters
  kSecWorld = 4,     ///< motion rows (full-stack + crowd)
  kSecFaults = 5,    ///< fault plan config + injection counters
  kSecManagers = 6,  ///< OmniManager state (written by the omni layer)
  kSecMetrics = 7,   ///< canonical metrics-registry dump
};

/// Human name for a section id ("events", "world", ...; "sec<id>" for
/// unknown ids — the returned pointer for those is a static scratch).
const char* section_name(std::uint32_t id);

struct SnapshotSection {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> bytes;
};

struct Snapshot {
  std::uint32_t version = kSnapshotVersion;
  /// Ascending by id (section() maintains the order).
  std::vector<SnapshotSection> sections;

  /// The section with `id`, created empty (in id order) if absent.
  SnapshotSection& section(std::uint32_t id);
  const SnapshotSection* find(std::uint32_t id) const;
};

// --- Byte codec --------------------------------------------------------------

/// Append-only little-endian encoder used by every section writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// LEB128-style varint (7 bits per byte).
  void var(std::uint64_t v);
  /// Zigzag varint for signed values.
  void svar(std::int64_t v);
  /// var(length) + raw bytes.
  void str(std::string_view s);

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder: any overrun or malformed varint sets the fail
/// flag and yields zeros/empties from then on — corrupted input can produce
/// garbage values but never UB. Callers check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t var();
  std::int64_t svar();
  std::string str();

  bool ok() const { return ok_; }
  /// True once every byte has been consumed without error.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Manifest ----------------------------------------------------------------

struct SnapshotManifest {
  std::uint64_t seed = 0;
  TimePoint at;                    ///< capture instant
  std::uint32_t threads = 0;       ///< capturing run (informational only —
                                   ///< excluded from resume verification)
  std::uint64_t executed_events = 0;
  std::uint64_t node_count = 0;
  std::uint64_t device_count = 0;
  std::string label;
  /// fnv1a64 of the driving scenario source, 0 when not scenario-driven.
  std::uint64_t scenario_hash = 0;
  /// Optionally embedded scenario source (small runs), so a snapshot alone
  /// is enough to rebuild the run it anchors.
  std::string scenario_text;
};

void write_manifest(const SnapshotManifest& m, Snapshot& snap);
Result<SnapshotManifest> read_manifest(const Snapshot& snap);

// --- State capture (sim layer; quiescent/global contexts only) ---------------

/// Pending events of every owner, canonically ordered. `at` is the capture
/// instant (all pending events fire at or after it).
void capture_events(const Simulator& sim, TimePoint at, Snapshot& snap);

/// Per-owner RNG stream digests + mailbox sequence counters, plus the
/// global stream (reported as kGlobalOwner).
void capture_rng(const Simulator& sim, Snapshot& snap);

/// Motion rows for every node, ascending by id, static rows compressed.
void capture_world(const World& world, Snapshot& snap);

/// Fault plan declarations + injection counters.
void capture_faults(const FaultPlan& plan, Snapshot& snap);

// --- Serialization / file I/O ------------------------------------------------

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap);
/// Full hardening: magic, version, table bounds, per-section and trailer
/// checksums. Error messages name the damaged piece.
Result<Snapshot> parse_snapshot(std::span<const std::uint8_t> data);

Status write_snapshot_file(const std::string& path, const Snapshot& snap);
Result<Snapshot> read_snapshot_file(const std::string& path);

// --- Verify / diff -----------------------------------------------------------

/// fnv1a64 over the canonical serialization — one number identifying the
/// whole state.
std::uint64_t snapshot_digest(const Snapshot& snap);

/// "" when the snapshots carry byte-identical sections; otherwise a
/// diagnostic naming every divergent/missing section and the first
/// differing byte offset. `skip_manifest` ignores kSecManifest (resume
/// verification: the manifest legitimately differs in thread count).
std::string diff_snapshots(const Snapshot& a, const Snapshot& b,
                           bool skip_manifest = false);

/// One-line-per-section human summary (omnisnap inspect): decodes the
/// manifest and per-section entry counts where the layout is known.
std::string describe_snapshot(const Snapshot& snap);

}  // namespace omni::sim
