#include "sim/event_queue.h"

#include <algorithm>

#include "common/assert.h"
#include "common/result.h"

namespace omni::sim {

void EventHandle::cancel() {
  if (queue_ == nullptr) return;
  queue_->cancel_slot(slot_, generation_);
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_live(slot_, generation_);
}

// --- Heap maintenance --------------------------------------------------------

void EventQueue::sift_up(std::size_t i) {
  HeapEntry moving = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, moving);
}

void EventQueue::sift_down(std::size_t i) {
  HeapEntry moving = heap_[i];
  for (;;) {
    std::size_t first = i * kArity + 1;
    if (first >= heap_.size()) break;
    std::size_t best = first;
    std::size_t last = std::min(first + kArity, heap_.size());
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    place(i, heap_[best]);
    i = best;
  }
  place(i, moving);
}

void EventQueue::remove_heap_at(std::size_t i) {
  HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (i >= heap_.size()) return;  // removed the tail element
  place(i, moved);
  sift_up(i);
  sift_down(slots_[moved.slot].heap_index);
}

// --- Slab --------------------------------------------------------------------

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNone) {
    std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNone;
    --free_count_;
    return idx;
  }
  OMNI_ASSERTF(slots_.size() < kNone, "event slab exhausted (%zu slots live)",
               slots_.size() - free_count_);
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  // Destroy the closure (if any) eagerly so captured state is released the
  // moment the event is popped or cancelled, not when the slot is reused.
  if (s.kind == kEventClosure) s.fn_ref().~EventFn();
  s.generation = 0;
  s.kind = kEventClosure;
  s.psize = 0;
  s.heap_index = kNone;
  s.next_free = free_head_;
  free_head_ = idx;
  ++free_count_;
  maybe_compact();
}

void EventQueue::maybe_compact() {
  // Compact when more than half the slab is dead weight. Slots cannot move
  // (outstanding handles address them by index), so compaction trims the
  // free tail of the slab and rebuilds the free list; it runs only when the
  // trailing slot is free, which keeps the trigger O(1) on the hot path.
  if (slots_.size() < kCompactMin || free_count_ * 2 <= slots_.size()) return;
  if (slots_.empty() || slots_.back().generation != 0) return;
  while (!slots_.empty() && slots_.back().generation == 0) {
    slots_.pop_back();
    --free_count_;
  }
  free_head_ = kNone;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i].generation == 0) {
      slots_[i].next_free = free_head_;
      free_head_ = static_cast<std::uint32_t>(i);
    }
  }
  if (slots_.capacity() > 2 * slots_.size() + kCompactMin) {
    slots_.shrink_to_fit();
    heap_.shrink_to_fit();
  }
}

// --- Public API --------------------------------------------------------------

EventHandle EventQueue::schedule(TimePoint at, EventFn fn, OwnerId owner) {
  std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.at = at;
  s.generation = next_generation_++;
  s.owner = owner;
  s.kind = kEventClosure;
  s.psize = 0;
  new (s.body) EventFn(std::move(fn));
  heap_.push_back(HeapEntry{at, s.generation, idx});
  s.heap_index = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_live_) peak_live_ = heap_.size();
  return EventHandle{this, idx, s.generation};
}

EventHandle EventQueue::schedule_now(TimePoint now, EventFn fn,
                                     OwnerId owner) {
  std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.at = now;
  s.generation = next_generation_++;
  s.owner = owner;
  s.kind = kEventClosure;
  s.psize = 0;
  new (s.body) EventFn(std::move(fn));
  s.heap_index = kInFifo;
  fifo_.push_back(FifoEntry{s.generation, idx});
  ++fifo_live_;
  if (size() > peak_live_) peak_live_ = size();
  return EventHandle{this, idx, s.generation};
}

EventHandle EventQueue::schedule_desc(TimePoint at, EventKind kind,
                                      const unsigned char* payload,
                                      std::uint8_t psize, OwnerId owner) {
  OMNI_ASSERT(kind != kEventClosure && kind < kEventKindCount &&
              psize <= kEventPayloadMax);
  std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.at = at;
  s.generation = next_generation_++;
  s.owner = owner;
  s.kind = kind;
  s.psize = psize;
  std::memcpy(s.body, payload, psize);
  heap_.push_back(HeapEntry{at, s.generation, idx});
  s.heap_index = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  if (heap_.size() > peak_live_) peak_live_ = heap_.size();
  return EventHandle{this, idx, s.generation};
}

EventHandle EventQueue::schedule_desc_now(TimePoint now, EventKind kind,
                                          const unsigned char* payload,
                                          std::uint8_t psize, OwnerId owner) {
  OMNI_ASSERT(kind != kEventClosure && kind < kEventKindCount &&
              psize <= kEventPayloadMax);
  std::uint32_t idx = alloc_slot();
  Slot& s = slots_[idx];
  s.at = now;
  s.generation = next_generation_++;
  s.owner = owner;
  s.kind = kind;
  s.psize = psize;
  std::memcpy(s.body, payload, psize);
  s.heap_index = kInFifo;
  fifo_.push_back(FifoEntry{s.generation, idx});
  ++fifo_live_;
  if (size() > peak_live_) peak_live_ = size();
  return EventHandle{this, idx, s.generation};
}

EventQueue::Popped EventQueue::pop(TimePoint now) {
  OMNI_ASSERT(!empty());
  // Heap events due at `now` were scheduled before the clock reached `now`,
  // i.e. before every queued zero-delay event: they go first.
  if (!heap_.empty() && (fifo_live_ == 0 || heap_[0].at <= now)) {
    return pop_heap();
  }
  return pop_fifo(now);
}

EventQueue::Popped EventQueue::pop_heap() {
  std::uint32_t idx = heap_[0].slot;
  Popped out = take_payload(slots_[idx], slots_[idx].at);
  remove_heap_at(0);
  free_slot(idx);
  return out;
}

/// Move a slot's content into a Popped (closure moved out, descriptor bytes
/// copied); `at` overrides the slot time so the FIFO path can report `now`.
EventQueue::Popped EventQueue::take_payload(Slot& s, TimePoint at) {
  Popped out;
  out.at = at;
  out.owner = s.owner;
  out.kind = s.kind;
  out.psize = s.psize;
  if (s.kind == kEventClosure) {
    out.fn = std::move(s.fn_ref());
  } else {
    std::memcpy(out.payload, s.body, kEventPayloadMax);
  }
  return out;
}

EventQueue::Popped EventQueue::pop_fifo(TimePoint now) {
  for (;;) {
    FifoEntry e = fifo_[fifo_head_++];
    if (fifo_head_ == fifo_.size()) {
      fifo_.clear();
      fifo_head_ = 0;
    } else if (fifo_head_ >= kCompactMin && fifo_head_ * 2 >= fifo_.size()) {
      // Keep the ring's footprint proportional to the live backlog even when
      // a steady producer prevents it from ever fully draining.
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
      fifo_head_ = 0;
    }
    if (!slot_live(e.slot, e.generation)) continue;  // cancelled, then freed
    Popped out = take_payload(slots_[e.slot], now);
    free_slot(e.slot);
    --fifo_live_;
    return out;
  }
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint64_t generation) {
  if (!slot_live(slot, generation)) return;
  if (slots_[slot].heap_index == kInFifo) {
    // The fifo_ entry stays behind; pop_fifo skips it via the generation
    // check once the slot is freed (or reused) here.
    --fifo_live_;
  } else {
    remove_heap_at(slots_[slot].heap_index);
  }
  free_slot(slot);
}

}  // namespace omni::sim
