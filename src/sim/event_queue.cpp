#include "sim/event_queue.h"

#include "common/result.h"

namespace omni::sim {

void EventHandle::cancel() {
  auto s = state_.lock();
  if (!s || s->done) return;
  s->done = true;
  if (s->live != nullptr) {
    --*s->live;
    s->live = nullptr;
  }
}

bool EventHandle::pending() const {
  auto s = state_.lock();
  return s && !s->done;
}

EventHandle EventQueue::schedule(TimePoint at, EventFn fn) {
  auto state = std::make_shared<EventHandle::State>();
  state->live = &live_;
  heap_.push(Entry{at, next_seq_++, std::move(fn), state});
  ++live_;
  return EventHandle{state};
}

void EventQueue::drop_done() {
  // Cancelled entries already decremented live_ in EventHandle::cancel.
  while (!heap_.empty() && heap_.top().state->done) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() {
  drop_done();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_done();
  OMNI_CHECK_MSG(!heap_.empty(), "pop() on empty event queue");
  // priority_queue::top() is const; we move out via const_cast, which is safe
  // because we pop the entry immediately and never compare it again.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.at, std::move(top.fn)};
  top.state->done = true;  // consumed: handles report !pending()
  top.state->live = nullptr;
  --live_;
  heap_.pop();
  return out;
}

}  // namespace omni::sim
