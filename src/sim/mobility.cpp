#include "sim/mobility.h"

#include <algorithm>

namespace omni::sim {

ScriptedMobility& ScriptedMobility::teleport_at(TimePoint at, Vec2 position) {
  world_.simulator().at(at, [this, position] {
    world_.set_position(node_, position);
  });
  ++steps_;
  return *this;
}

ScriptedMobility& ScriptedMobility::walk_at(TimePoint at, Vec2 target,
                                            double speed_mps) {
  world_.simulator().at(at, [this, target, speed_mps] {
    world_.move_to(node_, target, speed_mps);
  });
  ++steps_;
  return *this;
}

RandomWaypointMobility::RandomWaypointMobility(World& world, NodeId node,
                                               Options options,
                                               std::uint64_t seed)
    : world_(world), node_(node), options_(options), rng_(seed) {
  OMNI_CHECK_MSG(options_.min_speed_mps > 0 &&
                     options_.max_speed_mps >= options_.min_speed_mps,
                 "invalid speed range");
  OMNI_CHECK_MSG(options_.area_max.x >= options_.area_min.x &&
                     options_.area_max.y >= options_.area_min.y,
                 "invalid area");
}

void RandomWaypointMobility::start() {
  if (running_) return;
  running_ = true;
  next_leg();
}

void RandomWaypointMobility::stop() {
  running_ = false;
  next_event_.cancel();
}

void RandomWaypointMobility::next_leg() {
  if (!running_) return;
  Vec2 target{rng_.uniform(options_.area_min.x, options_.area_max.x),
              rng_.uniform(options_.area_min.y, options_.area_max.y)};
  double speed =
      rng_.uniform(options_.min_speed_mps, options_.max_speed_mps);
  double dist = Vec2::distance(world_.position(node_), target);
  world_.move_to(node_, target, speed);
  ++legs_;
  Duration walk = Duration::seconds(dist / speed);
  Duration pause = Duration::micros(rng_.uniform_int(
      options_.min_pause.as_micros(),
      std::max(options_.min_pause.as_micros(),
               options_.max_pause.as_micros())));
  next_event_ =
      world_.simulator().after(walk + pause, [this] { next_leg(); });
}

}  // namespace omni::sim
