#include "sim/mobility.h"

#include <algorithm>

namespace omni::sim {

ScriptedMobility& ScriptedMobility::teleport_at(TimePoint at, Vec2 position) {
  world_.simulator().at(at, [this, position] {
    world_.set_position(node_, position);
  });
  ++steps_;
  return *this;
}

ScriptedMobility& ScriptedMobility::walk_at(TimePoint at, Vec2 target,
                                            double speed_mps) {
  world_.simulator().at(at, [this, target, speed_mps] {
    world_.move_to(node_, target, speed_mps);
  });
  ++steps_;
  return *this;
}

namespace {

// splitmix64 finalizer: cheap, stateless draws for the churn driver.
std::uint64_t churn_hash(std::uint64_t seed, std::uint64_t tick,
                         std::uint64_t draw) {
  std::uint64_t z = seed + tick * 0x9e3779b97f4a7c15ull +
                    draw * 0xd1b54a32d192ed03ull + 0x2545f4914f6cdd1dull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double churn_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

CrowdChurn::CrowdChurn(World& world, std::vector<NodeId> pool,
                       Options options, std::uint64_t seed)
    : world_(world), pool_(std::move(pool)), options_(options), seed_(seed) {
  OMNI_CHECK_MSG(options_.speed_mps > 0, "churn speed must be positive");
  OMNI_CHECK_MSG(options_.tick > Duration::zero(),
                 "churn tick must be positive");
  OMNI_CHECK_MSG(options_.max_step_m > 0, "churn step must be positive");
  OMNI_CHECK_MSG(options_.area_max.x >= options_.area_min.x &&
                     options_.area_max.y >= options_.area_min.y,
                 "invalid area");
  hop_slot_ =
      world_.simulator().register_callback_slot(this, &CrowdChurn::hop_thunk);
}

CrowdChurn::~CrowdChurn() {
  stop();
  world_.simulator().unregister_callback_slot(hop_slot_);
}

void CrowdChurn::hop_thunk(void* ctx) {
  static_cast<CrowdChurn*>(ctx)->run_tick();
}

void CrowdChurn::start() {
  if (running_ || pool_.empty()) return;
  running_ = true;
  next_event_ = world_.simulator().schedule_slot_on(
      kGlobalOwner, options_.tick, kEventMobilityHop, hop_slot_);
}

void CrowdChurn::stop() {
  running_ = false;
  next_event_.cancel();
}

void CrowdChurn::run_tick() {
  if (!running_) return;
  // World mutation: this event runs barrier-serialized (global owner).
  const std::uint64_t t = tick_no_++;
  for (std::size_t j = 0; j < options_.per_tick; ++j) {
    std::uint64_t pick = churn_hash(seed_, t, j * 3);
    NodeId node = pool_[pick % pool_.size()];
    // Bounded hop: current position plus a per-axis offset in
    // [-max_step_m, +max_step_m], clamped to the area (see Options on why
    // hops must stay local).
    Vec2 pos = world_.position(node);
    Vec2 target{
        pos.x + options_.max_step_m *
                    (2.0 * churn_unit(churn_hash(seed_, t, j * 3 + 1)) - 1.0),
        pos.y + options_.max_step_m *
                    (2.0 * churn_unit(churn_hash(seed_, t, j * 3 + 2)) - 1.0)};
    target.x = std::clamp(target.x, options_.area_min.x, options_.area_max.x);
    target.y = std::clamp(target.y, options_.area_min.y, options_.area_max.y);
    world_.move_to(node, target, options_.speed_mps);
    ++moves_;
  }
  next_event_ = world_.simulator().schedule_slot_on(
      kGlobalOwner, options_.tick, kEventMobilityHop, hop_slot_);
}

RandomWaypointMobility::RandomWaypointMobility(World& world, NodeId node,
                                               Options options,
                                               std::uint64_t seed)
    : world_(world), node_(node), options_(options), rng_(seed) {
  OMNI_CHECK_MSG(options_.min_speed_mps > 0 &&
                     options_.max_speed_mps >= options_.min_speed_mps,
                 "invalid speed range");
  OMNI_CHECK_MSG(options_.area_max.x >= options_.area_min.x &&
                     options_.area_max.y >= options_.area_min.y,
                 "invalid area");
  hop_slot_ = world_.simulator().register_callback_slot(
      this, &RandomWaypointMobility::leg_thunk);
}

RandomWaypointMobility::~RandomWaypointMobility() {
  stop();
  world_.simulator().unregister_callback_slot(hop_slot_);
}

void RandomWaypointMobility::leg_thunk(void* ctx) {
  static_cast<RandomWaypointMobility*>(ctx)->next_leg();
}

void RandomWaypointMobility::start() {
  if (running_) return;
  running_ = true;
  next_leg();
}

void RandomWaypointMobility::stop() {
  running_ = false;
  next_event_.cancel();
}

void RandomWaypointMobility::next_leg() {
  if (!running_) return;
  Vec2 target{rng_.uniform(options_.area_min.x, options_.area_max.x),
              rng_.uniform(options_.area_min.y, options_.area_max.y)};
  double speed =
      rng_.uniform(options_.min_speed_mps, options_.max_speed_mps);
  double dist = Vec2::distance(world_.position(node_), target);
  world_.move_to(node_, target, speed);
  ++legs_;
  Duration walk = Duration::seconds(dist / speed);
  Duration pause = Duration::micros(rng_.uniform_int(
      options_.min_pause.as_micros(),
      std::max(options_.min_pause.as_micros(),
               options_.max_pause.as_micros())));
  Simulator& sim = world_.simulator();
  next_event_ = sim.schedule_slot_on(sim.current_owner(), walk + pause,
                                     kEventMobilityHop, hop_slot_);
}

}  // namespace omni::sim
