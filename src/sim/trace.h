// Experiment trace recorder.
//
// Benches and tests record labelled, timestamped samples (e.g. "discovery",
// "chunk_received") and query or dump them afterwards. This keeps measurement
// out of the models themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.h"

namespace omni::sim {

struct TraceEvent {
  TimePoint at;
  std::string category;
  std::string label;
  double value = 0;
};

class TraceRecorder {
 public:
  void record(TimePoint at, std::string category, std::string label,
              double value = 0) {
    events_.push_back(
        TraceEvent{at, std::move(category), std::move(label), value});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  std::size_t count(const std::string& category) const;

  /// All events in a category, in record order.
  std::vector<TraceEvent> in_category(const std::string& category) const;

  /// Time of the first event matching category (and label, if non-empty);
  /// TimePoint::max() when absent.
  TimePoint first_time(const std::string& category,
                       const std::string& label = "") const;
  TimePoint last_time(const std::string& category,
                      const std::string& label = "") const;

  /// Sum of `value` across a category.
  double sum(const std::string& category) const;

  void clear() { events_.clear(); }

  /// Write "time_s,category,label,value" rows.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace omni::sim
