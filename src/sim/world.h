// Spatial model: node positions, motion, and range queries.
//
// Radios ask the world which peers are within their technology's range. The
// world supports static placement, instantaneous teleports, and linear
// waypoint motion (position is interpolated lazily — no per-tick events).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace omni::sim {

struct Vec2 {
  double x = 0;
  double y = 0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double k) const { return {x * k, y * k}; }
  bool operator==(const Vec2&) const = default;

  double norm() const;
  static double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
};

class World {
 public:
  explicit World(Simulator& sim) : sim_(sim) {}
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Register a node at a position; returns its id.
  NodeId add_node(std::string name, Vec2 position);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name(NodeId id) const;

  /// Current (interpolated) position.
  Vec2 position(NodeId id) const;

  /// Teleport the node immediately.
  void set_position(NodeId id, Vec2 position);

  /// Begin a linear move toward `target` at `speed` m/s, replacing any
  /// in-progress move. Completes silently; position() interpolates.
  void move_to(NodeId id, Vec2 target, double speed_mps);

  /// Distance between two nodes now.
  double distance(NodeId a, NodeId b) const;

  /// True if nodes are within `range` meters of each other.
  bool in_range(NodeId a, NodeId b, double range) const {
    return distance(a, b) <= range;
  }

  /// All nodes (other than `of`) within `range` meters.
  std::vector<NodeId> neighbors(NodeId of, double range) const;

  Simulator& simulator() { return sim_; }

 private:
  struct Node {
    std::string name;
    // Motion segment: at `depart`, the node was at `from`, moving toward
    // `to`, arriving at `arrive`. A static node has depart == arrive.
    Vec2 from;
    Vec2 to;
    TimePoint depart;
    TimePoint arrive;
  };

  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  Simulator& sim_;
  std::vector<Node> nodes_;
};

}  // namespace omni::sim
