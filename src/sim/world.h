// Spatial model: node positions, motion, and range queries, sharded into
// spatial region tiles so city-scale worlds (100k+ nodes) stay affordable.
//
// Radios ask the world which peers are within their technology's range. The
// world supports static placement, instantaneous teleports, and linear
// waypoint motion (position is interpolated lazily — no per-tick events).
//
// The plane is partitioned into square region tiles (side = region_cells ×
// grid cells). Each region owns its resident nodes' hot state in dense SoA
// arrays (motion segments keyed by a small slot index) plus a region-local
// spatial hash grid: a flat open-addressing cell table whose cells head
// intrusive chains through a link pool. There is no global per-cell
// allocation and no per-node std::string/std::vector members — names live in
// one interned arena, grid listings in the pooled chains — so an idle
// background node costs ~100 B of RSS instead of the ~150+ B of header
// overhead the old unordered_map<u64, vector> grid imposed.
//
// A node is resident in the region containing its motion segment's endpoint
// (`to`); mobility events that cross a tile boundary migrate the node's hot
// row between regions via a barrier-serialized handoff (swap-pop from the
// source SoA, append to the destination). Grid listings are conservative
// over the segment's bounding box and may span several regions; queries
// intersect the search rectangle with each overlapped region tile and probe
// only those regions' local tables.
//
// Nodes come in two flavors:
//   * add_node — a full-stack device: registered as an event owner (RNG
//     stream, mailbox lane, region-based shard placement) with an eager
//     nodes_near cache slot;
//   * add_crowd_node — background population: world-resident hot state only.
//     Crowd nodes appear in every range query but own no events, no RNG
//     stream, and no cache, which is what keeps the idle-node budget ~100 B.
//
// Concurrency contract (parallel engine): all mutation — add_node, teleports,
// move_to, regrids, migrations — must run in barrier-serialized global
// events; const queries (position, distance, nodes_in_disc) may then run
// concurrently from shard events, since grid chains and motion segments are
// stable inside a window. nodes_near is the one exception: it lazily writes a
// per-node cache, so concurrent contexts may only call it for their own node
// (single-writer; cache slots are allocated eagerly at admission so a hit or
// rebuild never reallocates shared storage). Both rules are enforced with
// checks against the simulator's execution context.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace omni::sim {

class FaultPlan;

struct Vec2 {
  double x = 0;
  double y = 0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double k) const { return {x * k, y * k}; }
  bool operator==(const Vec2&) const = default;

  double norm() const;
  static double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
};

class World {
 public:
  /// Default grid cell size: matches the largest calibrated radio range
  /// (wifi/nan 100 m), so a range query touches at most ~9 cells.
  static constexpr double kDefaultCellM = 100.0;
  /// Default region side, in grid cells. 8 cells ≈ 8 radio ranges per tile:
  /// big enough that a range query rarely crosses more than one boundary,
  /// small enough that a city-scale world spreads over many shards.
  static constexpr std::uint32_t kDefaultRegionCells = 8;

  explicit World(Simulator& sim, double grid_cell_m = kDefaultCellM,
                 std::uint32_t region_cells = kDefaultRegionCells)
      : sim_(sim), cell_m_(grid_cell_m), region_cells_(region_cells) {}
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Change the grid cell size (e.g. to the deployment's max radio range)
  /// and rebuild every region. Any positive size is correct; sizes near the
  /// dominant query range are fastest.
  void set_grid_cell_size(double meters);
  double grid_cell_size() const { return cell_m_; }

  /// Change the region tile side (in grid cells) and repartition the world.
  /// 0 means a single unbounded region — the degenerate configuration that
  /// reproduces the pre-region flat world exactly (used by the golden-trace
  /// equivalence tests). Like every mutation, barrier-serialized only.
  void set_region_cells(std::uint32_t cells);
  std::uint32_t region_cells() const { return region_cells_; }

  /// Register a full-stack node at a position; returns its id. The node
  /// becomes an event owner (ensure_owner) and is placed on the shard of its
  /// home region (place_owner).
  NodeId add_node(std::string_view name, Vec2 position);

  /// Register a background-population node: world-resident hot state only
  /// (~100 B) — no event ownership, no RNG stream, no neighbor cache. Crowd
  /// nodes show up in every range query and can be moved like any other
  /// node; they just cannot own events.
  NodeId add_crowd_node(std::string_view name, Vec2 position);

  std::size_t node_count() const { return node_ref_.size(); }
  std::string_view name(NodeId id) const;

  /// Current (interpolated) position.
  Vec2 position(NodeId id) const;

  /// Teleport the node immediately.
  void set_position(NodeId id, Vec2 position);

  /// Begin a linear move toward `target` at `speed` m/s, replacing any
  /// in-progress move. Completes silently; position() interpolates.
  void move_to(NodeId id, Vec2 target, double speed_mps);

  /// Distance between two nodes now.
  double distance(NodeId a, NodeId b) const;

  /// True if nodes are within `range` meters of each other.
  bool in_range(NodeId a, NodeId b, double range) const {
    return distance(a, b) <= range;
  }

  /// All nodes (other than `of`) within `range` meters, appended to `out`
  /// ascending by id (`out` is cleared first). Mirrors nodes_in_disc; hot
  /// paths pass a reused scratch vector to stay allocation-free.
  void neighbors(NodeId of, double range, std::vector<NodeId>& out) const;

  /// Allocating convenience overload of the above. Prefer the out-param
  /// form anywhere called more than once.
  std::vector<NodeId> neighbors(NodeId of, double range) const;

  /// All nodes within `range` of `center` (including any node exactly at
  /// it), appended to `out` ascending by id. `out` is cleared first; hot
  /// paths pass a reused scratch vector to stay allocation-free.
  void nodes_in_disc(Vec2 center, double range,
                     std::vector<NodeId>& out) const;

  /// nodes_in_disc centred on node `of`'s current position (node itself
  /// included). Equivalent to nodes_in_disc(position(of), range, out), but
  /// while the world is static — no motion segment still in flight — the
  /// result is served from a per-node cache invalidated by changes to the
  /// overlapped regions only, so periodic fan-out (beacons every 500 ms)
  /// skips the grid walk and survives churn in distant regions.
  void nodes_near(NodeId of, double range, std::vector<NodeId>& out) const;

  /// Topology epoch: bumped on every structural or positional change
  /// (add/teleport/move/regrid). Callers caching neighbor-derived data (a
  /// medium's fan-out lists) invalidate on mismatch; an epoch match pins
  /// positions only together with is_static() — a motion segment in flight
  /// moves positions continuously without epoch bumps. Prefer
  /// neighborhood_epoch() for spatially local caches.
  std::uint64_t topo_epoch() const { return topo_epoch_; }

  /// Epoch fingerprint of the neighborhood of `center` within `range`:
  /// changes whenever the occupancy or positions of any overlapped region
  /// change (or on any structural change — admissions, regrids,
  /// repartitions), and is stable under churn elsewhere. Callers caching
  /// results of a disc query revalidate with (center, range, fingerprint);
  /// as with topo_epoch, positions are pinned only together with
  /// is_static().
  std::uint64_t neighborhood_epoch(Vec2 center, double range) const;

  /// True when every position() is time-invariant (no motion in flight).
  bool is_static(TimePoint now) const { return now >= moving_until_; }

  /// Region introspection (telemetry; bench_scale reports all three).
  std::size_t region_count() const { return regions_.size(); }
  std::uint64_t migrations() const { return migrations_; }
  std::uint32_t region_of(NodeId id) const;

  /// Capacity-accounted footprint of the world's own storage (excludes the
  /// simulator, radios, and middleware). The scale bench divides total() by
  /// node_count() to police the ~100 B/idle-node budget.
  struct MemoryStats {
    std::size_t hot_bytes = 0;        ///< region SoA motion rows
    std::size_t grid_bytes = 0;       ///< cell tables + link pools
    std::size_t name_bytes = 0;       ///< interned name arena + offsets
    std::size_t cache_bytes = 0;      ///< per-device nodes_near caches
    std::size_t directory_bytes = 0;  ///< node→(region,slot) + region index
    std::size_t total() const {
      return hot_bytes + grid_bytes + name_bytes + cache_bytes +
             directory_bytes;
    }
  };
  MemoryStats memory_stats() const;

  /// One node's motion row for snapshot capture (sim/snapshot.h). Rows are
  /// the world's complete per-node logical state — names, grids, and
  /// nodes_near caches are all rebuilt/derived, never serialized.
  struct SnapshotRow {
    NodeId id = kInvalidNode;
    bool full_stack = false;  ///< add_node (true) vs add_crowd_node
    Vec2 from;
    Vec2 to;
    TimePoint depart;
    TimePoint arrive;
  };

  /// Append every node's row, ascending by id (out is cleared first).
  /// Quiescent/global contexts only, like every other bulk read.
  void snapshot_rows(std::vector<SnapshotRow>& out) const;

  Simulator& simulator() { return sim_; }

  /// Arm (or disarm with nullptr) fault injection: media consult this plan
  /// on every delivery. Must be set from a quiescent/global context; the
  /// plan's delivery queries are const and safe from concurrent shards.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }
  const FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;   ///< empty slot / end
  static constexpr std::uint32_t kTomb = 0xfffffffeu;  ///< deleted cell

  struct Region {
    std::int64_t rx = 0;  ///< tile coordinate (cell coords / region_cells)
    std::int64_t ry = 0;
    /// Bumped on every occupancy or position change inside the tile; the
    /// component of neighborhood_epoch() contributed by this region.
    std::uint64_t epoch = 1;

    // Resident hot state, dense SoA keyed by slot. A static node has
    // depart == arrive and sits at `to`.
    std::vector<NodeId> ids;
    std::vector<Vec2> from;
    std::vector<Vec2> to;
    std::vector<TimePoint> depart;
    std::vector<TimePoint> arrive;

    // Region-local grid: open-addressing cell table (power-of-two, linear
    // probing, tombstones) heading intrusive chains through `links`.
    struct CellSlot {
      std::uint64_t key = 0;
      std::uint32_t head = kNil;  ///< link index, kNil (empty), kTomb
    };
    struct Link {
      NodeId id = kInvalidNode;
      std::uint32_t next = kNil;  ///< chain link, or free-list link
    };
    std::vector<CellSlot> cells;
    std::uint32_t cell_used = 0;   ///< live cells (excludes tombstones)
    std::uint32_t cell_tombs = 0;
    std::vector<Link> links;
    std::uint32_t free_link = kNil;
  };

  /// Where a node's hot row lives.
  struct NodeRef {
    std::uint32_t region = 0;
    std::uint32_t slot = 0;
  };

  /// nodes_near cache, one eager slot per full-stack node. Valid while the
  /// neighborhood fingerprint, range, and home position all match.
  struct NearCache {
    std::uint64_t nb_epoch = 0;
    double range = -1.0;
    Vec2 center;
    std::vector<NodeId> ids;
  };

  static std::uint64_t pack_key(std::int64_t a, std::int64_t b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
  }
  static std::uint64_t mix_key(std::uint64_t k);
  static std::uint32_t cell_head(const Region& r, std::uint64_t key);
  static std::uint32_t link_alloc(Region& r, NodeId id, std::uint32_t next);
  static void cell_grow(Region& r);
  static void cell_insert(Region& r, std::uint64_t key, NodeId id);
  static void cell_remove(Region& r, std::uint64_t key, NodeId id);

  std::int64_t cell_coord(double v) const;
  std::int64_t region_coord(std::int64_t cell) const;
  /// Index of the region tile at (rx, ry), creating it if absent. May
  /// reallocate regions_ — never hold a Region& across a call.
  std::uint32_t region_index_at(std::int64_t rx, std::int64_t ry);
  const Region* find_region(std::int64_t rx, std::int64_t ry) const;

  NodeId admit(std::string_view name, Vec2 position, bool full_stack);
  /// List the node under every cell overlapped by the axis-aligned bounding
  /// box of its current motion segment (a point for static nodes). unbucket
  /// recomputes the same cell set from the segment, so it must run before
  /// the segment is mutated.
  void bucket(NodeId id);
  void unbucket(NodeId id);
  /// Hand the node's hot row from its current region to tile (rx, ry):
  /// swap-pop out of the source SoA, append to the destination. Grid
  /// listings are not touched (callers unbucket/bucket around mutation).
  void migrate(NodeId id, std::int64_t rx, std::int64_t ry);
  /// Rebuild every region from scratch (cell size or region size changed).
  void repartition();

  Simulator& sim_;
  double cell_m_;
  std::uint32_t region_cells_;
  std::vector<Region> regions_;  ///< indices are stable (never erased)
  std::unordered_map<std::uint64_t, std::uint32_t> region_index_;
  std::vector<NodeRef> node_ref_;

  // Interned names: one arena, offsets per node (name i spans
  // [name_off_[i], name_off_[i+1])).
  std::string name_arena_;
  std::vector<std::uint32_t> name_off_{0};

  // nodes_near caches: cache_index_[node] indexes caches_, kNil for crowd
  // nodes. Slots are allocated at admission (global context), so shard-time
  // queries only ever write their own pre-existing entry.
  std::vector<std::uint32_t> cache_index_;
  mutable std::vector<NearCache> caches_;

  // Bumped on every topology change (add/teleport/move/regrid); coarse
  // invalidation for callers without a spatial anchor.
  std::uint64_t topo_epoch_ = 1;
  // Bumped on admissions, regrids, and repartitions only — the
  // region-set-independent component of neighborhood_epoch().
  std::uint64_t structural_epoch_ = 1;
  std::uint64_t migrations_ = 0;
  // Latest arrival time of any motion segment ever started; the world is
  // static (every position() is constant) once now >= moving_until_.
  TimePoint moving_until_ = TimePoint{};
  // Non-owning; armed by the testbed when a scenario declares faults.
  const FaultPlan* fault_plan_ = nullptr;
};

}  // namespace omni::sim
