// Spatial model: node positions, motion, and range queries.
//
// Radios ask the world which peers are within their technology's range. The
// world supports static placement, instantaneous teleports, and linear
// waypoint motion (position is interpolated lazily — no per-tick events).
//
// Range fan-out queries run against a spatial hash grid (cell size ≈ the
// largest radio range) instead of scanning every node. Nodes are re-bucketed
// on mobility events only: a moving node is conservatively listed in every
// cell its motion segment's bounding box overlaps, so lazily interpolated
// positions stay query-correct without per-tick grid updates. Queries gather
// candidates from the cells overlapping the search disc and apply the exact
// distance test.
//
// Concurrency contract (parallel engine): all mutation — add_node, teleports,
// move_to, regrids — must run in barrier-serialized global events; const
// queries (position, distance, nodes_in_disc) may then run concurrently from
// shard events, since grid buckets and motion segments are stable inside a
// window. nodes_near is the one exception: it lazily writes a per-node cache,
// so concurrent contexts may only call it for their own node (single-writer).
// Both rules are enforced with checks against the simulator's execution
// context.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace omni::sim {

class FaultPlan;

struct Vec2 {
  double x = 0;
  double y = 0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double k) const { return {x * k, y * k}; }
  bool operator==(const Vec2&) const = default;

  double norm() const;
  static double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
};

class World {
 public:
  /// Default grid cell size: matches the largest calibrated radio range
  /// (wifi/nan 100 m), so a range query touches at most ~9 cells.
  static constexpr double kDefaultCellM = 100.0;

  explicit World(Simulator& sim, double grid_cell_m = kDefaultCellM)
      : sim_(sim), cell_m_(grid_cell_m) {}
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Change the grid cell size (e.g. to the deployment's max radio range)
  /// and re-bucket every node. Any positive size is correct; sizes near the
  /// dominant query range are fastest.
  void set_grid_cell_size(double meters);
  double grid_cell_size() const { return cell_m_; }

  /// Register a node at a position; returns its id.
  NodeId add_node(std::string name, Vec2 position);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name(NodeId id) const;

  /// Current (interpolated) position.
  Vec2 position(NodeId id) const;

  /// Teleport the node immediately.
  void set_position(NodeId id, Vec2 position);

  /// Begin a linear move toward `target` at `speed` m/s, replacing any
  /// in-progress move. Completes silently; position() interpolates.
  void move_to(NodeId id, Vec2 target, double speed_mps);

  /// Distance between two nodes now.
  double distance(NodeId a, NodeId b) const;

  /// True if nodes are within `range` meters of each other.
  bool in_range(NodeId a, NodeId b, double range) const {
    return distance(a, b) <= range;
  }

  /// All nodes (other than `of`) within `range` meters, ascending by id.
  std::vector<NodeId> neighbors(NodeId of, double range) const;

  /// All nodes within `range` of `center` (including any node exactly at
  /// it), appended to `out` ascending by id. `out` is cleared first; hot
  /// paths pass a reused scratch vector to stay allocation-free.
  void nodes_in_disc(Vec2 center, double range,
                     std::vector<NodeId>& out) const;

  /// nodes_in_disc centred on node `of`'s current position (node itself
  /// included). Equivalent to nodes_in_disc(position(of), range, out), but
  /// while the world is static — no motion segment still in flight — the
  /// result is served from a per-node cache invalidated by topology changes,
  /// so periodic fan-out (beacons every 500 ms) skips the grid walk.
  void nodes_near(NodeId of, double range, std::vector<NodeId>& out) const;

  /// Topology epoch: bumped on every structural or positional change
  /// (add/teleport/move/regrid). Callers caching neighbor-derived data (a
  /// medium's fan-out lists) invalidate on mismatch; an epoch match pins
  /// positions only together with is_static() — a motion segment in flight
  /// moves positions continuously without epoch bumps.
  std::uint64_t topo_epoch() const { return topo_epoch_; }
  /// True when every position() is time-invariant (no motion in flight).
  bool is_static(TimePoint now) const { return now >= moving_until_; }

  Simulator& simulator() { return sim_; }

  /// Arm (or disarm with nullptr) fault injection: media consult this plan
  /// on every delivery. Must be set from a quiescent/global context; the
  /// plan's delivery queries are const and safe from concurrent shards.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }
  const FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  struct Node {
    std::string name;
    // Motion segment: at `depart`, the node was at `from`, moving toward
    // `to`, arriving at `arrive`. A static node has depart == arrive.
    Vec2 from;
    Vec2 to;
    TimePoint depart;
    TimePoint arrive;
    std::vector<std::uint64_t> cells;  // grid cells this node is listed in
    // nodes_near cache: valid while the topology epoch matches and the
    // world is static. One slot per node; a node alternating query ranges
    // (40 m beacons, 100 m probes) just rebuilds on the rarer range.
    mutable std::uint64_t cache_epoch = 0;
    mutable double cache_range = -1.0;
    mutable std::vector<NodeId> cache_ids;
  };

  static std::uint64_t cell_key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  std::int64_t cell_coord(double v) const;

  /// Re-list the node under every cell overlapped by the axis-aligned
  /// bounding box of its current motion segment (a point for static nodes).
  void rebucket(NodeId id);
  void unbucket(NodeId id);

  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  Simulator& sim_;
  double cell_m_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> grid_;
  // Bumped on every topology change (add/teleport/move/regrid); nodes_near
  // caches stamped with an older epoch are stale.
  std::uint64_t topo_epoch_ = 1;
  // Latest arrival time of any motion segment ever started; the world is
  // static (every position() is constant) once now >= moving_until_.
  TimePoint moving_until_ = TimePoint{};
  // Non-owning; armed by the testbed when a scenario declares faults.
  const FaultPlan* fault_plan_ = nullptr;
};

}  // namespace omni::sim
