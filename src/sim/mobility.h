// Mobility models driving World positions over time.
//
// The experiments mostly use static placement and scripted moves, but the
// library also provides the two classic generators used throughout the DTN
// literature the paper's applications come from:
//
//   * ScriptedMobility — a timetable of moves/teleports (reproducible
//     scenario scripts, e.g. "B meets C five seconds later");
//   * RandomWaypointMobility — pick a point in a rectangle, walk there at a
//     uniform-random speed, pause, repeat.
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/world.h"

namespace omni::sim {

/// A timetable of movements for one node.
class ScriptedMobility {
 public:
  ScriptedMobility(World& world, NodeId node) : world_(world), node_(node) {}

  /// At `at`, teleport the node to `position`.
  ScriptedMobility& teleport_at(TimePoint at, Vec2 position);
  /// At `at`, begin walking toward `target` at `speed_mps`.
  ScriptedMobility& walk_at(TimePoint at, Vec2 target, double speed_mps);

  std::size_t scheduled_steps() const { return steps_; }

 private:
  World& world_;
  NodeId node_;
  std::size_t steps_ = 0;
};

/// Classic random-waypoint motion inside an axis-aligned rectangle.
class RandomWaypointMobility {
 public:
  struct Options {
    Vec2 area_min{0, 0};
    Vec2 area_max{100, 100};
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;
    Duration min_pause = Duration::seconds(0);
    Duration max_pause = Duration::seconds(10);
  };

  RandomWaypointMobility(World& world, NodeId node, Options options,
                         std::uint64_t seed);
  RandomWaypointMobility(const RandomWaypointMobility&) = delete;
  RandomWaypointMobility& operator=(const RandomWaypointMobility&) = delete;
  ~RandomWaypointMobility() { stop(); }

  void start();
  void stop();
  bool running() const { return running_; }
  std::uint64_t legs_walked() const { return legs_; }

 private:
  void next_leg();

  World& world_;
  NodeId node_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t legs_ = 0;
  EventHandle next_event_;
};

}  // namespace omni::sim
