// Mobility models driving World positions over time.
//
// The experiments mostly use static placement and scripted moves, but the
// library also provides the two classic generators used throughout the DTN
// literature the paper's applications come from:
//
//   * ScriptedMobility — a timetable of moves/teleports (reproducible
//     scenario scripts, e.g. "B meets C five seconds later");
//   * RandomWaypointMobility — pick a point in a rectangle, walk there at a
//     uniform-random speed, pause, repeat.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"
#include "sim/world.h"

namespace omni::sim {

/// A timetable of movements for one node.
class ScriptedMobility {
 public:
  ScriptedMobility(World& world, NodeId node) : world_(world), node_(node) {}

  /// At `at`, teleport the node to `position`.
  ScriptedMobility& teleport_at(TimePoint at, Vec2 position);
  /// At `at`, begin walking toward `target` at `speed_mps`.
  ScriptedMobility& walk_at(TimePoint at, Vec2 target, double speed_mps);

  std::size_t scheduled_steps() const { return steps_; }

 private:
  World& world_;
  NodeId node_;
  std::size_t steps_ = 0;
};

/// Deterministic background churn over a pool of nodes (typically crowd
/// nodes): one self-rescheduling global event walks `per_tick`
/// pseudo-randomly chosen pool members toward fresh waypoints every `tick`.
///
/// Targets and node choices are stateless splitmix64 hashes of (seed, tick
/// index, draw index), so the driver carries no per-node state at all — a
/// RandomWaypointMobility per node would cost a ~2.5 KB mt19937_64 engine
/// each, which is 250 MB of dead weight at 100k nodes — and consumes nothing
/// from any simulator RNG stream.
class CrowdChurn {
 public:
  struct Options {
    Vec2 area_min{0, 0};
    Vec2 area_max{100, 100};
    double speed_mps = 1.4;               ///< pedestrian pace
    Duration tick = Duration::millis(500);
    std::size_t per_tick = 100;           ///< walks started per tick
    /// Longest per-axis hop from the node's current position. Local hops
    /// matter for memory, not just realism: the grid buckets a mover over
    /// its whole segment bounding box, so a city-spanning waypoint would
    /// insert the node into thousands of cells, while a bounded step stays
    /// within a handful (and still crosses region-tile boundaries often
    /// enough to exercise migration).
    double max_step_m = 150.0;
  };

  CrowdChurn(World& world, std::vector<NodeId> pool, Options options,
             std::uint64_t seed);
  CrowdChurn(const CrowdChurn&) = delete;
  CrowdChurn& operator=(const CrowdChurn&) = delete;
  ~CrowdChurn();

  void start();
  void stop();
  bool running() const { return running_; }
  std::uint64_t moves_started() const { return moves_; }

 private:
  void run_tick();
  static void hop_thunk(void* ctx);

  World& world_;
  std::vector<NodeId> pool_;
  Options options_;
  std::uint64_t seed_;
  std::uint64_t tick_no_ = 0;
  std::uint64_t moves_ = 0;
  bool running_ = false;
  EventHandle next_event_;
  /// Callback-slot id: ticks are {u32 slot} kEventMobilityHop descriptors.
  std::uint32_t hop_slot_ = 0;
};

/// Classic random-waypoint motion inside an axis-aligned rectangle.
class RandomWaypointMobility {
 public:
  struct Options {
    Vec2 area_min{0, 0};
    Vec2 area_max{100, 100};
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;
    Duration min_pause = Duration::seconds(0);
    Duration max_pause = Duration::seconds(10);
  };

  RandomWaypointMobility(World& world, NodeId node, Options options,
                         std::uint64_t seed);
  RandomWaypointMobility(const RandomWaypointMobility&) = delete;
  RandomWaypointMobility& operator=(const RandomWaypointMobility&) = delete;
  ~RandomWaypointMobility();

  void start();
  void stop();
  bool running() const { return running_; }
  std::uint64_t legs_walked() const { return legs_; }

 private:
  void next_leg();
  static void leg_thunk(void* ctx);

  World& world_;
  NodeId node_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t legs_ = 0;
  EventHandle next_event_;
  /// Callback-slot id: legs are {u32 slot} kEventMobilityHop descriptors.
  std::uint32_t hop_slot_ = 0;
};

}  // namespace omni::sim
