// Typed, serializable event descriptors.
//
// The event queue's native payload is an opaque `std::function` closure —
// perfect for the long tail of one-off callbacks, but opaque closures cannot
// travel between processes, and captures beyond the small-buffer limit heap-
// allocate on every schedule. An EventDesc is the alternative for the hot
// recurring event classes (beacon/advert timers, SimQueue drains, BLE sweep
// batches, discovery ticks, mobility hops, maintenance/expiry, scenario
// timers): a tagged POD of kind + owner + at most 32 payload bytes, stored
// inline in the event slab (sim/event_queue.h) and dispatched through a
// kind→handler registry on the Simulator (sim/simulator.h). Because a
// descriptor is pure data, a cross-owner descriptor post can be encoded onto
// the distributed wire (dist/protocol.h, docs/FORMATS.md) and into `.osnap`
// snapshots, where a closure post can only be *verified* by replication.
//
// Kinds are part of the wire format: renumbering an existing kind is a
// breaking format change (bump the frame/snapshot version), appending is not.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>

#include "common/codec.h"

namespace omni::sim {

/// Descriptor kind tag. Kind 0 is reserved for "this event is a closure";
/// real descriptors use 1..kEventKindCount-1.
using EventKind = std::uint16_t;

inline constexpr EventKind kEventClosure = 0;        ///< opaque EventFn, not a descriptor
inline constexpr EventKind kEventQueueDrain = 1;     ///< {u32 slot} SimQueue deferred wake
inline constexpr EventKind kEventBleAdvertFire = 2;  ///< {u32 node, u32 uid, u32 adv}
inline constexpr EventKind kEventBleSweep = 3;       ///< {u64 packed batch key}
inline constexpr EventKind kEventBleScanApply = 4;   ///< {u32 node, u32 uid}
inline constexpr EventKind kEventMgrMaintenance = 5; ///< {u32 slot} engagement maintenance tick
inline constexpr EventKind kEventMgrPeerSweep = 6;   ///< {u32 slot} peer-expiry sweep
inline constexpr EventKind kEventMobilityHop = 7;    ///< {u32 slot} mobility model tick/leg
inline constexpr EventKind kEventScenarioTimer = 8;  ///< {u32 slot} scenario DSL instruction
inline constexpr EventKind kEventDiscoveryTick = 9;  ///< {u32 slot} disengaged-tech probe
inline constexpr EventKind kEventEngageSync = 10;    ///< {u32 slot} engagement flag sync
inline constexpr EventKind kEventTestA = 14;         ///< reserved for tests
inline constexpr EventKind kEventTestB = 15;         ///< reserved for tests
inline constexpr EventKind kEventKindCount = 16;

/// Maximum inline payload. Matches the closure small-buffer budget in the
/// event slab so descriptors never grow the slot.
inline constexpr std::size_t kEventPayloadMax = 32;

/// A schedulable event as pure data: what to do (kind + payload) and whose
/// context to do it in (owner). `owner` mirrors OwnerId (event_queue.h).
struct EventDesc {
  EventKind kind = kEventClosure;
  std::uint8_t psize = 0;
  std::uint32_t owner = 0xffffffffu;  // kGlobalOwner
  unsigned char payload[kEventPayloadMax] = {};

  std::uint32_t payload_u32(std::size_t offset) const {
    std::uint32_t v = 0;
    std::memcpy(&v, payload + offset, sizeof v);
    return v;
  }
  std::uint64_t payload_u64(std::size_t offset) const {
    std::uint64_t v = 0;
    std::memcpy(&v, payload + offset, sizeof v);
    return v;
  }
};

/// Human name for a kind; tolerates unknown values (diagnostics, bench rows).
const char* event_kind_name(EventKind kind);

// --- Payload builders --------------------------------------------------------
// Fixed-width little-endian fields packed in declaration order; layouts are
// documented per kind above and normatively in docs/FORMATS.md.

inline std::uint8_t pack_u32s(unsigned char* payload,
                              std::initializer_list<std::uint32_t> vals) {
  std::uint8_t off = 0;
  for (std::uint32_t v : vals) {
    std::memcpy(payload + off, &v, sizeof v);
    off += sizeof v;
  }
  return off;
}

inline std::uint8_t pack_u64(unsigned char* payload, std::uint64_t v) {
  std::memcpy(payload, &v, sizeof v);
  return sizeof v;
}

// --- Wire encoding -----------------------------------------------------------
// var(kind) var(psize) payload[psize]. Used by the `.osnap` pending-descriptor
// section and the OFRM descriptor-post section (docs/FORMATS.md).

inline void encode_event_desc(codec::ByteWriter& w, EventKind kind,
                              std::uint8_t psize,
                              const unsigned char* payload) {
  w.var(kind);
  w.var(psize);
  for (std::uint8_t i = 0; i < psize; ++i) w.u8(payload[i]);
}

/// Strict decode into `out` (owner is not on the wire — it travels in the
/// enclosing record). Returns false on overrun, kind 0 / out-of-range kind,
/// or psize > kEventPayloadMax; the reader's fail flag is also set so an
/// enclosing section decode fails closed.
bool decode_event_desc(codec::ByteReader& r, EventDesc& out);

}  // namespace omni::sim
