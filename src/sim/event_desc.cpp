#include "sim/event_desc.h"

namespace omni::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case kEventClosure: return "closure";
    case kEventQueueDrain: return "queue-drain";
    case kEventBleAdvertFire: return "ble-advert-fire";
    case kEventBleSweep: return "ble-sweep";
    case kEventBleScanApply: return "ble-scan-apply";
    case kEventMgrMaintenance: return "mgr-maintenance";
    case kEventMgrPeerSweep: return "mgr-peer-sweep";
    case kEventMobilityHop: return "mobility-hop";
    case kEventScenarioTimer: return "scenario-timer";
    case kEventDiscoveryTick: return "discovery-tick";
    case kEventEngageSync: return "engage-sync";
    case kEventTestA: return "test-a";
    case kEventTestB: return "test-b";
    default: return "unknown";
  }
}

bool decode_event_desc(codec::ByteReader& r, EventDesc& out) {
  std::uint64_t kind = r.var();
  std::uint64_t psize = r.var();
  if (!r.ok() || kind == kEventClosure || kind >= kEventKindCount ||
      psize > kEventPayloadMax) {
    r.fail();
    return false;
  }
  out.kind = static_cast<EventKind>(kind);
  out.psize = static_cast<std::uint8_t>(psize);
  std::memset(out.payload, 0, sizeof out.payload);
  for (std::uint8_t i = 0; i < out.psize; ++i) out.payload[i] = r.u8();
  if (!r.ok()) return false;
  return true;
}

}  // namespace omni::sim
