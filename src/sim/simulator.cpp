#include "sim/simulator.h"

namespace omni::sim {

std::uint64_t Simulator::run_until(TimePoint deadline) {
  stop_requested_ = false;
  std::uint64_t ran = 0;
  while (!events_.empty() && !stop_requested_) {
    // Zero-delay events are due at the current instant; otherwise the next
    // heap event decides how far the clock jumps.
    TimePoint next = events_.has_immediate() ? now_ : events_.next_time();
    if (next > deadline) break;
    auto [at, fn] = events_.pop(now_);
    now_ = at;
    fn();
    ++ran;
    ++executed_;
  }
  if (now_ < deadline && !stop_requested_) now_ = deadline;
  return ran;
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t ran = 0;
  while (!events_.empty() && !stop_requested_) {
    auto [at, fn] = events_.pop(now_);
    now_ = at;
    fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

}  // namespace omni::sim
