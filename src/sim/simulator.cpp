#include "sim/simulator.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "common/hash.h"
#include "common/result.h"

namespace omni::sim {
namespace {

// Window rendezvous are microseconds apart in hot simulations: both sides of
// the barrier spin briefly before falling back to a futex wait, so the
// common case costs nanoseconds instead of a kernel round trip, while idle
// phases (no shard work pending) still sleep.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Spinning only helps when every shard (plus the driver) has a core to spin
// on; on an oversubscribed machine a spinning worker preempts the thread it
// is waiting for, so go straight to the futex there.
inline int barrier_spin_limit(std::size_t nshards) {
  unsigned hw = std::thread::hardware_concurrency();
  return (hw != 0 && nshards <= hw) ? (1 << 14) : 0;
}

}  // namespace

thread_local Simulator::ExecCtx Simulator::tls_ctx_;

Simulator::Simulator(std::uint64_t seed, unsigned threads)
    : seed_(seed),
      nshards_(std::max(1u, std::min(threads, 64u))),
      shards_(nshards_),
      rng_(seed) {
  for (Shard& sh : shards_) sh.out.resize(nshards_ + 1);
  // Slot-call kinds all dispatch through the callback-slot directory; the
  // kind tag distinguishes them for diagnostics, telemetry, and the wire.
  for (EventKind k : {kEventQueueDrain, kEventMgrMaintenance,
                      kEventMgrPeerSweep, kEventMobilityHop,
                      kEventScenarioTimer, kEventDiscoveryTick,
                      kEventEngageSync}) {
    desc_handlers_[k] = DescHandler{this, &Simulator::slot_kind_handler};
  }
}

Simulator::~Simulator() {
  if (!workers_.empty()) {
    shutdown_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

void Simulator::set_lookahead(Duration lookahead) {
  OMNI_CHECK_MSG(lookahead > Duration::zero(),
                 "lookahead must be strictly positive");
  lookahead_ = lookahead;
}

TimePoint Simulator::now() const {
  const ExecCtx& c = tls_ctx_;
  if (c.sim == this && c.shard != nullptr) return c.shard->now;
  return now_;
}

Rng& Simulator::rng() {
  const ExecCtx& c = tls_ctx_;
  if (c.sim == this && c.owner != kGlobalOwner) {
    OMNI_CHECK_MSG(c.owner < owner_rngs_.size() &&
                       owner_rngs_[c.owner] != nullptr,
                   "event owner has no RNG stream (missing ensure_owner)");
    return *owner_rngs_[c.owner];
  }
  return rng_;
}

std::uint64_t Simulator::derive_owner_seed(std::uint64_t seed, OwnerId owner) {
  // splitmix64-style finalizer over (seed, owner): statistically independent
  // streams without consuming draws from any other stream (Rng::fork would
  // make stream seeds depend on the parent's draw position).
  std::uint64_t z = seed + (static_cast<std::uint64_t>(owner) + 1) *
                               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void Simulator::ensure_owner(OwnerId owner) {
  if (owner == kGlobalOwner) return;
  const ExecCtx& c = tls_ctx_;
  OMNI_CHECK_MSG(c.sim != this || c.shard == nullptr,
                 "ensure_owner must run outside parallel windows");
  // Holes stay null: with sparse owner ids (city worlds where a handful of
  // devices live among tens of thousands of crowd nodes) only the owners
  // actually ensured pay for RNG state. Seeds are a pure function of
  // (seed_, owner), so allocation order can't perturb any stream.
  if (owner_rngs_.size() <= owner) {
    owner_rngs_.resize(owner + 1);
    owner_seq_.resize(owner + 1, 0);
  }
  if (owner_rngs_[owner] == nullptr) {
    owner_rngs_[owner] =
        std::make_unique<Rng>(derive_owner_seed(seed_, owner));
  }
}

void Simulator::place_owner(OwnerId owner, std::uint64_t hint) {
  if (owner == kGlobalOwner) return;
  const ExecCtx& c = tls_ctx_;
  OMNI_CHECK_MSG(c.sim != this || c.shard == nullptr,
                 "place_owner must run outside parallel windows");
  if (owner_shard_.size() <= owner) {
    std::size_t first = owner_shard_.size();
    owner_shard_.resize(static_cast<std::size_t>(owner) + 1);
    for (std::size_t i = first; i < owner_shard_.size(); ++i) {
      owner_shard_[i] = static_cast<std::uint32_t>(i % nshards_);
    }
  }
  owner_shard_[owner] = static_cast<std::uint32_t>(hint % nshards_);
}

OwnerId Simulator::current_owner() const {
  const ExecCtx& c = tls_ctx_;
  return c.sim == this ? c.owner : kGlobalOwner;
}

bool Simulator::owns_context(OwnerId owner) const {
  const ExecCtx& c = tls_ctx_;
  if (c.sim != this || c.shard == nullptr) return true;
  return c.owner == owner;
}

EventHandle Simulator::after_on(OwnerId owner, Duration delay, EventFn fn) {
  ExecCtx& c = tls_ctx_;
  if (c.sim != this || c.shard == nullptr) {
    // Setup code or a global event: every queue is quiescent, insert
    // directly. Times are anchored at the global clock.
    if (owner == kGlobalOwner) {
      if (delay <= Duration::zero()) {
        return global_q_.schedule_now(now_, std::move(fn), owner);
      }
      return global_q_.schedule(now_ + delay, std::move(fn), owner);
    }
    ensure_owner(owner);
    // Into a shard queue: always via the heap. The shard's zero-delay FIFO
    // is reserved for the shard's own events (its clock may lag now_, and
    // FIFO entries must never predate heap entries).
    TimePoint at = delay <= Duration::zero() ? now_ : now_ + delay;
    return shard_for(owner).q.schedule(at, std::move(fn), owner);
  }
  // Inside a shard window.
  Shard& sh = *c.shard;
  if (owner == c.owner) {
    if (delay <= Duration::zero()) {
      return sh.q.schedule_now(sh.now, std::move(fn), owner);
    }
    return sh.q.schedule(sh.now + delay, std::move(fn), owner);
  }
  // Cross-owner: mailbox post, merged at the window barrier in canonical
  // (time, src_owner, seq) order. Clamped to the window end — sound because
  // sharded media guarantee cross-owner latency >= lookahead >= W - t.
  TimePoint at = delay <= Duration::zero() ? sh.now : sh.now + delay;
  if (at < window_end_) at = window_end_;
  std::size_t dst_box = owner == kGlobalOwner ? nshards_ : shard_index_for(owner);
  OMNI_ASSERTF(c.owner < owner_seq_.size(),
               "posting owner %u not registered",
               static_cast<unsigned>(c.owner));
  sh.out[dst_box].push_back(
      Post{at, c.owner, ++owner_seq_[c.owner], owner, std::move(fn)});
  return EventHandle{};
}

EventHandle Simulator::schedule_desc_on(OwnerId owner, Duration delay,
                                        EventKind kind,
                                        const unsigned char* payload,
                                        std::uint8_t psize) {
  // Mirrors after_on branch for branch: descriptor and closure schedules
  // must draw generations and mailbox sequence numbers identically so
  // converting an event class to a descriptor cannot perturb any ordering.
  ExecCtx& c = tls_ctx_;
  if (c.sim != this || c.shard == nullptr) {
    if (owner == kGlobalOwner) {
      if (delay <= Duration::zero()) {
        return global_q_.schedule_desc_now(now_, kind, payload, psize, owner);
      }
      return global_q_.schedule_desc(now_ + delay, kind, payload, psize,
                                     owner);
    }
    ensure_owner(owner);
    TimePoint at = delay <= Duration::zero() ? now_ : now_ + delay;
    return shard_for(owner).q.schedule_desc(at, kind, payload, psize, owner);
  }
  Shard& sh = *c.shard;
  if (owner == c.owner) {
    if (delay <= Duration::zero()) {
      return sh.q.schedule_desc_now(sh.now, kind, payload, psize, owner);
    }
    return sh.q.schedule_desc(sh.now + delay, kind, payload, psize, owner);
  }
  TimePoint at = delay <= Duration::zero() ? sh.now : sh.now + delay;
  if (at < window_end_) at = window_end_;
  std::size_t dst_box =
      owner == kGlobalOwner ? nshards_ : shard_index_for(owner);
  OMNI_ASSERTF(c.owner < owner_seq_.size(), "posting owner %u not registered",
               static_cast<unsigned>(c.owner));
  Post p;
  p.at = at;
  p.src = c.owner;
  p.seq = ++owner_seq_[c.owner];
  p.dst = owner;
  p.kind = kind;
  p.psize = psize;
  std::memcpy(p.payload, payload, psize);
  sh.out[dst_box].push_back(std::move(p));
  return EventHandle{};
}

void Simulator::register_desc_handler(EventKind kind, void* ctx,
                                      DescHandlerFn fn) {
  OMNI_CHECK_MSG(kind != kEventClosure && kind < kEventKindCount,
                 "register_desc_handler: invalid descriptor kind");
  desc_handlers_[kind] = DescHandler{ctx, fn};
}

std::uint32_t Simulator::register_callback_slot(void* ctx, void (*fn)(void*)) {
  if (callback_free_head_ != 0xffffffffu) {
    std::uint32_t idx = callback_free_head_;
    callback_free_head_ = callback_slots_[idx].next_free;
    callback_slots_[idx] = CallbackSlot{ctx, fn, 0xffffffffu};
    return idx;
  }
  callback_slots_.push_back(CallbackSlot{ctx, fn, 0xffffffffu});
  return static_cast<std::uint32_t>(callback_slots_.size() - 1);
}

void Simulator::unregister_callback_slot(std::uint32_t slot) {
  if (slot >= callback_slots_.size()) return;
  callback_slots_[slot] = CallbackSlot{nullptr, nullptr, callback_free_head_};
  callback_free_head_ = slot;
}

void Simulator::invoke_callback_slot(std::uint32_t slot) {
  // A pending descriptor may outlive its registrant (the closure equivalent
  // would have fired a dangling `this`); an empty slot is a deterministic
  // no-op instead.
  if (slot >= callback_slots_.size()) return;
  const CallbackSlot& cb = callback_slots_[slot];
  if (cb.fn != nullptr) cb.fn(cb.ctx);
}

void Simulator::slot_kind_handler(void* ctx, Simulator& sim,
                                  const EventDesc& desc) {
  (void)ctx;
  sim.invoke_callback_slot(desc.payload_u32(0));
}

void Simulator::dispatch_desc(const EventQueue::Popped& popped) {
  const DescHandler& h = desc_handlers_[popped.kind];
  OMNI_ASSERTF(h.fn != nullptr, "no handler registered for %s descriptor",
               event_kind_name(popped.kind));
  EventDesc d;
  d.kind = popped.kind;
  d.psize = popped.psize;
  d.owner = popped.owner;
  std::memcpy(d.payload, popped.payload, kEventPayloadMax);
  h.fn(h.ctx, *this, d);
}

void Simulator::set_partition_accounting(std::uint32_t worker,
                                         std::uint32_t nworkers) {
  const ExecCtx& c = tls_ctx_;
  OMNI_CHECK_MSG(c.sim != this || c.shard == nullptr,
                 "set_partition_accounting must run outside windows");
  partition_worker_ = worker;
  partition_nworkers_ = nworkers;
  owned_events_ = 0;
}

bool Simulator::idle() const {
  if (!global_q_.empty()) return false;
  for (const Shard& sh : shards_) {
    if (!sh.q.empty()) return false;
  }
  return true;
}

std::size_t Simulator::pending_events() const {
  std::size_t n = global_q_.size();
  for (const Shard& sh : shards_) n += sh.q.size();
  return n;
}

std::size_t Simulator::peak_pending_events() const {
  std::size_t n = global_q_.peak_size();
  for (const Shard& sh : shards_) n += sh.q.peak_size();
  return n;
}

void Simulator::snapshot_pending(std::vector<PendingEvent>& out) const {
  const ExecCtx& c = tls_ctx_;
  OMNI_CHECK_MSG(c.sim != this || c.shard == nullptr,
                 "snapshot_pending must run outside parallel windows");
  auto visit = [&out](TimePoint at, std::uint64_t generation, OwnerId owner,
                      bool immediate, EventKind kind, std::uint8_t psize,
                      const unsigned char* payload) {
    PendingEvent e{at, generation, owner, immediate, kind, psize, {}};
    if (payload != nullptr) std::memcpy(e.payload, payload, psize);
    out.push_back(e);
  };
  global_q_.for_each_pending(visit);
  for (const Shard& sh : shards_) sh.q.for_each_pending(visit);
}

void Simulator::snapshot_rng_digests(
    std::vector<std::pair<OwnerId, std::uint64_t>>& out) const {
  // The mt19937_64 stream serialization (624 words + position) is exact:
  // equal digests <=> equal future draws. ~2.5 KB of text per owner exists
  // only transiently here.
  auto digest = [](const Rng& r) {
    std::ostringstream os;
    os << r.engine();
    return fnv1a64(os.str());
  };
  for (OwnerId o = 0; o < owner_rngs_.size(); ++o) {
    if (owner_rngs_[o] != nullptr) out.emplace_back(o, digest(*owner_rngs_[o]));
  }
  out.emplace_back(kGlobalOwner, digest(rng_));
}

void Simulator::run_shard_window(Shard& sh, TimePoint window_end) {
  ExecCtx& c = tls_ctx_;
  c.sim = this;
  c.shard = &sh;
  for (;;) {
    if (!sh.q.has_immediate()) {
      if (sh.q.empty()) break;
      if (sh.q.next_time() >= window_end) break;
    }
    auto popped = sh.q.pop(sh.now);
    if (popped.at > sh.now) sh.now = popped.at;
    c.owner = popped.owner;
    if (popped.kind == kEventClosure) {
      popped.fn();
    } else {
      dispatch_desc(popped);
    }
    ++sh.executed;
    if (partition_nworkers_ != 0 &&
        popped.owner % partition_nworkers_ == partition_worker_) {
      ++sh.owned;
    }
  }
  c = ExecCtx{};
}

void Simulator::ensure_workers() {
  if (!workers_.empty() || nshards_ == 1) return;
  workers_.reserve(nshards_ - 1);
  for (std::size_t i = 1; i < nshards_; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void Simulator::worker_main(std::size_t shard_index) {
  const int spin_limit = barrier_spin_limit(nshards_);
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int spins = 0; e == seen;
         e = epoch_.load(std::memory_order_acquire)) {
      if (++spins >= spin_limit) {
        epoch_.wait(seen, std::memory_order_acquire);
        spins = 0;
      } else {
        cpu_relax();
      }
    }
    seen = e;
    if (shutdown_.load(std::memory_order_relaxed)) return;
    run_shard_window(shards_[shard_index], window_end_);
    if (running_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      running_workers_.notify_all();
    }
  }
}

std::uint64_t Simulator::run_windows(TimePoint window_end) {
  window_end_ = window_end;
  if (nshards_ == 1) {
    run_shard_window(shards_[0], window_end);
  } else {
    ensure_workers();
    running_workers_.store(static_cast<std::uint32_t>(nshards_ - 1),
                           std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    run_shard_window(shards_[0], window_end);
    const int spin_limit = barrier_spin_limit(nshards_);
    int spins = 0;
    for (;;) {
      std::uint32_t left = running_workers_.load(std::memory_order_acquire);
      if (left == 0) break;
      if (++spins >= spin_limit) {
        running_workers_.wait(left, std::memory_order_acquire);
        spins = 0;
      } else {
        cpu_relax();
      }
    }
  }
  std::uint64_t total = 0;
  for (Shard& sh : shards_) {
    total += sh.executed;
    sh.executed = 0;
    owned_events_ += sh.owned;
    sh.owned = 0;
  }
  executed_ += total;
  return total;
}

void Simulator::merge_mailboxes() {
  for (std::size_t dst = 0; dst <= nshards_; ++dst) {
    merge_scratch_.clear();
    for (std::size_t si = 0; si < nshards_; ++si) {
      std::vector<Post>& box = shards_[si].out[dst];
      if (dst != nshards_ && dst != si) cross_shard_posts_ += box.size();
      merge_scratch_.insert(merge_scratch_.end(),
                            std::make_move_iterator(box.begin()),
                            std::make_move_iterator(box.end()));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // Canonical order: (time, src_owner, seq) is a total order independent
    // of thread interleaving — seq counts posts per source owner, and each
    // owner's events execute in a deterministic sequence on its shard.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Post& a, const Post& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    EventQueue& q = dst == nshards_ ? global_q_ : shards_[dst].q;
    mailbox_posts_ += merge_scratch_.size();
    if (dist_driver_ != nullptr) {
      for (const Post& p : merge_scratch_) {
        PostRecord rec{p.at, p.src, p.seq, p.dst, p.kind, p.psize, {}};
        std::memcpy(rec.payload, p.payload, kEventPayloadMax);
        window_posts_.push_back(rec);
      }
    }
    for (Post& p : merge_scratch_) {
      OMNI_ASSERTF(p.dst == kGlobalOwner || (p.dst < owner_rngs_.size() &&
                                             owner_rngs_[p.dst] != nullptr),
                   "mailbox post to unregistered owner %u",
                   static_cast<unsigned>(p.dst));
      if (p.kind == kEventClosure) {
        q.schedule(p.at, std::move(p.fn), p.dst);
      } else {
        q.schedule_desc(p.at, p.kind, p.payload, p.psize, p.dst);
      }
    }
  }
  merge_scratch_.clear();
}

std::uint64_t Simulator::run_loop(TimePoint deadline, bool advance_clock) {
  stop_requested_.store(false, std::memory_order_relaxed);
  ExecCtx& c = tls_ctx_;
  std::uint64_t ran = 0;
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    TimePoint next_g = global_q_.empty()
                           ? TimePoint::max()
                           : (global_q_.has_immediate() ? now_
                                                        : global_q_.next_time());
    TimePoint next_s = TimePoint::max();
    for (Shard& sh : shards_) {
      // Shard queues hold no immediates between windows (the zero-delay FIFO
      // is only fed — and fully drained — inside the shard's own window).
      if (!sh.q.empty()) next_s = std::min(next_s, sh.q.next_time());
    }
    TimePoint next = std::min(next_g, next_s);
    if (next == TimePoint::max()) break;
    if (next > deadline) break;
    if (next_g <= next_s) {
      // Global phase: serialized, one event at a time (zero-delay chains and
      // freshly scheduled earlier-than-shard work are picked up naturally on
      // the next iteration).
      auto popped = global_q_.pop(now_);
      if (popped.at > now_) now_ = popped.at;
      c = ExecCtx{this, kGlobalOwner, nullptr};
      if (popped.kind == kEventClosure) {
        popped.fn();
      } else {
        dispatch_desc(popped);
      }
      c = ExecCtx{};
      ++ran;
      ++executed_;
      ++global_events_;
      continue;
    }
    // Window phase: shards execute [T, W) concurrently.
    const TimePoint t = next_s;
    if (t > now_) now_ = t;
    TimePoint w = t + lookahead_;
    if (next_g < w) w = next_g;
    if (deadline != TimePoint::max() && deadline + Duration::micros(1) < w) {
      // Events exactly at the deadline run (run_until contract), later ones
      // don't — the window end is exclusive.
      w = deadline + Duration::micros(1);
    }
    const std::uint64_t round = windows_;
    if (dist_driver_ != nullptr && !dist_driver_->window_open(round, t, w)) {
      stop_requested_.store(true, std::memory_order_relaxed);
      break;
    }
    ran += run_windows(w);
    ++windows_;
    merge_mailboxes();
    for (auto& hook : barrier_hooks_) hook();
    if (dist_driver_ != nullptr) {
      // merge_mailboxes collected records per destination; re-sort the
      // union into the global canonical (time, src_owner, seq) order — seq
      // counts all posts of one source, so the triple is a total order over
      // the whole window.
      std::sort(window_posts_.begin(), window_posts_.end(),
                [](const PostRecord& a, const PostRecord& b) {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.src != b.src) return a.src < b.src;
                  return a.seq < b.seq;
                });
      const bool go = dist_driver_->window_close(round, window_posts_);
      window_posts_.clear();
      if (!go) {
        stop_requested_.store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
  if (advance_clock && now_ < deadline &&
      !stop_requested_.load(std::memory_order_relaxed)) {
    now_ = deadline;
  }
  return ran;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  return run_loop(deadline, /*advance_clock=*/true);
}

std::uint64_t Simulator::run() {
  return run_loop(TimePoint::max(), /*advance_clock=*/false);
}

}  // namespace omni::sim
