// Scenario DSL: script Omni experiments without writing C++.
//
// A scenario is a line-oriented script ('#' starts a comment):
//
//   seed 42
//   device tourist 0 0                 # BLE + WiFi-unicast (the default)
//   device beacon 30 5 ble wifi multicast
//   device embedded 60 0 wifi multicast      # no BLE
//   device kiosk 90 0 wifi aware              # WiFi-Aware context carrier
//   advertise tourist interest:viz interval=500ms
//   service beacon 3 townhall                # typed service descriptor
//   walk tourist at=5s to=30,0 speed=1.4
//   teleport tourist at=40s to=60,0
//   send beacon tourist at=12s bytes=2000000
//   poweroff embedded at=50s all
//   linkfault src=beacon loss=0.2 corrupt=0.02 at=10s until=30s
//   partition line=1,0,45 at=20s until=40s    # cuts the plane at x=45
//   blackout kiosk at=15s until=25s radio=wifi
//   flap beacon at=10s until=30s period=2s off=0.5
//   crash embedded at=20s restart=35s         # fresh BLE address on reboot
//   discovery adaptive floor=500ms ceiling=8s  # density-aware beaconing
//   checkpoint every 5s ckpts           # periodic .osnap state checkpoints
//   run 60s
//   report
//   snapshot final.osnap                # one-shot state snapshot here
//   dump trace out.json                # Perfetto JSON (.otr = binary)
//
// `run` advances virtual time; `report` prints a per-device summary (peers,
// average current, manager statistics). Multiple run/report blocks may be
// interleaved. Parsing is strict: any unknown directive or malformed
// argument is an error with a line number.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"

namespace omni::net {
class Testbed;
}

namespace omni::scenario {

/// Observation points a driver can hang on a scenario execution. The
/// distributed engine (dist/) uses these to handshake its protocol links
/// and install the sim::DistDriver before the first instruction, and to
/// exchange end-of-run summaries after the last one. A non-ok Status from
/// either hook aborts the run with that error.
struct RunHooks {
  /// Runs once the testbed exists — after the scenario fingerprint is set
  /// and any resume target anchored, before any device is created.
  std::function<Status(net::Testbed&)> on_ready;
  /// Runs after the last instruction (and resume verification, checkpoint
  /// error checks) succeeded.
  std::function<Status(net::Testbed&)> on_complete;
};

/// A parsed, runnable scenario.
class Scenario {
 public:
  /// Parse the script; returns an error naming the first bad line.
  static Result<std::unique_ptr<Scenario>> parse(const std::string& text);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
  ~Scenario();

  /// Execute the scenario, writing report blocks to `out`. `threads` > 1
  /// runs the parallel engine; the report is bit-identical at any count.
  /// `observe` attaches an Omniscope even when the script has no
  /// `dump trace` directive — instrumentation never changes the report
  /// (tests/test_golden_trace.cpp holds this as an invariant).
  /// Returns an error if execution hits an impossible instruction (e.g. a
  /// send between devices that never discovered each other is fine — it
  /// reports a failed send — but an unknown device name is not).
  ///
  /// `resume_path` anchors the run to an .osnap snapshot written by a
  /// previous execution of the *same* script (a `snapshot <path>` directive
  /// or a `checkpoint every` file): the run replays from time zero and
  /// byte-verifies its recomputed state against the file when it reaches the
  /// snapshot instant, erroring out on any divergence — including a snapshot
  /// captured at a different --threads count.
  ///
  /// `hooks` lets a driver observe the run (see RunHooks); default-empty
  /// hooks cost nothing and change nothing.
  Status run(std::ostream& out, unsigned threads = 1, bool observe = false,
             const std::string& resume_path = {},
             const RunHooks& hooks = {});

  // Introspection for tests.
  std::size_t device_count() const;
  std::size_t instruction_count() const;

 private:
  Scenario();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: parse + run, returning the report (or the error message).
std::string run_scenario_text(const std::string& text, unsigned threads = 1,
                              bool observe = false);

}  // namespace omni::scenario
