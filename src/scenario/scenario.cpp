#include "scenario/scenario.h"

#include <array>
#include <charconv>
#include <deque>
#include <variant>
#include <optional>
#include <ostream>
#include <sstream>

#include "baselines/omni_stack.h"
#include "common/hash.h"
#include "net/testbed.h"
#include "obs/omniscope.h"
#include "obs/perfetto.h"
#include "obs/trace_file.h"
#include "omni/manager_snapshot.h"
#include "omni/omni_node.h"
#include "omni/service.h"
#include "sim/snapshot.h"

namespace omni::scenario {

namespace {

/// Scenario timed instructions (walk/send/power) as kEventScenarioTimer
/// descriptors: each instruction body is stored here (deque — stable
/// addresses) and named by a callback slot, so the pending timer in the
/// event slab is a 4-byte descriptor rather than a captured closure. Slots
/// are released when the run ends; a straggler descriptor then degrades to
/// a deterministic no-op instead of a dangling capture.
class ScenarioTimers {
 public:
  explicit ScenarioTimers(sim::Simulator& sim) : sim_(sim) {}
  ~ScenarioTimers() {
    for (std::uint32_t slot : slots_) sim_.unregister_callback_slot(slot);
  }
  ScenarioTimers(const ScenarioTimers&) = delete;
  ScenarioTimers& operator=(const ScenarioTimers&) = delete;

  void at(TimePoint when, std::function<void()> body) {
    bodies_.push_back(std::move(body));
    std::uint32_t slot =
        sim_.register_callback_slot(&bodies_.back(), &ScenarioTimers::invoke);
    slots_.push_back(slot);
    unsigned char p[sizeof slot];
    std::memcpy(p, &slot, sizeof slot);
    sim_.schedule_desc_at_on(sim_.current_owner(), when,
                             sim::kEventScenarioTimer, p, sizeof slot);
  }

 private:
  static void invoke(void* ctx) {
    (*static_cast<std::function<void()>*>(ctx))();
  }

  sim::Simulator& sim_;
  std::deque<std::function<void()>> bodies_;
  std::vector<std::uint32_t> slots_;
};

// --- Tokenizing / argument parsing -------------------------------------------

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

std::optional<double> parse_double(const std::string& s) {
  try {
    std::size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) return std::nullopt;
  return v;
}

/// "500ms", "5s", "2.5s", "90us"
std::optional<Duration> parse_duration(const std::string& s) {
  auto ends_with = [&](const char* suffix) {
    std::string suf(suffix);
    return s.size() > suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
  };
  std::string number;
  double scale = 0;
  if (ends_with("ms")) {
    number = s.substr(0, s.size() - 2);
    scale = 1e-3;
  } else if (ends_with("us")) {
    number = s.substr(0, s.size() - 2);
    scale = 1e-6;
  } else if (ends_with("s")) {
    number = s.substr(0, s.size() - 1);
    scale = 1.0;
  } else {
    return std::nullopt;
  }
  auto v = parse_double(number);
  if (!v || *v < 0) return std::nullopt;
  return Duration::seconds(*v * scale);
}

/// "x,y"
std::optional<sim::Vec2> parse_position(const std::string& s) {
  auto comma = s.find(',');
  if (comma == std::string::npos) return std::nullopt;
  auto x = parse_double(s.substr(0, comma));
  auto y = parse_double(s.substr(comma + 1));
  if (!x || !y) return std::nullopt;
  return sim::Vec2{*x, *y};
}

/// Splits "key=value" -> {key, value}.
std::optional<std::pair<std::string, std::string>> parse_kv(
    const std::string& s) {
  auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0) return std::nullopt;
  return std::make_pair(s.substr(0, eq), s.substr(eq + 1));
}

/// "a,b,c" -> three doubles (a partition line a*x + b*y = c).
std::optional<std::array<double, 3>> parse_triple(const std::string& s) {
  auto c1 = s.find(',');
  if (c1 == std::string::npos) return std::nullopt;
  auto c2 = s.find(',', c1 + 1);
  if (c2 == std::string::npos) return std::nullopt;
  auto a = parse_double(s.substr(0, c1));
  auto b = parse_double(s.substr(c1 + 1, c2 - c1 - 1));
  auto c = parse_double(s.substr(c2 + 1));
  if (!a || !b || !c) return std::nullopt;
  return std::array<double, 3>{*a, *b, *c};
}

std::optional<sim::FaultRadio> parse_fault_radio(const std::string& s) {
  if (s == "all") return sim::FaultRadio::kAll;
  if (s == "ble") return sim::FaultRadio::kBle;
  if (s == "wifi") return sim::FaultRadio::kWifi;
  if (s == "nan") return sim::FaultRadio::kNan;
  return std::nullopt;
}

// --- Instruction set ----------------------------------------------------------

struct DeviceDecl {
  std::string name;
  sim::Vec2 position;
  OmniNodeOptions options;
};

struct AdvertiseInstr {
  std::string device;
  Bytes payload;
  Duration interval = Duration::millis(500);
};

struct ServiceInstr {
  std::string device;
  std::uint16_t type = 0;
  std::string service_name;
  Duration interval = Duration::millis(500);
};

struct WalkInstr {
  std::string device;
  TimePoint at;
  sim::Vec2 to;
  double speed = 1.0;
  bool teleport = false;
};

struct SendInstr {
  std::string from;
  std::string to;
  TimePoint at;
  std::uint64_t bytes = 0;
};

struct PowerInstr {
  std::string device;
  TimePoint at;
  bool ble = false;
  bool wifi = false;
};

struct RunInstr {
  Duration duration;
};

struct ReportInstr {};

/// `dump trace <path>` — write the flight-recorder capture accumulated so
/// far. A `.json` extension exports Chrome trace_event JSON for
/// ui.perfetto.dev; anything else writes the binary .otr format that the
/// `omniscope` CLI reads.
struct DumpTraceInstr {
  std::string path;
};

/// `snapshot <path>` — capture the full deterministic run state at this point
/// of the script and write an .osnap file (see sim/snapshot.h). A later
/// `--resume <path>` run re-executes the same script and byte-verifies
/// against it when reaching the same instant.
struct SnapshotInstr {
  std::string path;
};

using Instr =
    std::variant<AdvertiseInstr, ServiceInstr, WalkInstr, SendInstr,
                 PowerInstr, RunInstr, ReportInstr, DumpTraceInstr,
                 SnapshotInstr>;

// Fault declarations keep device *names*; node ids are resolved at run()
// time, when the testbed has assigned them. An empty name means "any node".
struct LinkFaultDecl {
  std::string src;  ///< empty = any
  std::string dst;  ///< empty = any
  sim::FaultPlan::LinkFault fault;
};

struct PartitionDecl {
  sim::FaultPlan::Partition partition;
};

struct BlackoutDecl {
  std::string device;
  sim::FaultPlan::Blackout blackout;
};

struct CrashDecl {
  std::string device;
  sim::FaultPlan::Crash crash;
};

}  // namespace

// --- Scenario implementation ---------------------------------------------------

struct Scenario::Impl {
  std::uint64_t seed = 1;
  /// Any `dump trace` directive turns the Omniscope on for the whole run.
  bool wants_observability = false;
  /// Original script source + fnv1a64 fingerprint, embedded in snapshot
  /// manifests so an .osnap file pins the exact script that produced it.
  std::string source_text;
  std::uint64_t source_hash = 0;
  /// `checkpoint every <dur> [dir]` — zero interval means no checkpointing.
  Duration checkpoint_interval = Duration::zero();
  std::string checkpoint_dir = ".";
  /// Run-wide discovery scheduling policy (`discovery` directive); the
  /// default (kFixed) reproduces the paper's fixed 500 ms cadence exactly.
  DiscoveryPolicy discovery;
  std::vector<DeviceDecl> devices;
  std::vector<Instr> instructions;
  // Fault schedule (declarative; applied before the first run block).
  std::vector<LinkFaultDecl> link_faults;
  std::vector<PartitionDecl> partitions;
  std::vector<BlackoutDecl> blackouts;
  std::vector<CrashDecl> crashes;

  // Runtime state (created by run()).
  struct LiveDevice {
    net::Device* device = nullptr;
    std::unique_ptr<OmniNode> node;
    std::unique_ptr<ServicePublisher> service;
    ContextId advert = kInvalidContext;
    std::uint64_t data_received = 0;
    std::uint64_t sends_ok = 0;
    std::uint64_t sends_failed = 0;
  };

  int find_device(const std::string& name) const {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (devices[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

Scenario::Scenario() : impl_(std::make_unique<Impl>()) {}
Scenario::~Scenario() = default;

std::size_t Scenario::device_count() const { return impl_->devices.size(); }
std::size_t Scenario::instruction_count() const {
  return impl_->instructions.size();
}

Result<std::unique_ptr<Scenario>> Scenario::parse(const std::string& text) {
  auto scenario = std::unique_ptr<Scenario>(new Scenario());
  Impl& impl = *scenario->impl_;
  impl.source_text = text;
  impl.source_hash = fnv1a64(text);

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto error = [&](const std::string& why) {
    return Result<std::unique_ptr<Scenario>>::error(
        "line " + std::to_string(line_no) + ": " + why);
  };

  while (std::getline(is, line)) {
    ++line_no;
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& op = tokens[0];

    if (op == "seed") {
      if (tokens.size() != 2) return error("seed takes one integer");
      auto v = parse_u64(tokens[1]);
      if (!v) return error("bad seed '" + tokens[1] + "'");
      impl.seed = *v;

    } else if (op == "device") {
      if (tokens.size() < 4) return error("device <name> <x> <y> [flags]");
      DeviceDecl decl;
      decl.name = tokens[1];
      if (impl.find_device(decl.name) >= 0) {
        return error("duplicate device '" + decl.name + "'");
      }
      auto x = parse_double(tokens[2]);
      auto y = parse_double(tokens[3]);
      if (!x || !y) return error("bad position");
      decl.position = {*x, *y};
      if (tokens.size() > 4) {
        // Explicit technology set.
        decl.options.ble = false;
        decl.options.wifi_unicast = false;
        decl.options.wifi_multicast = false;
        for (std::size_t i = 4; i < tokens.size(); ++i) {
          const std::string& flag = tokens[i];
          if (flag == "ble") {
            decl.options.ble = true;
          } else if (flag == "wifi") {
            decl.options.wifi_unicast = true;
          } else if (flag == "multicast") {
            decl.options.wifi_multicast = true;
          } else if (flag == "aware") {
            decl.options.wifi_aware = true;
          } else if (auto kv = parse_kv(flag); kv && kv->first == "relay") {
            auto hops = parse_u64(kv->second);
            if (!hops) return error("bad relay hop count");
            decl.options.manager.context_relay_hops =
                static_cast<int>(*hops);
          } else if (auto kv2 = parse_kv(flag); kv2 && kv2->first == "key") {
            decl.options.manager.context_key =
                Bytes(kv2->second.begin(), kv2->second.end());
          } else {
            return error("unknown device flag '" + flag + "'");
          }
        }
        if (!decl.options.ble && !decl.options.wifi_unicast &&
            !decl.options.wifi_multicast && !decl.options.wifi_aware) {
          return error("device '" + decl.name + "' has no technologies");
        }
      }
      impl.devices.push_back(std::move(decl));

    } else if (op == "advertise") {
      if (tokens.size() < 3) {
        return error("advertise <device> <payload> [interval=..]");
      }
      AdvertiseInstr instr;
      instr.device = tokens[1];
      if (impl.find_device(instr.device) < 0) {
        return error("unknown device '" + instr.device + "'");
      }
      instr.payload = Bytes(tokens[2].begin(), tokens[2].end());
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (kv && kv->first == "interval") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad interval");
          instr.interval = *d;
        } else {
          return error("unknown argument '" + tokens[i] + "'");
        }
      }
      impl.instructions.emplace_back(std::move(instr));

    } else if (op == "service") {
      if (tokens.size() < 4) {
        return error("service <device> <type> <name> [interval=..]");
      }
      ServiceInstr instr;
      instr.device = tokens[1];
      if (impl.find_device(instr.device) < 0) {
        return error("unknown device '" + instr.device + "'");
      }
      auto type = parse_u64(tokens[2]);
      if (!type || *type > 0xFFFF) return error("bad service type");
      instr.type = static_cast<std::uint16_t>(*type);
      instr.service_name = tokens[3];
      impl.instructions.emplace_back(std::move(instr));

    } else if (op == "walk" || op == "teleport") {
      if (tokens.size() < 4) {
        return error(op + " <device> at=<t> to=<x,y> [speed=<mps>]");
      }
      WalkInstr instr;
      instr.teleport = op == "teleport";
      instr.device = tokens[1];
      if (impl.find_device(instr.device) < 0) {
        return error("unknown device '" + instr.device + "'");
      }
      bool have_at = false, have_to = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          instr.at = TimePoint::origin() + *d;
          have_at = true;
        } else if (kv->first == "to") {
          auto p = parse_position(kv->second);
          if (!p) return error("bad target position");
          instr.to = *p;
          have_to = true;
        } else if (kv->first == "speed") {
          auto v = parse_double(kv->second);
          if (!v || *v <= 0) return error("bad speed");
          instr.speed = *v;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (!have_at || !have_to) return error(op + " needs at= and to=");
      impl.instructions.emplace_back(std::move(instr));

    } else if (op == "send") {
      if (tokens.size() < 5) {
        return error("send <from> <to> at=<t> bytes=<n>");
      }
      SendInstr instr;
      instr.from = tokens[1];
      instr.to = tokens[2];
      if (impl.find_device(instr.from) < 0 ||
          impl.find_device(instr.to) < 0) {
        return error("unknown device in send");
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value");
        if (kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          instr.at = TimePoint::origin() + *d;
        } else if (kv->first == "bytes") {
          auto v = parse_u64(kv->second);
          if (!v) return error("bad byte count");
          instr.bytes = *v;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (instr.bytes == 0) return error("send needs bytes=");
      impl.instructions.emplace_back(std::move(instr));

    } else if (op == "poweroff") {
      if (tokens.size() < 3) return error("poweroff <device> at=<t> [what]");
      PowerInstr instr;
      instr.device = tokens[1];
      if (impl.find_device(instr.device) < 0) {
        return error("unknown device '" + instr.device + "'");
      }
      std::string what = "all";
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (auto kv = parse_kv(tokens[i]); kv && kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          instr.at = TimePoint::origin() + *d;
        } else {
          what = tokens[i];
        }
      }
      if (what == "ble") {
        instr.ble = true;
      } else if (what == "wifi") {
        instr.wifi = true;
      } else if (what == "all") {
        instr.ble = instr.wifi = true;
      } else {
        return error("poweroff target must be ble|wifi|all");
      }
      impl.instructions.emplace_back(std::move(instr));

    } else if (op == "linkfault") {
      // linkfault [src=<dev>] [dst=<dev>] [radio=all|ble|wifi|nan]
      //           [loss=<p>] [corrupt=<p>] [latency=<dur>]
      //           [at=<t>] [until=<t>]
      LinkFaultDecl decl;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "src" || kv->first == "dst") {
          if (impl.find_device(kv->second) < 0) {
            return error("unknown device '" + kv->second + "'");
          }
          (kv->first == "src" ? decl.src : decl.dst) = kv->second;
        } else if (kv->first == "radio") {
          auto r = parse_fault_radio(kv->second);
          if (!r) return error("radio must be all|ble|wifi|nan");
          decl.fault.radio = *r;
        } else if (kv->first == "loss" || kv->first == "corrupt") {
          auto p = parse_double(kv->second);
          if (!p || *p < 0 || *p > 1) return error("bad probability");
          (kv->first == "loss" ? decl.fault.loss : decl.fault.corrupt) = *p;
        } else if (kv->first == "latency") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad latency");
          decl.fault.extra_latency = *d;
        } else if (kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.fault.start = TimePoint::origin() + *d;
        } else if (kv->first == "until") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.fault.end = TimePoint::origin() + *d;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (decl.fault.loss == 0 && decl.fault.corrupt == 0 &&
          decl.fault.extra_latency.is_zero()) {
        return error("linkfault needs loss=, corrupt= or latency=");
      }
      impl.link_faults.push_back(std::move(decl));

    } else if (op == "partition") {
      // partition line=<a,b,c> [at=<t>] [until=<t>]   (cuts a*x + b*y = c)
      PartitionDecl decl;
      bool have_line = false;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "line") {
          auto t = parse_triple(kv->second);
          if (!t) return error("line needs a,b,c");
          decl.partition.a = (*t)[0];
          decl.partition.b = (*t)[1];
          decl.partition.c = (*t)[2];
          have_line = true;
        } else if (kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.partition.start = TimePoint::origin() + *d;
        } else if (kv->first == "until") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.partition.end = TimePoint::origin() + *d;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (!have_line) return error("partition needs line=a,b,c");
      impl.partitions.push_back(decl);

    } else if (op == "blackout" || op == "flap") {
      // blackout <device> at=<t> until=<t> [radio=..]
      // flap <device> at=<t> until=<t> period=<dur> [off=<frac>] [radio=..]
      if (tokens.size() < 2) return error(op + " <device> at=.. until=..");
      BlackoutDecl decl;
      decl.device = tokens[1];
      if (impl.find_device(decl.device) < 0) {
        return error("unknown device '" + decl.device + "'");
      }
      bool have_at = false, have_until = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.blackout.start = TimePoint::origin() + *d;
          have_at = true;
        } else if (kv->first == "until") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.blackout.end = TimePoint::origin() + *d;
          have_until = true;
        } else if (kv->first == "period" && op == "flap") {
          auto d = parse_duration(kv->second);
          if (!d || d->is_zero()) return error("bad period");
          decl.blackout.period = *d;
        } else if (kv->first == "off" && op == "flap") {
          auto p = parse_double(kv->second);
          if (!p || *p <= 0 || *p > 1) return error("bad off fraction");
          decl.blackout.off_fraction = *p;
        } else if (kv->first == "radio") {
          auto r = parse_fault_radio(kv->second);
          if (!r) return error("radio must be all|ble|wifi|nan");
          decl.blackout.radio = *r;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (!have_at || !have_until) return error(op + " needs at= and until=");
      if (op == "flap") {
        if (decl.blackout.period.is_zero()) return error("flap needs period=");
        if (decl.blackout.off_fraction >= 1.0) {
          decl.blackout.off_fraction = 0.5;
        }
      }
      impl.blackouts.push_back(std::move(decl));

    } else if (op == "crash") {
      // crash <device> at=<t> [restart=<t>] [keepaddr]
      if (tokens.size() < 3) return error("crash <device> at=<t> [restart=<t>]");
      CrashDecl decl;
      decl.device = tokens[1];
      if (impl.find_device(decl.device) < 0) {
        return error("unknown device '" + decl.device + "'");
      }
      bool have_at = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "keepaddr") {
          decl.crash.rotate_addresses = false;
          continue;
        }
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "at") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.crash.at = TimePoint::origin() + *d;
          have_at = true;
        } else if (kv->first == "restart") {
          auto d = parse_duration(kv->second);
          if (!d) return error("bad time");
          decl.crash.restart = TimePoint::origin() + *d;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (!have_at) return error("crash needs at=");
      if (decl.crash.restart > TimePoint::origin() &&
          decl.crash.restart <= decl.crash.at) {
        return error("restart must be after the crash");
      }
      impl.crashes.push_back(std::move(decl));

    } else if (op == "discovery") {
      // discovery fixed|adaptive [floor=500ms] [ceiling=8s]
      //           [sparse_ceiling=2s] [ramp=2.0] [dense=8] [sparse=2]
      //           [jitter=0.1] [duty=0.05] [range=40]
      // Applies to every device in the scenario.
      if (tokens.size() < 2) {
        return error("discovery fixed|adaptive [key=value...]");
      }
      DiscoveryPolicy p;
      if (tokens[1] == "fixed") {
        p.mode = DiscoveryPolicy::Mode::kFixed;
      } else if (tokens[1] == "adaptive") {
        p.mode = DiscoveryPolicy::Mode::kAdaptive;
      } else {
        return error("discovery mode must be fixed|adaptive");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        auto kv = parse_kv(tokens[i]);
        if (!kv) return error("expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "floor" || kv->first == "ceiling" ||
            kv->first == "sparse_ceiling") {
          auto d = parse_duration(kv->second);
          if (!d || d->is_zero()) return error("bad " + kv->first);
          if (kv->first == "floor") {
            p.floor = *d;
          } else if (kv->first == "ceiling") {
            p.ceiling = *d;
          } else {
            p.sparse_ceiling = *d;
          }
        } else if (kv->first == "ramp") {
          auto v = parse_double(kv->second);
          if (!v || *v <= 1.0) return error("ramp must be > 1");
          p.ramp = *v;
        } else if (kv->first == "dense" || kv->first == "sparse") {
          auto v = parse_u64(kv->second);
          if (!v || *v == 0) return error("bad " + kv->first);
          (kv->first == "dense" ? p.dense_peers : p.sparse_peers) = *v;
        } else if (kv->first == "jitter") {
          auto v = parse_double(kv->second);
          if (!v || *v < 0 || *v >= 1) return error("jitter must be in [0,1)");
          p.jitter = *v;
        } else if (kv->first == "duty") {
          auto v = parse_double(kv->second);
          if (!v || *v <= 0 || *v > 1) return error("duty must be in (0,1]");
          p.min_scan_duty = *v;
        } else if (kv->first == "range") {
          auto v = parse_double(kv->second);
          if (!v || *v <= 0) return error("bad range");
          p.density_range_m = *v;
        } else {
          return error("unknown argument '" + kv->first + "'");
        }
      }
      if (p.ceiling < p.floor || p.sparse_ceiling < p.floor) {
        return error("discovery ceilings must be >= the floor");
      }
      impl.discovery = p;

    } else if (op == "run") {
      if (tokens.size() != 2) return error("run <duration>");
      auto d = parse_duration(tokens[1]);
      if (!d) return error("bad duration '" + tokens[1] + "'");
      impl.instructions.emplace_back(RunInstr{*d});

    } else if (op == "report") {
      impl.instructions.emplace_back(ReportInstr{});

    } else if (op == "dump") {
      if (tokens.size() != 3 || tokens[1] != "trace") {
        return error("dump trace <path>");
      }
      impl.instructions.emplace_back(DumpTraceInstr{tokens[2]});
      impl.wants_observability = true;

    } else if (op == "checkpoint") {
      if (tokens.size() < 3 || tokens.size() > 4 || tokens[1] != "every") {
        return error("checkpoint every <interval> [dir]");
      }
      auto d = parse_duration(tokens[2]);
      if (!d || d->is_zero()) {
        return error("bad checkpoint interval '" + tokens[2] + "'");
      }
      impl.checkpoint_interval = *d;
      if (tokens.size() == 4) impl.checkpoint_dir = tokens[3];

    } else if (op == "snapshot") {
      if (tokens.size() != 2) return error("snapshot <path>");
      impl.instructions.emplace_back(SnapshotInstr{tokens[1]});

    } else {
      return error("unknown directive '" + op + "'");
    }
  }

  if (impl.devices.empty()) {
    return Result<std::unique_ptr<Scenario>>::error(
        "scenario declares no devices");
  }
  return scenario;
}

Status Scenario::run(std::ostream& out, unsigned threads, bool observe,
                     const std::string& resume_path, const RunHooks& hooks) {
  Impl& impl = *impl_;
  net::Testbed bed(impl.seed, radio::Calibration::defaults(), threads);
  if (observe || impl.wants_observability) bed.enable_observability();
  // Snapshots carry the script fingerprint; small scripts are embedded
  // whole, so an .osnap alone suffices to rebuild the run it anchors.
  bed.set_scenario_fingerprint(
      impl.source_hash,
      impl.source_text.size() <= 16384 ? impl.source_text : std::string());
  // Anchor a resume before any device exists: a refused snapshot (wrong
  // seed/script) must bail out while teardown is still trivially safe.
  if (!resume_path.empty()) {
    auto anchored = bed.resume_from(resume_path);
    if (!anchored.is_ok()) return Status::error(anchored.error_message());
    out << "resume: replaying to t="
        << anchored.value().at.as_seconds() << "s against " << resume_path
        << "\n";
  }
  if (hooks.on_ready) {
    Status s = hooks.on_ready(bed);
    if (!s.is_ok()) return s;
  }
  std::vector<Impl::LiveDevice> live(impl.devices.size());

  for (std::size_t i = 0; i < impl.devices.size(); ++i) {
    const DeviceDecl& decl = impl.devices[i];
    live[i].device = &bed.add_device(decl.name, decl.position);
    OmniNodeOptions options = decl.options;
    options.manager.discovery = impl.discovery;
    live[i].node = std::make_unique<OmniNode>(*live[i].device, bed.mesh(),
                                              options);
    auto* ld = &live[i];
    live[i].node->manager().request_data(
        [ld](const OmniAddress&, const Bytes&) { ++ld->data_received; });
    live[i].node->start();
  }

  // Arm the fault plan once every device has a node id. An untouched plan
  // costs nothing on the delivery paths.
  const bool have_faults = !impl.link_faults.empty() ||
                           !impl.partitions.empty() ||
                           !impl.blackouts.empty() || !impl.crashes.empty();
  if (have_faults) {
    auto node_of = [&](const std::string& name) {
      if (name.empty()) return sim::FaultPlan::kAnyNode;
      return live[impl.find_device(name)].device->node();
    };
    sim::FaultPlan& plan = bed.fault_plan();
    plan.set_seed(impl.seed ^ 0x0f4a17);
    for (const auto& decl : impl.link_faults) {
      auto fault = decl.fault;
      fault.src = node_of(decl.src);
      fault.dst = node_of(decl.dst);
      plan.add_link_fault(fault);
    }
    for (const auto& decl : impl.partitions) {
      plan.add_partition(decl.partition);
    }
    for (const auto& decl : impl.blackouts) {
      auto blackout = decl.blackout;
      blackout.node = node_of(decl.device);
      plan.add_blackout(blackout);
    }
    for (const auto& decl : impl.crashes) {
      auto crash = decl.crash;
      crash.node = node_of(decl.device);
      plan.add_crash(crash);
    }
    bed.schedule_faults();
  }

  // Manager state rides along in every snapshot. Deep capture (full peer
  // tables, per-entry diffs) for script-sized fleets; digest-only above.
  bed.add_snapshot_source([&live](sim::Snapshot& snap) {
    std::vector<const OmniManager*> managers;
    managers.reserve(live.size());
    for (const auto& ld : live) managers.push_back(&ld.node->manager());
    capture_managers(managers, /*deep=*/live.size() <= 64, snap);
  });
  if (impl.checkpoint_interval > Duration::zero()) {
    bed.checkpoint_every(impl.checkpoint_interval, impl.checkpoint_dir);
  }

  auto report = [&](std::ostream& os) {
    os << "=== report t=" << bed.simulator().now().as_seconds() << "s ===\n";
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto& stats = live[i].node->manager().stats();
      os << "  " << impl.devices[i].name << ": peers="
         << live[i].node->manager().peer_table().size()
         << " avg_mA=" << live[i].device->meter().average_ma(
                TimePoint::origin(), bed.simulator().now())
         << " rx_ctx=" << stats.context_received
         << " rx_data=" << live[i].data_received
         << " sends=" << live[i].sends_ok << "/"
         << live[i].sends_ok + live[i].sends_failed << "\n";
    }
    if (have_faults) {
      auto fs = bed.fault_plan().stats();
      os << "  faults: drops=" << fs.drops
         << " corruptions=" << fs.corruptions << " delays=" << fs.delays
         << " partition_drops=" << fs.partition_drops << "\n";
    }
  };

  ScenarioTimers timers(bed.simulator());
  for (const Instr& instruction : impl.instructions) {
    if (const auto* adv = std::get_if<AdvertiseInstr>(&instruction)) {
      int i = impl.find_device(adv->device);
      live[i].node->manager().add_context(ContextParams{adv->interval},
                                          adv->payload, nullptr);
    } else if (const auto* svc = std::get_if<ServiceInstr>(&instruction)) {
      int i = impl.find_device(svc->device);
      if (!live[i].service) {
        live[i].service =
            std::make_unique<ServicePublisher>(live[i].node->manager());
      }
      ServiceDescriptor d;
      d.service_type = svc->type;
      d.name = svc->service_name;
      live[i].service->publish(d, svc->interval);
    } else if (const auto* walk = std::get_if<WalkInstr>(&instruction)) {
      int i = impl.find_device(walk->device);
      NodeId node = live[i].device->node();
      sim::Vec2 to = walk->to;
      double speed = walk->speed;
      bool teleport = walk->teleport;
      timers.at(walk->at, [&bed, node, to, speed, teleport] {
        if (teleport) {
          bed.world().set_position(node, to);
        } else {
          bed.world().move_to(node, to, speed);
        }
      });
    } else if (const auto* send = std::get_if<SendInstr>(&instruction)) {
      int from = impl.find_device(send->from);
      int to = impl.find_device(send->to);
      auto* src = &live[from];
      OmniAddress dest = live[to].node->address();
      std::uint64_t bytes = send->bytes;
      timers.at(send->at, [src, dest, bytes] {
        src->node->manager().send_data(
            {dest}, Bytes(bytes, 0xD5),
            [src](StatusCode code, const ResponseInfo&) {
              if (is_success(code)) {
                ++src->sends_ok;
              } else {
                ++src->sends_failed;
              }
            });
      });
    } else if (const auto* power = std::get_if<PowerInstr>(&instruction)) {
      int i = impl.find_device(power->device);
      auto* dev = live[i].device;
      bool ble = power->ble, wifi = power->wifi;
      timers.at(power->at, [dev, ble, wifi] {
        if (ble) dev->ble().set_powered(false);
        if (wifi) dev->wifi().set_powered(false);
      });
    } else if (const auto* run_instr = std::get_if<RunInstr>(&instruction)) {
      bed.simulator().run_for(run_instr->duration);
    } else if (std::get_if<ReportInstr>(&instruction) != nullptr) {
      report(out);
    } else if (const auto* dump = std::get_if<DumpTraceInstr>(&instruction)) {
      obs::Omniscope* sc = bed.observability();
      if (sc == nullptr) {
        return Status::error("dump trace: observability is not enabled");
      }
      // Capture unconditionally: flush hooks mutate energy-meter state, so
      // skipping the capture on a worker replica would diverge from the
      // coordinator. Only the file write is gated.
      obs::TraceCapture cap = obs::capture(*sc);
      if (bed.artifact_writes()) {
        const std::string& path = dump->path;
        const bool json = path.size() >= 5 &&
                          path.compare(path.size() - 5, 5, ".json") == 0;
        const bool ok =
            json ? obs::write_perfetto_json(path, cap, bed.export_options())
                 : obs::write_trace_file(path, cap);
        if (!ok) return Status::error("dump trace: cannot write " + path);
      }
    } else if (const auto* snap = std::get_if<SnapshotInstr>(&instruction)) {
      Status s = bed.write_snapshot(snap->path, "snapshot");
      if (!s.is_ok()) {
        return Status::error("snapshot: " + s.message());
      }
    }
  }

  if (!resume_path.empty()) {
    if (bed.resume_pending()) {
      return Status::error(
          "resume: the script never reached the snapshot instant (add or "
          "keep the run blocks that got there)");
    }
    if (!bed.resume_verified()) {
      return Status::error("resume: replayed state diverged from " +
                           resume_path + ":\n" + bed.resume_error());
    }
    out << "resume: verified byte-identical at the snapshot instant\n";
  }
  // The checkpoint daemon runs inside global events where it cannot abort
  // the run; a write failure it recorded must still fail the scenario
  // instead of silently producing fewer checkpoints than the script asked
  // for.
  if (!bed.checkpoint_error().empty()) {
    return Status::error("checkpoint: " + bed.checkpoint_error());
  }
  if (hooks.on_complete) {
    return hooks.on_complete(bed);
  }
  return Status::ok();
}

std::string run_scenario_text(const std::string& text, unsigned threads,
                              bool observe) {
  auto parsed = Scenario::parse(text);
  if (!parsed.is_ok()) return "parse error: " + parsed.error_message();
  std::ostringstream os;
  Status s = parsed.value()->run(os, threads, observe);
  if (!s.is_ok()) return "run error: " + s.message();
  return os.str();
}

}  // namespace omni::scenario
