#include "common/time.h"

#include <cstdio>

namespace omni {

std::string Duration::to_string() const {
  char buf[64];
  if (us_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds",
                  static_cast<long long>(us_ / 1'000'000));
  } else if (us_ % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(us_ / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.6fs", as_seconds());
  return buf;
}

}  // namespace omni
