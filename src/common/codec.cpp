#include "common/codec.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace omni::codec {

// --- Byte codec --------------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::var(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svar(std::int64_t v) {
  var((static_cast<std::uint64_t>(v) << 1) ^
      static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  var(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p;
  return take(1, &p) ? *p : 0;
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::var() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t* p;
    if (!take(1, &p)) return 0;
    v |= static_cast<std::uint64_t>(*p & 0x7f) << shift;
    if ((*p & 0x80) == 0) return v;
  }
  ok_ = false;  // varint longer than 10 bytes: malformed
  return 0;
}

std::int64_t ByteReader::svar() {
  std::uint64_t z = var();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string ByteReader::str() {
  std::uint64_t n = var();
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void ByteReader::raw(std::size_t n, std::vector<std::uint8_t>& out) {
  out.clear();
  const std::uint8_t* p;
  if (!take(n, &p)) return;
  out.assign(p, p + n);
}

// --- Sectioned container -----------------------------------------------------

Section& SectionContainer::section(std::uint32_t id) {
  auto it = std::lower_bound(
      sections.begin(), sections.end(), id,
      [](const Section& s, std::uint32_t key) { return s.id < key; });
  if (it != sections.end() && it->id == id) return *it;
  return *sections.insert(it, Section{id, {}});
}

const Section* SectionContainer::find(std::uint32_t id) const {
  for (const Section& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<std::uint8_t> serialize_container(const SectionContainer& c,
                                              const ContainerSpec& spec) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(spec.magic[0]));
  w.u8(static_cast<std::uint8_t>(spec.magic[1]));
  w.u8(static_cast<std::uint8_t>(spec.magic[2]));
  w.u8(static_cast<std::uint8_t>(spec.magic[3]));
  w.u32(c.version);
  w.u32(static_cast<std::uint32_t>(c.sections.size()));
  for (const Section& s : c.sections) {
    w.u32(s.id);
    w.u64(s.bytes.size());
    w.u64(fnv1a64(s.bytes));
  }
  // Trailer guards the header + table themselves (a bit-flip in a size or
  // checksum field must be detected too, not misattributed to a payload).
  const std::uint64_t head_sum = fnv1a64(w.bytes());
  std::vector<std::uint8_t> out = w.take();
  for (const Section& s : c.sections) {
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  ByteWriter tail;
  tail.u64(head_sum);
  const std::vector<std::uint8_t>& t = tail.bytes();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

Result<SectionContainer> parse_container(std::span<const std::uint8_t> data,
                                         const ContainerSpec& spec) {
  using R = Result<SectionContainer>;
  const std::string what = spec.what;
  if (data.size() < 12) return R::error(what + " truncated: no header");
  if (std::memcmp(data.data(), spec.magic, 4) != 0) {
    return R::error("not a " + what + " file (bad magic)");
  }
  ByteReader r(data);
  r.u32();  // magic, verified above
  SectionContainer c;
  c.version = r.u32();
  if (c.version != spec.version) {
    return R::error("unsupported " + what + " version " +
                    std::to_string(c.version) + " (expected " +
                    std::to_string(spec.version) + ")");
  }
  const std::uint32_t count = r.u32();
  // Bound the table before trusting it: each entry is 20 bytes.
  if (!r.ok() || r.remaining() < static_cast<std::size_t>(count) * 20) {
    return R::error(what + " truncated: section table cut short");
  }
  struct Entry {
    std::uint32_t id;
    std::uint64_t size;
    std::uint64_t checksum;
  };
  std::vector<Entry> table;
  table.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.id = r.u32();
    e.size = r.u64();
    e.checksum = r.u64();
    table.push_back(e);
  }
  const std::size_t head_bytes = 12 + static_cast<std::size_t>(count) * 20;
  const std::uint64_t head_sum =
      fnv1a64(std::span<const std::uint8_t>(data.data(), head_bytes));
  std::uint32_t prev_id = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Entry& e = table[i];
    if (i > 0 && e.id <= prev_id) {
      return R::error(what + " corrupt: section table ids not ascending");
    }
    prev_id = e.id;
    if (e.size > r.remaining()) {
      return R::error(what + " truncated: section '" +
                      spec.section_name(e.id) + "' extends past end of file");
    }
    Section s;
    s.id = e.id;
    r.raw(static_cast<std::size_t>(e.size), s.bytes);
    if (fnv1a64(s.bytes) != e.checksum) {
      return R::error(what + " corrupt: checksum mismatch in section '" +
                      spec.section_name(e.id) + "'");
    }
    c.sections.push_back(std::move(s));
  }
  if (r.remaining() < 8) {
    return R::error(what + " truncated: missing trailer checksum");
  }
  if (r.u64() != head_sum) {
    return R::error(what + " corrupt: header/table checksum mismatch");
  }
  if (!r.done()) {
    return R::error(what + " corrupt: trailing bytes after trailer");
  }
  return c;
}

std::uint64_t container_digest(const SectionContainer& c,
                               const ContainerSpec& spec) {
  return fnv1a64(serialize_container(c, spec));
}

std::string diff_containers(const SectionContainer& a,
                            const SectionContainer& b,
                            const ContainerSpec& spec,
                            std::uint32_t skip_id) {
  std::string out;
  auto note = [&out](const std::string& line) {
    if (!out.empty()) out += "; ";
    out += line;
  };
  std::size_t ia = 0, ib = 0;
  while (ia < a.sections.size() || ib < b.sections.size()) {
    const Section* sa = ia < a.sections.size() ? &a.sections[ia] : nullptr;
    const Section* sb = ib < b.sections.size() ? &b.sections[ib] : nullptr;
    if (sb == nullptr || (sa != nullptr && sa->id < sb->id)) {
      note(std::string("section '") + spec.section_name(sa->id) +
           "' only in first");
      ++ia;
      continue;
    }
    if (sa == nullptr || sb->id < sa->id) {
      note(std::string("section '") + spec.section_name(sb->id) +
           "' only in second");
      ++ib;
      continue;
    }
    ++ia;
    ++ib;
    if (sa->id == skip_id) continue;
    if (sa->bytes == sb->bytes) continue;
    std::size_t off = 0;
    const std::size_t lim = std::min(sa->bytes.size(), sb->bytes.size());
    while (off < lim && sa->bytes[off] == sb->bytes[off]) ++off;
    note(std::string("section '") + spec.section_name(sa->id) +
         "' diverges (" + std::to_string(sa->bytes.size()) + " vs " +
         std::to_string(sb->bytes.size()) + " bytes, first difference at +" +
         std::to_string(off) + ")");
  }
  return out;
}

}  // namespace omni::codec
