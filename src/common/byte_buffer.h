// Bounds-checked binary serialization.
//
// ByteWriter appends big-endian integers and raw byte runs to a Bytes vector;
// ByteReader consumes them, reporting truncation through Result rather than
// reading out of bounds. All multi-byte integers are big-endian on the wire
// (network order), matching the paper's packed-struct framing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"
#include "common/types.h"

namespace omni {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) byte run.
  void blob(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) UTF-8 string.
  void str(const std::string& s);

  std::size_t size() const { return out_.size(); }
  const Bytes& bytes() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  // The fixed-width readers are inline: packet decoding runs once per
  // received frame, and an out-of-line call per field costs more than the
  // read itself (GCC folds the shift loops into single byte-swapped loads).
  Result<std::uint8_t> u8() {
    if (!need(1)) return Result<std::uint8_t>::error("truncated u8");
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (!need(2)) return Result<std::uint16_t>::error("truncated u16");
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    if (!need(4)) return Result<std::uint32_t>::error("truncated u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> u64() {
    if (!need(8)) return Result<std::uint64_t>::error("truncated u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }
  /// Read exactly out.size() bytes into a caller-provided buffer (no
  /// allocation, unlike raw()). False on truncation, consuming nothing.
  bool raw_into(std::span<std::uint8_t> out) {
    if (!need(out.size())) return false;
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), out.size(),
                out.begin());
    pos_ += out.size();
    return true;
  }
  /// Read exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);
  /// Read a u32 length prefix then that many bytes.
  Result<Bytes> blob();
  /// Read a u32 length prefix then that many bytes as a string.
  Result<std::string> str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  bool need(std::size_t n) const { return remaining() >= n; }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace omni
