// Bounds-checked binary serialization.
//
// ByteWriter appends big-endian integers and raw byte runs to a Bytes vector;
// ByteReader consumes them, reporting truncation through Result rather than
// reading out of bounds. All multi-byte integers are big-endian on the wire
// (network order), matching the paper's packed-struct framing.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"
#include "common/types.h"

namespace omni {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) byte run.
  void blob(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) UTF-8 string.
  void str(const std::string& s);

  std::size_t size() const { return out_.size(); }
  const Bytes& bytes() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  /// Read exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);
  /// Read a u32 length prefix then that many bytes.
  Result<Bytes> blob();
  /// Read a u32 length prefix then that many bytes as a string.
  Result<std::string> str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  bool need(std::size_t n) const { return remaining() >= n; }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace omni
