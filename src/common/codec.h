// Shared byte codec + sectioned binary container.
//
// One hardened encoding serves every durable byte stream in the repo: the
// `.osnap` snapshot files (sim/snapshot.h) and the distributed engine's
// wire frames (dist/protocol.h) are both instances of the same container
// shape, parameterized only by magic, version, and section-name table.
// docs/FORMATS.md is the normative specification of this layout.
//
// Container layout (little-endian):
//   magic (4 bytes) | u32 version | u32 section_count
//   section table: { u32 id, u64 size, u64 fnv1a64(payload) } * count
//   payloads, in table order
//   u64 fnv1a64(header + table)
//
// Loading is fail-soft and hardened: truncation, bad magic, unknown
// versions, and bit-flips anywhere (table or payload) fail with a
// diagnostic naming the damaged section — never UB. Section ids must be
// ascending and unique; unknown ids survive a parse/serialize round trip
// (forward compatibility for additive sections).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace omni::codec {

// --- Byte codec --------------------------------------------------------------

/// Append-only little-endian encoder used by every section writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// LEB128-style varint (7 bits per byte).
  void var(std::uint64_t v);
  /// Zigzag varint for signed values.
  void svar(std::int64_t v);
  /// var(length) + raw bytes.
  void str(std::string_view s);

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder: any overrun or malformed varint sets the fail
/// flag and yields zeros/empties from then on — corrupted input can produce
/// garbage values but never UB. Callers check ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::uint64_t var();
  std::int64_t svar();
  std::string str();
  /// Copy the next n raw bytes into `out` (replacing its contents); on
  /// overrun sets the fail flag and leaves `out` empty.
  void raw(std::size_t n, std::vector<std::uint8_t>& out);

  bool ok() const { return ok_; }
  /// Mark the stream bad from the outside: a caller that decodes a value in
  /// range but semantically invalid (bad enum tag, over-limit length) fails
  /// the whole read the same way an overrun would, so enclosing section
  /// decoders reject with one check.
  void fail() { ok_ = false; }
  /// True once every byte has been consumed without error.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Sectioned container -----------------------------------------------------

/// One container section: a stable id plus an opaque payload whose internal
/// layout is owned by the writer of that id.
struct Section {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> bytes;
};

/// An ordered set of sections plus the format version that serialized them.
struct SectionContainer {
  std::uint32_t version = 1;
  /// Ascending by id (section() maintains the order).
  std::vector<Section> sections;

  /// The section with `id`, created empty (in id order) if absent.
  Section& section(std::uint32_t id);
  const Section* find(std::uint32_t id) const;
};

/// Static description of one container format instance (snapshot, frame):
/// everything parse/serialize need beyond the bytes themselves.
struct ContainerSpec {
  /// Exactly 4 magic bytes opening the stream.
  char magic[4];
  /// The one version this build reads and writes (readers reject others).
  std::uint32_t version;
  /// Noun used in diagnostics ("snapshot", "frame").
  const char* what;
  /// Human name for a section id; must tolerate unknown ids.
  const char* (*section_name)(std::uint32_t id);
};

std::vector<std::uint8_t> serialize_container(const SectionContainer& c,
                                              const ContainerSpec& spec);

/// Full hardening: magic, version, table bounds, ascending ids, per-section
/// and trailer checksums. Error messages name the damaged piece using
/// `spec.what` and `spec.section_name`.
Result<SectionContainer> parse_container(std::span<const std::uint8_t> data,
                                         const ContainerSpec& spec);

/// fnv1a64 over the canonical serialization — one number identifying the
/// whole container.
std::uint64_t container_digest(const SectionContainer& c,
                               const ContainerSpec& spec);

/// "" when the containers carry byte-identical sections; otherwise a
/// diagnostic naming every divergent/missing section and the first
/// differing byte offset. Sections with id `skip_id` are ignored (pass 0 —
/// never a valid id — to compare everything).
std::string diff_containers(const SectionContainer& a,
                            const SectionContainer& b,
                            const ContainerSpec& spec,
                            std::uint32_t skip_id = 0);

}  // namespace omni::codec
