#include "common/assert.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace omni {
namespace {

// The hook is installed from setup code but may fire from any worker thread;
// the mutex orders install/clear against a concurrent failure. The failure
// path never returns, so contention is a non-issue.
std::mutex g_hook_mu;
std::function<void(const char*)> g_hook;

// One dump per process: a second failure (possibly raised *by* the dump
// writer) must fall straight through to abort instead of recursing.
std::atomic<bool> g_dumping{false};

}  // namespace

void set_crash_dump_hook(std::function<void(const char* reason)> hook) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  g_hook = std::move(hook);
}

void clear_crash_dump_hook() {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  g_hook = nullptr;
}

void assert_failed(const char* expr, const char* file, int line,
                   const char* fmt, ...) {
  char detail[512];
  detail[0] = '\0';
  if (fmt != nullptr) {
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(detail, sizeof(detail), fmt, args);
    va_end(args);
  }
  char reason[768];
  std::snprintf(reason, sizeof(reason), "OMNI_ASSERT failed: %s at %s:%d%s%s",
                expr, file, line, detail[0] != '\0' ? " " : "", detail);
  std::fprintf(stderr, "%s\n", reason);
  if (!g_dumping.exchange(true)) {
    std::function<void(const char*)> hook;
    {
      std::lock_guard<std::mutex> lock(g_hook_mu);
      hook = g_hook;
    }
    if (hook) hook(reason);
  }
  std::fflush(stdout);
  std::fflush(stderr);
  std::abort();
}

}  // namespace omni
