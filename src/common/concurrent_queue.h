// Thread-safe multi-producer / multi-consumer FIFO queue.
//
// This is the queue the paper's Communication Technology API contract is
// built on (§3.2): each technology runs "entirely separately from the Omni
// manager and only communicate[s] using queues that can be accessed
// concurrently". Under simulation the consumers are driven by the event loop
// (see omni/queues.h), but the same container supports genuinely concurrent
// producers/consumers for real-time deployments, with close() semantics so
// consumers can drain and exit.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace omni {

template <typename T>
class ConcurrentQueue {
 public:
  ConcurrentQueue() = default;
  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Enqueue an item. Returns false if the queue has been closed.
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Swap out the entire backlog under a single lock acquisition. Consumers
  /// that process in batches (e.g. per event-loop tick) use this instead of
  /// a try_pop loop, paying one lock per batch instead of one per item.
  std::deque<T> drain() {
    std::deque<T> out;
    {
      std::lock_guard lock(mu_);
      out.swap(items_);
    }
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Blocking pop; returns nullopt once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Close the queue: further pushes fail, blocked consumers wake up.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace omni
