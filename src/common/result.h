// Lightweight Status / Result types for recoverable errors.
//
// The middleware uses these instead of exceptions on hot paths (queue
// processing, codec) so that failure handling stays explicit and allocation
// free. Exceptions remain in use for programming errors (via OMNI_CHECK).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace omni {

/// Terminate with a message when an internal invariant is violated.
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "OMNI_CHECK failed: %s at %s:%d %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

#define OMNI_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::omni::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define OMNI_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::omni::check_failed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

/// Success-or-message status.
class Status {
 public:
  static Status ok() { return Status{}; }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  bool is_ok() const { return !message_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  /// Message text; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  std::optional<std::string> message_;
};

/// Value-or-error-message result.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  static Result error(std::string message) {
    return Result{Status::error(std::move(message))};
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  T& value() & {
    OMNI_CHECK_MSG(is_ok(), error_message());
    return std::get<T>(v_);
  }
  const T& value() const& {
    OMNI_CHECK_MSG(is_ok(), error_message());
    return std::get<T>(v_);
  }
  T&& value() && {
    OMNI_CHECK_MSG(is_ok(), error_message());
    return std::get<T>(std::move(v_));
  }

  // noinline: keeps GCC-12's -Wmaybe-uninitialized from tracing the dead
  // error branch through the variant when this inlines into a proven-OK
  // call site.
  __attribute__((noinline)) const std::string& error_message() const {
    static const std::string kEmpty;
    if (is_ok()) return kEmpty;
    return std::get<Status>(v_).message();
  }

  /// value() if ok, otherwise the supplied fallback.
  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  explicit Result(Status s) : v_(std::move(s)) {}
  std::variant<T, Status> v_;
};

}  // namespace omni
