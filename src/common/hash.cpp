#include "common/hash.h"

namespace omni {

std::uint64_t fnv1a64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x00000100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

OmniAddress derive_omni_address(const BleAddress& ble,
                                const MeshAddress& mesh) {
  std::uint64_t h = fnv1a64(std::span<const std::uint8_t>(ble.octets));
  std::uint8_t meshBytes[8];
  for (int i = 0; i < 8; ++i) {
    meshBytes[i] = static_cast<std::uint8_t>(mesh.value >> (8 * (7 - i)));
  }
  h = fnv1a64(std::span<const std::uint8_t>(meshBytes, 8), h);
  if (h == 0) h = 1;  // zero is the invalid sentinel
  return OmniAddress{h};
}

}  // namespace omni
