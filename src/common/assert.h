// Hard invariant checks with crash capture.
//
// OMNI_ASSERT / OMNI_ASSERTF are the hot-path invariant macros (the
// simroot_assert pattern): always-on, branch-predicted cold, and — unlike a
// bare OMNI_CHECK — they run a process-wide *crash-dump hook* before
// aborting. The testbed arms the hook (net::Testbed::arm_crash_dumps) to
// write a state snapshot plus the flight-recorder tail to a dump directory,
// so a failure deep inside a multi-hour chaos soak leaves behind everything
// needed to reproduce it in seconds instead of hours.
//
// The hook is best-effort: a recursion guard makes a second failure raised
// *while dumping* fall straight through to abort, and an unarmed hook costs
// one relaxed atomic load on the (already doomed) failure path and nothing
// on the hot path.
#pragma once

#include <functional>

namespace omni {

/// Install the crash-dump hook, replacing any previous one. `reason` is the
/// formatted failure message ("expr at file:line detail"). The hook runs on
/// the failing thread before abort(); it must not assume quiescence (the
/// failure may come from inside a parallel window) — dump writers check the
/// execution context and degrade to a reason-only dump when preempting a
/// full state capture would race.
void set_crash_dump_hook(std::function<void(const char* reason)> hook);

/// Remove the hook (e.g. when the testbed that armed it is destroyed).
void clear_crash_dump_hook();

/// Failure path shared by the macros: format the message, run the crash-dump
/// hook (once — recursion falls through), print, abort. `fmt` may be null
/// (OMNI_ASSERT). Marked noreturn + noinline so call sites stay one compare
/// and one cold call.
[[noreturn]] __attribute__((noinline)) void assert_failed(const char* expr,
                                                          const char* file,
                                                          int line,
                                                          const char* fmt,
                                                          ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace omni

/// Always-on invariant check; on failure, crash-dump then abort.
#define OMNI_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(static_cast<bool>(expr))) [[unlikely]] {                     \
      ::omni::assert_failed(#expr, __FILE__, __LINE__, nullptr);       \
    }                                                                  \
  } while (0)

/// OMNI_ASSERT with a printf-style context message.
#define OMNI_ASSERTF(expr, ...)                                        \
  do {                                                                 \
    if (!(static_cast<bool>(expr))) [[unlikely]] {                     \
      ::omni::assert_failed(#expr, __FILE__, __LINE__, __VA_ARGS__);   \
    }                                                                  \
  } while (0)
