#include "common/logging.h"

#include <cstdio>

namespace omni {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::logf(LogLevel level, TimePoint at, const char* tag,
                  const char* fmt, ...) {
  if (!enabled(level)) return;
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s %10.6fs %-12s] %s\n", level_name(level),
               at.as_seconds(), tag, msg);
}

}  // namespace omni
