#include "common/types.h"

#include <cstdio>

namespace omni {

std::string to_string(Technology t) {
  switch (t) {
    case Technology::kBle:
      return "BLE";
    case Technology::kWifiAware:
      return "WiFi-Aware";
    case Technology::kWifiMulticast:
      return "WiFi-Multicast";
    case Technology::kWifiUnicast:
      return "WiFi-Unicast";
  }
  return "Technology(?)";
}

bool BleAddress::is_zero() const {
  for (auto o : octets) {
    if (o != 0) return false;
  }
  return true;
}

std::string BleAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

BleAddress BleAddress::from_node(NodeId id) {
  // Locally administered unicast prefix 0x02, then a fixed OUI-ish filler and
  // the node id in the low 3 octets. Deterministic so tests can predict it.
  BleAddress a;
  a.octets = {0x02, 0xb1, 0xee,
              static_cast<std::uint8_t>((id >> 16) & 0xff),
              static_cast<std::uint8_t>((id >> 8) & 0xff),
              static_cast<std::uint8_t>(id & 0xff)};
  return a;
}

std::string MeshAddress::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "mesh:%012llx",
                static_cast<unsigned long long>(value));
  return buf;
}

MeshAddress MeshAddress::from_node(NodeId id) {
  // EUI-64-style identifier with a recognizable prefix.
  return MeshAddress{0x02fe'5000'0000'0000ull | id};
}

std::string NanAddress::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "nan:%012llx",
                static_cast<unsigned long long>(value));
  return buf;
}

NanAddress NanAddress::from_node(NodeId id) {
  return NanAddress{0x02a3'0000'0000'0000ull | id};
}

std::string OmniAddress::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "omni:%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace omni
