// FNV-1a hashing, used to derive the technology-agnostic omni_address from a
// device's hardware addresses (paper §3.3).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/types.h"

namespace omni {

/// 64-bit FNV-1a over a byte span.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/// splitmix64 finalizer: a fast, high-quality avalanche of one 64-bit word.
/// Used wherever a single integer key needs uniform bucket spread (the
/// peer-table and beacon-memo open-addressing probes).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// 64-bit FNV-1a over a string.
std::uint64_t fnv1a64(std::string_view s);

/// Derive the omni_address of a device from its per-technology hardware
/// addresses. The result is never zero (zero is reserved for "invalid").
OmniAddress derive_omni_address(const BleAddress& ble, const MeshAddress& mesh);

}  // namespace omni
