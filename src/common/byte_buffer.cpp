#include "common/byte_buffer.h"

namespace omni {

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  raw(bytes);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

Result<Bytes> ByteReader::raw(std::size_t n) {
  if (!need(n)) return Result<Bytes>::error("truncated raw bytes");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<Bytes> ByteReader::blob() {
  auto len = u32();
  if (!len) return Result<Bytes>::error(len.error_message());
  return raw(len.value());
}

Result<std::string> ByteReader::str() {
  auto bytes = blob();
  if (!bytes) return Result<std::string>::error(bytes.error_message());
  return std::string(bytes.value().begin(), bytes.value().end());
}

}  // namespace omni
