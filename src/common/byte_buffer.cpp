#include "common/byte_buffer.h"

namespace omni {

void ByteWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 24));
  out_.push_back(static_cast<std::uint8_t>(v >> 16));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  raw(bytes);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

Result<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return Result<std::uint8_t>::error("truncated u8");
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return Result<std::uint16_t>::error("truncated u16");
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return Result<std::uint32_t>::error("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return Result<std::uint64_t>::error("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<Bytes> ByteReader::raw(std::size_t n) {
  if (!need(n)) return Result<Bytes>::error("truncated raw bytes");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<Bytes> ByteReader::blob() {
  auto len = u32();
  if (!len) return Result<Bytes>::error(len.error_message());
  return raw(len.value());
}

Result<std::string> ByteReader::str() {
  auto bytes = blob();
  if (!bytes) return Result<std::string>::error(bytes.error_message());
  return std::string(bytes.value().begin(), bytes.value().end());
}

}  // namespace omni
