// Virtual time primitives used throughout the simulator and middleware.
//
// All simulation time is kept as a signed 64-bit count of microseconds.
// Microsecond resolution is fine-grained enough for radio airtime modelling
// (a single 1500-byte frame at 6 Mbps lasts 2000 us) while still allowing
// ~292,000 years of virtual time before overflow.
#pragma once

#include <cstdint>
#include <string>

namespace omni {

/// A span of virtual time, in microseconds. Value type; cheap to copy.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) {
    return Duration{ms * 1000};
  }
  static constexpr Duration seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1'000'000.0)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{INT64_MAX}; }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  constexpr Duration operator+(Duration o) const {
    return Duration{us_ + o.us_};
  }
  constexpr Duration operator-(Duration o) const {
    return Duration{us_ - o.us_};
  }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const {
    return Duration{us_ / k};
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// A point on the virtual timeline (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint from_micros(std::int64_t us) {
    return TimePoint{us};
  }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() { return TimePoint{INT64_MAX}; }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{us_ + d.as_micros()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{us_ - d.as_micros()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::micros(us_ - o.us_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace omni
