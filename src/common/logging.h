// Minimal levelled logger.
//
// Logging is process-global (one sink) but carries the virtual timestamp of
// the emitting simulation when provided. Disabled levels cost one branch.
#pragma once

#include <cstdarg>
#include <string>

#include "common/time.h"

namespace omni {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// printf-style log emission; `at` is the virtual time, if known.
  void logf(LogLevel level, TimePoint at, const char* tag, const char* fmt,
            ...) __attribute__((format(printf, 5, 6)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

#define OMNI_LOG(level, at, tag, ...)                             \
  do {                                                            \
    if (::omni::Logger::instance().enabled(level)) {              \
      ::omni::Logger::instance().logf(level, at, tag, __VA_ARGS__); \
    }                                                             \
  } while (0)

#define OMNI_TRACE(at, tag, ...) \
  OMNI_LOG(::omni::LogLevel::kTrace, at, tag, __VA_ARGS__)
#define OMNI_DEBUG(at, tag, ...) \
  OMNI_LOG(::omni::LogLevel::kDebug, at, tag, __VA_ARGS__)
#define OMNI_INFO(at, tag, ...) \
  OMNI_LOG(::omni::LogLevel::kInfo, at, tag, __VA_ARGS__)
#define OMNI_WARN(at, tag, ...) \
  OMNI_LOG(::omni::LogLevel::kWarn, at, tag, __VA_ARGS__)
#define OMNI_ERROR(at, tag, ...) \
  OMNI_LOG(::omni::LogLevel::kError, at, tag, __VA_ARGS__)

}  // namespace omni
