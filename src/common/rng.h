// Deterministic random number generation.
//
// Every stochastic element of the simulation (BLE scan-capture, jitter) draws
// from an Rng seeded by the experiment, so runs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace omni {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Derive an independent child stream (for per-device RNGs).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace omni
