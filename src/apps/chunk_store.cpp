#include "apps/chunk_store.h"

#include "common/result.h"

namespace omni::apps {

ChunkStore::ChunkStore(std::uint64_t file_bytes, std::uint64_t chunk_bytes)
    : file_bytes_(file_bytes), chunk_bytes_(chunk_bytes) {
  OMNI_CHECK_MSG(file_bytes > 0 && chunk_bytes > 0,
                 "file and chunk sizes must be positive");
  chunk_count_ = (file_bytes + chunk_bytes - 1) / chunk_bytes;
  have_.assign(chunk_count_, false);
}

std::uint64_t ChunkStore::size_of(std::uint64_t id) const {
  OMNI_CHECK_MSG(id < chunk_count_, "chunk id out of range");
  if (id + 1 == chunk_count_ && file_bytes_ % chunk_bytes_ != 0) {
    return file_bytes_ % chunk_bytes_;
  }
  return chunk_bytes_;
}

bool ChunkStore::has(std::uint64_t id) const {
  OMNI_CHECK_MSG(id < chunk_count_, "chunk id out of range");
  return have_[id];
}

bool ChunkStore::add(std::uint64_t id) {
  OMNI_CHECK_MSG(id < chunk_count_, "chunk id out of range");
  if (have_[id]) return false;
  have_[id] = true;
  ++have_count_;
  return true;
}

std::optional<std::uint64_t> ChunkStore::first_missing(
    std::uint64_t from) const {
  for (std::uint64_t i = from; i < chunk_count_; ++i) {
    if (!have_[i]) return i;
  }
  return std::nullopt;
}

std::vector<std::uint64_t> ChunkStore::missing() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < chunk_count_; ++i) {
    if (!have_[i]) out.push_back(i);
  }
  return out;
}

Bytes ChunkStore::bitmap() const {
  Bytes out((chunk_count_ + 7) / 8, 0);
  for (std::uint64_t i = 0; i < chunk_count_; ++i) {
    if (have_[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

std::vector<bool> ChunkStore::parse_bitmap(const Bytes& bytes,
                                           std::uint64_t chunk_count) {
  std::vector<bool> out(chunk_count, false);
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    if (i / 8 < bytes.size() && (bytes[i / 8] >> (i % 8)) & 1u) {
      out[i] = true;
    }
  }
  return out;
}

}  // namespace omni::apps
