#include "apps/prophet.h"

#include <algorithm>
#include <cmath>

#include "common/byte_buffer.h"
#include "common/logging.h"
#include "common/result.h"

namespace omni::apps {

namespace {
constexpr std::size_t kMessageHeader = 4 + 8 + 8;  // id, source, dest
}

ProphetNode::ProphetNode(baselines::D2dStack& stack, sim::Simulator& sim,
                         ProphetConfig config, sim::TraceRecorder* trace)
    : stack_(stack),
      sim_(sim),
      config_(config),
      trace_(trace),
      next_message_id_(
          static_cast<std::uint32_t>(stack.self() & 0xffffu) << 16 | 1u) {}

void ProphetNode::start() {
  OMNI_CHECK_MSG(!started_, "already started");
  started_ = true;
  stack_.set_advert_handler([this](PeerId peer, const Bytes& summary) {
    on_advert(peer, summary);
  });
  stack_.set_data_handler(
      [this](PeerId peer, const Bytes& wire) { on_data(peer, wire); });
  stack_.start();
  refresh_advert();
}

double ProphetNode::aged(const Entry& e) const {
  double seconds = (sim_.now() - e.updated).as_seconds();
  if (seconds <= 0) return e.p;
  return e.p * std::pow(config_.gamma, seconds);
}

double ProphetNode::predictability(PeerId dest) const {
  auto it = table_.find(dest);
  return it == table_.end() ? 0.0 : aged(it->second);
}

void ProphetNode::seed_predictability(PeerId dest, double p) {
  table_[dest] = Entry{p, sim_.now()};
}

void ProphetNode::bump_encounter(PeerId peer) {
  Entry& e = table_[peer];
  double p = aged(e);
  e.p = p + (1.0 - p) * config_.p_init;
  e.updated = sim_.now();
}

void ProphetNode::apply_transitivity(PeerId via, PeerId dest,
                                     double p_via_dest) {
  if (dest == stack_.self()) return;
  double p_self_via = predictability(via);
  double candidate = p_self_via * p_via_dest * config_.beta;
  Entry& e = table_[dest];
  double current = aged(e);
  if (candidate > current) {
    e.p = candidate;
    e.updated = sim_.now();
  }
}

void ProphetNode::buffer_message(Message m) {
  if (buffer_.size() >= config_.buffer_capacity) {
    // Evict the oldest carried message.
    buffer_.erase(buffer_.begin());
    ++dropped_capacity_;
  }
  buffer_.push_back(std::move(m));
}

void ProphetNode::purge_expired() {
  TimePoint now = sim_.now();
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (now - it->created > config_.message_ttl) {
      it = buffer_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

std::uint32_t ProphetNode::originate(PeerId dest,
                                     std::uint64_t payload_bytes) {
  OMNI_CHECK_MSG(started_, "start() first");
  OMNI_CHECK_MSG(payload_bytes >= kMessageHeader,
                 "message too small for its header");
  std::uint32_t id = next_message_id_++;
  buffer_message(Message{id, stack_.self(), dest, payload_bytes,
                         sim_.now()});
  seen_.insert(id);
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), "originate", std::to_string(id), 0);
  }
  // An eligible carrier may already be in range.
  for (PeerId peer : stack_.known_peers()) try_forward(peer);
  return id;
}

Bytes ProphetNode::encode_summary() const {
  // Top-N aged entries: [u8 count][u64 dest, u16 p_fixed]*
  //
  // The summary is tiny (it must fit a BLE advertisement), so entries for
  // destinations that are NOT current neighbors take priority: a neighbor's
  // presence is already implied by its own beacons, while reachability of a
  // remote destination is exactly what peers cannot otherwise learn.
  std::vector<PeerId> neighbors = stack_.known_peers();
  auto is_neighbor = [&](PeerId id) {
    return std::find(neighbors.begin(), neighbors.end(), id) !=
           neighbors.end();
  };
  std::vector<std::pair<PeerId, double>> entries;
  for (const auto& [dest, e] : table_) {
    double p = aged(e);
    if (p > 0.001) entries.emplace_back(dest, p);
  }
  std::sort(entries.begin(), entries.end(),
            [&](const auto& a, const auto& b) {
              bool an = is_neighbor(a.first);
              bool bn = is_neighbor(b.first);
              if (an != bn) return !an;  // non-neighbors first
              return a.second > b.second;
            });
  if (entries.size() > config_.summary_entries) {
    entries.resize(config_.summary_entries);
  }
  ByteWriter w(1 + entries.size() * 10);
  w.u8(static_cast<std::uint8_t>(entries.size()));
  for (const auto& [dest, p] : entries) {
    w.u64(dest);
    w.u16(static_cast<std::uint16_t>(std::min(1.0, p) * 65535.0));
  }
  return std::move(w).take();
}

void ProphetNode::refresh_advert() {
  stack_.advertise(encode_summary(), config_.advert_interval);
}

void ProphetNode::on_advert(PeerId peer, const Bytes& summary) {
  purge_expired();
  bump_encounter(peer);
  ByteReader r(summary);
  auto count = r.u8();
  std::map<PeerId, double> peer_table;
  if (count) {
    for (std::uint8_t i = 0; i < count.value(); ++i) {
      auto dest = r.u64();
      auto p = r.u16();
      if (!dest || !p) break;
      double prob = static_cast<double>(p.value()) / 65535.0;
      peer_table[dest.value()] = prob;
      apply_transitivity(peer, dest.value(), prob);
    }
  }
  refresh_advert();

  // Forwarding decision: hand a buffered message to this peer if it is the
  // destination or a better carrier.
  for (const Message& m : buffer_) {
    if (m.dest == peer) continue;  // handled in try_forward
    auto it = peer_table.find(m.dest);
    double p_peer = it == peer_table.end() ? 0.0 : it->second;
    double p_self = predictability(m.dest);
    if (p_peer > p_self && offered_[peer].count(m.id) == 0) {
      offered_[peer].insert(m.id);
      std::uint32_t id = m.id;
      stack_.send(peer, encode_message(m), [this, peer, id](Status s) {
        if (!s.is_ok()) offered_[peer].erase(id);  // retry on next advert
      });
      if (trace_ != nullptr) {
        trace_->record(sim_.now(), "forward", std::to_string(id), 0);
      }
    }
  }
  try_forward(peer);
}

void ProphetNode::try_forward(PeerId peer) {
  // Direct delivery of anything destined to this peer.
  for (const Message& m : buffer_) {
    if (m.dest != peer || offered_[peer].count(m.id) != 0) continue;
    offered_[peer].insert(m.id);
    std::uint32_t id = m.id;
    stack_.send(peer, encode_message(m), [this, peer, id](Status s) {
      if (!s.is_ok()) offered_[peer].erase(id);
    });
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), "deliver_attempt", std::to_string(id), 0);
    }
  }
}

Bytes ProphetNode::encode_message(const Message& m) const {
  Bytes wire(m.bytes, 0xCD);
  ByteWriter w(kMessageHeader);
  w.u32(m.id);
  w.u64(m.source);
  w.u64(m.dest);
  const Bytes& header = w.bytes();
  std::copy(header.begin(), header.end(), wire.begin());
  return wire;
}

void ProphetNode::on_data(PeerId /*peer*/, const Bytes& wire) {
  ByteReader r(wire);
  auto id = r.u32();
  auto source = r.u64();
  auto dest = r.u64();
  if (!id || !source || !dest) return;
  if (seen_.count(id.value()) > 0) return;
  seen_.insert(id.value());

  if (dest.value() == stack_.self()) {
    delivered_here_.insert(id.value());
    if (trace_ != nullptr) {
      trace_->record(sim_.now(), "delivered", std::to_string(id.value()), 0);
    }
    if (on_delivered_) on_delivered_(id.value(), source.value());
    return;
  }
  // Buffer and carry.
  buffer_message(Message{id.value(), source.value(), dest.value(),
                         wire.size(), sim_.now()});
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), "buffered", std::to_string(id.value()), 0);
  }
  for (PeerId peer : stack_.known_peers()) try_forward(peer);
}

}  // namespace omni::apps
