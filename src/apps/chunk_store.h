// Chunked file store for the Disseminate-like application: tracks which
// chunks of a file a device holds and (de)serializes the holdings bitmap
// that rides in metadata advertisements.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace omni::apps {

class ChunkStore {
 public:
  ChunkStore(std::uint64_t file_bytes, std::uint64_t chunk_bytes);

  std::uint64_t chunk_count() const { return chunk_count_; }
  std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  std::uint64_t file_bytes() const { return file_bytes_; }
  /// Size of chunk `id` (the last chunk may be short).
  std::uint64_t size_of(std::uint64_t id) const;

  bool has(std::uint64_t id) const;
  /// Returns true if the chunk was new.
  bool add(std::uint64_t id);
  std::uint64_t have_count() const { return have_count_; }
  bool complete() const { return have_count_ == chunk_count_; }

  /// Lowest missing chunk >= from, if any.
  std::optional<std::uint64_t> first_missing(std::uint64_t from = 0) const;
  std::vector<std::uint64_t> missing() const;

  /// Holdings bitmap, one bit per chunk (LSB-first within each byte).
  Bytes bitmap() const;
  /// Parse a peer's bitmap (must describe the same chunk count).
  static std::vector<bool> parse_bitmap(const Bytes& bytes,
                                        std::uint64_t chunk_count);

 private:
  std::uint64_t file_bytes_;
  std::uint64_t chunk_bytes_;
  std::uint64_t chunk_count_;
  std::uint64_t have_count_ = 0;
  std::vector<bool> have_;
};

}  // namespace omni::apps
