#include "apps/disseminate.h"

#include "common/byte_buffer.h"
#include "common/logging.h"

namespace omni::apps {

DisseminateApp::DisseminateApp(baselines::D2dStack& stack,
                               net::InfraNetwork& infra,
                               radio::WifiRadio& infra_radio,
                               sim::Simulator& sim, DisseminateConfig config,
                               std::uint64_t assigned_first,
                               std::uint64_t assigned_count,
                               sim::TraceRecorder* trace)
    : stack_(stack),
      infra_(infra),
      infra_radio_(infra_radio),
      sim_(sim),
      config_(config),
      assigned_first_(assigned_first),
      assigned_count_(assigned_count),
      trace_(trace),
      store_(config.file_bytes, config.chunk_bytes) {}

void DisseminateApp::start() {
  OMNI_CHECK_MSG(!started_, "already started");
  started_ = true;
  started_at_ = sim_.now();

  stack_.set_advert_handler(
      [this](baselines::D2dStack::PeerId peer, const Bytes& info) {
        on_peer_advert(peer, info);
      });
  stack_.set_data_handler(
      [this](baselines::D2dStack::PeerId peer, const Bytes& data) {
        on_peer_data(peer, data);
      });
  stack_.start();
  refresh_advert();
  pump_infra();
}

Bytes DisseminateApp::chunk_payload(std::uint64_t id) const {
  // 4-byte chunk id header, then filler standing in for the media bytes.
  Bytes payload(store_.size_of(id), 0xAB);
  payload[0] = static_cast<std::uint8_t>(id >> 24);
  payload[1] = static_cast<std::uint8_t>(id >> 16);
  payload[2] = static_cast<std::uint8_t>(id >> 8);
  payload[3] = static_cast<std::uint8_t>(id);
  return payload;
}

bool DisseminateApp::promised_by_peer(std::uint64_t id) const {
  for (const auto& [peer, state] : peers_) {
    if (id < state.has.size() && state.has[id]) return true;
  }
  return false;
}

double DisseminateApp::d2d_rate_Bps() const {
  if (d2d_samples_.empty()) return 0;
  std::uint64_t bytes = 0;
  for (const auto& [t, b] : d2d_samples_) bytes += b;
  double window = config_.d2d_rate_window.as_seconds();
  return static_cast<double>(bytes) / window;
}

std::uint64_t DisseminateApp::missing_bytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t id : store_.missing()) total += store_.size_of(id);
  return total;
}

void DisseminateApp::pump_infra() {
  if (infra_busy_ || store_.complete()) return;

  // Assigned range first, then (optionally) backfill anything still missing.
  std::optional<std::uint64_t> next;
  for (std::uint64_t i = 0; i < assigned_count_; ++i) {
    std::uint64_t id = assigned_first_ + i;
    if (!store_.has(id) && infra_in_flight_.count(id) == 0) {
      next = id;
      break;
    }
  }
  if (!next && config_.infra_backfill) {
    // Prefer chunks no peer holds; fall back to promised chunks only when
    // D2D supply is too slow to be worth waiting for.
    std::optional<std::uint64_t> promised;
    for (std::uint64_t id = 0; id < store_.chunk_count(); ++id) {
      if (store_.has(id) || infra_in_flight_.count(id) != 0) continue;
      if (!promised_by_peer(id)) {
        next = id;
        break;
      }
      if (!promised) promised = id;
    }
    if (!next && promised) {
      // Trim stale samples, then compare expected waits.
      TimePoint now = sim_.now();
      while (!d2d_samples_.empty() &&
             now - d2d_samples_.front().first > config_.d2d_rate_window) {
        d2d_samples_.pop_front();
      }
      double rate = d2d_rate_Bps();
      double remaining = static_cast<double>(missing_bytes());
      double d2d_wait = rate > 0 ? remaining / rate : 1e18;
      double infra_time = remaining / config_.infra_rate_Bps;
      if (d2d_wait > config_.backfill_bias * infra_time) {
        next = promised;
      } else if (!backfill_recheck_.pending()) {
        // D2D looks healthy: hold off and re-evaluate shortly.
        backfill_recheck_ =
            sim_.after(Duration::seconds(1), [this] { pump_infra(); });
      }
    }
  }
  if (!next) return;

  infra_busy_ = true;
  infra_in_flight_.insert(*next);
  Status s = infra_.fetch_chunk(
      infra_radio_, *next, store_.size_of(*next), config_.infra_rate_Bps,
      [this](std::uint64_t id) {
        infra_busy_ = false;
        infra_in_flight_.erase(id);
        on_chunk_obtained(id, /*from_infra=*/true);
        pump_infra();
      });
  if (!s.is_ok()) {
    infra_busy_ = false;
    infra_in_flight_.erase(*next);
  }
}

void DisseminateApp::on_chunk_obtained(std::uint64_t id, bool from_infra) {
  if (!store_.add(id)) {
    ++duplicates_;
    return;
  }
  if (from_infra) {
    ++chunks_from_infra_;
    infra_chunks_.insert(id);
  } else {
    ++chunks_from_d2d_;
    d2d_samples_.emplace_back(sim_.now(), store_.size_of(id));
  }
  if (trace_ != nullptr) {
    trace_->record(sim_.now(), "chunk",
                   from_infra ? "infra" : "d2d",
                   static_cast<double>(id));
  }
  refresh_advert();

  // Offer the new chunk to peers that lack it. Only chunks this device
  // pulled from the infrastructure are pushed — peers that received a chunk
  // via D2D would otherwise re-share it redundantly.
  if (from_infra) {
    if (config_.share_via_broadcast) {
      if (stack_.supports_broadcast_data() &&
          broadcast_done_.count(id) == 0) {
        broadcast_done_.insert(id);
        stack_.broadcast_data(chunk_payload(id), nullptr);
      }
    } else {
      for (auto& [peer, state] : peers_) {
        if (id < state.has.size() && !state.has[id] &&
            state.sent.count(id) == 0) {
          state.queued.insert(id);
        }
        pump_sends(peer);
      }
    }
  }

  if (store_.complete() && completed_at_ == TimePoint::max()) {
    completed_at_ = sim_.now();
    if (trace_ != nullptr) trace_->record(sim_.now(), "complete", "", 0);
  }
}

void DisseminateApp::refresh_advert() {
  stack_.advertise(store_.bitmap(), config_.advert_interval);
}

void DisseminateApp::on_peer_advert(baselines::D2dStack::PeerId peer,
                                    const Bytes& info) {
  PeerState& state = peers_[peer];
  state.has = ChunkStore::parse_bitmap(info, store_.chunk_count());
  if (config_.share_via_broadcast) return;
  for (std::uint64_t id = 0; id < store_.chunk_count(); ++id) {
    if (store_.has(id) && infra_chunks_.count(id) > 0 && !state.has[id] &&
        state.sent.count(id) == 0) {
      state.queued.insert(id);
    } else if (id < state.has.size() && state.has[id]) {
      state.queued.erase(id);
    }
  }
  pump_sends(peer);
}

std::size_t DisseminateApp::peer_holders(std::uint64_t id) const {
  std::size_t holders = 0;
  for (const auto& [peer, state] : peers_) {
    if (id < state.has.size() && state.has[id]) ++holders;
  }
  return holders;
}

std::uint64_t DisseminateApp::pick_queued_chunk(
    const std::set<std::uint64_t>& queued) const {
  if (config_.push_order == DisseminateConfig::PushOrder::kSequential) {
    return *queued.begin();
  }
  // Rarest first: fewest peer holders wins; ties go to the lowest id.
  std::uint64_t best = *queued.begin();
  std::size_t best_holders = peer_holders(best);
  for (std::uint64_t id : queued) {
    std::size_t holders = peer_holders(id);
    if (holders < best_holders) {
      best = id;
      best_holders = holders;
    }
  }
  return best;
}

void DisseminateApp::pump_sends(baselines::D2dStack::PeerId peer) {
  PeerState& state = peers_[peer];
  while (state.in_flight < config_.send_window && !state.queued.empty()) {
    std::uint64_t id = pick_queued_chunk(state.queued);
    state.queued.erase(id);
    state.sent.insert(id);
    ++state.in_flight;
    stack_.send(peer, chunk_payload(id), [this, peer, id](Status s) {
      auto it = peers_.find(peer);
      if (it == peers_.end()) return;
      --it->second.in_flight;
      if (!s.is_ok()) {
        // Allow a retry on the next advertisement.
        it->second.sent.erase(id);
      }
      pump_sends(peer);
    });
  }
}

void DisseminateApp::on_peer_data(baselines::D2dStack::PeerId /*peer*/,
                                  const Bytes& data) {
  if (data.size() < 4) return;
  std::uint64_t id = (static_cast<std::uint64_t>(data[0]) << 24) |
                     (static_cast<std::uint64_t>(data[1]) << 16) |
                     (static_cast<std::uint64_t>(data[2]) << 8) |
                     static_cast<std::uint64_t>(data[3]);
  if (id >= store_.chunk_count()) return;
  on_chunk_obtained(id, /*from_infra=*/false);
}

}  // namespace omni::apps
