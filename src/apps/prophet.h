// PROPHET probabilistic DTN routing (Lindgren et al. 2003), layered over a
// D2dStack — the paper's second real-application evaluation (§4.3).
//
// Each node maintains delivery predictabilities P(self, dest) with the
// standard three rules:
//   encounter:    P = P_old + (1 - P_old) * P_init
//   aging:        P = P_old * gamma^(seconds elapsed)
//   transitivity: P(a,c) = max(P_old, P(a,b) * P(b,c) * beta)
//
// Nodes continuously advertise a compact summary of their predictability
// table as *context* ("devices continuously share summaries of their
// historical encounters with neighboring peers"); buffered messages are
// forwarded as *data* to encountered nodes with a strictly higher delivery
// predictability for the destination.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "baselines/d2d_stack.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace omni::apps {

struct ProphetConfig {
  double p_init = 0.75;
  double beta = 0.25;
  double gamma = 0.98;  ///< per second
  Duration advert_interval = Duration::millis(500);
  /// Max predictability entries in one summary advert (BLE-constrained).
  std::size_t summary_entries = 2;
  /// Buffer capacity in messages; the oldest message is evicted when full
  /// (standard DTN store-and-carry behavior).
  std::size_t buffer_capacity = 64;
  /// Messages older than this are purged instead of forwarded.
  Duration message_ttl = Duration::seconds(3600);
};

class ProphetNode {
 public:
  using PeerId = baselines::D2dStack::PeerId;
  using DeliveredFn =
      std::function<void(std::uint32_t message_id, PeerId source)>;

  ProphetNode(baselines::D2dStack& stack, sim::Simulator& sim,
              ProphetConfig config = {}, sim::TraceRecorder* trace = nullptr);

  void start();

  /// Inject a message originating here, destined for `dest`.
  /// `payload_bytes` is the simulated size (a 4 KB photo, the paper's 1 KB
  /// file, ...). Returns the message id.
  std::uint32_t originate(PeerId dest, std::uint64_t payload_bytes);

  void set_delivered_handler(DeliveredFn fn) { on_delivered_ = std::move(fn); }

  /// Seed an encounter history (e.g., "B has met C before").
  void seed_predictability(PeerId dest, double p);

  /// Current (aged) delivery predictability for `dest`.
  double predictability(PeerId dest) const;

  std::size_t buffered_messages() const { return buffer_.size(); }
  std::size_t delivered_count() const { return delivered_here_.size(); }
  std::uint64_t dropped_capacity() const { return dropped_capacity_; }
  std::uint64_t expired_messages() const { return expired_; }

 private:
  struct Entry {
    double p = 0;
    TimePoint updated;
  };
  struct Message {
    std::uint32_t id;
    PeerId source;
    PeerId dest;
    std::uint64_t bytes;
    TimePoint created;
  };

  double aged(const Entry& e) const;
  void buffer_message(Message m);
  void purge_expired();
  void bump_encounter(PeerId peer);
  void apply_transitivity(PeerId via, PeerId dest, double p_via_dest);
  void refresh_advert();
  Bytes encode_summary() const;
  void on_advert(PeerId peer, const Bytes& summary);
  void on_data(PeerId peer, const Bytes& wire);
  void try_forward(PeerId peer);
  Bytes encode_message(const Message& m) const;

  baselines::D2dStack& stack_;
  sim::Simulator& sim_;
  ProphetConfig config_;
  sim::TraceRecorder* trace_;

  std::map<PeerId, Entry> table_;
  std::vector<Message> buffer_;
  std::set<std::uint32_t> seen_;            // message ids ever held
  std::set<std::uint32_t> delivered_here_;  // ids delivered to this node
  std::map<PeerId, std::set<std::uint32_t>> offered_;  // per-peer dedup
  DeliveredFn on_delivered_;
  std::uint32_t next_message_id_;
  bool started_ = false;
  std::uint64_t dropped_capacity_ = 0;
  std::uint64_t expired_ = 0;
};

}  // namespace omni::apps
