// Disseminate-like D2D media sharing (paper §4.3, after Srinivasan et al.).
//
// Co-located devices download pieces of one media file from a (mock)
// infrastructure network and share them device-to-device: each device
// periodically advertises a holdings bitmap as lightweight metadata
// ("devices exchange meta-data describing their available and desired data
// before exchanging the (much larger) data itself") and pushes chunks peers
// are missing as heavyweight data.
//
// Infrastructure policy: a device first downloads its assigned range, then
// backfills missing chunks from the infrastructure whenever D2D has not
// already supplied them — so a device is never idle waiting on a slow D2D
// path (at high infrastructure rates this degrades gracefully to the
// paper's "SP equals direct download" observation).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "apps/chunk_store.h"
#include "baselines/d2d_stack.h"
#include "net/infra.h"
#include "sim/trace.h"

namespace omni::apps {

struct DisseminateConfig {
  std::uint64_t file_bytes = 30ull * 1000 * 1000;  ///< paper: 30 MB
  std::uint64_t chunk_bytes = 250ull * 1000;       ///< 120 chunks
  double infra_rate_Bps = 100e3;  ///< paper: 100 or 1000 KBps
  Duration advert_interval = Duration::millis(500);
  /// Share chunks via multicast broadcast instead of per-peer unicast (the
  /// paper's SP configuration "purely uses multicast over WiFi-Mesh").
  bool share_via_broadcast = false;
  /// Max unicast chunk transfers in flight per peer.
  std::size_t send_window = 2;
  /// Push order for queued chunks: sequential (lowest id first) or
  /// rarest-first (prefer chunks the fewest peers hold — the classic swarm
  /// heuristic that spreads distinct pieces fastest).
  enum class PushOrder { kSequential, kRarestFirst };
  PushOrder push_order = PushOrder::kSequential;
  /// Keep backfilling missing chunks from the infrastructure after the
  /// assigned range completes.
  bool infra_backfill = true;
  /// Rate-aware backfill: a chunk some peer already holds ("promised") is
  /// only re-fetched from the infrastructure when the observed D2D supply
  /// rate is so slow that waiting would take more than `backfill_bias`
  /// times the infrastructure download time. This is what lets a multicast-
  /// limited deployment degrade gracefully to direct-download speed while a
  /// TCP-backed one trusts its peers.
  double backfill_bias = 2.0;
  /// Window over which the D2D supply rate is estimated.
  Duration d2d_rate_window = Duration::seconds(10);
};

class DisseminateApp {
 public:
  /// `assigned_first`/`assigned_count`: this device's piece of the file.
  DisseminateApp(baselines::D2dStack& stack, net::InfraNetwork& infra,
                 radio::WifiRadio& infra_radio, sim::Simulator& sim,
                 DisseminateConfig config, std::uint64_t assigned_first,
                 std::uint64_t assigned_count,
                 sim::TraceRecorder* trace = nullptr);

  void start();

  const ChunkStore& store() const { return store_; }
  bool complete() const { return store_.complete(); }
  TimePoint completed_at() const { return completed_at_; }
  TimePoint started_at() const { return started_at_; }

  std::uint64_t chunks_from_infra() const { return chunks_from_infra_; }
  std::uint64_t chunks_from_d2d() const { return chunks_from_d2d_; }
  std::uint64_t duplicate_chunks() const { return duplicates_; }

 private:
  void pump_infra();
  void on_chunk_obtained(std::uint64_t id, bool from_infra);
  void refresh_advert();
  void on_peer_advert(baselines::D2dStack::PeerId peer, const Bytes& info);
  void on_peer_data(baselines::D2dStack::PeerId peer, const Bytes& data);
  void pump_sends(baselines::D2dStack::PeerId peer);
  Bytes chunk_payload(std::uint64_t id) const;
  /// How many known peers hold chunk `id` (rarest-first scoring).
  std::size_t peer_holders(std::uint64_t id) const;
  /// Pick the next queued chunk for `peer` per the configured push order.
  std::uint64_t pick_queued_chunk(const std::set<std::uint64_t>& queued) const;

  baselines::D2dStack& stack_;
  net::InfraNetwork& infra_;
  radio::WifiRadio& infra_radio_;
  sim::Simulator& sim_;
  DisseminateConfig config_;
  std::uint64_t assigned_first_;
  std::uint64_t assigned_count_;
  sim::TraceRecorder* trace_;

  ChunkStore store_;
  bool started_ = false;
  TimePoint started_at_;
  TimePoint completed_at_ = TimePoint::max();
  bool infra_busy_ = false;
  std::set<std::uint64_t> infra_in_flight_;

  struct PeerState {
    std::vector<bool> has;
    std::set<std::uint64_t> queued;    // chunks waiting to send
    std::set<std::uint64_t> sent;      // sent or in flight
    std::size_t in_flight = 0;
  };
  std::map<baselines::D2dStack::PeerId, PeerState> peers_;
  std::set<std::uint64_t> broadcast_done_;  // chunks already multicast
  std::set<std::uint64_t> infra_chunks_;    // chunks this device downloaded

  std::uint64_t chunks_from_infra_ = 0;
  std::uint64_t chunks_from_d2d_ = 0;
  std::uint64_t duplicates_ = 0;

  /// (time, bytes) samples of D2D chunk arrivals for rate estimation.
  std::deque<std::pair<TimePoint, std::uint64_t>> d2d_samples_;
  sim::EventHandle backfill_recheck_;

  bool promised_by_peer(std::uint64_t id) const;
  double d2d_rate_Bps() const;
  std::uint64_t missing_bytes() const;
};

}  // namespace omni::apps
