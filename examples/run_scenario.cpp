// Scenario-runner CLI: execute an Omni scenario script.
//
//   $ ./examples/run_scenario path/to/scenario.txt
//   $ ./examples/run_scenario --threads 8 path/to/scenario.txt
//   $ ./examples/run_scenario --resume ckpt.osnap path/to/scenario.txt
//   $ ./examples/run_scenario            # runs the built-in demo scenario
//
// --threads N runs the parallel sharded engine; the report is bit-identical
// at any thread count. --resume anchors the run to an .osnap snapshot from a
// previous execution of the same script: state is byte-verified against the
// file at the snapshot instant (any thread count on either side). See
// src/scenario/scenario.h for the DSL reference.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "scenario/scenario.h"

namespace {

const char* kDemoScenario = R"(# Built-in demo: a tourist walks past a relayed beacon chain.
seed 7
device tourist 0 0 ble wifi
device townhall 35 0 ble wifi multicast relay=1
device museum 70 0 ble wifi multicast relay=1

service townhall 3 townhall
service museum 3 museum
advertise tourist interest:viz

run 6s
report

# The museum (out of BLE range) pushes media once the tourist's relayed
# interest reaches it; the tourist also walks toward it.
send museum tourist at=8s bytes=2000000
walk tourist at=7s to=55,0 speed=1.5
run 30s
report
)";

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 1;
  const char* path = nullptr;
  std::string resume;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads needs a count\n");
        return 1;
      }
      long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return 1;
      }
      threads = static_cast<unsigned>(v);
    } else if (arg == "--resume") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--resume needs an .osnap path\n");
        return 1;
      }
      resume = argv[++i];
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--resume snap.osnap] "
                   "[scenario-file]\n",
                   argv[0]);
      return 1;
    }
  }

  std::string text;
  if (path != nullptr) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", path);
      return 1;
    }
    std::ostringstream ss;
    ss << file.rdbuf();
    text = ss.str();
  } else {
    std::printf("(no scenario file given; running the built-in demo)\n\n");
    text = kDemoScenario;
  }

  auto parsed = omni::scenario::Scenario::parse(text);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.error_message().c_str());
    return 1;
  }
  std::printf("scenario: %zu devices, %zu instructions\n\n",
              parsed.value()->device_count(),
              parsed.value()->instruction_count());
  omni::Status s = parsed.value()->run(std::cout, threads, false, resume);
  if (!s.is_ok()) {
    std::fprintf(stderr, "run error: %s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
