// Quickstart: the smallest complete Omni program.
//
// Two simulated devices discover each other through Omni's address beacons,
// one shares a context pack ("hello"), and the other responds with a data
// transfer — all through the Developer API of paper Table 1, with the
// technology choice left entirely to the Omni Manager.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "net/testbed.h"
#include "omni/omni_node.h"

using namespace omni;

int main() {
  // A testbed = simulator + world + BLE medium + WiFi-Mesh system.
  net::Testbed bed(/*seed=*/7);
  auto& alice_dev = bed.add_device("alice", {0, 0});
  auto& bob_dev = bed.add_device("bob", {15, 0});

  // Every device runs one OmniManager with its technology plugins.
  OmniNode alice(alice_dev, bed.mesh());
  OmniNode bob(bob_dev, bed.mesh());

  // Bob registers the two receive callbacks (Table 1: request_context /
  // request_data).
  bob.manager().request_context(
      [&](const OmniAddress& source, const Bytes& context) {
        std::printf("[%6.2fs] bob: context from %s: \"%.*s\"\n",
                    bed.simulator().now().as_seconds(),
                    source.to_string().c_str(),
                    static_cast<int>(context.size()),
                    reinterpret_cast<const char*>(context.data()));
        // Answer with data — Omni picks the technology (here: WiFi TCP,
        // because the context beacon already delivered alice's mesh
        // address).
        Bytes reply{'p', 'o', 'n', 'g'};
        bob.manager().send_data(
            {source}, reply, [&](StatusCode code, const ResponseInfo& info) {
              std::printf("[%6.2fs] bob: send_data -> %s (%s)\n",
                          bed.simulator().now().as_seconds(),
                          info.destination.to_string().c_str(),
                          to_string(code).c_str());
            });
      });

  alice.manager().request_data(
      [&](const OmniAddress& source, const Bytes& data) {
        std::printf("[%6.2fs] alice: data from %s: \"%.*s\"\n",
                    bed.simulator().now().as_seconds(),
                    source.to_string().c_str(), static_cast<int>(data.size()),
                    reinterpret_cast<const char*>(data.data()));
      });

  alice.start();
  bob.start();

  // Alice shares a small context pack every 500 ms (Table 1: add_context).
  ContextParams params;
  params.interval = Duration::millis(500);
  alice.manager().add_context(
      params, Bytes{'h', 'e', 'l', 'l', 'o'},
      [&](StatusCode code, const ResponseInfo& info) {
        std::printf("[%6.2fs] alice: add_context -> %s (id=%u)\n",
                    bed.simulator().now().as_seconds(),
                    to_string(code).c_str(), info.context_id);
      });

  bed.simulator().run_for(Duration::seconds(3));

  std::printf("\nalice knows %zu peer(s); bob knows %zu peer(s)\n",
              alice.manager().peer_table().size(),
              bob.manager().peer_table().size());
  std::printf("done.\n");
  return 0;
}
