// Smart-home walkthrough using the typed service-discovery layer.
//
// Sensors and a smart lamp publish typed ServiceDescriptors as Omni
// context; a hub browses the neighborhood, subscribes to sensors it finds,
// and pushes scenes to the lamp — all without a gateway or pre-established
// network (§2.2's smart-building motivation, contrast with the
// AllJoyn/IoTivity gateway model the paper critiques).
//
//   $ ./examples/smart_home
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/testbed.h"
#include "omni/omni_node.h"
#include "omni/service.h"

using namespace omni;

namespace {

struct SensorDevice {
  std::string name;
  net::Device* device = nullptr;
  std::unique_ptr<OmniNode> node;
  std::unique_ptr<ServicePublisher> publisher;
  int reading = 20;
};

}  // namespace

int main() {
  net::Testbed bed(/*seed=*/31);
  auto& sim = bed.simulator();

  // --- Three sensors and a lamp scattered around the flat.
  std::vector<SensorDevice> sensors(3);
  const char* kNames[] = {"thermo-kitchen", "thermo-bedroom", "hygro-bath"};
  for (int i = 0; i < 3; ++i) {
    sensors[i].name = kNames[i];
    sensors[i].device =
        &bed.add_device(kNames[i], {4.0 * i, 3.0 * (i % 2)});
    sensors[i].node =
        std::make_unique<OmniNode>(*sensors[i].device, bed.mesh());
    sensors[i].node->start();
    sensors[i].publisher =
        std::make_unique<ServicePublisher>(sensors[i].node->manager());
    ServiceDescriptor d;
    d.service_type = service_types::kSensor;
    d.name = sensors[i].name.substr(0, 12);
    d.attributes[1] = Bytes{static_cast<std::uint8_t>(20 + i)};  // reading
    sensors[i].publisher->publish(d, Duration::millis(500));
    // Sensors answer data requests with a fresh reading.
    OmniManager& m = sensors[i].node->manager();
    auto* sensor = &sensors[i];
    m.request_data([&bed, sensor](const OmniAddress& from, const Bytes& req) {
      if (req.empty() || req[0] != 'R') return;
      Bytes reading{'V', static_cast<std::uint8_t>(sensor->reading)};
      sensor->node->manager().send_data({from}, std::move(reading), nullptr);
    });
  }

  auto& lamp_dev = bed.add_device("lamp", {6, 1});
  OmniNode lamp(lamp_dev, bed.mesh());
  lamp.start();
  ServicePublisher lamp_publisher(lamp.manager());
  {
    ServiceDescriptor d;
    d.service_type = service_types::kMediaStream;  // "scene sink"
    d.name = "lamp";
    lamp_publisher.publish(d, Duration::millis(500));
  }
  lamp.manager().request_data(
      [&](const OmniAddress&, const Bytes& scene) {
        std::printf("[%5.1fs] lamp: applying %zu-byte scene\n",
                    sim.now().as_seconds(), scene.size());
      });

  // --- The hub: browse, subscribe, orchestrate.
  auto& hub_dev = bed.add_device("hub", {3, 1});
  OmniNode hub(hub_dev, bed.mesh());
  hub.start();
  ServiceBrowser browser(hub.manager(), bed.simulator());
  std::map<std::string, int> readings;
  hub.manager().request_data(
      [&](const OmniAddress&, const Bytes& data) {
        if (data.size() == 2 && data[0] == 'V') {
          std::printf("[%5.1fs] hub: reading = %d\n",
                      sim.now().as_seconds(), data[1]);
        }
      });
  browser.on_found([&](const ServiceBrowser::Entry& e) {
    std::printf("[%5.1fs] hub: found %s '%s' at %s\n",
                sim.now().as_seconds(),
                e.descriptor.service_type == service_types::kSensor
                    ? "sensor"
                    : "sink",
                e.descriptor.name.c_str(),
                e.provider.to_string().c_str());
  });
  browser.on_lost([&](const ServiceBrowser::Entry& e) {
    std::printf("[%5.1fs] hub: lost '%s'\n", sim.now().as_seconds(),
                e.descriptor.name.c_str());
  });

  // Every 5 s: poll every known sensor; at t=12 push a big "scene" (a 200 KB
  // lighting program) to the lamp over whatever technology Omni picks.
  std::function<void()> poll = [&] {
    for (OmniAddress provider :
         browser.providers_of(service_types::kSensor)) {
      hub.manager().send_data({provider}, Bytes{'R'}, nullptr);
    }
    sim.after(Duration::seconds(5), poll);
  };
  sim.after(Duration::seconds(2), poll);
  sim.after(Duration::seconds(12), [&] {
    for (OmniAddress sink :
         browser.providers_of(service_types::kMediaStream)) {
      Bytes scene(200'000, 0x5C);
      hub.manager().send_data({sink}, std::move(scene), nullptr);
    }
  });

  // The bathroom sensor's battery dies at t=20.
  sim.after(Duration::seconds(20), [&] {
    std::printf("[%5.1fs] hygro-bath battery dies\n", sim.now().as_seconds());
    sensors[2].node->stop();
    sensors[2].device->ble().set_powered(false);
    sensors[2].device->wifi().set_powered(false);
  });

  sim.run_for(Duration::seconds(40));

  std::printf("\nhub directory at t=%.0fs:\n", sim.now().as_seconds());
  for (const auto& e : browser.services()) {
    std::printf("  %-14s last seen %.1fs ago\n", e.descriptor.name.c_str(),
                (sim.now() - e.last_seen).as_seconds());
  }
  std::printf("hub avg draw: %.1f mA\n",
              hub_dev.meter().average_ma(TimePoint::origin(), sim.now()));
  return 0;
}
